"""Bounded symbolic execution for mirlight.

The repro band for this paper is "only informal symbolic checking
possible, not faithful proofs" — this subpackage is that checking engine.
It symbolically executes the *pure* fragment of mirlight (functions whose
variables are all temporaries — 65 of the 77 memory-module functions in
the paper never touch memory, Sec. 3.2), enumerating every control-flow
path, discharging assertion obligations with a small solver over bounded
domains, and producing concrete counterexamples when a property fails.

* :mod:`repro.symbolic.terms` — the term language and evaluator,
* :mod:`repro.symbolic.solver` — domain pruning + exhaustive model
  enumeration (exact over bounded domains; no SMT dependency),
* :mod:`repro.symbolic.execute` — the path-forking executor plus
  ``verify_assertions`` / ``check_equivalence`` drivers.
"""

from repro.symbolic.terms import (
    Term,
    SymVar,
    Const,
    App,
    evaluate,
    fast_evaluate,
    term_vars,
    term_fingerprint,
    simplify,
    bv,
    boolean,
    compile_evaluator,
    intern_stats,
    clear_term_caches,
)
from repro.symbolic.solver import (
    Domains,
    check_sat,
    enumerate_models,
    must_hold,
    prune_domains,
    solver_stats,
    stats_delta,
    clear_solver_caches,
)
from repro.symbolic.execute import (
    SymExecutor,
    PathResult,
    Obligation,
    SymbolicUnsupported,
    verify_assertions,
    check_equivalence,
    path_coverage_inputs,
)

__all__ = [
    "Term", "SymVar", "Const", "App",
    "evaluate", "fast_evaluate", "term_vars", "term_fingerprint",
    "simplify", "bv", "boolean", "compile_evaluator",
    "intern_stats", "clear_term_caches",
    "Domains", "check_sat", "enumerate_models", "must_hold", "prune_domains",
    "solver_stats", "stats_delta", "clear_solver_caches",
    "SymExecutor", "PathResult", "Obligation", "SymbolicUnsupported",
    "verify_assertions", "check_equivalence", "path_coverage_inputs",
]
