"""TLB shootdown and the stale-translation detector."""

from functools import partial

from repro.hyperenclave import buggy
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import RustMonitor
from repro.concurrency.shootdown import (
    detect_stale_translations,
    tlb_shootdown,
)

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


def two_vcpu_world(monitor_cls=RustMonitor):
    return build_enclave_world(
        monitor_cls=partial(monitor_cls, num_vcpus=2))


def cache_translation(monitor, eid, va):
    """Make vCPU 1 run the enclave with ``va``'s translation cached."""
    pa = TINY.page_base(monitor.enclave_translate(eid, va, write=False))
    monitor.cpus[1].active = eid
    monitor.cpus[1].tlb.insert(eid, (va, False), pa)
    return pa


class TestShootdown:
    def test_flushes_every_vcpu(self):
        monitor, _app, eid = two_vcpu_world()
        monitor.cpus[0].tlb.insert(eid, (16 * PAGE, False), 0x111)
        monitor.cpus[1].tlb.insert(eid, (16 * PAGE, False), 0x222)
        tlb_shootdown(monitor)
        assert len(monitor.cpus[0].tlb) == 0
        assert len(monitor.cpus[1].tlb) == 0

    def test_trim_shoots_down_remote_tlbs(self):
        monitor, _app, eid = two_vcpu_world()
        va = 16 * PAGE
        cache_translation(monitor, eid, va)
        monitor.hc_trim_page(eid, va)
        assert monitor.cpus[1].tlb.lookup(eid, (va, False)) is None
        assert not detect_stale_translations(monitor)


class TestDetector:
    def test_live_translation_is_clean(self):
        monitor, _app, eid = two_vcpu_world()
        cache_translation(monitor, eid, 16 * PAGE)
        assert detect_stale_translations(monitor) == []

    def test_host_vcpus_are_skipped(self):
        monitor, _app, eid = two_vcpu_world()
        # Host loads go through the direct physical map, not this TLB;
        # a leftover entry on a host-mode vCPU convicts nobody.
        monitor.cpus[1].tlb.insert(eid, (16 * PAGE, False), 0x333)
        assert monitor.cpus[1].active == 0
        assert detect_stale_translations(monitor) == []

    def test_unmapped_but_unreleased_page_is_benign(self):
        monitor, _app, eid = two_vcpu_world()
        va = 16 * PAGE
        cache_translation(monitor, eid, va)
        # The mid-shootdown window: the GPT mapping is gone but the
        # EPCM still accounts the frame to (eid, va) as a REG page.
        monitor.enclaves[eid].gpt.unmap(va)
        assert detect_stale_translations(monitor) == []

    def test_released_frame_is_convicted(self):
        monitor, _app, eid = two_vcpu_world(buggy.NoShootdownMonitor)
        va = 16 * PAGE
        pa = cache_translation(monitor, eid, va)
        monitor.hc_trim_page(eid, va)   # BUG: only vCPU 0's TLB flushed
        findings = detect_stale_translations(monitor)
        assert len(findings) == 1
        stale = findings[0]
        assert stale.vid == 1 and stale.principal == eid
        assert stale.va_page == va and stale.cached_pa == pa
        assert "free" in stale.reason

    def test_remapped_va_is_convicted(self):
        monitor, _app, eid = two_vcpu_world()
        va = 16 * PAGE
        cache_translation(monitor, eid, va)
        # Point the cached entry at a non-EPC frame the walk disowns.
        monitor.cpus[1].tlb.insert(eid, (va, False), 0)
        findings = detect_stale_translations(monitor)
        assert len(findings) == 1
        assert "maps to" in findings[0].reason


class TestSpanAwareStaleness:
    """Block (huge-page) TLB entries cache a whole span; the detector
    must sweep every page under the entry, not just the base page —
    the old fixed-granularity comparison missed interior staleness."""

    def test_stale_interior_page_is_convicted(self):
        monitor, _app, eid = two_vcpu_world()
        va = 16 * PAGE
        pa = cache_translation(monitor, eid, va)
        # Re-insert as a 2-page block entry: the base page still
        # translates correctly, but the entry also claims va+PAGE,
        # which the enclave never mapped.
        monitor.cpus[1].tlb.insert(eid, (va, False), pa, span=2 * PAGE)
        findings = detect_stale_translations(monitor)
        assert len(findings) == 1
        stale = findings[0]
        assert stale.va_page == va + PAGE
        assert stale.cached_pa == pa + PAGE

    def test_consistent_span_is_clean(self):
        # A world with two contiguous enclave pages: EPC allocation is
        # first-fit, so the two translations land on adjacent frames.
        monitor, _app, eid = build_enclave_world(
            monitor_cls=partial(RustMonitor, num_vcpus=2), pages=2)
        va = 16 * PAGE
        pa = TINY.page_base(monitor.enclave_translate(eid, va,
                                                      write=False))
        assert TINY.page_base(monitor.enclave_translate(
            eid, va + PAGE, write=False)) == pa + PAGE
        monitor.cpus[1].active = eid
        monitor.cpus[1].tlb.insert(eid, (va, False), pa, span=2 * PAGE)
        assert detect_stale_translations(monitor) == []

    def test_span_interior_in_shootdown_window_is_benign(self):
        monitor, _app, eid = build_enclave_world(
            monitor_cls=partial(RustMonitor, num_vcpus=2), pages=2)
        va = 16 * PAGE
        pa = TINY.page_base(monitor.enclave_translate(eid, va,
                                                      write=False))
        monitor.cpus[1].active = eid
        monitor.cpus[1].tlb.insert(eid, (va, False), pa, span=2 * PAGE)
        # Unmap only the *interior* page: EPCM still accounts its frame
        # to (eid, va+PAGE) as REG — the in-flight shootdown window.
        monitor.enclaves[eid].gpt.unmap(va + PAGE)
        assert detect_stale_translations(monitor) == []
