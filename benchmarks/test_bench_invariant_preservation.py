"""Sec. 5.2 — "we prove that the hypercalls preserve them", measured.

Drives long random hypercall/guest-action traces and sweeps all five
invariant families after *every* applied step, tallying preservation per
hypercall kind.  The benchmark times the whole campaign — the cost of
checking what the paper proves once and for all.
"""

import random

from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import RustMonitor
from repro.errors import HypervisorError, TranslationFault
from repro.reporting import render_table
from repro.security import check_all_invariants

PAGE = TINY.page_size


def run_campaign(seed, rounds=120):
    rng = random.Random(seed)
    monitor = RustMonitor(TINY)
    primary_os = monitor.primary_os
    src = TINY.frame_base(primary_os.reserve_data_frame())
    mbufs = [TINY.frame_base(primary_os.reserve_data_frame())
             for _ in range(3)]
    live = []
    stats = {}
    failures = []

    def record(kind, applied):
        entry = stats.setdefault(kind, [0, 0])
        entry[0] += 1
        if applied:
            entry[1] += 1

    for _ in range(rounds):
        kind = rng.choice(["create", "add_page", "aug_page",
                           "remove_page", "init", "enter_exit",
                           "destroy", "guest_write"])
        applied = True
        try:
            if kind == "create":
                slot = rng.randrange(3)
                eid = monitor.hc_create(
                    (16 + 16 * slot) * PAGE, 2 * PAGE,
                    (4 + slot) * PAGE, mbufs[slot], PAGE)
                live.append((eid, slot))
            elif kind == "add_page" and live:
                eid, slot = rng.choice(live)
                monitor.hc_add_page(
                    eid, (16 + 16 * slot) * PAGE + rng.choice([0, PAGE]),
                    src)
            elif kind == "aug_page" and live:
                eid, slot = rng.choice(live)
                monitor.hc_aug_page(
                    eid, (16 + 16 * slot) * PAGE + rng.choice([0, PAGE]))
            elif kind == "remove_page" and live:
                eid, slot = rng.choice(live)
                monitor.hc_remove_page(
                    eid, (16 + 16 * slot) * PAGE + rng.choice([0, PAGE]))
            elif kind == "init" and live:
                monitor.hc_init(rng.choice(live)[0])
            elif kind == "enter_exit" and live:
                eid = rng.choice(live)[0]
                monitor.hc_enter(eid)
                monitor.hc_exit(eid)
            elif kind == "destroy" and live:
                victim = rng.choice(live)
                monitor.hc_destroy(victim[0])
                live.remove(victim)
            elif kind == "guest_write":
                primary_os.gpa_write_word(
                    rng.randrange(0, 0x3000, 8), rng.getrandbits(64))
            else:
                applied = False
        except (HypervisorError, TranslationFault):
            applied = False
        record(kind, applied)
        report = check_all_invariants(monitor)
        if not report.ok:
            failures.append((kind, str(report)))
    return stats, failures


def test_bench_invariant_preservation(benchmark, emit):
    stats, failures = benchmark(run_campaign, 42)
    assert failures == [], failures[:3]

    rows = [[kind, attempted, applied]
            for kind, (attempted, applied) in sorted(stats.items())]
    rows.append(["TOTAL", sum(a for a, _ in stats.values()),
                 sum(b for _, b in stats.values())])
    emit("invariant_preservation",
         render_table(["Action", "Attempted", "Applied (invariants "
                       "re-checked after each)"], rows,
                      title="Sec. 5.2 — invariant preservation per "
                            "hypercall"))
    # Every hypercall kind must actually have been exercised.
    assert set(stats) >= {"create", "add_page", "init", "enter_exit",
                          "destroy"}
