"""Fingerprint-keyed memoisation of the per-state checkers.

The interleaving explorer's schedules massively reconverge: at
preemption bound 2 the default campaign explores 178 schedules that
reach only a handful of distinct terminal states.  Re-running every
invariant family, the vCPU consistency check, and the noninterference
observation diff on each of them is the dominant non-execution cost —
and it is pure recomputation, because all three are side-effect-free
functions of the monitor state (``enclave_translate`` walks physical
memory directly; nothing touches a TLB or an allocator).

:class:`CheckMemo` caches each by its exact input fingerprints:

* invariant families individually, keyed by the fingerprints of just
  the structures that family reads (:data:`FAMILY_DEPS`) — the
  per-lock-structure dirty tracking: a state whose ``phys`` and
  ``enclaves`` match a certified state re-checks nothing even if its
  ``cpus`` differ;
* the vCPU consistency check, keyed by (cpus, enclaves, phys);
* per-state *observation digests*, keyed by one world's fingerprint
  plus the observing vCPU and principal — the schedule-NI final-state
  pass compares digests first, so the common all-equal case costs one
  V(p, σ) evaluation per distinct *state* instead of one diff per
  distinct *pair* of states;
* observation diffs, keyed by both worlds' combined fingerprints plus
  the observing vCPU and principal (the slow path, reached only when
  the digests disagree and a component-level witness is needed).

Memoisation by fingerprint is hash compaction (as in every stateful
model checker's visited-state table): a 64-bit blake2b collision would
alias two distinct states.  The planted-bug matrix re-run through the
parallel fabric guards the other failure mode — a memo bug masking a
real violation.
"""

from hashlib import blake2b
from typing import Dict, List, Tuple

from repro.engine.fingerprint import structure_fingerprints
from repro.obs import trace as _trace
from repro.security.invariants import (
    FAMILIES,
    InvariantReport,
    check_vcpu_consistency,
)
from repro.security.noninterference import observation_diff
from repro.security.observation import observe

# The structures each invariant family reads.  Page-table walks are
# functions of physical memory; enclave metadata (roots, ELRANGE, mbuf,
# lifecycle state) comes from the enclave table.  Supersets are sound
# (they only cost extra misses), subsets are not.
FAMILY_DEPS: Dict[str, Tuple[str, ...]] = {
    "elrange-isolation": ("phys", "enclaves"),
    "marshalling-buffer": ("phys", "enclaves"),
    "epcm": ("phys", "enclaves", "epcm"),
    "enclave-invariants": ("phys", "enclaves"),
    "pt-residency": ("phys", "enclaves", "frames"),
}

# What the vCPU consistency check reads: per-core state, enclave
# metadata, and the OS EPT root (folded into the cpus fingerprint).
VCPU_DEPS: Tuple[str, ...] = ("cpus", "enclaves", "phys")


class CheckMemo:
    """Per-process cache for the three per-state checkers.

    With :meth:`enable_journal` every *miss* also appends a
    ``(table, key, value)`` entry to an in-memory journal (tables:
    ``invariants:<family>``, ``vcpu``, ``observation``).  The sharded
    executor drains the journal with each shard's results, and the
    durable orchestrator persists the drained entries to its
    :class:`~repro.service.store.MemoStore` — which :meth:`preload`s
    them back into a fresh memo on the next run, turning repeat
    campaigns into mostly cache hits.  Journaling is off by default
    (one ``is None`` test per miss when off).
    """

    def __init__(self):
        self._families: Dict[str, Dict[Tuple, List[str]]] = {
            name: {} for name, _checker in FAMILIES}
        self._vcpu: Dict[Tuple, Tuple[str, ...]] = {}
        self._obs: Dict[Tuple, Tuple[str, ...]] = {}
        self._obsdig: Dict[Tuple, str] = {}
        self.counters = {"invariants": [0, 0], "vcpu": [0, 0],
                         "observation": [0, 0],
                         "obs_digest": [0, 0]}        # [hits, misses]
        self.journal = None          # list of (table, key, value) or None

    # -- persistence bridging -----------------------------------------------

    def enable_journal(self):
        """Start journalling new entries (idempotent)."""
        if self.journal is None:
            self.journal = []

    def drain_journal(self) -> List[Tuple[str, Tuple, object]]:
        """Take and clear the journalled entries (empty when disabled)."""
        if not self.journal:
            return []
        drained, self.journal = self.journal, []
        return drained

    def _note(self, table: str, key: Tuple, value):
        if self.journal is not None:
            self.journal.append((table, key, value))

    def preload(self, entries) -> int:
        """Install persisted ``(table, key, value)`` entries; returns
        how many were accepted (unknown tables are skipped — a store
        written by a newer engine warms what it can)."""
        loaded = 0
        for table, key, value in entries:
            key = tuple(key)
            if table.startswith("invariants:"):
                family = table.partition(":")[2]
                cache = self._families.get(family)
                if cache is None:
                    continue
                cache[key] = list(value)
            elif table == "vcpu":
                self._vcpu[key] = tuple(value)
            elif table == "observation":
                self._obs[key] = tuple(value)
            elif table == "obsdigest":
                self._obsdig[key] = str(value)
            else:
                continue
            loaded += 1
        return loaded

    # -- invariant families -------------------------------------------------------

    def check_invariants(self, monitor, fps=None) -> InvariantReport:
        """Memoised :func:`~repro.security.invariants.check_all_invariants`:
        identical report, but only families whose dependency structures
        changed since a certified state actually run."""
        fps = fps or structure_fingerprints(monitor)
        report = InvariantReport()
        hits = misses = 0
        for name, checker in FAMILIES:
            key = tuple(fps[dep] for dep in FAMILY_DEPS[name])
            cache = self._families[name]
            if key in cache:
                hits += 1
                self.counters["invariants"][0] += 1
                report.violations[name] = list(cache[key])
            else:
                misses += 1
                self.counters["invariants"][1] += 1
                found = checker(monitor)
                cache[key] = list(found)
                self._note(f"invariants:{name}", key, list(found))
                report.violations[name] = found
        _trace.event("memo", checker="invariants", hits=hits,
                     misses=misses)
        return report

    # -- vCPU consistency ---------------------------------------------------------

    def check_vcpu(self, monitor, fps=None) -> List[str]:
        """Memoised per-vCPU consistency check (list of findings)."""
        fps = fps or structure_fingerprints(monitor)
        key = tuple(fps[dep] for dep in VCPU_DEPS)
        if key in self._vcpu:
            self.counters["vcpu"][0] += 1
            _trace.event("memo", checker="vcpu", hits=1, misses=0)
            return list(self._vcpu[key])
        self.counters["vcpu"][1] += 1
        _trace.event("memo", checker="vcpu", hits=0, misses=1)
        found = check_vcpu_consistency(monitor)
        self._vcpu[key] = tuple(found)
        self._note("vcpu", key, tuple(found))
        return found

    # -- observation digests and diffs ---------------------------------------------

    def observation_digest(self, state, vid, observer, fp=None) -> str:
        """Digest of V(``observer``, state) as seen from vCPU ``vid``.

        :class:`~repro.security.observation.Observation` is a frozen
        dataclass of nested tuples, so its repr is a canonical encoding;
        a 64-bit blake2b of it is subject to the same hash-compaction
        caveat as every other memo table.  Keyed per *state* — the NI
        final-state pass over N distinct terminal states costs N digest
        evaluations instead of O(N²) pairwise diffs.
        """
        from repro.engine.fingerprint import fingerprint
        fp = fp if fp is not None else fingerprint(state.monitor)
        key = (fp, vid, observer)
        if key in self._obsdig:
            self.counters["obs_digest"][0] += 1
            return self._obsdig[key]
        self.counters["obs_digest"][1] += 1
        with state.monitor.on_cpu(vid):
            snapshot = observe(state, observer)
        digest = blake2b(repr(snapshot).encode(),
                         digest_size=8).hexdigest()
        self._obsdig[key] = digest
        self._note("obsdigest", key, digest)
        return digest

    def final_state_diff(self, state_a, state_b, vid, observer,
                         fp_a=None, fp_b=None) -> Tuple[str, ...]:
        """Memoised observation diff of two final states as seen from
        vCPU ``vid`` by ``observer`` (the schedule-NI inner loop).

        The observation function reads only monitor structures plus the
        active/saved per-core state — all covered by the combined
        fingerprints — and the executing-vCPU dispatch is pinned by
        ``on_cpu``, so (fp_a, fp_b, vid, observer) determines the diff.

        Three tiers, fastest first: identical fingerprints mean
        identical states (empty diff, no observation at all); equal
        per-state :meth:`observation_digest` values mean equal
        observations (empty diff, one digest per state amortised across
        every pairing); only digest disagreement — an actual candidate
        violation — runs the component-level pairwise diff that the
        witness message needs.
        """
        from repro.engine.fingerprint import fingerprint
        fp_a = fp_a if fp_a is not None else fingerprint(state_a.monitor)
        fp_b = fp_b if fp_b is not None else fingerprint(state_b.monitor)
        if fp_a == fp_b:
            self.counters["observation"][0] += 1
            _trace.event("memo", checker="observation", hits=1, misses=0)
            return ()
        dig_a = self.observation_digest(state_a, vid, observer, fp_a)
        dig_b = self.observation_digest(state_b, vid, observer, fp_b)
        if dig_a == dig_b:
            self.counters["observation"][0] += 1
            _trace.event("memo", checker="observation", hits=1, misses=0)
            return ()
        key = (fp_a, fp_b, vid, observer)
        if key in self._obs:
            self.counters["observation"][0] += 1
            _trace.event("memo", checker="observation", hits=1, misses=0)
            return self._obs[key]
        self.counters["observation"][1] += 1
        _trace.event("memo", checker="observation", hits=0, misses=1)
        with state_a.monitor.on_cpu(vid), state_b.monitor.on_cpu(vid):
            diff = observation_diff(state_a, state_b, observer)
        self._obs[key] = diff
        self._note("observation", key, diff)
        return diff

    # -- stats ---------------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {name: {"hits": hits, "misses": misses}
                for name, (hits, misses) in self.counters.items()}

    def stats_since(self, baseline) -> Dict[str, Dict[str, int]]:
        """Counter deltas relative to a :meth:`stats` snapshot."""
        current = self.stats()
        return {name: {"hits": current[name]["hits"]
                       - baseline[name]["hits"],
                       "misses": current[name]["misses"]
                       - baseline[name]["misses"]}
                for name in current}


def merge_stats(into: Dict, extra: Dict) -> Dict:
    """Accumulate one stats dict into another (shard aggregation)."""
    for name, counts in extra.items():
        slot = into.setdefault(name, {"hits": 0, "misses": 0})
        slot["hits"] += counts.get("hits", 0)
        slot["misses"] += counts.get("misses", 0)
    return into
