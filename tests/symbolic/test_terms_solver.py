"""Term language and the bounded solver."""

import pytest
from hypothesis import given, strategies as st

from repro.mir.types import U8, U64
from repro.symbolic.solver import (
    Domains, check_sat, enumerate_models, must_hold, prune_domains,
)
from repro.symbolic.terms import (
    App, Const, SymVar, boolean, bv, evaluate, simplify, term_vars,
)

X = SymVar("x", U64)
Y = SymVar("y", U64)


def eq(a, b):
    return simplify("eq", (a, b), None)


def lt(a, b):
    return simplify("lt", (a, b), None)


class TestConstruction:
    def test_constant_folding(self):
        assert simplify("add", (bv(2), bv(3)), U64) == bv(5)
        assert simplify("eq", (bv(2), bv(2)), None) == boolean(True)

    def test_wrapping_fold(self):
        assert simplify("add", (bv(255, U8), bv(1, U8)), U8) == bv(0, U8)

    def test_and_or_identities(self):
        assert simplify("and", (boolean(True), lt(X, bv(3))), None) == \
            lt(X, bv(3))
        assert simplify("and", (boolean(False), lt(X, bv(3))), None) == \
            boolean(False)
        assert simplify("or", (boolean(True), lt(X, bv(3))), None) == \
            boolean(True)

    def test_double_negation(self):
        negated = simplify("not", (lt(X, bv(3)),), None)
        assert simplify("not", (negated,), None) == lt(X, bv(3))

    def test_ite_folds_on_constant_condition(self):
        assert simplify("ite", (boolean(True), bv(1), bv(2)), U64) == bv(1)

    def test_symbolic_stays_symbolic(self):
        term = simplify("add", (X, bv(1)), U64)
        assert isinstance(term, App)


class TestEvaluation:
    def test_evaluate_arithmetic(self):
        term = App("mul", (X, App("add", (Y, bv(1)), U64)), U64)
        assert evaluate(term, {"x": 3, "y": 4}) == 15

    def test_evaluate_wraps(self):
        term = App("add", (SymVar("a", U8), bv(1, U8)), U8)
        assert evaluate(term, {"a": 255}) == 0

    def test_evaluate_comparison_and_bool(self):
        term = simplify("and", (lt(X, bv(5)), eq(Y, bv(2))), None)
        assert evaluate(term, {"x": 1, "y": 2}) is True
        assert evaluate(term, {"x": 9, "y": 2}) is False

    def test_term_vars(self):
        term = App("add", (X, App("mul", (Y, X), U64)), U64)
        assert term_vars(term) == {"x", "y"}

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_evaluate_matches_python(self, a, b):
        term = App("bxor", (SymVar("a", U8), SymVar("b", U8)), U8)
        assert evaluate(term, {"a": a, "b": b}) == a ^ b


class TestSolver:
    def test_check_sat_finds_model(self):
        domains = Domains({"x": range(10)})
        model = check_sat([eq(X, bv(7))], domains)
        assert model == {"x": 7}

    def test_unsat_within_domain(self):
        domains = Domains({"x": range(10)})
        assert check_sat([eq(X, bv(42))], domains) is None

    def test_conjunction(self):
        domains = Domains({"x": range(10), "y": range(10)})
        model = check_sat([lt(X, bv(3)),
                           eq(App("add", (X, Y), U64), bv(11))], domains)
        assert model["x"] + model["y"] == 11 and model["x"] < 3

    def test_must_hold_proof_and_countermodel(self):
        domains = Domains({"x": range(8)})
        holds, _ = must_hold(lt(X, bv(8)), [], domains)
        assert holds
        holds, counter = must_hold(lt(X, bv(7)), [], domains)
        assert not holds and counter == {"x": 7}

    def test_must_hold_uses_context(self):
        domains = Domains({"x": range(16)})
        holds, _ = must_hold(lt(X, bv(4)), [lt(X, bv(3))], domains)
        assert holds  # vacuous outside x<3

    def test_prune_domains_unary(self):
        domains = Domains({"x": range(100)})
        pruned = prune_domains([lt(X, bv(5))], domains)
        assert pruned.of("x") == (0, 1, 2, 3, 4)

    def test_prune_handles_negation_and_flip(self):
        domains = Domains({"x": range(10)})
        flipped = simplify("gt", (bv(6), X), None)  # 6 > x  <=>  x < 6
        pruned = prune_domains([flipped], domains)
        assert max(pruned.of("x")) == 5
        negated = App("not", (lt(X, bv(4)),), None)
        pruned = prune_domains([negated], domains)
        assert min(pruned.of("x")) == 4

    def test_enumeration_limit(self):
        domains = Domains({"x": range(10_000), "y": range(10_000)})
        with pytest.raises(OverflowError):
            list(enumerate_models([eq(X, Y)], domains, limit=1000))

    def test_required_vars_forces_coverage(self):
        domains = Domains({"x": range(3), "y": range(2)})
        models = list(enumerate_models([eq(X, bv(1))], domains,
                                       required_vars=("y",)))
        assert len(models) == 2  # y enumerated despite no constraint

    def test_missing_domain_raises(self):
        with pytest.raises(KeyError):
            check_sat([eq(X, bv(1))], Domains({}))
