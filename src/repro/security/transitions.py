"""The transition system of Sec. 5.1.

Steps:

* **CPU-local moves** — nondeterministic in the paper ("HyperEnclave
  does not care about the exact computation happening inside each VM");
  here the nondeterminism is resolved by the trace generator, which
  supplies the concrete :class:`LocalCompute`, :class:`MemLoad`, and
  :class:`MemStore` steps.  Loads and stores resolve through the active
  principal's installed page tables; faulting accesses are no-ops
  (hardware delivers a fault instead of completing the access).
* **Hypercalls** — trapped into RustMonitor: ``create``, ``add_page``,
  ``init``, ``enter``, ``exit``, ``destroy``.  Rejected hypercalls
  (validation errors) are also no-ops.

Marshalling-buffer accesses get the data-oracle semantics of Sec. 5.4:
stores are ignored, loads return the next oracle value.  Everything else
hits the real simulated memory.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.concurrency import scheduler as conc
from repro.errors import (
    HypercallError,
    HypervisorError,
    SecurityError,
    TranslationFault,
)
from repro.hyperenclave.constants import WORD_BYTES
from repro.hyperenclave.monitor import HOST_ID
from repro.hyperenclave.paging import guest_walk


class Step:
    """Base class of transition-system steps."""


@dataclass(frozen=True)
class LocalCompute(Step):
    """The active principal updates one register.

    Either a literal ``value``, or ``op`` over two source registers
    (op in ``add/xor/copy``) — enough to express data-dependent
    computation, which is what leaks travel through.
    """

    principal: int
    reg: str
    value: Optional[int] = None
    op: Optional[str] = None
    src1: Optional[str] = None
    src2: Optional[str] = None


@dataclass(frozen=True)
class MemLoad(Step):
    """``reg <- [va]`` by ``principal``; host loads may go through an
    app's GPT (``via_app``), otherwise the host addresses guest-physical
    space directly."""

    principal: int
    va: int
    reg: str = "rax"
    via_app: Optional[int] = None


@dataclass(frozen=True)
class MemStore(Step):
    """``[va] <- reg`` by ``principal``."""

    principal: int
    va: int
    reg: str = "rax"
    via_app: Optional[int] = None


@dataclass(frozen=True)
class Hypercall(Step):
    """A hypercall by ``principal`` (host for lifecycle calls, the
    enclave itself for ``exit``)."""

    principal: int
    name: str  # create/add_page/init/enter/exit/destroy
    args: Tuple = ()


@dataclass
class StepOutcome:
    """What one step did: applied, faulted (no-op), or rejected (no-op)."""

    step: Step
    applied: bool
    detail: str = ""
    result: Optional[object] = None


# ---------------------------------------------------------------------------
# Resolution helpers
# ---------------------------------------------------------------------------


def spec_walk_enclave(monitor, eid, va, write=False) -> Optional[int]:
    """Resolve an enclave VA using the *verified specification* walk.

    Sec. 5.1: "instead of manually writing this function in Coq (which
    we could get wrong), we actually use a corresponding page-walk
    function that is part of the memory module of HyperEnclave, which we
    have a verified Coq specification for."  This is that reuse: the
    enclave's GPT and EPT are abstracted into the tree view (the thing
    the refinement proofs verified) and walked with
    :func:`repro.spec.walk.spec_translate`.  ``SystemState`` exposes it
    via ``use_spec_walk``; tests pin that it agrees with the hardware
    walker on every access — the refinement payoff, observable.
    """
    from repro.errors import ReproError
    from repro.spec.relation import AbstractionFailure, \
        flat_state_of_page_table, abstract_table
    from repro.spec.walk import spec_translate
    enclave = monitor.enclaves.get(eid)
    if enclave is None:
        return None
    layout = monitor.layout
    pool_base = layout.pt_pool_base
    pool_size = layout.epc_base - layout.pt_pool_base
    config = monitor.config
    try:
        gpt_tree = abstract_table(
            flat_state_of_page_table(enclave.gpt, pool_base, pool_size),
            enclave.gpt.root_frame)
        ept_tree = abstract_table(
            flat_state_of_page_table(enclave.ept, pool_base, pool_size),
            enclave.ept.root_frame)
    except AbstractionFailure:
        return None  # malformed tables: unprovable, treated as fault
    gpa = spec_translate(gpt_tree, va, config, write=write)
    if gpa is None:
        return None
    # Second stage: EPT entries carry no guest-PT USER semantics (the
    # same explicit-stage rule as paging._ept_translate).
    hpa_page = spec_translate(ept_tree, config.page_base(gpa), config,
                              write=write, user=False)
    if hpa_page is None:
        return None
    return hpa_page + config.page_offset(gpa)


def _mbuf_backing_hpa(monitor, hpa) -> bool:
    """Is ``hpa`` inside any enclave's marshalling-buffer backing?"""
    for enclave in monitor.enclaves.values():
        if enclave.mbuf is not None and enclave.mbuf.contains_pa(hpa):
            return True
    return False


def _resolve(state, step, write) -> Optional[int]:
    """The hardware address resolution for a load/store step, or None on
    fault.  Raises SecurityError when the step is malformed (wrong
    principal active) — that is a trace bug, not a fault.

    Virtual accesses (app code through its GPT, enclave code through its
    GPT∘EPT) go through the shared TLB: a hit skips the walk entirely,
    which is exactly why Sec. 2.1's "flushing the corresponding TLB
    entries" on every world switch is security-critical — the
    NoTlbFlushMonitor bench shows the leak when it is skipped.  Host
    direct guest-physical accesses model the kernel's physical map and
    bypass the TLB.
    """
    monitor = state.monitor
    if state.active != step.principal:
        raise SecurityError(
            f"step by principal {step.principal} while {state.active} is "
            f"active — traces must respect the schedule")
    if step.va % WORD_BYTES:
        return None  # unaligned: fault
    if step.principal == HOST_ID and step.via_app is None:
        try:
            return monitor.os_ept.translate(
                monitor.config.page_base(step.va), write=write) \
                + monitor.config.page_offset(step.va)
        except TranslationFault:
            return None
    # Virtual access: consult the TLB first.
    config = monitor.config
    va_page = config.page_base(step.va)
    offset = config.page_offset(step.va)
    cached = monitor.tlb.lookup(0, (va_page, write))
    if cached is not None:
        return cached + offset
    try:
        if step.principal == HOST_ID:
            app = monitor.primary_os.apps[step.via_app]
            hpa = guest_walk(config, monitor.phys, monitor.os_ept,
                             app.gpt_root_gpa, step.va, write=write)
        elif getattr(state, "use_spec_walk", False):
            hpa = spec_walk_enclave(monitor, step.principal, step.va,
                                    write=write)
            if hpa is None:
                return None
        else:
            hpa = monitor.enclave_translate(step.principal, step.va,
                                            write=write)
    except (TranslationFault, HypercallError):
        return None
    monitor.tlb.insert(0, (va_page, write), hpa - offset)
    return hpa


# ---------------------------------------------------------------------------
# Step application
# ---------------------------------------------------------------------------


def apply_step(state, step) -> StepOutcome:
    """Apply one step to ``state`` (in place).

    Under the deterministic scheduler each step is a preemption point
    (``step`` is a branch kind): the explorer may hand the CPU to a
    different vCPU between any two steps of a workload, which is the
    hardware-level interleaving the concurrency plane quantifies over.
    """
    conc.yield_point("step", type(step).__name__)
    state.step_count += 1
    if isinstance(step, LocalCompute):
        return _apply_local(state, step)
    if isinstance(step, MemLoad):
        return _apply_load(state, step)
    if isinstance(step, MemStore):
        return _apply_store(state, step)
    if isinstance(step, Hypercall):
        return _apply_hypercall(state, step)
    raise SecurityError(f"unknown step {step!r}")


def _apply_local(state, step) -> StepOutcome:
    if state.active != step.principal:
        raise SecurityError("LocalCompute by an inactive principal")
    vcpu = state.monitor.vcpu
    if step.op is None:
        vcpu.write_reg(step.reg, step.value or 0)
    elif step.op == "copy":
        vcpu.write_reg(step.reg, vcpu.read_reg(step.src1))
    elif step.op == "add":
        vcpu.write_reg(step.reg, vcpu.read_reg(step.src1)
                       + vcpu.read_reg(step.src2))
    elif step.op == "xor":
        vcpu.write_reg(step.reg, vcpu.read_reg(step.src1)
                       ^ vcpu.read_reg(step.src2))
    else:
        raise SecurityError(f"unknown LocalCompute op {step.op!r}")
    return StepOutcome(step, True)


def _apply_load(state, step) -> StepOutcome:
    hpa = _resolve(state, step, write=False)
    if hpa is None:
        return StepOutcome(step, False, "translation fault")
    monitor = state.monitor
    if _mbuf_backing_hpa(monitor, hpa):
        # Sec. 5.4: reads from the marshalling buffer come from the
        # oracle.  Location-aware oracles (the echo oracle) get the
        # resolved physical address.
        if state.oracle is None:
            value = 0
        elif hasattr(state.oracle, "next_for"):
            value = state.oracle.next_for(state, hpa)
        else:
            value = state.oracle.next()
        monitor.vcpu.write_reg(step.reg, value)
        return StepOutcome(step, True, "mbuf load (oracle)", value)
    value = monitor.phys.read_word(hpa)
    monitor.vcpu.write_reg(step.reg, value)
    return StepOutcome(step, True, "load", value)


def _apply_store(state, step) -> StepOutcome:
    hpa = _resolve(state, step, write=True)
    if hpa is None:
        return StepOutcome(step, False, "translation fault")
    monitor = state.monitor
    value = monitor.vcpu.read_reg(step.reg)
    if _mbuf_backing_hpa(monitor, hpa):
        # Sec. 5.4: stores to the marshalling buffer are in effect ignored.
        return StepOutcome(step, True, "mbuf store (declassified)", value)
    monitor.phys.write_word(hpa, value)
    return StepOutcome(step, True, "store", value)


_HOST_HYPERCALLS = frozenset({"create", "add_page", "aug_page",
                              "remove_page", "trim_page", "init", "enter",
                              "destroy"})


def _apply_hypercall(state, step) -> StepOutcome:
    monitor = state.monitor
    if step.name in _HOST_HYPERCALLS:
        if state.active != HOST_ID or step.principal != HOST_ID:
            return StepOutcome(step, False,
                               "lifecycle hypercalls need the active host")
    elif step.name == "exit":
        if state.active != step.principal or step.principal == HOST_ID:
            return StepOutcome(step, False, "exit needs the active enclave")
    else:
        return StepOutcome(step, False, f"unknown hypercall {step.name!r}")
    handler = getattr(monitor, f"hc_{step.name}")
    try:
        result = handler(*step.args)
    except (HypercallError, HypervisorError) as exc:
        return StepOutcome(step, False, f"rejected: {exc}")
    return StepOutcome(step, True, f"hc_{step.name}", result)


def apply_trace(state, steps):
    """Apply a sequence of steps; returns all outcomes."""
    return [apply_step(state, step) for step in steps]
