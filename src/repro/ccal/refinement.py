"""Co-simulation refinement checking.

This module is the Python stand-in for the paper's Coq simulation proofs:
"we prove that for any two initially related states, the effects as well
as the return value of executing the HyperEnclave function (with MIR
semantics) and executing its specification should agree." (Sec. 4.3)

A Coq proof quantifies over *all* related states; we *check* the same
statement over generated samples — exhaustive over small bounded domains
where possible, randomized otherwise.  A failure is a genuine
counterexample either way; success is evidence (the repro band's
"informal symbolic checking"), not proof.

Pieces:

* :class:`RefinementRelation` — the relation ``R`` between low and high
  abstract states (and its special case, plain equality),
* :func:`mir_impl` — adapts a mirlight function executed by the
  interpreter into the ``(args, state) -> (ret, state)`` shape so code
  can be co-simulated against its spec,
* :class:`CoSimChecker` — drives paired executions and reports
  divergences with the offending witness.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import RefinementFailure, SpecPreconditionError
from repro.mir.interp import Interpreter


@dataclass
class RefinementRelation:
    """A named relation ``R(low_state, high_state) -> bool``.

    The paper's page-table relation ``R d1 d2`` ("the page tables viewed
    as trees in d1 agree in content with those viewed as flat memory in
    d2") is built on this in :mod:`repro.spec.relation`.
    """

    name: str
    relates: Callable

    def __call__(self, low_state, high_state):
        return bool(self.relates(low_state, high_state))

    @staticmethod
    def equality(name="state-equality"):
        return RefinementRelation(name, lambda low, high: low == high)


def mir_impl(program, fn_name, trusted=(), setup=None, extract=None,
             rdata_resolvers=None, fuel=None):
    """Adapt MIR code into the spec shape ``(args, state) -> (ret, state)``.

    Each invocation builds a fresh interpreter (fresh object memory) over
    ``program``, registers the ``trusted`` specs as trusted functions,
    installs the abstract state, and runs ``fn_name``.

    ``setup(interp, args) -> mir_args`` converts high-level sample
    arguments into runtime values — e.g. allocating a struct into object
    memory and passing its PathPtr, which is how self-pointer methods are
    co-simulated.  ``extract(interp, ret) -> ret`` post-processes the
    return value symmetrically (e.g. reading back through a pointer).
    """

    def run(args, state):
        interp = Interpreter(program, absstate=state)
        if fuel is not None:
            interp.fuel = fuel
        for spec in trusted:
            interp.register_trusted(spec.as_trusted_function())
        for owner, resolver in (rdata_resolvers or {}).items():
            interp.register_rdata_resolver(owner, resolver)
        mir_args = setup(interp, args) if setup is not None else args
        result = interp.call(fn_name, mir_args)
        ret = extract(interp, result.value) if extract is not None else result.value
        return ret, interp.absstate

    run.__name__ = f"mir:{fn_name}"
    return run


@dataclass
class CheckReport:
    """Outcome of a checking run (co-simulation or any other engine).

    The hardened harness (:mod:`repro.verification.harness`) fills the
    provenance fields: which ``engine`` ultimately produced the verdict,
    the ``degradations`` taken to get there (e.g. symbolic falling back
    to co-simulation on a budget blow-up), what the run cost
    (``budget_spent``), how many times a sampled campaign was reseeded
    (``seed_retries``), and whether the engine ran to completion or was
    cut off mid-way (``completed``).  ``solver_stats`` carries the
    bounded solver's work counters for this run — candidate assignments
    examined, models enumerated, domain values pruned, and verdict-memo
    hits (see :func:`repro.symbolic.solver.solver_stats`) — so reports
    show not just *what* was decided but how much solving it took and
    how much the fast path saved.  The defaults make a bare
    co-simulation report look exactly as it always did.
    """

    name: str
    checked: int = 0
    skipped: int = 0
    failures: List[RefinementFailure] = field(default_factory=list)
    engine: str = "cosim"
    degradations: List[str] = field(default_factory=list)
    budget_spent: Dict = field(default_factory=dict)
    seed_retries: int = 0
    completed: bool = True
    solver_stats: Dict = field(default_factory=dict)

    @property
    def ok(self):
        return not self.failures

    def __str__(self):
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        base = (f"[{status}] {self.name}: {self.checked} checked, "
                f"{self.skipped} outside precondition "
                f"(engine={self.engine}")
        if self.degradations:
            base += f", degraded {len(self.degradations)}x"
        if self.seed_retries:
            base += f", reseeded {self.seed_retries}x"
        if not self.completed:
            base += ", INCOMPLETE"
        return base + ")"


class CoSimChecker:
    """Checks that an implementation refines a specification.

    ``impl`` and ``spec`` both have the shape ``(args, state) -> (ret,
    state)``; ``relation`` relates the two final states (defaults to
    equality — the common case when both run over the *same* abstract
    state type); ``ret_relation`` relates return values (defaults to
    ``==``).

    When the low and high sides use different state types (the flat vs
    tree page tables of Sec. 4.1) the sample supplies both initial states
    and ``relation`` is the paper's ``R``.
    """

    def __init__(self, name, impl, spec, relation=None, ret_relation=None,
                 stop_at_first=False):
        self.name = name
        self.impl = impl
        self.spec = spec
        self.relation = relation or RefinementRelation.equality()
        self.ret_relation = ret_relation or (lambda a, b: a == b)
        self.stop_at_first = stop_at_first

    def check(self, samples, budget=None) -> CheckReport:
        """Run every sample; collect divergences.

        A sample is either ``(args, state)`` — both sides start from the
        same state — or ``(args, low_state, high_state)`` for relations
        across different representations.  Samples rejected by the spec's
        precondition are skipped (outside the verified domain); a
        precondition failure *only on one side* is itself a divergence.

        ``budget`` (a :class:`repro.budget.Budget`) is spent one unit
        per sample; exhaustion raises
        :class:`~repro.errors.CheckBudgetExceeded` so the driver can
        degrade rather than hang on an endless sample stream.
        """
        report = CheckReport(self.name)
        for sample in samples:
            if budget is not None:
                budget.spend(1, what=f"cosim sample of {self.name}")
            if len(sample) == 2:
                args, low_state = sample
                high_state = low_state
            else:
                args, low_state, high_state = sample
            try:
                spec_ret, spec_state = self.spec(args, high_state)
            except SpecPreconditionError:
                report.skipped += 1
                continue
            impl_ret, impl_state = self.impl(args, low_state)
            failure = self._compare(args, low_state, high_state,
                                    impl_ret, impl_state,
                                    spec_ret, spec_state)
            report.checked += 1
            if failure is not None:
                report.failures.append(failure)
                if self.stop_at_first:
                    break
        return report

    def check_or_raise(self, samples) -> CheckReport:
        """Like :meth:`check` but raises the first divergence."""
        report = self.check(samples)
        if not report.ok:
            raise report.failures[0]
        return report

    def _compare(self, args, low_state, high_state,
                 impl_ret, impl_state, spec_ret, spec_state):
        if not self.ret_relation(impl_ret, spec_ret):
            return RefinementFailure(
                f"{self.name}: return values diverge on args={args!r}: "
                f"code returned {impl_ret!r}, spec returned {spec_ret!r}",
                counterexample={
                    "args": args,
                    "low_state": low_state,
                    "high_state": high_state,
                    "impl_ret": impl_ret,
                    "spec_ret": spec_ret,
                })
        if not self.relation(impl_state, spec_state):
            return RefinementFailure(
                f"{self.name}: final states unrelated under "
                f"{self.relation.name} on args={args!r}",
                counterexample={
                    "args": args,
                    "low_state": low_state,
                    "high_state": high_state,
                    "impl_state": impl_state,
                    "spec_state": spec_state,
                })
        return None
