"""The Sec. 3.4 case-3 simulation: RData specs vs concrete-pointer code."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EncapsulationViolation, SpecPreconditionError
from repro.hyperenclave import pte
from repro.hyperenclave.constants import TINY
from repro.mir.value import RDataPtr, mk_u64
from repro.verification.rdata_sim import (
    extend_with_registry, high_specs, run_simulation,
)

PAGE = TINY.page_size
LEAF = pte.leaf_flags()


class TestHighSpecs:
    def test_as_new_returns_opaque_handle(self, model):
        specs = high_specs(model)
        state = extend_with_registry(model.initial_absstate())
        handle, state = specs["as_new"]((), state)
        assert isinstance(handle, RDataPtr)
        assert handle.owner_layer == "AddrSpace"
        assert state.get("addrspaces").get(0) is not None

    def test_methods_only_accept_live_handles(self, model):
        specs = high_specs(model)
        state = extend_with_registry(model.initial_absstate())
        with pytest.raises(SpecPreconditionError, match="handle"):
            specs["as_root"]((mk_u64(5),), state)
        dangling = RDataPtr("AddrSpace", "as", (7,))
        with pytest.raises(SpecPreconditionError, match="dangling"):
            specs["as_root"]((dangling,), state)

    def test_handle_unusable_as_memory(self, model):
        """Clients cannot dereference the handle — only pass it back."""
        from repro.mir.ast import Copy, Use, place
        from repro.mir.builder import ProgramBuilder
        from repro.mir.interp import Interpreter
        from repro.mir.types import U64
        pb = ProgramBuilder()
        fb = pb.function("client", ["h"], U64, layer="Hypercalls")
        fb.assign("_0", Use(Copy(place("h").deref())))
        fb.ret()
        fb.finish()
        specs = high_specs(model)
        state = extend_with_registry(model.initial_absstate())
        handle, _state = specs["as_new"]((), state)
        with pytest.raises(EncapsulationViolation):
            Interpreter(pb.build()).call("client", [handle])


class TestSimulation:
    def test_scripted_workload_simulates(self, model):
        script = [
            ("new", "a"),
            ("map", "a", 3 * PAGE, 5 * PAGE, LEAF),
            ("query", "a", 3 * PAGE),
            ("new", "b"),
            ("map", "b", 3 * PAGE, 9 * PAGE, LEAF),  # same va, own space
            ("query", "a", 3 * PAGE),
            ("query", "b", 3 * PAGE),
            ("unmap", "a", 3 * PAGE),
            ("query", "a", 3 * PAGE),
            ("query", "b", 3 * PAGE),
        ]
        run = run_simulation(model, script)
        assert run.ok, run.failures
        assert run.handles == 2
        assert run.steps == len(script)

    @settings(max_examples=20, deadline=None)
    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("map"), st.sampled_from(["a", "b"]),
                      st.integers(0, 15), st.integers(0, 15)),
            st.tuples(st.just("unmap"), st.sampled_from(["a", "b"]),
                      st.integers(0, 15)),
            st.tuples(st.just("query"), st.sampled_from(["a", "b"]),
                      st.integers(0, 15))),
        max_size=12))
    def test_random_workloads_simulate(self, model, ops):
        script = [("new", "a"), ("new", "b")]
        for op in ops:
            if op[0] == "map":
                script.append(("map", op[1], op[2] * PAGE,
                               op[3] * PAGE, LEAF))
            elif op[0] == "unmap":
                script.append(("unmap", op[1], op[2] * PAGE))
            else:
                script.append(("query", op[1], op[2] * PAGE))
        run = run_simulation(model, script)
        assert run.ok, run.failures

    def test_simulation_catches_a_broken_low_side(self, model):
        """Corrupt the concrete struct behind 'a' and the relation must
        notice on the next step."""
        import copy
        from repro.verification import rdata_sim
        script = [("new", "a"), ("map", "a", 0, PAGE, LEAF)]
        # Run a custom lockstep where the low side's as_map silently
        # targets a different root: swap in a broken MIR function.
        broken = copy.copy(model)
        broken_program = copy.copy(model.program)
        broken_program.functions = dict(model.program.functions)
        from repro.mir.builder import ProgramBuilder
        from repro.mir.types import UNIT
        pb = ProgramBuilder()
        fb = pb.function("as_map", ["self_", "va", "pa", "flags"], UNIT,
                         layer="AddrSpace")
        fb.ret()  # drops the mapping on the floor
        broken_program.functions["as_map"] = fb.finish()
        broken.program = broken_program
        run = rdata_sim.run_simulation(broken, script)
        assert not run.ok
