"""The fault-injection campaign, rendered as an artifact.

Three sweeps make up the robustness table:

1. the crash-step campaign — every fault site × every step index of
   every hypercall on the transactional :class:`RustMonitor` (expected
   all-green) *and* on the deliberately broken
   :class:`NonTransactionalMonitor` (expected failures, which is what
   keeps the green run from being vacuous),
2. the untrusted-memory bit-flip campaign, and
3. the crash-step noninterference campaign — the same faults injected
   symmetrically into the paper's 41-vs-42 two-world construction.
"""

import time

from repro.faults import (
    bitflip_campaign,
    crash_ni_campaign,
    crash_step_campaign,
    default_workload,
    default_world_factory,
)
from repro.hyperenclave.buggy import NonTransactionalMonitor
from repro.hyperenclave.constants import TINY

PAGE = TINY.page_size


def buggy_world_factory():
    def world():
        monitor = NonTransactionalMonitor(TINY)
        primary_os = monitor.primary_os
        ctx = {
            "page": PAGE,
            "mbuf_pa": TINY.frame_base(primary_os.reserve_data_frame()),
            "src_pa": TINY.frame_base(primary_os.reserve_data_frame()),
            "elrange_base": 16 * PAGE,
        }
        primary_os.gpa_write_word(ctx["src_pa"], 0xDEAD)
        return monitor, ctx

    return world


def test_bench_fault_campaign(emit):
    factory = default_world_factory()
    calls = default_workload()

    started = time.perf_counter()
    crash = crash_step_campaign(factory, calls, seed=0)
    crash_secs = time.perf_counter() - started

    started = time.perf_counter()
    buggy = crash_step_campaign(buggy_world_factory(), calls, seed=0)
    buggy_secs = time.perf_counter() - started

    started = time.perf_counter()
    flips = bitflip_campaign(factory, calls[:5], flips=64, seed=0)
    flip_secs = time.perf_counter() - started

    started = time.perf_counter()
    ni = crash_ni_campaign(seed=0)
    ni_secs = time.perf_counter() - started

    sections = [
        crash.render(title="Crash-step campaign — RustMonitor "
                           "(transactional)"),
        f"elapsed: {crash_secs:.2f}s",
        "",
        f"NonTransactionalMonitor under the identical campaign: "
        f"{len(buggy.failures())} of {len(buggy.runs)} faulted runs "
        f"violate rollback or invariants "
        f"({buggy_secs:.2f}s) — the campaign is not vacuous.",
        "",
        flips.render(title="Untrusted-memory bit-flip campaign"),
        f"elapsed: {flip_secs:.2f}s",
        "",
        ni.render(title="Crash-step noninterference campaign "
                        "(41-vs-42 two worlds)"),
        f"elapsed: {ni_secs:.2f}s",
    ]
    emit("fault_campaign", "\n".join(sections))

    assert crash.ok, crash.render()
    assert crash.faults_injected == len(crash.runs)
    assert crash.rollbacks_verified == crash.faults_injected
    assert not buggy.ok
    assert flips.ok
    assert ni.ok, ni.render()
