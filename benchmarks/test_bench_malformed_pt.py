"""Sec. 4.1 bug study — "Malformed Page Tables in the Wild".

The shallow-copy enclave-PT initialisation must be *unprovable*: the
abstraction function α refuses to produce a tree view (so the refinement
relation R cannot be established), and the residency invariant flags the
guest-resident table frames.  The benchmark times the α attempt on both
the malformed and the well-formed table — the cost of the refinement
check that would have caught the real bug.
"""

import pytest

from repro.hyperenclave.buggy import ShallowCopyMonitor
from repro.hyperenclave.constants import TINY
from repro.reporting import render_table
from repro.security import check_pt_residency
from repro.spec import AbstractionFailure, abstract_table, relation_r, tree_empty
from repro.spec.relation import flat_state_of_page_table

from benchmarks.conftest import build_world

PAGE = TINY.page_size


def build_malformed():
    monitor = ShallowCopyMonitor(TINY)
    primary_os = monitor.primary_os
    app = primary_os.spawn_app(1)
    primary_os.app_map_data(app, 16 * PAGE)
    mbuf = TINY.frame_base(primary_os.reserve_data_frame())
    eid = monitor.hc_create_from_app(app, 16 * PAGE, 2 * PAGE, 4 * PAGE,
                                     mbuf, PAGE)
    return monitor, monitor.enclaves[eid]


def flat_of(monitor, table):
    layout = monitor.layout
    return flat_state_of_page_table(
        table, layout.pt_pool_base, layout.epc_base - layout.pt_pool_base)


def test_bench_malformed_page_tables(benchmark, emit):
    bad_monitor, bad_enclave = build_malformed()
    good_monitor, _app, good_eid = build_world()
    good_enclave = good_monitor.enclaves[good_eid]

    bad_flat = flat_of(bad_monitor, bad_enclave.gpt)
    good_flat = flat_of(good_monitor, good_enclave.gpt)

    def refinement_attempt():
        refused = False
        try:
            abstract_table(bad_flat, bad_enclave.gpt.root_frame)
        except AbstractionFailure:
            refused = True
        good_tree = abstract_table(good_flat,
                                   good_enclave.gpt.root_frame)
        return refused, relation_r(good_tree, good_flat,
                                   good_enclave.gpt.root_frame)

    refused, good_related = benchmark(refinement_attempt)
    assert refused, "the malformed table must have no tree abstraction"
    assert good_related

    residency = check_pt_residency(bad_monitor)
    rows = [
        ["shallow-copy init", "α(flat)", "REFUSED (no tree view)"],
        ["shallow-copy init", "R provable", "NO — as in the paper"],
        ["shallow-copy init", "pt-residency invariant",
         f"{len(residency)} violations"],
        ["from-scratch init", "α(flat)", "succeeds"],
        ["from-scratch init", "R provable", "YES"],
        ["from-scratch init", "pt-residency invariant",
         f"{len(check_pt_residency(good_monitor))} violations"],
    ]
    emit("malformed_page_tables",
         render_table(["Design", "Check", "Outcome"], rows,
                      title="Sec. 4.1 — malformed page tables in the wild"))
    assert residency
    assert not check_pt_residency(good_monitor)
    assert not relation_r(tree_empty(TINY), bad_flat,
                          bad_enclave.gpt.root_frame)
