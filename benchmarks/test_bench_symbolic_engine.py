"""The checking-engine headline: exhaustively verifying the pure corpus.

The paper buys its assurance with 3 person-years of Coq; the repro band
allows only "informal symbolic checking" — this bench measures what that
buys and how fast: all 26 pure functions, every path explored, every
assertion discharged, exhaustive bounded equivalence against the
executable model.
"""

from repro.reporting import render_table
from repro.verification import (
    default_domains, pure_function_names, verify_pure_function,
)
from repro.symbolic import SymExecutor, SymVar, path_coverage_inputs


def test_bench_symbolic_pure_corpus(benchmark, model, emit):
    names = pure_function_names(model.config, model.layout)

    def verify_all_pure():
        verdicts = [verify_pure_function(model, name) for name in names]
        return verdicts

    verdicts = benchmark(verify_all_pure)
    assert all(v.ok for v in verdicts)
    total_cells = sum(v.checked for v in verdicts)

    rows = [[v.name, v.layer, v.checked] for v in verdicts]
    rows.append(["TOTAL", "", total_cells])
    emit("symbolic_pure_corpus",
         render_table(["Function", "Layer", "Cells checked"], rows,
                      title="Symbolic engine — exhaustive bounded "
                            "verification of the pure corpus"))
    assert total_cells > 2000


def test_bench_path_enumeration(benchmark, model):
    """Raw path-exploration speed on the branchiest pure function."""
    domains = default_domains("elrange_contains", model.config)

    def explore():
        executor = SymExecutor(model.program, domains=domains)
        paths = executor.run(
            "elrange_contains",
            (SymVar("base"), SymVar("size"), SymVar("va")))
        return len(paths)

    path_count = benchmark(explore)
    assert path_count >= 2


def test_bench_path_coverage_witnesses(benchmark, model):
    """Witness generation: one concrete input per feasible path."""
    domains = default_domains("entry_index", model.config)
    witnesses = benchmark(path_coverage_inputs, model.program,
                          "entry_index", domains)
    # One witness per live level arm (the out-of-range arm is infeasible).
    assert len(witnesses) == model.config.levels
