"""Functional specifications.

"Each C function will be proven against a specification in Coq, which is
a functional specification that defines its behavior in terms of effects
on the abstract state and the return value. These specifications usually
have a type signature similar to ``Args * AbsState -> Ret * AbsState``."
(Sec. 3.4)

A :class:`Spec` wraps exactly that shape, plus an optional precondition
and the name of the layer that exports it.  Calling a spec outside its
precondition raises, mirroring how a Coq specification is simply
undefined there.
"""

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SpecPreconditionError


@dataclass
class Spec:
    """A functional specification of one primitive.

    ``fn(args, state) -> (ret, state)`` where ``args`` is a tuple.  The
    optional ``pre(args, state) -> bool`` guards the domain.  ``pure``
    marks specs that provably never change the state (the co-simulation
    checker verifies this claim on every call).
    """

    name: str
    fn: Callable
    layer: str = "trusted"
    pre: Optional[Callable] = None
    pure: bool = False
    doc: str = ""
    ptr_kind: Optional[str] = None  # "trusted"/"rdata" when returning pointers

    def __call__(self, args, state):
        if self.pre is not None and not self.pre(args, state):
            raise SpecPreconditionError(
                f"spec {self.name} called outside its precondition with "
                f"args={args!r}"
            )
        ret, new_state = self.fn(args, state)
        if self.pure and new_state != state:
            raise SpecPreconditionError(
                f"spec {self.name} is declared pure but changed the state"
            )
        return ret, new_state

    def as_trusted_function(self):
        """Adapt for the MIR interpreter's trusted-function registry."""
        from repro.mir.interp import TrustedFunction
        return TrustedFunction(name=self.name, spec=self.__call__,
                               layer=self.layer, doc=self.doc)


def pure_spec(name, fn, layer="trusted", pre=None, doc=""):
    """A spec for a function with no state effects: ``fn(args) -> ret``."""
    def lifted(args, state):
        return fn(args), state
    wrapped_pre = None
    if pre is not None:
        def wrapped_pre(args, state):
            return pre(args)
    return Spec(name=name, fn=lifted, layer=layer, pre=wrapped_pre,
                pure=True, doc=doc)


def state_spec(name, fn, layer="trusted", pre=None, doc=""):
    """A spec in the full ``(args, state) -> (ret, state)`` shape."""
    return Spec(name=name, fn=fn, layer=layer, pre=pre, doc=doc)
