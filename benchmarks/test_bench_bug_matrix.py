"""The complete bug → checker matrix, over every buggy monitor variant.

Extends Figure 5 to the full negative-example set: thirteen planted
bugs, each detected by the checker the paper assigns to its class —
structural bugs by the §5.2 invariant families or the §4.1 refinement,
behavioural leaks by the §5 noninterference theorem, the
crash-consistency bug by the fault-injection campaign, and the two
concurrency bugs (missing locking discipline, missing TLB shootdown)
by the bounded-preemption interleaving explorer.  The benchmark times
the whole matrix: total detection cost for all thirteen.
"""

from repro.hyperenclave import buggy
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import HOST_ID
from repro.reporting import render_table
from repro.security import (
    DataOracle, Hypercall, MemLoad, SystemState, check_all_invariants,
)
from repro.security.noninterference import (
    TwoWorlds, check_theorem_noninterference,
)
from repro.spec import AbstractionFailure, abstract_table
from repro.spec.relation import flat_state_of_page_table

from benchmarks.conftest import build_world

PAGE = TINY.page_size


def detect_invariant_bug(monitor_cls, setup):
    monitor = setup(monitor_cls)
    report = check_all_invariants(monitor)
    return (not report.ok,
            "invariants: " + "/".join(report.violated_families()))


def setup_single(monitor_cls):
    return build_world(monitor_cls)[0]


def setup_two_enclaves(monitor_cls):
    monitor = monitor_cls(TINY)
    primary_os = monitor.primary_os
    src = TINY.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src, 0x9)
    mbuf_a = TINY.frame_base(primary_os.reserve_data_frame())
    mbuf_b = TINY.frame_base(primary_os.reserve_data_frame())
    eid_a = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, mbuf_a, PAGE)
    eid_b = monitor.hc_create(32 * PAGE, PAGE, 5 * PAGE, mbuf_b, PAGE)
    monitor.hc_add_page(eid_a, 16 * PAGE, src)
    monitor.hc_add_page(eid_b, 32 * PAGE, src)
    return monitor


def setup_outside(monitor_cls):
    monitor = monitor_cls(TINY)
    mbuf = TINY.frame_base(monitor.primary_os.reserve_data_frame())
    eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, mbuf, PAGE)
    monitor.hc_add_page(eid, 40 * PAGE, 0)
    return monitor


def setup_mbuf_overlap(monitor_cls):
    monitor = monitor_cls(TINY)
    mbuf = TINY.frame_base(monitor.primary_os.reserve_data_frame())
    monitor.hc_create(16 * PAGE, 2 * PAGE, 17 * PAGE, mbuf, PAGE)
    return monitor


def setup_secure_mbuf(monitor_cls):
    monitor = monitor_cls(TINY)
    epc_pa = TINY.frame_base(monitor.layout.epc_base + 3)
    monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, epc_pa, PAGE)
    return monitor


def detect_shallow_copy(monitor_cls, _setup=None):
    monitor = monitor_cls(TINY)
    primary_os = monitor.primary_os
    app = primary_os.spawn_app(1)
    primary_os.app_map_data(app, 16 * PAGE)
    mbuf = TINY.frame_base(primary_os.reserve_data_frame())
    eid = monitor.hc_create_from_app(app, 16 * PAGE, 2 * PAGE, 4 * PAGE,
                                     mbuf, PAGE)
    enclave = monitor.enclaves[eid]
    flat = flat_state_of_page_table(
        enclave.gpt, monitor.layout.pt_pool_base,
        monitor.layout.epc_base - monitor.layout.pt_pool_base)
    try:
        abstract_table(flat, enclave.gpt.root_frame)
        refused = False
    except AbstractionFailure:
        refused = True
    residency = not check_all_invariants(monitor).ok
    return refused and residency, "refinement: α refuses + pt-residency"


def detect_ni_bug(monitor_cls, trace_builder):
    def world(secret):
        monitor, app, eid = build_world(monitor_cls, secret=secret,
                                        pages=2)
        return SystemState(monitor, DataOracle.seeded(5)), app, eid
    state_a, app, eid = world(41)
    state_b, _, _ = world(42)
    worlds = TwoWorlds(state_a, state_b)
    violations = check_theorem_noninterference(
        worlds, trace_builder(app, eid),
        observers=[HOST_ID, eid + 1] if monitor_cls is buggy.NoScrubMonitor
        else [HOST_ID])
    component = violations[-1].components if violations else ()
    return bool(violations), f"noninterference: {component}"


def leak_trace(app, eid):
    return [
        Hypercall(HOST_ID, "enter", (eid,)),
        (MemLoad(eid, 16 * PAGE, "rax"), MemLoad(eid, 16 * PAGE, "rax")),
        (Hypercall(eid, "exit", (eid,)), Hypercall(eid, "exit", (eid,))),
        MemLoad(HOST_ID, 16 * PAGE, "rbx", via_app=app.app_id),
    ]


def scrub_trace(app, eid):
    return [
        Hypercall(HOST_ID, "destroy", (eid,)),
        Hypercall(HOST_ID, "create",
                  (48 * PAGE, 2 * PAGE, 8 * PAGE, 2 * PAGE, PAGE)),
        Hypercall(HOST_ID, "add_page", (eid + 1, 48 * PAGE, 0)),
        Hypercall(HOST_ID, "init", (eid + 1,)),
        Hypercall(HOST_ID, "aug_page", (eid + 1, 49 * PAGE)),
    ]


def detect_no_rollback(monitor_cls, _arg=None):
    """A tiny crash-step sweep: partial mutations survive the abort."""
    from repro.faults import crash_step_campaign, default_workload

    def world():
        monitor = monitor_cls(TINY)
        primary_os = monitor.primary_os
        ctx = {
            "page": PAGE,
            "mbuf_pa": TINY.frame_base(primary_os.reserve_data_frame()),
            "src_pa": TINY.frame_base(primary_os.reserve_data_frame()),
            "elrange_base": 16 * PAGE,
        }
        primary_os.gpa_write_word(ctx["src_pa"], 0xDEAD)
        return monitor, ctx

    calls = default_workload()[:2]   # create + add_page is enough
    report = crash_step_campaign(world, calls, sites=(), seed=0)
    return (not report.ok,
            f"fault campaign: {len(report.failures())} un-rolled-back "
            f"aborts")


def detect_concurrency_bug(monitor_cls, _arg=None):
    """Bounded-preemption exploration flags the planted race."""
    from repro.faults import interleaving_campaign

    result = interleaving_campaign(monitor_cls, check_ni=False)
    kinds = "/".join(sorted(result.by_kind()))
    return not result.ok, f"interleaving explorer: {kinds}"


MATRIX = [
    (buggy.ShallowCopyMonitor, detect_shallow_copy, None),
    (buggy.AliasingMonitor, detect_invariant_bug, setup_two_enclaves),
    (buggy.OutsideElrangeMonitor, detect_invariant_bug, setup_outside),
    (buggy.NoEpcmRecordMonitor, detect_invariant_bug, setup_single),
    (buggy.HugePageMonitor, detect_invariant_bug, setup_single),
    (buggy.MbufOverlapMonitor, detect_invariant_bug,
     setup_mbuf_overlap),
    (buggy.SecureMbufMonitor, detect_invariant_bug, setup_secure_mbuf),
    (buggy.LeakyExitMonitor, detect_ni_bug, leak_trace),
    (buggy.NoTlbFlushMonitor, detect_ni_bug, leak_trace),
    (buggy.NoScrubMonitor, detect_ni_bug, scrub_trace),
    (buggy.NonTransactionalMonitor, detect_no_rollback, None),
    (buggy.MissingLockMonitor, detect_concurrency_bug, None),
    (buggy.NoShootdownMonitor, detect_concurrency_bug, None),
]


def run_matrix():
    results = []
    for monitor_cls, detector, arg in MATRIX:
        detected, how = detector(monitor_cls, arg)
        results.append((monitor_cls.BUG, detected, how))
    return results


def test_bench_bug_matrix(benchmark, emit):
    results = benchmark(run_matrix)
    rows = [[bug, "DETECTED" if detected else "MISSED", how]
            for bug, detected, how in results]
    emit("bug_matrix",
         render_table(["Planted bug", "Verdict", "Detected by"], rows,
                      title="The full bug → checker matrix "
                            "(all 13 buggy variants)"))
    assert len(results) == len(buggy.ALL_BUGGY_MONITORS) == 13
    assert all(detected for _bug, detected, _how in results)
