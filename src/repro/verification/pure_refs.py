"""Python references for the pure corpus functions.

Each reference is the *model* the MIR transcription must agree with —
mostly thin wrappers over :mod:`repro.hyperenclave.pte` and
:class:`~repro.hyperenclave.constants.MachineConfig`, i.e. the very
functions the executable HyperEnclave model runs on.  Agreement therefore
connects the verified MIR corpus to the system the security proofs run
against, closing the loop the paper closes by reusing the verified
page-walk in the Sec. 5.1 transition system.

References take/return MIR Values so they can be compared bit-for-bit
with execution results.
"""

from repro.hyperenclave import pte
from repro.hyperenclave.constants import MemoryLayout
from repro.mir.value import mk_bool, mk_u64
from repro.symbolic.solver import Domains

U64_MAX = (1 << 64) - 1


def _ints(args):
    return [a.value if hasattr(a, "value") else a for a in args]


def pure_reference(name, config, layout=None):
    """The Python reference callable for pure corpus function ``name``."""
    layout = layout or MemoryLayout.default_for(config)
    table = _build_table(config, layout)
    return table[name]


def pure_function_names(config, layout=None):
    """Sorted names of all pure corpus functions."""
    layout = layout or MemoryLayout.default_for(config)
    return sorted(_build_table(config, layout))


def _build_table(config, layout):
    pool_lo = config.frame_base(layout.pt_pool_base)
    pool_hi = config.frame_base(layout.epc_base)
    epc_lo = config.frame_base(layout.epc_base)
    epc_hi = config.frame_base(config.phys_frames)

    def in_range(lo, hi, value):
        return lo <= value < hi

    return {
        # -- PteOps ------------------------------------------------------
        "pte_new": lambda a, f: mk_u64(pte.pte_new(a.value, f.value, config)),
        "pte_addr": lambda e: mk_u64(pte.pte_addr(e.value, config)),
        "pte_flags": lambda e: mk_u64(pte.pte_flags(e.value, config)),
        "pte_frame": lambda e: mk_u64(pte.pte_frame(e.value, config)),
        "pte_is_present": lambda e: mk_bool(
            config.arch.is_present(e.value)),
        "pte_is_writable": lambda e: mk_bool(
            config.arch.is_writable(e.value)),
        "pte_is_user": lambda e: mk_bool(config.arch.is_user(e.value)),
        "pte_is_huge": lambda e: mk_bool(
            config.arch.is_block_encoded(e.value)),
        "pte_is_unused": lambda e: mk_bool(pte.pte_is_unused(e.value)),
        "pte_table_flags": lambda: mk_u64(config.arch.table_flags()),
        "pte_set_addr": lambda e, a: mk_u64(
            pte.pte_set_addr(e.value, a.value, config)),
        "pte_set_flags": lambda e, f: mk_u64(
            pte.pte_set_flags(e.value, f.value, config)),
        # -- PtLevel -----------------------------------------------------
        "entry_index": lambda va, lvl: mk_u64(
            config.entry_index(va.value, lvl.value)),
        "level_span": lambda lvl: mk_u64(config.level_span(lvl.value)),
        "align_page_down": lambda a: mk_u64(config.page_base(a.value)),
        "align_page_up": lambda a: mk_u64(config.page_base(
            (a.value + config.page_size - 1) & U64_MAX)),
        "page_offset_of": lambda a: mk_u64(config.page_offset(a.value)),
        "is_page_aligned": lambda a: mk_bool(
            config.page_offset(a.value) == 0),
        "frame_base_of": lambda f: mk_u64(
            (f.value << config.page_bits) & U64_MAX),
        "frame_of_addr": lambda a: mk_u64(a.value >> config.page_bits),
        # -- range predicates ---------------------------------------------
        "elrange_contains": lambda b, s, va: mk_bool(
            va.value >= b.value
            and va.value < (b.value + s.value) & U64_MAX),
        "mbuf_contains": lambda b, s, va: mk_bool(
            va.value >= b.value
            and va.value < (b.value + s.value) & U64_MAX),
        "elrange_gpa_of": lambda g, e, va: mk_u64(
            g.value + ((va.value - e.value) & U64_MAX)),
        "ranges_overlap": lambda ab, asz, bb, bsz: mk_bool(
            ab.value < (bb.value + bsz.value) & U64_MAX
            and bb.value < (ab.value + asz.value) & U64_MAX),
        # -- Isolation ------------------------------------------------------
        "pa_in_pool": lambda pa: mk_bool(in_range(pool_lo, pool_hi,
                                                  pa.value)),
        "pa_in_epc": lambda pa: mk_bool(in_range(epc_lo, epc_hi, pa.value)),
    }


# ---------------------------------------------------------------------------
# Bounded domains for symbolic checking
# ---------------------------------------------------------------------------


def _interesting_addresses(config):
    """Boundary-heavy address sample: page edges, level-span edges, the
    top of the space, and a few interior points."""
    values = {0, 1, 7, 8}
    for level in range(1, config.levels + 1):
        span = config.level_span(level)
        values.update({span - 1, span, span + 8, 2 * span})
    values.update({config.va_space - 1, config.va_space,
                   config.va_space + config.page_size})
    values.update({config.page_size - 1, config.page_size,
                   config.page_size + 8, 3 * config.page_size})
    values.update({U64_MAX, U64_MAX - config.page_size + 1})
    return tuple(sorted(v for v in values if 0 <= v <= U64_MAX))


def _interesting_entries(config):
    """Entries covering every flag combination at a few addresses.

    Built from the arch spec's own constructors plus raw low-bit
    patterns, so the domain hits the discriminating bits of both the
    x86 layout (P/W/U/H) and the VMSAv8 one (VALID/TYPE/AP/AF)."""
    spec = config.arch
    addresses = (0, config.page_size, 5 * config.page_size,
                 config.addr_mask())
    entries = {0}
    for addr in addresses:
        for flags in range(16):  # raw low-bit patterns
            huge = 0x80 if flags & 8 else 0
            entries.add(pte.pte_new(addr, (flags & 7) | huge, config))
        for writable in (False, True):
            for user in (False, True):
                for huge_flag in (False, True):
                    entries.add(pte.pte_new(
                        addr, spec.leaf_flags(writable=writable, user=user,
                                              huge=huge_flag), config))
        entries.add(pte.pte_new(addr, spec.table_flags(), config))
    entries.add(U64_MAX)
    return tuple(sorted(entries))


def default_domains(name, config):
    """The bounded enumeration domain for pure function ``name``."""
    addresses = _interesting_addresses(config)
    entries = _interesting_entries(config)
    levels = tuple(range(1, config.levels + 1))
    flags = tuple(range(8)) + (0x87, 0x8000000000000003)
    sizes = tuple(config.page_size * n for n in (0, 1, 2, 4))
    frames = tuple(range(0, config.phys_frames,
                         max(config.phys_frames // 8, 1)))
    table = {
        "pte_new": {"addr": addresses, "flags": flags},
        "pte_addr": {"e": entries},
        "pte_flags": {"e": entries},
        "pte_frame": {"e": entries},
        "pte_is_present": {"e": entries},
        "pte_is_writable": {"e": entries},
        "pte_is_user": {"e": entries},
        "pte_is_huge": {"e": entries},
        "pte_is_unused": {"e": entries},
        "pte_table_flags": {},
        "pte_set_addr": {"e": entries[:12], "addr": addresses[:12]},
        "pte_set_flags": {"e": entries[:12], "flags": flags},
        "entry_index": {"va": addresses, "level": levels},
        "level_span": {"level": levels},
        "align_page_down": {"addr": addresses},
        "align_page_up": {"addr": addresses},
        "page_offset_of": {"addr": addresses},
        "is_page_aligned": {"addr": addresses},
        "frame_base_of": {"frame": frames},
        "frame_of_addr": {"addr": addresses},
        "elrange_contains": {"base": addresses[:10], "size": sizes,
                             "va": addresses[:10]},
        "mbuf_contains": {"base": addresses[:10], "size": sizes,
                          "va": addresses[:10]},
        "elrange_gpa_of": {"gpa_base": addresses[:8],
                           "elrange_base": addresses[:8],
                           "va": addresses[:8]},
        "ranges_overlap": {"a_base": addresses[:6], "a_size": sizes,
                           "b_base": addresses[:6], "b_size": sizes},
        "pa_in_pool": {"pa": addresses},
        "pa_in_epc": {"pa": addresses},
    }
    return Domains(table[name])
