"""Architecture specification for page-table entry semantics.

The paper verifies one concrete page-table shape (x86-64 EPT/GPT); the
ROADMAP's arch-diversity item asks for the opposite discipline: every
x86 assumption becomes an explicit, testable parameter.  An
:class:`ArchSpec` captures exactly the facts the paging layers need:

* which bits make an entry *present*, *writable*, *user-accessible*,
  *no-execute*, *accessed*;
* how a *block* (huge) descriptor is distinguished from a *table*
  descriptor, and at which levels blocks are architecturally legal;
* the hierarchical permission rule (how intermediate entries restrict
  leaves below them);
* the output-address width (bits ``page_bits..output_bits-1`` carry the
  physical frame).

Every predicate is data, not code: a :class:`BitTest` ``(mask, want)``
meaning ``(entry & mask) == want``.  That single shape covers both x86
(positive flag bits) and VMSAv8-64 (where AP[2] *set* means read-only,
i.e. the write predicate wants the bit *clear*), and it transcribes
one-for-one into the mirlight corpus as ``_1 = e & MASK; _0 = (_1 ==
WANT)`` — so the symbolic engine can check each architecture's
transcription exhaustively, the same way it checks the x86 one.

Two specs ship:

* :data:`X86_SPEC` — the paper's x86-64 EPT shape (PRESENT/WRITE/USER,
  HUGE at bit 7, NX at bit 63, 52-bit output addresses).
* :data:`VMSAV8_SPEC` — VMSAv8-64 AArch64 stage-1, 4 KiB granule:
  VALID at bit 0, the table/block TYPE bit at bit 1 (clear = block),
  AP[2:1] at bits 7:6 (AP[2] set = read-only, AP[1] set = EL0
  accessible), the access flag AF at bit 10 (clear = access fault),
  UXN at bit 54 instead of NX, APTable[1:0] at bits 62:61 restricting
  write/EL0 access hierarchically, 48-bit output addresses.

Both support 2 MiB and 1 GiB blocks (levels 2 and 3 on the 4 KiB/4-level
geometry); neither supports root-level blocks — which is how the
``map_huge`` level-range bug surfaced.
"""

from dataclasses import dataclass
from typing import Tuple

_WORD_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class BitTest:
    """A data-encoded predicate: holds iff ``(entry & mask) == want``.

    ``BitTest(0, 0)`` is the trivially-true test (used where an
    architecture imposes no constraint, e.g. x86 has no access-flag
    fault).  The mirlight transcription of every flag predicate is the
    uniform two-instruction sequence ``and``/``eq`` over these fields.
    """

    mask: int
    want: int

    def __call__(self, entry):
        return (entry & self.mask) == self.want


@dataclass(frozen=True)
class FlagCtor:
    """Constructor rule for one boolean flag argument of
    :meth:`ArchSpec.leaf_flags`: OR in ``on_true`` when the argument is
    true, ``on_false`` when false.  x86 ``writable`` is ``(W, 0)``;
    VMSAv8 ``writable`` is ``(0, AP2)`` — read-only is the *set* state."""

    on_true: int
    on_false: int

    def bits(self, value):
        return self.on_true if value else self.on_false


@dataclass(frozen=True)
class ArchSpec:
    """Everything the paging stack needs to know about one architecture's
    PTE format.  Pure data; all methods are thin combinators over it."""

    name: str
    #: Physical output-address width: address bits occupy
    #: ``page_bits..output_bits-1`` of an entry.
    output_bits: int
    #: Levels at which a block (huge) mapping is architecturally legal.
    #: Level 1 entries are always page leaves; the root never maps.
    block_levels: Tuple[int, ...]

    # -- predicates (entry -> bool), all (mask, want) encoded --------------
    present: BitTest          #: entry participates in translation
    leaf_valid: BitTest       #: extra validity required of a level-1 entry
    block: BitTest            #: present entry at level>1 maps directly
    writable: BitTest         #: leaf permits writes
    user: BitTest             #: leaf permits user/EL0 access
    noexec: BitTest           #: leaf forbids instruction fetch
    access_ok: BitTest        #: leaf access-flag check (VMSAv8 AF)
    table_write: BitTest      #: intermediate entry permits writes below
    table_user: BitTest       #: intermediate entry permits user below

    # -- constructors ------------------------------------------------------
    leaf_base: int            #: bits always set in a leaf entry
    ctor_writable: FlagCtor
    ctor_user: FlagCtor
    ctor_noexec: FlagCtor
    table_flags_value: int    #: flag bits of an intermediate entry
    block_set: int            #: bits OR-ed in to turn a leaf into a block
    block_clear: int          #: bits cleared to turn a leaf into a block

    #: ``(bit, name)`` pairs for :func:`repro.hyperenclave.pte.describe`.
    flag_names: Tuple[Tuple[int, str], ...]

    # -- address field -----------------------------------------------------

    def addr_mask(self, page_bits):
        """Mask selecting the physical-frame bits of an entry (bits
        ``page_bits..output_bits-1``)."""
        return ((1 << self.output_bits) - 1) & ~((1 << page_bits) - 1)

    def flags_mask(self):
        """Union of every bit this spec may test or set — used to check
        a geometry's address field does not collide with flag bits."""
        mask = self.leaf_base | self.table_flags_value
        mask |= self.block_set | self.block_clear
        for test in (self.present, self.leaf_valid, self.block,
                     self.writable, self.user, self.noexec,
                     self.access_ok, self.table_write, self.table_user):
            mask |= test.mask
        for ctor in (self.ctor_writable, self.ctor_user, self.ctor_noexec):
            mask |= ctor.on_true | ctor.on_false
        return mask

    # -- predicates --------------------------------------------------------

    def is_present(self, entry):
        return self.present(entry)

    def is_leaf_valid(self, entry):
        """A present level-1 entry may still be a reserved encoding
        (VMSAv8: bits[1:0] == 0b01 at level 1 faults)."""
        return self.leaf_valid(entry)

    def is_block(self, entry, level):
        """Present entry at ``level`` maps a block instead of pointing at
        a table.  Level 1 entries are page leaves, never blocks."""
        return level > 1 and self.block(entry)

    def is_block_encoded(self, entry):
        """The raw block encoding, independent of level (the flag the
        mirlight ``pte_is_huge`` transcribes)."""
        return self.block(entry)

    def is_writable(self, entry):
        return self.writable(entry)

    def is_user(self, entry):
        return self.user(entry)

    def is_noexec(self, entry):
        return self.noexec(entry)

    def access_allowed(self, entry):
        """VMSAv8 faults on a clear access flag (AF); x86 never does."""
        return self.access_ok(entry)

    def table_allows_write(self, entry):
        """Hierarchical rule: may a write traverse this intermediate
        entry?  x86 ANDs the W bit across levels; VMSAv8 uses
        APTable[1] (set = writes forbidden below)."""
        return self.table_write(entry)

    def table_allows_user(self, entry):
        """Hierarchical rule for user/EL0 access: x86 ANDs the U bit;
        VMSAv8 uses APTable[0] (set = EL0 access forbidden below)."""
        return self.table_user(entry)

    # -- constructors ------------------------------------------------------

    def leaf_flags(self, writable=True, user=True, huge=False, nx=False):
        """Flag bits for a terminal (frame- or block-mapping) entry."""
        flags = self.leaf_base
        flags |= self.ctor_writable.bits(writable)
        flags |= self.ctor_user.bits(user)
        flags |= self.ctor_noexec.bits(nx)
        if huge:
            flags = self.to_block(flags)
        return flags & _WORD_MASK

    def table_flags(self):
        """Flag bits for an intermediate (next-table) entry."""
        return self.table_flags_value

    def to_block(self, flags):
        """Rewrite leaf flags into the block-descriptor encoding."""
        return ((flags | self.block_set) & ~self.block_clear) & _WORD_MASK


# ---------------------------------------------------------------------------
# x86-64 EPT/GPT shape (the paper's architecture)
# ---------------------------------------------------------------------------

_X86_P = 1 << 0
_X86_W = 1 << 1
_X86_U = 1 << 2
_X86_A = 1 << 5
_X86_D = 1 << 6
_X86_H = 1 << 7
_X86_NX = 1 << 63

X86_SPEC = ArchSpec(
    name="x86_64",
    output_bits=52,
    block_levels=(2, 3),          # 2 MiB and 1 GiB on the 4 KiB geometry
    present=BitTest(_X86_P, _X86_P),
    leaf_valid=BitTest(0, 0),     # any present level-1 entry is a page
    block=BitTest(_X86_H, _X86_H),
    writable=BitTest(_X86_W, _X86_W),
    user=BitTest(_X86_U, _X86_U),
    noexec=BitTest(_X86_NX, _X86_NX),
    access_ok=BitTest(0, 0),      # x86 sets A itself; absence never faults
    table_write=BitTest(_X86_W, _X86_W),
    table_user=BitTest(_X86_U, _X86_U),
    leaf_base=_X86_P,
    ctor_writable=FlagCtor(_X86_W, 0),
    ctor_user=FlagCtor(_X86_U, 0),
    ctor_noexec=FlagCtor(_X86_NX, 0),
    table_flags_value=_X86_P | _X86_W | _X86_U,
    block_set=_X86_H,
    block_clear=0,
    flag_names=((0, "P"), (1, "W"), (2, "U"), (5, "A"), (6, "D"),
                (7, "H"), (63, "NX")),
)


# ---------------------------------------------------------------------------
# VMSAv8-64 AArch64 stage-1, 4 KiB granule, 4 levels
# ---------------------------------------------------------------------------

_ARM_VALID = 1 << 0
_ARM_TYPE = 1 << 1      # set = table/page descriptor, clear = block
_ARM_AP1 = 1 << 6       # EL0 accessible
_ARM_AP2 = 1 << 7       # read-only (inverted write semantics)
_ARM_AF = 1 << 10       # access flag: clear => access fault
_ARM_UXN = 1 << 54      # unprivileged execute-never
_ARM_APT_USER = 1 << 61   # APTable[0]: EL0 access forbidden below
_ARM_APT_WRITE = 1 << 62  # APTable[1]: writes forbidden below

VMSAV8_SPEC = ArchSpec(
    name="vmsav8_64",
    output_bits=48,
    block_levels=(2, 3),          # 2 MiB and 1 GiB on the 4 KiB granule
    present=BitTest(_ARM_VALID, _ARM_VALID),
    # bits[1:0] == 0b01 at level 1 is a reserved encoding => fault
    leaf_valid=BitTest(_ARM_TYPE, _ARM_TYPE),
    block=BitTest(_ARM_TYPE, 0),
    writable=BitTest(_ARM_AP2, 0),        # AP[2] set means READ-ONLY
    user=BitTest(_ARM_AP1, _ARM_AP1),
    noexec=BitTest(_ARM_UXN, _ARM_UXN),
    access_ok=BitTest(_ARM_AF, _ARM_AF),  # AF clear faults the access
    table_write=BitTest(_ARM_APT_WRITE, 0),
    table_user=BitTest(_ARM_APT_USER, 0),
    leaf_base=_ARM_VALID | _ARM_TYPE | _ARM_AF,
    ctor_writable=FlagCtor(0, _ARM_AP2),  # read-only is the SET state
    ctor_user=FlagCtor(_ARM_AP1, 0),
    ctor_noexec=FlagCtor(_ARM_UXN, 0),
    table_flags_value=_ARM_VALID | _ARM_TYPE,  # APTable clear = permissive
    block_set=0,
    block_clear=_ARM_TYPE,
    flag_names=((0, "V"), (1, "T"), (6, "AP1"), (7, "AP2"), (10, "AF"),
                (54, "UXN"), (61, "APTu"), (62, "APTw")),
)

ALL_SPECS = (X86_SPEC, VMSAV8_SPEC)

SPECS_BY_NAME = {spec.name: spec for spec in ALL_SPECS}
