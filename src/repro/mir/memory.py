"""Object-view memory.

"We view the memory in a structured way, as collections of
non-overlapping objects, different from the flat-array-of-bytes ... view
in C."  (Sec. 3.2)

Memory maps each *base* (a global or a frame-pinned local) to a single
value tree.  Reads and writes take a :class:`~repro.mir.path.Path` and
project into / functionally update that tree.  Three consequences mirror
the paper's claims:

1. a pointer (path) is valid iff its base object exists and the
   projections stay in range — no "points to a valid region" side
   conditions,
2. types are carried by the values themselves — no "pointer type matches
   region type" side conditions, and
3. a write changes exactly the addressed location — distinct (non
   prefix-related) paths never interfere, which :func:`write` guarantees
   structurally rather than axiomatically.

Deallocation is a no-op (Sec. 3.2, "Memory Safety Implies Pointer
Validity"): ``drop_base`` exists so tests can model StorageDead, but the
default interpreter never calls it, exactly as the paper treats Rust
deallocation points.
"""

from repro.errors import MirRuntimeError, MirTypeError
from repro.mir.path import Path
from repro.mir.value import Aggregate, Value


class ObjectMemory:
    """A collection of non-overlapping objects addressed by paths."""

    def __init__(self):
        self._objects = {}
        self._write_count = 0

    # -- introspection ----------------------------------------------------

    @property
    def write_count(self):
        """Number of memory writes performed; the temporary-lifting
        ablation bench compares this across semantics variants."""
        return self._write_count

    def bases(self):
        """All live base objects (for dump/debug and the figure benches)."""
        return tuple(self._objects.keys())

    def has_base(self, base):
        return base in self._objects

    def snapshot(self):
        """A shallow copy sharing all (immutable) value trees.

        Cheap because values are immutable; used by the refinement checker
        to compare pre/post states.
        """
        copy = ObjectMemory()
        copy._objects = dict(self._objects)
        copy._write_count = self._write_count
        return copy

    def __eq__(self, other):
        if not isinstance(other, ObjectMemory):
            return NotImplemented
        return self._objects == other._objects

    def __len__(self):
        return len(self._objects)

    # -- allocation --------------------------------------------------------

    def allocate(self, base, value):
        """Install a fresh base object holding ``value``.

        Allocating over a live base is a bug in the client (objects are
        non-overlapping and bases are unique per frame), so it errors.
        """
        if base in self._objects:
            raise MirRuntimeError(f"base object {base} already allocated")
        if not isinstance(value, Value):
            raise MirTypeError(f"cannot store non-Value {value!r}")
        self._objects[base] = value
        self._write_count += 1

    def drop_base(self, base):
        """Remove a base object.  Never called by the default semantics —
        see module docstring."""
        self._objects.pop(base, None)

    # -- reads -------------------------------------------------------------

    def read(self, path):
        """Project the value at ``path`` out of its base object."""
        if not isinstance(path, Path):
            raise MirTypeError(f"memory read needs a Path, got {path!r}")
        try:
            value = self._objects[path.base]
        except KeyError:
            raise MirRuntimeError(f"read from unallocated object {path.base}")
        for proj in path.projections:
            value = value.expect_aggregate(f"projection {proj} on {path}")
            value = value.field(proj.index)
        return value

    # -- writes ------------------------------------------------------------

    def write(self, path, new_value):
        """Functionally update the value at ``path``.

        Rebuilds the spine of aggregates from the base down to the
        assigned location, so every value off the spine is shared
        unchanged — the structural form of the paper's "assignment ...
        only changing at the assigned location" axiom.
        """
        if not isinstance(new_value, Value):
            raise MirTypeError(f"cannot store non-Value {new_value!r}")
        try:
            root = self._objects[path.base]
        except KeyError:
            raise MirRuntimeError(f"write to unallocated object {path.base}")
        self._objects[path.base] = _update(root, path.projections, new_value, path)
        self._write_count += 1

    def write_or_allocate(self, path, new_value):
        """Write, allocating the base if this is its first use.

        Covers MIR's StorageLive-then-assign idiom for locals without
        requiring an explicit initial value.
        """
        if path.base not in self._objects and not path.projections:
            self.allocate(path.base, new_value)
            return
        self.write(path, new_value)


def _update(value, projections, new_value, full_path):
    if not projections:
        return new_value
    head, rest = projections[0], projections[1:]
    agg = value.expect_aggregate(f"projection {head} on {full_path}")
    updated_child = _update(agg.field(head.index), rest, new_value, full_path)
    return agg.with_field(head.index, updated_child)
