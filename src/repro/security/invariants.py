"""The page-table invariants of Sec. 5.2, as executable checkers.

The four families, quoted from the paper and implemented one-for-one:

1. **ELRANGE memory isolation** — "Two virtual addresses va1 and va2
   that are in the ELRANGE of two different enclaves must be mapped to
   different physical addresses, if there exist such mappings at all."
2. **Marshalling buffer invariant** — "If two virtual addresses va1 and
   va2 are translated to the same physical memory region by an [enclave]
   page table and the page table of the primary OS, then va1 and va2 are
   in the marshalling buffer."
3. **EPCM invariant** — "All the page mappings in the page tables of
   enclaves correspond to an entry in the HyperEnclave's EPCM list ...
   This rules out covert mappings."
4. **Enclave invariants** — "a virtual address is mapped to a physical
   page in the EPC if and only if the virtual address is in the
   ELRANGE; the ELRANGE and the range of marshalling buffer are
   disjoint; and there are no huge pages in the page tables."

plus the residency property stated just after them: "The page tables
themselves are also protected, because they are allocated in a disjoint
range of physical memory which is never in the range of a guest
mapping."

Each checker returns a list of violation strings (empty = holds);
:func:`check_all_invariants` aggregates them into a report and the
benches assert exactly which planted bug trips exactly which family.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import TranslationFault
from repro.hyperenclave.monitor import RustMonitor


# ---------------------------------------------------------------------------
# Address-space projections
# ---------------------------------------------------------------------------


def enclave_translations(monitor, eid) -> Dict[int, int]:
    """Every page-granular ``va -> hpa`` the enclave can reach through
    its GPT composed with its EPT."""
    enclave = monitor.enclaves[eid]
    config = monitor.config
    reachable = {}
    for va, gpa, size, _flags in enclave.gpt.mappings():
        for offset in range(0, size, config.page_size):
            page_va = va + offset
            try:
                hpa = monitor.enclave_translate(eid, page_va, write=False)
            except TranslationFault:
                continue
            reachable[page_va] = config.page_base(hpa)
    return reachable


class HostReach:
    """The normal VM's physical reach, as HPA intervals.

    The primary OS kernel addresses guest-physical space directly, so
    its maximal reach is everything its EPT maps, regardless of GPTs.
    Interval form keeps the x86-64 geometry (huge mappings covering
    gigabytes) cheap to query.
    """

    def __init__(self, intervals):
        self.intervals = sorted(intervals)

    def __contains__(self, hpa):
        import bisect
        index = bisect.bisect_right(self.intervals, (hpa, float("inf"))) - 1
        if index < 0:
            return False
        base, end = self.intervals[index]
        return base <= hpa < end

    def pages(self, page_size):
        """Materialised page set — only for tiny geometries/tests."""
        return {base + offset
                for base, end in self.intervals
                for offset in range(0, end - base, page_size)}


def host_reachable_hpas(monitor) -> HostReach:
    """The host's reach through its EPT, as :class:`HostReach`."""
    return HostReach([(hpa, hpa + size)
                      for _gpa, hpa, size, _flags
                      in monitor.os_ept.mappings()])


# ---------------------------------------------------------------------------
# Family 1 — ELRANGE isolation
# ---------------------------------------------------------------------------


def check_elrange_isolation(monitor) -> List[str]:
    """Family 1: no EPC page reachable from two ELRANGEs."""
    violations = []
    per_enclave: Dict[int, Dict[int, int]] = {}
    for eid in monitor.enclaves:
        enclave = monitor.enclaves[eid]
        translations = enclave_translations(monitor, eid)
        per_enclave[eid] = {
            va: hpa for va, hpa in translations.items()
            if enclave.in_elrange(va)}
    eids = sorted(per_enclave)
    for i, eid_a in enumerate(eids):
        hpas_a = {hpa: va for va, hpa in per_enclave[eid_a].items()}
        for eid_b in eids[i + 1:]:
            for va_b, hpa_b in per_enclave[eid_b].items():
                if hpa_b in hpas_a:
                    violations.append(
                        f"enclaves {eid_a} and {eid_b} both reach physical "
                        f"page {hpa_b:#x} (va {hpas_a[hpa_b]:#x} vs "
                        f"{va_b:#x}) from their ELRANGEs")
    return violations


# ---------------------------------------------------------------------------
# Family 2 — marshalling buffer
# ---------------------------------------------------------------------------


def check_mbuf_invariant(monitor) -> List[str]:
    """Family 2: enclave/host physical sharing only inside the mbuf."""
    violations = []
    host_reach = host_reachable_hpas(monitor)
    for eid in sorted(monitor.enclaves):
        enclave = monitor.enclaves[eid]
        for va, hpa in sorted(enclave_translations(monitor, eid).items()):
            if hpa in host_reach and not enclave.in_mbuf(va):
                violations.append(
                    f"enclave {eid} va {va:#x} and the primary OS share "
                    f"physical page {hpa:#x} outside the marshalling "
                    f"buffer")
    return violations


# ---------------------------------------------------------------------------
# Family 3 — EPCM
# ---------------------------------------------------------------------------


def check_epcm_invariant(monitor) -> List[str]:
    """Family 3: every enclave EPC mapping has a matching EPCM record."""
    violations = []
    config = monitor.config
    for eid in sorted(monitor.enclaves):
        for va, hpa in sorted(enclave_translations(monitor, eid).items()):
            frame = config.frame_of(hpa)
            if not monitor.layout.is_epc(frame):
                continue
            entry = monitor.epcm.entry_for_frame(frame)
            if entry.is_free():
                violations.append(
                    f"enclave {eid} maps va {va:#x} to EPC frame {frame} "
                    f"with no EPCM record (covert mapping)")
            elif entry.owner != eid:
                violations.append(
                    f"enclave {eid} maps va {va:#x} to EPC frame {frame} "
                    f"recorded as owned by enclave {entry.owner}")
            elif entry.va is not None and entry.va != va:
                violations.append(
                    f"enclave {eid} maps va {va:#x} to EPC frame {frame} "
                    f"recorded for va {entry.va:#x}")
    return violations


# ---------------------------------------------------------------------------
# Family 4 — enclave invariants
# ---------------------------------------------------------------------------


def check_enclave_invariants(monitor) -> List[str]:
    """Family 4: ELRANGE<->EPC iff, mbuf disjointness, no huge pages."""
    violations = []
    config = monitor.config
    for eid in sorted(monitor.enclaves):
        enclave = monitor.enclaves[eid]
        # (b) ELRANGE and mbuf disjoint.
        if enclave.mbuf is not None and enclave.overlaps_elrange(
                enclave.mbuf.va_base, enclave.mbuf.size):
            violations.append(
                f"enclave {eid}: marshalling buffer "
                f"[{enclave.mbuf.va_base:#x}, {enclave.mbuf.va_end:#x}) "
                f"overlaps ELRANGE")
        # (a) va -> EPC  <=>  va in ELRANGE.
        for va, hpa in sorted(enclave_translations(monitor, eid).items()):
            maps_to_epc = monitor.layout.is_epc(config.frame_of(hpa))
            if maps_to_epc and not enclave.in_elrange(va):
                violations.append(
                    f"enclave {eid}: va {va:#x} outside ELRANGE maps to "
                    f"EPC page {hpa:#x}")
            if enclave.in_elrange(va) and not maps_to_epc:
                violations.append(
                    f"enclave {eid}: ELRANGE va {va:#x} maps to non-EPC "
                    f"page {hpa:#x}")
        # (c) no huge pages in enclave tables.
        for table_name, table in (("gpt", enclave.gpt),
                                  ("ept", enclave.ept)):
            for va, _pa, size, _flags in table.mappings():
                if size != config.page_size:
                    violations.append(
                        f"enclave {eid}: huge mapping ({size} bytes) at "
                        f"{va:#x} in its {table_name}")
    return violations


# ---------------------------------------------------------------------------
# Residency — page tables never guest-mapped
# ---------------------------------------------------------------------------


def check_pt_residency(monitor) -> List[str]:
    """Page-table frames live in the pool and are never guest-reachable."""
    violations = []
    config = monitor.config
    pool = monitor.layout
    table_frames = set(monitor.os_ept.table_frames())
    for eid in sorted(monitor.enclaves):
        enclave = monitor.enclaves[eid]
        table_frames.update(enclave.gpt.table_frames())
        table_frames.update(enclave.ept.table_frames())
    for frame in sorted(table_frames):
        if not pool.is_pt_pool(frame):
            violations.append(
                f"page-table frame {frame} lies outside the secure "
                f"page-table pool")
    # Never in the range of a guest mapping: neither the normal VM's EPT
    # nor any enclave's composition may reach a table frame.
    host_reach = host_reachable_hpas(monitor)
    enclave_reachable = set()
    for eid in monitor.enclaves:
        enclave_reachable.update(
            enclave_translations(monitor, eid).values())
    for frame in sorted(table_frames):
        base = config.frame_base(frame)
        if base in host_reach or base in enclave_reachable:
            violations.append(
                f"page-table frame {frame} is reachable by a guest "
                f"mapping")
    return violations


def check_vcpu_consistency(monitor) -> List[str]:
    """Per-vCPU scheduling state is internally consistent.

    For every core: a host-mode vCPU has no parked host context and the
    OS EPT installed; an enclave-mode vCPU points at a live, RUNNING
    enclave whose table roots match the installed ones, with the host
    context parked for the eventual exit.  Checked standalone by the
    interleaving campaign (not one of the sequential ``FAMILIES`` —
    with one vCPU the transition system already enforces it by
    construction).
    """
    from repro.hyperenclave.monitor import HOST_ID
    violations = []
    for vid, cpu in enumerate(monitor.cpus):
        if cpu.active == HOST_ID:
            if cpu.saved_host_context is not None:
                violations.append(
                    f"vcpu{vid}: host active but a host context is parked")
            if cpu.vcpu.gpt_root is not None:
                violations.append(
                    f"vcpu{vid}: host active but an enclave GPT root "
                    f"{cpu.vcpu.gpt_root} is installed")
            if cpu.vcpu.ept_root != monitor.os_ept.root_frame:
                violations.append(
                    f"vcpu{vid}: host active but EPT root is "
                    f"{cpu.vcpu.ept_root}, not the OS EPT")
            continue
        enclave = monitor.enclaves.get(cpu.active)
        if enclave is None:
            violations.append(
                f"vcpu{vid}: active enclave {cpu.active} does not exist")
            continue
        if enclave.state.value != "running":
            violations.append(
                f"vcpu{vid}: active enclave {cpu.active} is in state "
                f"{enclave.state.value}, not running")
        if cpu.vcpu.gpt_root != enclave.gpt.root_frame:
            violations.append(
                f"vcpu{vid}: GPT root {cpu.vcpu.gpt_root} does not match "
                f"enclave {cpu.active}'s ({enclave.gpt.root_frame})")
        if cpu.vcpu.ept_root != enclave.ept.root_frame:
            violations.append(
                f"vcpu{vid}: EPT root {cpu.vcpu.ept_root} does not match "
                f"enclave {cpu.active}'s ({enclave.ept.root_frame})")
        if cpu.saved_host_context is None:
            violations.append(
                f"vcpu{vid}: inside enclave {cpu.active} with no parked "
                f"host context to exit to")
    return violations


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

FAMILIES = (
    ("elrange-isolation", check_elrange_isolation),
    ("marshalling-buffer", check_mbuf_invariant),
    ("epcm", check_epcm_invariant),
    ("enclave-invariants", check_enclave_invariants),
    ("pt-residency", check_pt_residency),
)


@dataclass
class InvariantReport:
    """Outcome of a full invariant sweep."""

    violations: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def ok(self):
        return not any(self.violations.values())

    def violated_families(self):
        return sorted(name for name, items in self.violations.items()
                      if items)

    def __str__(self):
        if self.ok:
            return "all invariant families hold"
        lines = []
        for name in self.violated_families():
            for item in self.violations[name]:
                lines.append(f"[{name}] {item}")
        return "\n".join(lines)


def check_all_invariants(monitor) -> InvariantReport:
    """Run all five families and aggregate."""
    report = InvariantReport()
    for name, checker in FAMILIES:
        report.violations[name] = checker(monitor)
    return report


def assert_invariants(monitor):
    """Raise :class:`~repro.errors.InvariantViolation` on the first
    violated family (the raising flavour of :func:`check_all_invariants`)."""
    from repro.errors import InvariantViolation
    report = check_all_invariants(monitor)
    if not report.ok:
        family = report.violated_families()[0]
        raise InvariantViolation(family, report.violations[family][0],
                                 witness=report)
    return report
