"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the top level.  The sub-hierarchy mirrors
the package layout: MIR semantics errors, CCAL specification errors,
refinement-checking failures, and security-property violations.
"""


class ReproError(Exception):
    """Base class of all errors raised by the repro library.

    Errors can cross process boundaries (the parallel checking fabric
    ships :class:`~repro.concurrency.scheduler.RunResult` task errors
    back from worker processes), but default exception pickling
    reconstructs via ``cls(*self.args)`` — wrong for the subclasses
    below that compose a single message in ``__init__`` and stash the
    original arguments as attributes.  Those subclasses list their
    constructor attributes in ``_CTOR_ATTRS`` (in signature order) and
    pickle by re-invoking the constructor.
    """

    _CTOR_ATTRS = ()

    def __reduce__(self):
        if self._CTOR_ATTRS:
            return (type(self),
                    tuple(getattr(self, name)
                          for name in self._CTOR_ATTRS))
        return super().__reduce__()


class ConfigError(ReproError):
    """A runtime configuration knob holds an unusable value.

    Carries the knob's name (e.g. the ``REPRO_CHECK_WORKERS``
    environment variable), the offending value, and why it was
    rejected, so the message names exactly what to fix — instead of a
    bare ``ValueError: invalid literal for int()`` surfacing from deep
    inside the executor.
    """

    _CTOR_ATTRS = ("name", "value", "reason")

    def __init__(self, name, value, reason):
        super().__init__(f"{name}={value!r}: {reason}")
        self.name = name
        self.value = value
        self.reason = reason


class CorruptArtifact(ReproError, ValueError):
    """A persisted artifact (checkpoint, trace, bundle, memo log) is torn.

    Raised when loading a file whose framing or checksum does not
    survive validation — a truncated JSON bundle, a JSONL trace cut
    mid-line, a checkpoint whose CRC does not match.  Carries the path
    and what exactly failed, so the message says *which* artifact to
    delete or regenerate instead of surfacing a bare
    ``JSONDecodeError`` from deep inside a loader.

    Derives from :class:`ValueError` as well, so pre-existing callers
    that treated "cannot parse this file" as a ``ValueError`` keep
    working unchanged.
    """

    _CTOR_ATTRS = ("path", "reason")

    def __init__(self, path, reason):
        super().__init__(f"corrupt artifact {path!r}: {reason}")
        self.path = path
        self.reason = reason

    def __str__(self):
        return self.args[0]


class CheckpointMismatch(ReproError):
    """A checkpoint was offered to a campaign it does not belong to.

    Every checkpoint is keyed by the blake2b digest of its campaign
    spec; resuming with different parameters would silently splice two
    unrelated explorations, so the loader refuses with both digests.
    """

    _CTOR_ATTRS = ("path", "expected", "found")

    def __init__(self, path, expected, found):
        super().__init__(
            f"checkpoint {path!r} belongs to campaign {found}, not "
            f"{expected} — resume with the original parameters or "
            f"start a fresh store")
        self.path = path
        self.expected = expected
        self.found = found


class ShardQuarantined(ReproError):
    """A shard failed repeatedly and was quarantined, not retried forever.

    The resilient executor retries a failing shard with backoff; after
    ``attempts`` failures it records this typed result for each of the
    shard's units instead of sinking the whole campaign.  ``cause``
    is the stringified final failure (the exception itself may not
    pickle, so only its rendering travels).
    """

    _CTOR_ATTRS = ("shard", "attempts", "cause")

    def __init__(self, shard, attempts, cause):
        super().__init__(
            f"shard {shard} quarantined after {attempts} failed "
            f"attempt(s): {cause}")
        self.shard = shard
        self.attempts = attempts
        self.cause = cause


# ---------------------------------------------------------------------------
# MIR semantics errors
# ---------------------------------------------------------------------------


class MirError(ReproError):
    """Base class for errors in the mirlight language and its semantics."""


class MirParseError(MirError):
    """The mirlight textual source could not be parsed."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class MirTypeError(MirError):
    """A value was used at an incompatible type during evaluation.

    The paper's semantics rely on rustc having already type-checked the
    program, so hitting this during interpretation means the transcription
    (our ``mirlightgen`` substitute) produced an ill-typed program.
    """


class MirRuntimeError(MirError):
    """The operational semantics got stuck (no applicable step rule)."""


class MirAssertError(MirRuntimeError):
    """An ``assert`` terminator failed (models a Rust panic)."""

    def __init__(self, message, function=None, block=None):
        where = ""
        if function is not None:
            where = f" in {function}"
            if block is not None:
                where += f" (block {block})"
        super().__init__(f"assertion failed{where}: {message}")
        self.function = function
        self.block = block


class EncapsulationViolation(MirError):
    """A pointer was dereferenced outside the layer that owns its pointee.

    RData pointers (Sec. 3.4 case 3) are opaque handles: the semantics
    provide no way to read or write through them, so any attempt from a
    layer other than the forging layer raises this error.  Raising instead
    of silently reading is exactly the encapsulation guarantee the paper's
    layered proofs rely on.
    """


class OutOfFuel(MirError):
    """The small-step machine exceeded its step budget.

    Bounded checking intentionally cuts off runaway executions; for the
    HyperEnclave corpus every function terminates well within default fuel.
    """


class UnboundSymbolicVariable(MirError, KeyError):
    """A constraint references a symbolic variable with no declared domain.

    The bounded solver can only enumerate variables whose domains the
    caller declared; silently treating an unbound variable as an empty
    domain would turn "I cannot decide this" into "unsatisfiable", which
    is unsound for :func:`~repro.symbolic.solver.must_hold` (an unbound
    negated property would be "proved").  ``enumerate_models``
    short-circuits with this error *before* enumerating anything.

    Derives from :class:`KeyError` as well so pre-existing callers that
    treated a missing domain as "cannot prune / cannot decide" keep
    working unchanged.
    """

    _CTOR_ATTRS = ("names",)

    def __init__(self, names):
        if isinstance(names, str):
            names = (names,)
        self.names = tuple(sorted(names))
        listing = ", ".join(repr(n) for n in self.names)
        # Exception.__str__ on a KeyError repr()s a single arg; pass the
        # composed message as the only argument for readable output.
        super().__init__(
            f"no domain declared for symbolic variable(s) {listing}")

    def __str__(self):
        return self.args[0]


# ---------------------------------------------------------------------------
# CCAL / specification errors
# ---------------------------------------------------------------------------


class SpecError(ReproError):
    """A functional specification was violated or misused."""


class SpecPreconditionError(SpecError):
    """A specification was invoked on arguments outside its precondition."""


class LayerError(ReproError):
    """A layer stack was assembled inconsistently.

    Examples: a function calling upward into a higher layer (the paper
    requires a strict caller-callee order), or two layers claiming
    ownership of the same abstract-state field.
    """


class RefinementFailure(ReproError):
    """A co-simulation refinement check found a counterexample.

    Carries the diverging pair so benches and tests can report the exact
    witness, like a Coq proof failing with the offending goal.
    """

    def __init__(self, message, counterexample=None):
        super().__init__(message)
        self.counterexample = counterexample


# ---------------------------------------------------------------------------
# Security property violations
# ---------------------------------------------------------------------------


class SecurityError(ReproError):
    """Base class for security property violations."""


class InvariantViolation(SecurityError):
    """One of the Sec. 5.2 page-table invariants does not hold.

    ``invariant`` names the violated family (e.g. ``"elrange-isolation"``)
    and ``witness`` carries the concrete offending addresses/entries.
    """

    _CTOR_ATTRS = ("invariant", "message", "witness")

    def __init__(self, invariant, message, witness=None):
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant
        self.message = message
        self.witness = witness


class NoninterferenceViolation(SecurityError):
    """A step-wise noninterference lemma (5.2-5.4) found distinguishable states."""

    _CTOR_ATTRS = ("lemma", "message", "witness")

    def __init__(self, lemma, message, witness=None):
        super().__init__(f"[{lemma}] {message}")
        self.lemma = lemma
        self.message = message
        self.witness = witness


# ---------------------------------------------------------------------------
# HyperEnclave model errors
# ---------------------------------------------------------------------------


class HypervisorError(ReproError):
    """Base class for errors raised by the HyperEnclave model itself."""


class ResourceExhausted(HypervisorError):
    """A finite monitor resource (frame pool, EPC, ...) ran out.

    Every allocator in the model raises a subclass of this, so the
    transactional hypercall layer can treat "out of resources" as one
    recoverable error family: roll back and re-raise typed, never leave
    a half-applied hypercall behind.
    """


class OutOfMemoryError(ResourceExhausted):
    """The secure-memory frame allocator is exhausted."""


class PagingError(HypervisorError):
    """A page-table operation failed (already mapped, not mapped, bad VA...)."""


class EpcmError(HypervisorError):
    """EPCM bookkeeping rejected an operation (page busy, wrong owner...)."""


class EpcExhausted(EpcmError, ResourceExhausted):
    """No free EPC frame is left for an allocation."""


class HypercallError(HypervisorError):
    """A hypercall was rejected by RustMonitor's validation."""


class HypercallAborted(HypercallError):
    """A hypercall failed *mid-sequence* and was rolled back.

    Raised by the transactional wrapper after it has restored the
    monitor to its pre-hypercall state; ``hypercall`` names the call and
    ``__cause__`` carries the original failure (an injected fault, an
    exhausted allocator, ...).  Observing this error therefore comes
    with the guarantee that no partial EPCM/GPT/EPT/allocator mutation
    survived.
    """

    _CTOR_ATTRS = ("hypercall", "cause")

    def __init__(self, hypercall, cause):
        super().__init__(f"{hypercall} aborted and rolled back: {cause}")
        self.hypercall = hypercall
        self.cause = cause


class FaultInjected(ReproError):
    """An armed fault-injection site fired.

    Deliberately *not* a :class:`HypervisorError`: injected faults model
    the environment failing underneath the monitor (broken hardware, an
    adversarial crash), so code that catches hypervisor errors for
    normal control flow never swallows one by accident.  The
    transactional hypercall layer converts it into a rolled-back
    :class:`HypercallAborted`.
    """

    _CTOR_ATTRS = ("site", "hit", "label")

    def __init__(self, site, hit=None, label=None):
        where = f" (hit {hit}" + (f", {label})" if label else ")") \
            if hit is not None else ""
        super().__init__(f"injected fault at site {site!r}{where}")
        self.site = site
        self.hit = hit
        self.label = label


class LockProtocolViolation(ReproError):
    """The multi-vCPU lock discipline was broken.

    Raised (strict mode) or recorded (campaign mode) by the
    :class:`repro.concurrency.locks.LockManager` when a vCPU acquires
    locks against the global order, still holds a lock at a
    hypercall return, or mutates a lock-guarded structure without
    holding its owning lock.  Deliberately *not* a
    :class:`HypervisorError` — like :class:`FaultInjected`, it reports
    the checking harness catching the monitor misbehaving, so code
    that catches hypervisor errors for normal control flow (validation
    rejections, exhaustion) can never swallow a discipline violation
    by accident.
    """

    _CTOR_ATTRS = ("rule", "vid", "message")

    def __init__(self, rule, vid, message):
        super().__init__(f"[{rule}] vCPU {vid}: {message}")
        self.rule = rule      # lock-order | hold-across-return | unlocked-mutation
        self.vid = vid
        self.message = message


class StaleTranslation(ReproError):
    """A vCPU's TLB holds a translation its page tables no longer back.

    The concurrent analogue of the paper's Sec. 5 use-after-unmap
    concern: a page was unmapped (``hc_trim_page``, ``hc_remove_page``,
    ``hc_destroy``) while another vCPU still caches the translation —
    the TLB shootdown protocol exists to make this impossible.  Like
    :class:`FaultInjected` and :class:`LockProtocolViolation`, this is
    *not* a :class:`HypervisorError`: it is the detector convicting the
    monitor, and must never be absorbed by normal error handling.
    """

    _CTOR_ATTRS = ("vid", "principal", "va_page", "cached_pa", "reason")

    def __init__(self, vid, principal, va_page, cached_pa, reason):
        super().__init__(
            f"vCPU {vid}: principal {principal} caches "
            f"{va_page:#x} -> {cached_pa:#x} but the page tables say "
            f"{reason}")
        self.vid = vid
        self.principal = principal
        self.va_page = va_page
        self.cached_pa = cached_pa
        self.reason = reason


class CheckBudgetExceeded(ReproError):
    """A checking engine ran past its wall-clock or step budget.

    The hardened harness catches this and degrades to the next cheaper
    engine instead of hanging; ``spent`` records what was consumed.
    """

    def __init__(self, message, spent=None):
        super().__init__(message)
        self.spent = spent or {}


class TranslationFault(HypervisorError):
    """An address translation (GPT or EPT walk) did not resolve.

    Models the hardware page fault / EPT violation a real machine would
    deliver; the security model treats faulting accesses as no-ops.
    """

    def __init__(self, message, stage=None, va=None):
        super().__init__(message)
        self.stage = stage  # "gpt" or "ept"
        self.va = va


# ---------------------------------------------------------------------------
# Checking-as-a-service errors
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for checking-as-a-service (daemon/scheduler/client)
    errors."""


class AdmissionRefused(ServiceError):
    """The service refused a campaign submission — the 429-style
    backpressure verdict.

    Raised when the admission queue is full or the daemon is draining.
    Carries why and a suggested ``retry_after`` delay (seconds, or
    ``None`` when retrying is pointless, e.g. during a drain), so a
    client can distinguish "come back shortly" from "this instance is
    going away".
    """

    _CTOR_ATTRS = ("reason", "retry_after")

    def __init__(self, reason, retry_after=None):
        hint = f" (retry after {retry_after}s)" \
            if retry_after is not None else ""
        super().__init__(f"admission refused: {reason}{hint}")
        self.reason = reason
        self.retry_after = retry_after


class CampaignNotFound(ServiceError, KeyError):
    """A campaign id was presented that the service does not know.

    Derives from :class:`KeyError` as well, so registry-shaped callers
    that treat an unknown id as a missing key keep working.
    """

    _CTOR_ATTRS = ("campaign_id",)

    def __init__(self, campaign_id):
        super().__init__(f"unknown campaign {campaign_id!r}")
        self.campaign_id = campaign_id

    def __str__(self):
        return self.args[0]


class CampaignBudgetExceeded(ServiceError):
    """A scheduled campaign ran past its wall-clock or wave budget.

    The scheduler stops scheduling the campaign and records this as its
    failure; the last wave-boundary checkpoint survives, so the
    campaign stays resumable under a larger budget.
    """

    _CTOR_ATTRS = ("campaign_id", "budget", "limit", "spent")

    def __init__(self, campaign_id, budget, limit, spent):
        super().__init__(
            f"campaign {campaign_id!r} exceeded its {budget} budget "
            f"({spent} of {limit}) — checkpoint kept, resume with a "
            f"larger budget")
        self.campaign_id = campaign_id
        self.budget = budget
        self.limit = limit
        self.spent = spent


class DeadlineExceeded(ServiceError):
    """A client operation did not finish inside its deadline.

    Carries the operation, the deadline (seconds), and the stringified
    last failure, so a caller sees *why* the final attempt did not land
    instead of a bare timeout.
    """

    _CTOR_ATTRS = ("operation", "deadline", "cause")

    def __init__(self, operation, deadline, cause):
        super().__init__(
            f"{operation} did not complete within {deadline}s: {cause}")
        self.operation = operation
        self.deadline = deadline
        self.cause = cause


class ReplayDivergence(ReproError):
    """A provenance-bundle replay did not reproduce the recorded verdict.

    Raised (and rendered by ``python -m repro replay``) when the
    re-executed check's outcome differs from what the bundle recorded —
    the counterexample is stale, the code under check changed, or the
    bundle was edited.  Carries the bundle kind and both sides of the
    comparison.
    """

    _CTOR_ATTRS = ("kind", "expected", "found")

    def __init__(self, kind, expected, found):
        super().__init__(
            f"{kind} replay diverged: recorded verdict {expected!r} "
            f"was not reproduced (replay found {found!r})")
        self.kind = kind
        self.expected = expected
        self.found = found
