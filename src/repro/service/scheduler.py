"""Multi-campaign scheduling over one shared resilient worker pool.

PR 6 made a *single* campaign durable; this module makes *many* of
them share one :class:`~repro.service.supervisor.ResilientExecutor`
without giving up any of the durability story.  The design point is
fair-share wavefront interleaving:

* every admitted campaign keeps its own
  :class:`~repro.service.orchestrator.CampaignStore` (checkpoint +
  memo log + provenance artifacts) and its own
  :class:`~repro.concurrency.explorer.FrontierState`;
* the scheduler runs **rounds**: each round, every runnable campaign
  contributes a chunk of its next wavefront, least-served campaigns
  first, so no campaign starves while another holds queued waves
  (property-tested in ``tests/service/test_scheduler.py``);
* **work stealing** happens at the share level — a campaign whose
  frontier cannot fill its fair share of the round donates the slack,
  and loaded campaigns' queued waves absorb it (counted on
  ``service.units_stolen``), so one lonely campaign gets the entire
  pool and a crowd divides it;
* each chunk commits the campaign's atomic checkpoint at its wave
  boundary, exactly like
  :func:`~repro.service.orchestrator.run_durable_campaign` — a
  ``kill -9`` of the whole daemon loses at most one in-flight chunk
  per campaign, and :meth:`CampaignScheduler.recover` re-admits every
  incomplete store it finds on restart.

Chunked absorption is verdict-preserving by construction: the frontier
is FIFO and children enqueue at the back, so absorbing a wave in
chunks visits schedules in exactly the order one whole-wave absorb
would — a scheduler-run campaign's
:class:`~repro.concurrency.explorer.ExplorationResult` is
repr-identical to ``run_durable_campaign`` on the same spec.

The robustness spine on top:

* **admission control** — a bounded queue; a submit past the bound
  raises :class:`~repro.errors.AdmissionRefused` (the daemon's
  429-style backpressure verdict) instead of accepting unbounded work;
* **budgets** — per-campaign wall-clock and wave caps; exceeding one
  marks the campaign failed with a typed
  :class:`~repro.errors.CampaignBudgetExceeded` message but keeps the
  checkpoint, so the campaign stays resumable under a larger budget;
* **liveness** — the scheduler heartbeats every loop iteration and
  between chunks; :meth:`health` turns a stale heartbeat into a
  ``stalled`` verdict.  Individual stuck *units* are already handled
  below the scheduler: the shared executor's shard timeout + bounded
  retries turn a hung worker into a
  :class:`~repro.errors.ShardQuarantined` violation instead of a
  wedged round;
* **graceful drain** — :meth:`drain` stops admissions, lets the
  in-flight round finish (its chunk commits are the checkpoint
  flush), marks still-running campaigns ``interrupted``, and returns
  the per-campaign resume report;
* **provenance on violation** — the moment a chunk's absorb records a
  violation, the scheduler cuts a replayable
  :class:`~repro.obs.provenance.ProvenanceBundle` into the campaign's
  ``artifacts/`` directory; cutting is idempotent by bundle index, so
  a crash between absorb and cut is repaired on resume.
"""

import copy
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.memo import merge_stats
from repro.errors import (
    AdmissionRefused,
    CampaignBudgetExceeded,
    CampaignNotFound,
)
from repro.obs import trace as _trace
from repro.obs.metrics import REGISTRY
from repro.service.checkpoint import CampaignCheckpoint
from repro.service.orchestrator import (
    CampaignSpec,
    CampaignStore,
    _hash_cons_outputs,
    _quarantine_output,
)
from repro.service.store import atomic_write_text
from repro.service.supervisor import ResilientExecutor

#: Campaign lifecycle states (plain strings: they travel as JSON).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
INTERRUPTED = "interrupted"

#: States a restarted scheduler re-admits (anything not finished).
RESUMABLE_STATES = (QUEUED, RUNNING, CANCELLED, INTERRUPTED, FAILED)

META_FILE = "campaign.json"
RESULT_FILE = "result.json"
ARTIFACTS_DIR = "artifacts"

WORKER_FN = "repro.engine.workers:run_interleaving_unit"


def _result_digest(result) -> str:
    """blake2b of the full result repr — the byte-identity fingerprint
    the chaos tests compare across crash/resume/uninterrupted runs."""
    import hashlib
    return hashlib.blake2b(repr(result).encode(),
                           digest_size=16).hexdigest()


@dataclass
class ManagedCampaign:
    """One campaign under scheduler management (registry entry)."""

    campaign_id: str
    spec: CampaignSpec
    store: CampaignStore
    status: str = QUEUED
    admission_index: int = 0
    wall_budget: Optional[float] = None
    wave_budget: Optional[int] = None
    resumed: bool = False

    # Runtime state (populated at activation).
    state: object = None               # FrontierState
    waves: int = 0
    units_executed: int = 0
    base_stats: Dict = field(default_factory=dict)
    cons_cache: Dict = field(default_factory=dict)
    started_at: Optional[float] = None   # monotonic, this process
    last_progress: Optional[float] = None
    checkpoint_done: bool = False        # last committed checkpoint's flag
    bundles_cut: int = 0
    error: Optional[str] = None
    result_summary: Optional[Dict] = None

    @property
    def active(self) -> bool:
        return self.status == RUNNING

    def pending_units(self) -> int:
        """Schedules still on this campaign's frontier (0 if inactive)."""
        if self.state is None:
            return 0
        return self.state.pending()

    def snapshot(self) -> Dict:
        """The JSON status the daemon serves for this campaign."""
        info = {
            "id": self.campaign_id,
            "status": self.status,
            "store": self.store.root,
            "spec": self.spec.payload(),
            "waves": self.waves,
            "schedules_run": (len(self.state.runs)
                              if self.state is not None else
                              (self.result_summary or {}).get(
                                  "schedules", 0)),
            "pending": self.pending_units(),
            "violations": (len(self.state.violations)
                           if self.state is not None else
                           (self.result_summary or {}).get(
                               "violations", 0)),
            "resumed": self.resumed,
            "resumable": self.status in (QUEUED, RUNNING, CANCELLED,
                                         INTERRUPTED, FAILED),
            "wall_budget": self.wall_budget,
            "wave_budget": self.wave_budget,
        }
        if self.error is not None:
            info["error"] = self.error
        if self.result_summary is not None:
            info.update(self.result_summary)
        return info


class CampaignScheduler:
    """Fair-share multi-campaign execution over one resilient pool.

    ``root`` is the service's store root: each campaign lives in
    ``<root>/<campaign_id>/`` as a normal
    :class:`~repro.service.orchestrator.CampaignStore` (plus
    ``campaign.json`` metadata, a ``result.json`` verdict once
    finished, and cut provenance bundles under ``artifacts/``), so any
    daemon-run campaign can equally be finished by hand with
    ``python -m repro resume <root>/<id>``.

    The scheduler is driven either by :meth:`start` (a daemon thread
    running :meth:`_step` in a loop) or synchronously via
    :meth:`run_until_idle` (tests, benchmarks).
    """

    def __init__(self, root: str, *, workers: Optional[int] = None,
                 executor: Optional[ResilientExecutor] = None,
                 max_active: int = 4, max_queued: int = 16,
                 round_capacity: Optional[int] = None,
                 default_wall_budget: Optional[float] = None,
                 default_wave_budget: Optional[int] = None,
                 shard_timeout: Optional[float] = None,
                 stall_after: float = 60.0):
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        if max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.pool = executor if executor is not None else \
            ResilientExecutor(workers, shard_timeout=shard_timeout)
        self._owns_pool = executor is None
        self.max_active = max_active
        self.max_queued = max_queued
        # A round admits at least one full pool width per campaign
        # share; the floor keeps tiny pools from serialising waves.
        self.round_capacity = round_capacity if round_capacity \
            else max(2 * self.pool.workers, 8)
        self.default_wall_budget = default_wall_budget
        self.default_wave_budget = default_wave_budget
        self.stall_after = stall_after

        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self._campaigns: Dict[str, ManagedCampaign] = {}
        self._order: List[str] = []          # admission order
        self._admitted = 0
        self._draining = False
        self._thread: Optional[threading.Thread] = None
        self._heartbeat = time.monotonic()

    # -- admission ----------------------------------------------------------

    def _queued(self) -> List[ManagedCampaign]:
        return [self._campaigns[cid] for cid in self._order
                if self._campaigns[cid].status == QUEUED]

    def _running(self) -> List[ManagedCampaign]:
        return [self._campaigns[cid] for cid in self._order
                if self._campaigns[cid].status == RUNNING]

    def submit(self, spec: CampaignSpec, *,
               campaign_id: Optional[str] = None,
               wall_budget: Optional[float] = None,
               wave_budget: Optional[int] = None,
               resumed: bool = False,
               _admission_exempt: bool = False) -> str:
        """Admit a campaign; returns its id.

        Re-submitting an existing id is idempotent while the campaign
        is queued, running, or done (the id comes back untouched),
        which is what makes the client's retry-on-connection-error
        loop safe for ``POST``.  Re-submitting a *failed, cancelled or
        interrupted* id instead re-queues it from its checkpoint under
        the submission's budgets — the API verb for "resume with a
        larger budget".  Raises
        :class:`~repro.errors.AdmissionRefused` when draining or when
        the queue is at ``max_queued`` — the backpressure verdict the
        daemon maps to HTTP 429/503.
        """
        _validate_budgets(wall_budget, wave_budget)
        if campaign_id is not None and not _safe_id(campaign_id):
            raise ValueError(
                f"campaign id {campaign_id!r} must be a non-empty "
                f"[A-Za-z0-9._-] token (not all dots)")
        with self._lock:
            existing = self._campaigns.get(campaign_id) \
                if campaign_id is not None else None
            if existing is not None \
                    and existing.status not in (CANCELLED, INTERRUPTED,
                                                FAILED):
                return campaign_id
            if self._draining:
                raise AdmissionRefused("service is draining",
                                       retry_after=None)
            waiting = len(self._queued())
            if not _admission_exempt \
                    and waiting >= self.max_queued + self.max_active:
                REGISTRY.inc("service.admission_refused")
                raise AdmissionRefused(
                    f"admission queue full ({waiting} campaign(s) "
                    f"queued, bound {self.max_queued + self.max_active})",
                    retry_after=round(1.0 + 0.5 * waiting, 1))
            if existing is not None:
                # Re-queue from the checkpoint; the submission's
                # budgets are authoritative (None = scheduler default),
                # so a larger budget finishes what the old one cut off.
                existing.status = QUEUED
                existing.state = None
                existing.error = None
                existing.result_summary = None
                existing.wall_budget = wall_budget \
                    if wall_budget is not None else self.default_wall_budget
                existing.wave_budget = wave_budget \
                    if wave_budget is not None else self.default_wave_budget
                result_path = os.path.join(existing.store.root,
                                           RESULT_FILE)
                if os.path.exists(result_path):
                    os.remove(result_path)
                _write_meta(existing)
                REGISTRY.inc("service.campaigns_requeued")
                _trace.event("service.requeue", campaign=campaign_id)
                self._wakeup.notify_all()
                return campaign_id
            self._admitted += 1
            if campaign_id is None:
                campaign_id = f"c{self._admitted:04d}-" \
                              f"{spec.digest()[:8]}"
            store_root = os.path.join(self.root, campaign_id)
            # Belt-and-braces containment: even a charset-clean id must
            # resolve to a direct child of the store root (a symlink
            # planted at <root>/<id> could otherwise point elsewhere).
            root_real = os.path.realpath(self.root)
            if os.path.dirname(os.path.realpath(store_root)) != root_real:
                raise ValueError(
                    f"campaign id {campaign_id!r} resolves outside "
                    f"the store root")
            store = CampaignStore(store_root)
            campaign = ManagedCampaign(
                campaign_id=campaign_id, spec=spec, store=store,
                admission_index=self._admitted,
                wall_budget=wall_budget if wall_budget is not None
                else self.default_wall_budget,
                wave_budget=wave_budget if wave_budget is not None
                else self.default_wave_budget,
                resumed=resumed)
            _write_meta(campaign)
            self._campaigns[campaign_id] = campaign
            self._order.append(campaign_id)
            REGISTRY.inc("service.campaigns_admitted")
            _trace.event("service.admit", campaign=campaign_id,
                         kind=spec.kind, seed=spec.seed,
                         resumed=resumed)
            self._wakeup.notify_all()
            return campaign_id

    def recover(self) -> List[str]:
        """Re-admit every incomplete campaign found under the root.

        The restart half of crash-safety: a store directory with
        ``campaign.json`` but no ``result.json`` was in flight (or
        queued) when the previous daemon died; its checkpoint — if any
        — is at most one wave chunk behind.  Finished campaigns are
        registered read-only so their status and artifacts stay
        servable.  Returns the re-admitted ids.
        """
        resumed = []
        for name in sorted(os.listdir(self.root)):
            meta_path = os.path.join(self.root, name, META_FILE)
            if name in self._campaigns or not os.path.exists(meta_path):
                continue
            try:
                with open(meta_path) as fh:
                    meta = json.load(fh)
                spec = CampaignSpec.from_payload(meta["spec"])
            except (OSError, ValueError, KeyError) as exc:
                REGISTRY.inc("service.recover_skipped")
                _trace.event("service.recover-skip", campaign=name,
                             cause=str(exc))
                continue
            result_path = os.path.join(self.root, name, RESULT_FILE)
            if os.path.exists(result_path):
                with self._lock:
                    self._admitted += 1
                    campaign = ManagedCampaign(
                        campaign_id=name, spec=spec,
                        store=CampaignStore(os.path.join(self.root,
                                                         name)),
                        admission_index=self._admitted)
                    try:
                        with open(result_path) as fh:
                            campaign.result_summary = json.load(fh)
                        campaign.status = campaign.result_summary.get(
                            "status", DONE)
                    except (OSError, ValueError):
                        campaign.status = DONE
                    self._campaigns[name] = campaign
                    self._order.append(name)
                continue
            # Recovered campaigns are pre-existing obligations, so they
            # are exempt from the admission bound — a crash must never
            # leave more incomplete stores than a restart can re-admit.
            # Corrupt metadata (bad id, non-numeric budgets persisted
            # by an older daemon) downgrades to a skip, not a failed
            # startup; AdmissionRefused can still surface if recover()
            # races a drain, and is equally non-fatal.
            try:
                self.submit(spec, campaign_id=name,
                            wall_budget=meta.get("wall_budget"),
                            wave_budget=meta.get("wave_budget"),
                            resumed=True, _admission_exempt=True)
            except (ValueError, AdmissionRefused) as exc:
                REGISTRY.inc("service.recover_skipped")
                _trace.event("service.recover-skip", campaign=name,
                             cause=str(exc))
                continue
            resumed.append(name)
        if resumed:
            REGISTRY.inc("service.campaigns_recovered", len(resumed))
            _trace.event("service.recover", campaigns=len(resumed))
        return resumed

    # -- introspection ------------------------------------------------------

    def status(self, campaign_id: str) -> Dict:
        with self._lock:
            campaign = self._campaigns.get(campaign_id)
            if campaign is None:
                raise CampaignNotFound(campaign_id)
            return campaign.snapshot()

    def list_campaigns(self) -> List[Dict]:
        with self._lock:
            return [self._campaigns[cid].snapshot()
                    for cid in self._order]

    def artifacts(self, campaign_id: str) -> List[Dict]:
        """The campaign's cut provenance bundles (name + parsed JSON)."""
        with self._lock:
            campaign = self._campaigns.get(campaign_id)
            if campaign is None:
                raise CampaignNotFound(campaign_id)
            directory = os.path.join(campaign.store.root, ARTIFACTS_DIR)
        found = []
        if os.path.isdir(directory):
            for name in sorted(os.listdir(directory)):
                if not name.endswith(".json"):
                    continue
                with open(os.path.join(directory, name)) as fh:
                    found.append({"name": name,
                                  "bundle": json.load(fh)})
        return found

    def health(self) -> Dict:
        """The liveness verdict ``GET /healthz`` serves."""
        with self._lock:
            age = time.monotonic() - self._heartbeat
            running = len(self._running())
            queued = len(self._queued())
            finished = sum(
                1 for c in self._campaigns.values()
                if c.status in (DONE, FAILED, CANCELLED))
            if self._draining:
                verdict = "draining"
            elif (running or queued) and age > self.stall_after \
                    and self._thread is not None:
                verdict = "stalled"
            else:
                verdict = "ok"
            return {"status": verdict,
                    "heartbeat_age": round(age, 3),
                    "draining": self._draining,
                    "active": running, "queued": queued,
                    "finished": finished,
                    "workers": self.pool.workers,
                    "round_capacity": self.round_capacity}

    # -- lifecycle ----------------------------------------------------------

    def cancel(self, campaign_id: str) -> Dict:
        """Cancel a queued or running campaign.

        A running campaign's in-flight chunk still finishes (units are
        not interruptible mid-run) and its checkpoint commits, so a
        cancelled campaign is always cleanly resumable.
        """
        with self._lock:
            campaign = self._campaigns.get(campaign_id)
            if campaign is None:
                raise CampaignNotFound(campaign_id)
            if campaign.status in (QUEUED, RUNNING):
                campaign.status = CANCELLED
                REGISTRY.inc("service.campaigns_cancelled")
                _trace.event("service.cancel", campaign=campaign_id)
            return campaign.snapshot()

    def start(self):
        """Run the scheduling loop on a daemon thread."""
        with self._lock:
            if self._thread is not None:
                return
            self._thread = threading.Thread(target=self._loop,
                                            name="repro-scheduler",
                                            daemon=True)
            self._thread.start()

    def drain(self, timeout: Optional[float] = None) -> Dict[str, Dict]:
        """Graceful shutdown: refuse admissions, finish the in-flight
        round, flush checkpoints, report per-campaign resume state.

        Returns ``{campaign_id: snapshot}`` — still-running campaigns
        come back ``interrupted`` with ``resumable: true``; their last
        wave-boundary checkpoint is already on disk (every chunk
        commits one), so there is nothing further to flush.
        """
        with self._lock:
            self._draining = True
            self._wakeup.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout)
        with self._lock:
            report = {}
            for cid in self._order:
                campaign = self._campaigns[cid]
                if campaign.status == RUNNING:
                    campaign.status = INTERRUPTED
                campaign.store.close()
                report[cid] = campaign.snapshot()
            self._thread = None
            if self._owns_pool:
                self.pool.close()
            REGISTRY.inc("service.drains")
            _trace.event("service.drain", campaigns=len(report))
            return report

    def stop(self):
        """Hard stop for tests: like drain, but without the report."""
        self.drain(timeout=60.0)

    def run_until_idle(self, max_rounds: int = 100000):
        """Drive rounds synchronously until nothing is runnable."""
        for _ in range(max_rounds):
            if not self._step(block=False):
                return
        raise RuntimeError(f"scheduler still busy after {max_rounds} "
                           f"rounds")

    # -- the scheduling loop ------------------------------------------------

    def _loop(self):
        while True:
            try:
                self._step(block=True)
            except Exception as exc:       # pragma: no cover - last line
                REGISTRY.inc("service.scheduler_errors")
                _trace.event("service.scheduler-error", cause=str(exc))
            with self._lock:
                # A drain exits *after* the round that was in flight
                # when it was requested — its chunks have committed
                # their checkpoints, which is the flush.
                if self._draining:
                    return

    def _step(self, *, block: bool) -> bool:
        """One scheduling round; returns whether work remains."""
        with self._lock:
            self._heartbeat = time.monotonic()
            self._promote()
            active = [c for c in self._running()
                      if not self._over_budget(c)]
            if not active:
                if block and not self._draining:
                    self._wakeup.wait(timeout=0.25)
                    self._heartbeat = time.monotonic()
                return bool(self._running() or self._queued())
            plan = self._plan_round(active)
        executed = False
        for campaign, wave in plan:
            executed = True
            self._run_chunk(campaign, wave)
            with self._lock:
                self._heartbeat = time.monotonic()
        with self._lock:
            return bool(self._running() or self._queued()) or executed

    def _promote(self):
        """Queued → running while the active bound has room."""
        for campaign in self._queued():
            if len(self._running()) >= self.max_active:
                break
            self._activate(campaign)

    def _activate(self, campaign: ManagedCampaign):
        """Load (or start) the campaign's frontier and warm the memo."""
        from repro.concurrency.explorer import FrontierState
        from repro.engine import workers as worker_module

        from repro.errors import CheckpointMismatch

        spec = campaign.spec
        try:
            checkpoint = campaign.store.load_checkpoint(
                expected_digest=spec.digest())
        except CheckpointMismatch as exc:
            # A pre-existing store that belongs to a different spec:
            # refusing is a terminal verdict, not a retry loop.
            campaign.status = FAILED
            campaign.error = str(exc)
            _write_result(campaign)
            REGISTRY.inc("service.checkpoint_mismatches")
            return
        if checkpoint is not None:
            campaign.state = checkpoint.state
            campaign.base_stats = copy.deepcopy(checkpoint.stats)
            campaign.waves = checkpoint.waves
            campaign.checkpoint_done = checkpoint.done
            campaign.units_executed = len(checkpoint.state.runs)
            if campaign.waves:
                campaign.resumed = True
                REGISTRY.inc("service.resumes")
                _trace.event("service.resume",
                             campaign=campaign.campaign_id,
                             waves=campaign.waves,
                             runs=len(checkpoint.state.runs))
        else:
            campaign.state = FrontierState.start(
                seed=spec.seed, preemption_bound=spec.preemption_bound,
                max_schedules=spec.max_schedules)
            campaign.checkpoint_done = False
        preloaded = campaign.store.memo.preload_memo(worker_module.MEMO)
        worker_module.MEMO.enable_journal()
        if preloaded:
            REGISTRY.inc("service.memo_preloaded", preloaded)
        _hash_cons_outputs(
            ((result, ()) for _schedule, result in campaign.state.runs),
            campaign.cons_cache)
        campaign.bundles_cut = _existing_bundles(campaign)
        campaign.status = RUNNING
        campaign.started_at = time.monotonic()
        campaign.last_progress = campaign.started_at
        _trace.event("service.activate", campaign=campaign.campaign_id,
                     resumed=checkpoint is not None)
        if checkpoint is not None and checkpoint.done:
            self._finalize(campaign)

    def _over_budget(self, campaign: ManagedCampaign) -> bool:
        """Fail (typed, resumable) a campaign past either budget."""
        error = None
        if campaign.wave_budget is not None \
                and campaign.waves >= campaign.wave_budget \
                and campaign.pending_units():
            error = CampaignBudgetExceeded(
                campaign.campaign_id, "wave", campaign.wave_budget,
                campaign.waves)
        elif campaign.wall_budget is not None \
                and campaign.started_at is not None:
            spent = time.monotonic() - campaign.started_at
            if spent > campaign.wall_budget:
                error = CampaignBudgetExceeded(
                    campaign.campaign_id, "wall-clock",
                    campaign.wall_budget, round(spent, 3))
        if error is None:
            return False
        campaign.status = FAILED
        campaign.error = str(error)
        REGISTRY.inc("service.budget_exceeded")
        _trace.event("service.budget-exceeded",
                     campaign=campaign.campaign_id, cause=str(error))
        _write_result(campaign)
        return True

    def _plan_round(self, active: List[ManagedCampaign]):
        """The round's (campaign, wave-chunk) list, fairness first.

        Least-served campaigns (fewest units executed, then admission
        order) are planned first and every campaign with pending work
        gets at least one unit — the starvation-freedom invariant.
        Unclaimed share is then stolen by campaigns with deeper queues,
        least-served first.
        """
        order = sorted(active, key=lambda c: (c.units_executed,
                                              c.admission_index))
        share = max(1, self.round_capacity // len(order))
        takes: Dict[str, int] = {}
        spare = 0
        demand: Dict[str, int] = {}
        for campaign in order:
            pending = campaign.pending_units()
            take = min(share, pending)
            takes[campaign.campaign_id] = take
            demand[campaign.campaign_id] = pending - take
            spare += share - take
        stolen = 0
        for campaign in order:            # steal: least-served first
            if spare <= 0:
                break
            extra = min(demand[campaign.campaign_id], spare)
            takes[campaign.campaign_id] += extra
            spare -= extra
            stolen += extra
        if stolen:
            REGISTRY.inc("service.units_stolen", stolen)
        plan = []
        for campaign in order:
            wave = campaign.state.take_wave(
                limit=takes[campaign.campaign_id])
            if wave:
                plan.append((campaign, wave))
            elif campaign.state.done:
                self._finalize(campaign)
        return plan

    def _run_chunk(self, campaign: ManagedCampaign,
                   wave: List) -> None:
        """Execute one campaign's chunk and commit its checkpoint."""
        from repro.hyperenclave.monitor import HOST_ID

        with self._lock:
            if campaign.status != RUNNING:
                # Cancelled (or drained) between planning and
                # execution: the popped chunk goes back untouched and
                # the checkpoint records the exact pre-chunk state.
                campaign.state.frontier.extendleft(reversed(wave))
                self._commit(campaign, done=False)
                return
        spec = campaign.spec
        watchers = list(spec.observers) if spec.observers is not None \
            else [HOST_ID]
        from repro.concurrency.snapshot import (
            locality_key,
            prefix_cache_enabled,
        )
        use_cache = prefix_cache_enabled(None)
        units = [{"schedule": schedule, "monitor": spec.monitor,
                  "config": None, "check_ni": spec.check_ni,
                  "observers": watchers, "prefix_cache": use_cache}
                 for schedule in wave]
        # Prefix-locality keys co-locate each preemption subtree on one
        # worker (campaign-scoped so fair-share interleaving of
        # campaigns cannot mix key spaces); merge stays by unit index.
        keys = [f"{campaign.campaign_id}\x1f"
                f"{locality_key(s) if use_cache else s.describe()}"
                for s in wave]
        self.pool.stats = {}
        with _trace.span("service.chunk",
                         campaign=campaign.campaign_id,
                         units=len(wave)):
            try:
                merged = self.pool.map(WORKER_FN, units, keys=keys)
            except KeyboardInterrupt:
                with self._lock:
                    campaign.state.frontier.extendleft(reversed(wave))
                    self._commit(campaign, done=False)
                    campaign.status = INTERRUPTED
                raise
        from repro.errors import ShardQuarantined
        outputs = [_quarantine_output(schedule, value)
                   if isinstance(value, ShardQuarantined) else value
                   for schedule, value in zip(wave, merged)]
        with self._lock:
            _hash_cons_outputs(outputs, campaign.cons_cache)
            campaign.state.absorb(wave, outputs)
            campaign.units_executed += len(wave)
            campaign.last_progress = time.monotonic()
            merge_stats(campaign.base_stats, self.pool.stats)
            self._commit(campaign, done=campaign.state.done)
            self._cut_bundles(campaign)
            REGISTRY.inc("service.units_executed", len(wave))
            if campaign.state.done:
                self._finalize(campaign)

    def _commit(self, campaign: ManagedCampaign, *, done: bool):
        """The wave-boundary checkpoint + memo flush (crash barrier)."""
        appended = campaign.store.memo.extend(
            self.pool.drain_memo_journal())
        if appended:
            REGISTRY.inc("service.memo_persisted", appended)
        campaign.waves += 1
        campaign.store.save_checkpoint(CampaignCheckpoint(
            spec=campaign.spec.payload(), state=campaign.state,
            waves=campaign.waves, done=done,
            stats=copy.deepcopy(campaign.base_stats)))
        campaign.checkpoint_done = done

    def _cut_bundles(self, campaign: ManagedCampaign):
        """Cut provenance bundles for violations that have none yet.

        Indexed by position in the (deterministic) violations list, so
        cutting is idempotent across crashes and resumes.
        """
        from repro.obs.provenance import interleaving_bundle

        violations = campaign.state.violations
        if campaign.bundles_cut >= len(violations):
            return
        directory = os.path.join(campaign.store.root, ARTIFACTS_DIR)
        os.makedirs(directory, exist_ok=True)
        for index in range(campaign.bundles_cut, len(violations)):
            path = os.path.join(directory, f"bundle-{index:04d}.json")
            if not os.path.exists(path):
                interleaving_bundle(
                    violations[index],
                    monitor_cls=campaign.spec.monitor,
                    check_ni=campaign.spec.check_ni,
                    observers=campaign.spec.observers).save(path)
                REGISTRY.inc("service.bundles_cut")
                _trace.event("service.bundle",
                             campaign=campaign.campaign_id,
                             bundle=os.path.basename(path),
                             kind=violations[index].kind)
        campaign.bundles_cut = len(violations)

    def _finalize(self, campaign: ManagedCampaign):
        """Record the finished campaign's verdict durably."""
        if campaign.status not in (RUNNING, QUEUED):
            return
        if not campaign.checkpoint_done:
            # The exploration ended inside take_wave (truncation, or
            # an empty frontier on a resumed store): the last per-chunk
            # checkpoint predates that decision, so leave a done one —
            # exactly run_durable_campaign's final commit.
            self._commit(campaign, done=True)
        result = campaign.state.result()
        campaign.status = DONE
        campaign.result_summary = {
            "status": DONE,
            "ok": result.ok,
            "summary": result.summary(),
            "schedules": result.schedules_run,
            "violations": len(result.violations),
            "truncated": result.truncated,
            "waves": campaign.waves,
            "result_digest": _result_digest(result),
        }
        self._cut_bundles(campaign)
        _write_result(campaign)
        campaign.store.close()
        REGISTRY.inc("service.campaigns_done")
        _trace.event("service.done", campaign=campaign.campaign_id,
                     ok=result.ok, schedules=result.schedules_run,
                     violations=len(result.violations))


def _safe_id(campaign_id: str) -> bool:
    if not campaign_id or not all(
            ch.isalnum() or ch in "._-" for ch in campaign_id):
        return False
    # '.' / '..' (any all-dot token) resolves outside the store root.
    return campaign_id.strip(".") != ""


def _validate_budgets(wall_budget, wave_budget):
    """Typed admission check: budgets are positive numbers or absent.

    Submissions arrive over HTTP as arbitrary JSON; a non-numeric
    budget stored raw would make every ``_over_budget`` comparison
    raise and wedge the scheduling loop, so reject it at the door
    (and again in :meth:`CampaignScheduler.recover`, where a bad
    value may already be persisted in ``campaign.json``).
    """
    if wall_budget is not None:
        if isinstance(wall_budget, bool) \
                or not isinstance(wall_budget, (int, float)) \
                or wall_budget <= 0:
            raise ValueError(
                f"wall_budget must be a positive number of seconds, "
                f"got {wall_budget!r}")
    if wave_budget is not None:
        if isinstance(wave_budget, bool) \
                or not isinstance(wave_budget, int) \
                or wave_budget <= 0:
            raise ValueError(
                f"wave_budget must be a positive integer, "
                f"got {wave_budget!r}")


def _write_meta(campaign: ManagedCampaign):
    atomic_write_text(
        os.path.join(campaign.store.root, META_FILE),
        json.dumps({"id": campaign.campaign_id,
                    "spec": campaign.spec.payload(),
                    "wall_budget": campaign.wall_budget,
                    "wave_budget": campaign.wave_budget,
                    "submitted_at": time.time()},
                   indent=2, sort_keys=True) + "\n")


def _write_result(campaign: ManagedCampaign):
    payload = campaign.result_summary or {
        "status": campaign.status,
        "error": campaign.error,
        "waves": campaign.waves,
    }
    atomic_write_text(
        os.path.join(campaign.store.root, RESULT_FILE),
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _existing_bundles(campaign: ManagedCampaign) -> int:
    directory = os.path.join(campaign.store.root, ARTIFACTS_DIR)
    if not os.path.isdir(directory):
        return 0
    return sum(1 for name in os.listdir(directory)
               if name.endswith(".json"))
