"""Property tests over *generated* mirlight programs.

Hypothesis builds random small pure functions (straight-line arithmetic
with branches); for each one we check the pillars the framework rests
on:

* print → parse → print is a fixpoint and preserves behaviour,
* the concrete interpreter and the symbolic executor agree,
* the symbolic executor's path enumeration covers the input space
  (exhaustive equivalence against the interpreter itself finds zero
  mismatches).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mir.ast import BinOp
from repro.mir.builder import ProgramBuilder
from repro.mir.interp import Interpreter
from repro.mir.parser import parse_program
from repro.mir.printer import print_program
from repro.mir.types import U64
from repro.mir.value import mk_u64
from repro.symbolic import Domains, check_equivalence

# Operators safe for arbitrary operands (no div-by-zero panics).
SAFE_OPS = [BinOp.ADD, BinOp.SUB, BinOp.MUL, BinOp.BITAND, BinOp.BITOR,
            BinOp.BITXOR, BinOp.SHL, BinOp.SHR]
CMP_OPS = [BinOp.EQ, BinOp.NE, BinOp.LT, BinOp.LE, BinOp.GT, BinOp.GE]


@st.composite
def straightline(draw, sources, fb, count):
    """Emit ``count`` random arithmetic statements; returns live vars."""
    live = list(sources)
    for index in range(count):
        op = draw(st.sampled_from(SAFE_OPS))
        lhs = draw(st.sampled_from(live))
        rhs = draw(st.one_of(st.sampled_from(live),
                             st.integers(0, 2 ** 12)))
        var = f"t{len(live)}_{index}"
        fb.binop(var, op, lhs, rhs)
        live.append(var)
    return live


@st.composite
def random_programs(draw):
    """A program with one random pure function of two parameters."""
    pb = ProgramBuilder()
    fb = pb.function("f", ["a", "b"], U64)
    live = draw(straightline(["a", "b"], fb, draw(st.integers(1, 5))))
    # one branch on a comparison, each arm with its own tail
    cmp_op = draw(st.sampled_from(CMP_OPS))
    fb.binop("cond", cmp_op, draw(st.sampled_from(live)),
             draw(st.sampled_from(live)))
    fb.branch("cond", "left", "right")
    fb.label("left")
    left_live = draw(straightline(live, fb, draw(st.integers(0, 3))))
    fb.ret(draw(st.sampled_from(left_live)))
    fb.label("right")
    right_live = draw(straightline(live, fb, draw(st.integers(0, 3))))
    fb.ret(draw(st.sampled_from(right_live)))
    fb.finish()
    return pb.build()


@settings(max_examples=40, deadline=None)
@given(program=random_programs(),
       a=st.integers(0, 2 ** 64 - 1), b=st.integers(0, 2 ** 64 - 1))
def test_roundtrip_preserves_behaviour(program, a, b):
    source = print_program(program)
    reparsed = parse_program(source)
    assert print_program(reparsed) == source
    direct = Interpreter(program).call("f", [mk_u64(a), mk_u64(b)]).value
    via_text = Interpreter(reparsed).call("f",
                                          [mk_u64(a), mk_u64(b)]).value
    assert direct == via_text


@settings(max_examples=25, deadline=None)
@given(program=random_programs())
def test_symbolic_executor_matches_interpreter_exhaustively(program):
    """check_equivalence with the interpreter itself as the reference:
    the executor's path partition must cover the (bounded) input space
    with zero divergence."""
    domains = Domains({"a": range(0, 24, 5), "b": range(0, 24, 7)})

    def reference(a_value, b_value):
        return Interpreter(program).call(
            "f", [a_value, b_value]).value

    mismatches, stats = check_equivalence(program, "f", reference,
                                          domains)
    assert mismatches == []
    assert stats["cells"] == 5 * 4  # the whole domain, partitioned
