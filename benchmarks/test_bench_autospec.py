"""Spec synthesis (the Sec. 7 / Spoq automation direction), measured.

Synthesize guarded functional specifications for the whole pure corpus
from the MIR code, then validate every generated spec exhaustively
against its hand-written reference.  The benchmark times synthesis —
the productivity the paper hopes such automation buys (the paper's
code-spec writing was part of a 1.2 person-year line item).
"""

from repro.reporting import render_table
from repro.verification import (
    check_synthesized_spec, default_domains, pure_function_names,
    pure_reference, synthesize_spec,
)


def test_bench_autospec(benchmark, model, emit):
    names = pure_function_names(model.config, model.layout)

    def synthesize_all():
        return {name: synthesize_spec(
            model.program, name, default_domains(name, model.config))
            for name in names}

    specs = benchmark(synthesize_all)

    rows = []
    total_mismatches = 0
    for name in names:
        spec = specs[name]
        reference = pure_reference(name, model.config, model.layout)
        mismatches, examined = check_synthesized_spec(
            spec, reference, default_domains(name, model.config))
        total_mismatches += len(mismatches)
        rows.append([name, len(spec), examined,
                     "OK" if not mismatches else "MISMATCH"])
    emit("autospec",
         render_table(["Function", "Clauses", "Inputs validated",
                       "vs reference"],
                      rows, title="Spec synthesis — generated guarded "
                                  "specs vs hand-written references"))

    assert total_mismatches == 0
    assert len(specs) == 26
    # Sample of the artifact itself, for the record:
    emit("autospec_sample", specs["elrange_contains"].pretty())
