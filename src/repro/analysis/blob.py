"""Splitting the "big blob" and inferring the layer order (Sec. 3.3).

"The result is a 'big blob' of code. In order to verify it, we need to
split it up into per-function code files, and order them into layers
based on the call graph. This was done semi-manually with the aid of
some ad-hoc scripts."

Here the scripts are neither ad-hoc nor semi-manual: :func:`split_blob`
emits one printable source per function, :func:`infer_layer_indices`
computes each function's minimal layer (longest call chain above the
trusted layer), and :func:`layering_consistency` cross-checks the
inferred order against the hand-declared 15-layer assignment.
"""

from typing import Dict, List, Set

from repro.errors import LayerError
from repro.mir.printer import print_function


def call_graph(program) -> Dict[str, List[str]]:
    """function -> sorted list of callee names (trusted names included)."""
    graph = {}
    for name, function in program.functions.items():
        graph[name] = sorted(set(function.called_functions()))
    return graph


def split_blob(program) -> Dict[str, str]:
    """The per-function code files: name -> printed mirlight source."""
    return {name: print_function(function)
            for name, function in program.functions.items()}


def infer_layer_indices(program, trusted_names) -> Dict[str, int]:
    """Minimal layer index per function.

    Trusted primitives sit at 0; every corpus function sits one above
    the deepest thing it calls.  Cycles (which would make layering
    impossible) raise.
    """
    graph = call_graph(program)
    trusted = set(trusted_names)
    indices: Dict[str, int] = {}
    visiting: Set[str] = set()

    def depth(name):
        if name in trusted:
            return 0
        if name in indices:
            return indices[name]
        if name not in graph:
            raise LayerError(f"call to unknown function {name!r}")
        if name in visiting:
            raise LayerError(f"call cycle through {name!r}")
        visiting.add(name)
        callees = graph[name]
        level = 1 if not callees else 1 + max(depth(c) for c in callees)
        visiting.discard(name)
        indices[name] = level
        return level

    for name in sorted(graph):
        depth(name)
    return indices


def layering_consistency(program, trusted_names, declared_layers,
                         stack) -> List[str]:
    """Cross-check inferred depths against the declared 15-layer map.

    A declaration is consistent when every function's declared layer
    index is at least its inferred depth-class relative to everything it
    calls — i.e. the declared order is *a* topological order of the call
    graph.  (The declared order is coarser than the inferred depths: 15
    named layers versus raw longest-path numbers.)
    """
    problems = []
    graph = call_graph(program)
    trusted = set(trusted_names)
    for name, callees in sorted(graph.items()):
        own = stack.layer(declared_layers[name]).index
        for callee in callees:
            if callee in trusted:
                continue
            callee_index = stack.layer(declared_layers[callee]).index
            if callee_index > own:
                problems.append(
                    f"{name} (declared layer index {own}) calls {callee} "
                    f"(declared {callee_index}) — declaration is not a "
                    f"topological order")
    return problems
