"""Adversarial strategies: all contained by the correct monitor, and the
relevant ones break through the matching buggy variants."""

import pytest

from repro.hyperenclave import buggy
from repro.hyperenclave.constants import TINY
from repro.security.attacks import (
    dma_attack, epc_probe_sweep, gpt_remap_attack, hypercall_fuzz,
    mapping_attack, run_standard_attack_suite,
)

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


class TestContainment:
    def test_epc_probe_sweep_contained(self, enclave_world):
        monitor, _app, _eid = enclave_world
        outcome = epc_probe_sweep(monitor)
        assert outcome.contained
        assert outcome.blocked == outcome.attempts > 0

    def test_dma_contained(self, enclave_world):
        monitor, _app, _eid = enclave_world
        assert dma_attack(monitor).contained

    def test_mapping_attack_contained(self, enclave_world):
        monitor, app, eid = enclave_world
        outcome = mapping_attack(monitor, app, eid)
        assert outcome.contained and outcome.attempts >= 2  # SECS + REG

    def test_mbuf_remap_contained(self, enclave_world):
        monitor, app, eid = enclave_world
        assert gpt_remap_attack(monitor, app, eid).contained

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_hypercall_fuzz_preserves_invariants(self, seed,
                                                 enclave_world):
        monitor, _app, _eid = enclave_world
        outcome = hypercall_fuzz(monitor, seed=seed, rounds=120)
        assert outcome.contained, outcome.leaked

    def test_standard_suite_all_contained(self, enclave_world):
        monitor, app, eid = enclave_world
        outcomes = run_standard_attack_suite(monitor, app, eid)
        assert len(outcomes) == 5
        for outcome in outcomes.values():
            assert outcome.contained, str(outcome)


class TestBreaches:
    def test_fuzz_breaks_through_outside_elrange_monitor(self):
        monitor, _app, _eid = build_enclave_world(
            monitor_cls=buggy.OutsideElrangeMonitor)
        # Fuzz will eventually add a page outside the ELRANGE and the
        # post-fuzz invariant sweep reports it.
        breached = False
        for seed in range(6):
            outcome = hypercall_fuzz(monitor, seed=seed, rounds=150)
            if not outcome.contained:
                breached = True
                break
        assert breached

    def test_mapping_attack_reads_epc_through_secure_mbuf(self):
        """With an EPC-backed mbuf the host-side window gives the OS a
        toehold into secure memory contents via the shared mapping."""
        monitor = buggy.SecureMbufMonitor(TINY)
        primary_os = monitor.primary_os
        app = primary_os.spawn_app(1)
        epc_pa = TINY.frame_base(monitor.layout.epc_base + 3)
        eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, epc_pa, PAGE)
        monitor.hc_add_page(eid, 16 * PAGE, 0)
        monitor.hc_init(eid)
        # The enclave treats the (EPC-backed) mbuf as its channel and
        # writes "secret-adjacent" data there...
        monitor.enclave_store(eid, 4 * PAGE, 0x5EC)
        # ...which now lives in EPC that the monitor believes is shared.
        assert monitor.phys.read_word(epc_pa) == 0x5EC

    def test_outcome_str_reports_status(self, enclave_world):
        monitor, _app, _eid = enclave_world
        text = str(epc_probe_sweep(monitor))
        assert "CONTAINED" in text
