"""The unsafe-block audit of Sec. 6.1.

"To mitigate this threat, we manually checked the 105 unsafe blocks in
HyperEnclave. The majority of them (74/105) are used to indirectly call
unsafe functions, which includes constructing slices, manipulating
state-save area and executing assembly. None of the blocks with raw
pointer dereferences (13/105) involve page table memory."

This module mechanises that manual audit: it finds every ``unsafe``
block in Rust source text (brace matching, string/comment aware) and
classifies it by its dominant construct.  The classifier is
conservative — a block dereferencing a raw pointer is RAW_DEREF even if
it also calls functions, because raw dereferences are the dangerous
class for the paper's argument.
"""

import enum
import re
from dataclasses import dataclass
from typing import List


class UnsafeCategory(enum.Enum):
    RAW_DEREF = "raw-pointer-deref"
    ASM = "inline-assembly"
    SLICE = "slice-construction"
    INDIRECT_CALL = "unsafe-fn-call"
    TRANSMUTE = "transmute"
    STATIC_MUT = "static-mut-access"
    OTHER = "other"


@dataclass
class UnsafeBlock:
    """One ``unsafe { ... }`` occurrence."""

    file: str
    line: int
    body: str
    category: UnsafeCategory
    touches_page_tables: bool

    def __str__(self):
        pt = " [PAGE TABLES]" if self.touches_page_tables else ""
        return f"{self.file}:{self.line} {self.category.value}{pt}"


_PT_TOKENS = re.compile(
    r"\b(page_table|pt_root|pte|ept|gpt|PageTable|PTE|EPT)\w*")

_CATEGORY_PATTERNS = (
    (UnsafeCategory.RAW_DEREF,
     re.compile(r"\*\s*(?:\()?\s*(?:[A-Za-z_][\w.]*\s+as\s+\*|"
                r"[A-Za-z_][\w.]*_ptr\b|ptr\b)")),
    (UnsafeCategory.ASM, re.compile(r"\basm!|\bllvm_asm!|core::arch::asm")),
    (UnsafeCategory.TRANSMUTE, re.compile(r"\btransmute\b")),
    (UnsafeCategory.SLICE,
     re.compile(r"\bfrom_raw_parts(_mut)?\b|\bslice::from_raw\b")),
    (UnsafeCategory.STATIC_MUT,
     re.compile(r"\b[A-Z_][A-Z0-9_]{2,}\s*(?:=|\.|\[)")),
    (UnsafeCategory.INDIRECT_CALL,
     re.compile(r"\b[a-z_][\w:.]*\s*\(")),
)


def _strip_noise(source):
    """Blank out string literals and comments so brace matching and
    pattern classification never fire inside them (offsets preserved)."""
    out = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == '"':
            out.append('"')
            i += 1
            while i < n and source[i] != '"':
                if source[i] == "\\":
                    out.append(" ")
                    i += 1
                    if i < n:
                        out.append("\n" if source[i] == "\n" else " ")
                        i += 1
                    continue
                out.append("\n" if source[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append('"')
                i += 1
        elif source.startswith("//", i):
            while i < n and source[i] != "\n":
                out.append(" ")
                i += 1
        elif source.startswith("/*", i):
            depth = 1
            out.append("  ")
            i += 2
            while i < n and depth:
                if source.startswith("/*", i):
                    depth += 1
                    out.append("  ")
                    i += 2
                elif source.startswith("*/", i):
                    depth -= 1
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if source[i] == "\n" else " ")
                    i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def scan_source(source, file="<memory>") -> List[UnsafeBlock]:
    """All unsafe blocks in one Rust source text."""
    stripped = _strip_noise(source)
    blocks = []
    for match in re.finditer(r"\bunsafe\b", stripped):
        brace = stripped.find("{", match.end())
        if brace < 0:
            continue
        between = stripped[match.end():brace].strip()
        if between and not _is_block_form(between):
            continue  # `unsafe fn` signature, not a block
        end = _match_brace(stripped, brace)
        if end < 0:
            continue
        body = source[brace + 1:end]
        line = source[:match.start()].count("\n") + 1
        blocks.append(UnsafeBlock(
            file=file, line=line, body=body,
            category=_classify(stripped[brace + 1:end]),
            touches_page_tables=bool(
                _PT_TOKENS.search(stripped[brace + 1:end]))))
    return blocks


def _is_block_form(between):
    """``unsafe { ... }`` and ``unsafe impl``-free forms only."""
    return between in ("",)


def _match_brace(text, open_index):
    depth = 0
    for index in range(open_index, len(text)):
        if text[index] == "{":
            depth += 1
        elif text[index] == "}":
            depth -= 1
            if depth == 0:
                return index
    return -1


def _classify(body) -> UnsafeCategory:
    for category, pattern in _CATEGORY_PATTERNS:
        if pattern.search(body):
            return category
    return UnsafeCategory.OTHER


def scan_tree(files) -> List[UnsafeBlock]:
    """Scan ``{filename: source}`` pairs (or a dict)."""
    blocks = []
    items = files.items() if hasattr(files, "items") else files
    for name, source in items:
        blocks.extend(scan_source(source, file=name))
    return blocks


def classify_summary(blocks):
    """Counts per category, matching the paper's 74/13/... breakdown."""
    summary = {category: 0 for category in UnsafeCategory}
    for block in blocks:
        summary[block.category] += 1
    return summary


def blocks_touching_page_tables(blocks):
    return [block for block in blocks if block.touches_page_tables]
