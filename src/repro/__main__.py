"""``python -m repro`` — run the whole reproduction and print a report.

Sections: corpus verification (the code proofs), the live-system
invariant sweep, the adversary campaign, a two-world noninterference
check, and the Sec. 6 effort accounting.  Exits non-zero if anything
fails, so it doubles as a smoke gate.

``python -m repro replay <bundle.json>`` instead replays a
counterexample provenance bundle (see :mod:`repro.obs.provenance`)
and exits zero iff the recorded violation reproduces.
"""

import sys
import time

from repro.analysis import proof_effort_summary
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.mir_model import build_model
from repro.hyperenclave.monitor import HOST_ID, RustMonitor
from repro.reporting import fig1_architecture, render_table
from repro.security import (
    DataOracle, Hypercall, MemLoad, SystemState, check_all_invariants,
)
from repro.security.attacks import run_standard_attack_suite
from repro.security.noninterference import (
    TwoWorlds, check_theorem_noninterference,
)
from repro.verification import verify_corpus

PAGE = TINY.page_size


def build_world(secret):
    """One initialized enclave world for the report run."""
    monitor = RustMonitor(TINY)
    primary_os = monitor.primary_os
    app = primary_os.spawn_app(1)
    src = TINY.frame_base(primary_os.reserve_data_frame())
    mbuf = TINY.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src, secret)
    eid = monitor.hc_create(16 * PAGE, PAGE, 12 * PAGE, mbuf, PAGE)
    monitor.hc_add_page(eid, 16 * PAGE, src)
    primary_os.gpa_write_word(src, 0)
    monitor.hc_init(eid)
    primary_os.gpt_map(app.gpt_root_gpa, 12 * PAGE, mbuf)
    return monitor, app, eid


def replay_main(argv):
    """``python -m repro replay <bundle.json>`` — replay a provenance
    bundle and report whether the recorded violation reproduces."""
    from repro.obs.provenance import ProvenanceBundle, replay_bundle

    if len(argv) != 1:
        print("usage: python -m repro replay <bundle.json>",
              file=sys.stderr)
        return 2
    try:
        bundle = ProvenanceBundle.load(argv[0])
    except (OSError, ValueError) as exc:
        print(f"cannot load bundle {argv[0]}: {exc}", file=sys.stderr)
        return 2
    print(f"replaying {bundle.kind} bundle (seed {bundle.seed}, "
          f"schema v{bundle.version}) from {argv[0]}")
    outcome = replay_bundle(bundle)
    print(outcome.summary())
    return 0 if outcome.matched else 1


def main(argv=None):
    """Run every check and print the consolidated report.

    ``argv`` (default ``sys.argv[1:]``) may select the ``replay``
    subcommand; with no arguments the full report runs.
    """
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "replay":
        return replay_main(argv[1:])

    failures = []
    started = time.perf_counter()

    print("repro — MIRVerif / HyperEnclave reproduction "
          "(ASPLOS 2024)\n")

    # 1. Code proofs over the mirlight corpus.
    model = build_model(TINY)
    report = verify_corpus(model, cosim_samples=12)
    checks = sum(v.checked for v in report.verdicts)
    status = "OK" if report.ok else "FAILED"
    print(f"[{status}] code proofs: {len(report.verdicts)} functions in "
          f"{len(model.stack)} layers, {checks} checks")
    if not report.ok:
        failures.append("code proofs")
        for verdict in report.verdicts:
            if not verdict.ok:
                print(f"    {verdict}")

    # 2. Live-system invariants + architecture figure.
    monitor, app, eid = build_world(secret=0x41)
    invariants = check_all_invariants(monitor)
    print(f"[{'OK' if invariants.ok else 'FAILED'}] Sec. 5.2 invariants "
          f"on the live system")
    if not invariants.ok:
        failures.append("invariants")
        print(str(invariants))

    # 3. The adversary campaign.
    outcomes = run_standard_attack_suite(monitor, app, eid, seed=1)
    contained = all(o.contained for o in outcomes.values())
    blocked = sum(o.blocked for o in outcomes.values())
    attempts = sum(o.attempts for o in outcomes.values())
    print(f"[{'OK' if contained else 'FAILED'}] Sec. 2.2 adversary: "
          f"{blocked}/{attempts} hostile actions blocked, "
          f"rest validated")
    if not contained:
        failures.append("attack containment")

    # 4. Noninterference over a secret-touching trace.
    world_a = SystemState(build_world(41)[0],
                          oracle=DataOracle.seeded(2))
    world_b = SystemState(build_world(42)[0],
                          oracle=DataOracle.seeded(2))
    worlds = TwoWorlds(world_a, world_b)
    trace = [
        Hypercall(HOST_ID, "enter", (eid,)),
        (MemLoad(eid, 16 * PAGE, "rax"), MemLoad(eid, 16 * PAGE, "rax")),
        (Hypercall(eid, "exit", (eid,)), Hypercall(eid, "exit", (eid,))),
        MemLoad(HOST_ID, 0x200, "rbx"),
    ]
    violations = check_theorem_noninterference(worlds, trace,
                                               observers=[HOST_ID])
    print(f"[{'OK' if not violations else 'FAILED'}] Theorem 5.1 "
          f"(41-vs-42 worlds): {len(violations)} violations")
    if violations:
        failures.append("noninterference")

    # 5. Effort accounting.
    summary = proof_effort_summary(model)
    print()
    print(render_table(
        ["quantity", "paper", "this repro"],
        [["verified functions", 49, summary.corpus_functions],
         ["layers", 15, summary.corpus_layers],
         ["checker lines / MIR line", 1.25,
          round(summary.checker_per_mir_line, 2)],
         ["SeKVM baseline", 2.16, "—"]],
        title="Sec. 6 — effort"))

    print()
    print(fig1_architecture(monitor))

    elapsed = time.perf_counter() - started
    print(f"\ncompleted in {elapsed:.2f}s — "
          f"{'ALL GREEN' if not failures else 'FAILURES: ' + ', '.join(failures)}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
