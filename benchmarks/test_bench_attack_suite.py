"""Sec. 2.2 threat model — attack-suite throughput and containment.

Not a numbered table in the paper, but the evaluation's implicit claim:
the deployed monitor withstands the adversary's full capability set.
The bench measures the whole campaign (EPC sweeps, DMA, mapping attacks,
mbuf remap, hypercall fuzzing) and asserts total containment plus
invariant preservation afterwards.
"""

from repro.reporting import render_table
from repro.security import check_all_invariants
from repro.security.attacks import run_standard_attack_suite

from benchmarks.conftest import build_world


def test_bench_attack_suite(benchmark, emit):
    def campaign():
        monitor, app, eid = build_world()
        outcomes = run_standard_attack_suite(monitor, app, eid, seed=23)
        report = check_all_invariants(monitor)
        return outcomes, report

    outcomes, report = benchmark(campaign)

    rows = [[name, outcome.attempts, outcome.blocked,
             "contained" if outcome.contained else "BREACHED"]
            for name, outcome in outcomes.items()]
    rows.append(["(post-campaign invariants)", "", "",
                 "hold" if report.ok else "VIOLATED"])
    emit("attack_suite",
         render_table(["Attack", "Attempts", "Blocked", "Outcome"],
                      rows, title="Sec. 2.2 — adversary containment"))

    assert all(outcome.contained for outcome in outcomes.values())
    assert report.ok
