"""The parallel checking fabric's perf trajectory.

Times the sequential interleaving campaign (three full token-passing
executions per schedule, no memoisation — the engine as it existed
before ``repro.engine``) against the sharded fabric on the identical
grid, asserts the merged report is **byte-identical**, and refreshes
``BENCH_checking.json`` at the repo root — the committed record of the
speedup, schedule/state throughput, and memo hit rates.

:func:`repro.engine.bench.bench_checking` does its own median-of-N
wall-clock measurement (the thing under test is the harness itself),
so this bench does not wrap it in the ``benchmark`` fixture's
repetition machinery.
"""

import json
import os

from repro.engine.bench import bench_checking
from repro.reporting import render_table

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_checking.json")


def test_bench_checking_fabric(emit):
    record = bench_checking(preemption_bound=2, max_schedules=600,
                            workers=4, repeats=3)
    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    rows = [
        ["sequential", record["sequential"]["seconds"],
         record["sequential"]["schedules_per_sec"],
         record["sequential"]["states_per_sec"]],
        ["parallel (4 workers)", record["parallel"]["seconds"],
         record["parallel"]["schedules_per_sec"],
         record["parallel"]["states_per_sec"]],
    ]
    emit("checking_fabric",
         render_table(
             ["Engine", "seconds", "schedules/s", "states/s"], rows,
             title=f"Parallel checking fabric: {record['schedules']} "
                   f"schedules, {record['states']} states, "
                   f"speedup {record['speedup']}x, memo hit rate "
                   f"{record['memo']['hit_rate']}"))
    # byte-identity is the hard guarantee; bench_checking raises on
    # divergence, but assert the recorded flag too
    assert record["byte_identical"] is True
    assert record["schedules"] == 178
    # the committed record holds the ≥2x measurement; under a noisy,
    # loaded runner the floor asserted here is the structural saving
    # (2 fast executions/schedule vs 3 slow ones), which parallelism
    # cannot fall below
    assert record["speedup"] > 1.2
    assert record["memo"]["hit_rate"] > 0.8
