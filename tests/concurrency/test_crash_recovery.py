"""Crash-in-critical-section recovery: PR 1's crash model composed
with the concurrency plane."""

from repro.concurrency import DeterministicScheduler, Schedule
from repro.concurrency.shootdown import detect_stale_translations
from repro.faults import (
    crash_in_critical_section_campaign,
    default_concurrent_workloads,
)
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import RustMonitor
from repro.security import DataOracle, SystemState, check_all_invariants
from repro.security.invariants import check_vcpu_consistency


def build_scheduled_world(schedule):
    monitor = RustMonitor(TINY, num_vcpus=2)
    primary_os = monitor.primary_os
    primary_os.spawn_app(1)
    page = TINY.page_size
    ctx = {
        "page": page,
        "mbuf_pa": TINY.frame_base(primary_os.reserve_data_frame()),
        "src_pa": TINY.frame_base(primary_os.reserve_data_frame()),
        "elrange_base": 16 * page,
    }
    primary_os.gpa_write_word(ctx["src_pa"], 0x5EC2E7)
    state = SystemState(monitor, DataOracle.seeded(13))
    scheduler = DeterministicScheduler(
        monitor, default_concurrent_workloads(state, ctx), schedule,
        probe=detect_stale_translations)
    return monitor, scheduler


class TestFullCampaign:
    def test_rust_monitor_absorbs_every_crash(self):
        report = crash_in_critical_section_campaign()
        assert report.critical_yields > 20
        assert len(report.records) == report.critical_yields
        assert report.ok, [str(r.violations[0])
                           for r in report.failures()[:3]]

    def test_crashes_land_on_both_vcpus_and_many_kinds(self):
        report = crash_in_critical_section_campaign()
        assert {record.vid for record in report.records} == {0, 1}
        kinds = {record.kind for record in report.records}
        assert "phys.write" in kinds
        assert kinds & {"lock.acquire", "shootdown.ipi"}

    def test_render_mentions_every_crash_kind(self):
        report = crash_in_critical_section_campaign()
        text = report.render()
        for kind in {record.kind for record in report.records}:
            assert kind in text
        assert "0 failures" in text


class TestSingleCrash:
    def test_crash_releases_locks_and_rolls_back(self):
        # Find a yield taken with locks held, then re-run crashing there.
        _monitor, scheduler = build_scheduled_world(Schedule())
        point = scheduler.run().critical_yields()[0]
        schedule = Schedule(crash=(point.vid, point.yield_index))
        monitor, scheduler = build_scheduled_world(schedule)
        result = scheduler.run()
        assert point.vid in result.parked
        assert not scheduler.locks.any_held()
        assert not result.lock_violations
        assert check_all_invariants(monitor).ok
        assert check_vcpu_consistency(monitor) == []

    def test_surviving_vcpu_runs_to_completion(self):
        _monitor, scheduler = build_scheduled_world(Schedule())
        baseline = scheduler.run()
        point = next(y for y in baseline.critical_yields() if y.vid == 0)
        monitor, scheduler = build_scheduled_world(
            Schedule(crash=(0, point.yield_index)))
        result = scheduler.run()
        # vCPU 1's whole session still executed (its task hit no error
        # and was never parked), against a monitor vCPU 0 abandoned
        # mid-hypercall.
        assert 1 not in result.parked
        assert 1 not in result.task_errors
        assert check_all_invariants(monitor).ok
