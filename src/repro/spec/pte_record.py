"""The parameterised PTE record and tree tables (Sec. 4.1).

The paper's Coq record::

    Record PTE {content:Type} := mkPTE {
      addr_content: option (int64 * content);
      flags: list bool;
      unused_inv : addr_content = None
                   -> (is_huge = false /\\ is_present = false)
    }.

Here absence is modelled by the ZMap default (``None``), so a
:class:`PTERecord` always *has* address+content and the ``unused_inv``
obligation becomes a constructor check: a record must be present, and an
absent entry trivially satisfies "not huge and not present".  Terminal
records carry ``content=None`` (the paper's unit); intermediate records
carry the next :class:`TreeTable` *by value* — the nesting that
"constitutes a tree-shaped view of page tables".
"""

from dataclasses import dataclass
from typing import Optional

from repro.ccal.zmap import ZMap
from repro.errors import SpecError
from repro.hyperenclave.constants import PteFlagBits


@dataclass(frozen=True)
class TreeTable:
    """One page table in the tree view: a total map index -> PTERecord.

    ``level`` is the paging level this table serves (root = config.levels,
    leaves = 1).  ``entries`` is a ZMap with default None (absent).
    """

    level: int
    entries: ZMap

    @staticmethod
    def empty(level):
        return TreeTable(level=level, entries=ZMap(default=None))

    def get(self, index) -> Optional["PTERecord"]:
        return self.entries.get(index)

    def set(self, index, record) -> "TreeTable":
        return TreeTable(self.level, self.entries.set(index, record))

    def unset(self, index) -> "TreeTable":
        return TreeTable(self.level, self.entries.unset(index))

    def present_indices(self):
        return self.entries.keys()


@dataclass(frozen=True)
class PTERecord:
    """A present page-table entry in the tree view.

    ``addr`` — the physical address packed in the entry (a frame base
    for terminals; for intermediates it is retained so the refinement
    relation can compare against flat memory, but the *tree* semantics
    never follow it — they follow ``content``);
    ``flags`` — the flag bitmask;
    ``content`` — the nested table, or None for a terminal entry.
    """

    addr: int
    flags: int
    content: Optional[TreeTable] = None

    def __post_init__(self):
        # unused_inv contrapositive: any materialised record must be
        # present; absent entries are ZMap-default None.
        if not self.is_present:
            raise SpecError(
                "PTERecord must be present; model absent entries as None "
                "(unused_inv)")
        if self.is_huge and self.content is not None:
            raise SpecError("a huge entry is terminal; it cannot carry a "
                            "nested table")

    # -- flag views -------------------------------------------------------------

    def _flag(self, bit):
        return bool((self.flags >> bit) & 1)

    @property
    def is_present(self):
        return self._flag(PteFlagBits.PRESENT)

    @property
    def is_writable(self):
        return self._flag(PteFlagBits.WRITE)

    @property
    def is_user(self):
        return self._flag(PteFlagBits.USER)

    @property
    def is_huge(self):
        return self._flag(PteFlagBits.HUGE)

    @property
    def is_terminal(self):
        return self.content is None

    def with_content(self, content):
        return PTERecord(addr=self.addr, flags=self.flags, content=content)
