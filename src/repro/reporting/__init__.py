"""Rendering helpers for the bench harness: tables, metrics, figures."""

from repro.reporting.tables import render_metrics, render_table
from repro.reporting.figures import (
    fig1_architecture,
    fig2_translation,
    fig3_pipeline,
    fig4_pointer_cases,
    fig5_exploits,
)

__all__ = [
    "render_metrics", "render_table",
    "fig1_architecture", "fig2_translation", "fig3_pipeline",
    "fig4_pointer_cases", "fig5_exploits",
]
