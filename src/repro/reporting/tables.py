"""Fixed-width table rendering for bench output."""


def render_table(headers, rows, title=None):
    """Render an aligned text table.

    ``rows`` cells are stringified; numeric cells are right-aligned,
    text cells left-aligned.
    """
    stringified = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in stringified:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    numeric = [all(_is_numeric(row[i]) for row in stringified if row[i])
               for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in stringified:
        cells = []
        for index, cell in enumerate(row):
            if numeric[index]:
                cells.append(cell.rjust(widths[index]))
            else:
                cells.append(cell.ljust(widths[index]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def _cell(value):
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_numeric(text):
    try:
        float(text)
        return True
    except ValueError:
        return False
