"""The mirlight transcription of HyperEnclave's paging core.

This package is our stand-in for ``rustc --emit mir`` + ``mirlightgen``
(Sec. 3.3): the memory-module functions, hand-transcribed into mirlight
CFGs via the builder, organised into the 15 CCAL layers, with the bottom
(trusted) layer supplied as specifications over an abstract state — "the
abstract data contains a big flat array of integers representing the
physical memory of the frame area" (Sec. 4.1).

Layout:

* :mod:`repro.hyperenclave.mir_model.state` — the abstract state fields
  and the trusted-layer primitives (layer 0),
* :mod:`repro.hyperenclave.mir_model.pure` — the pure bit-manipulation
  functions (PTE ops, index arithmetic, range predicates),
* :mod:`repro.hyperenclave.mir_model.stateful` — entry IO, frame
  allocation, walking, mapping, querying, EPCM bookkeeping,
* :mod:`repro.hyperenclave.mir_model.addrspace` — the object-oriented
  address-space layer whose handles are RData pointers (Sec. 3.4 case 3),
* :mod:`repro.hyperenclave.mir_model.layers` — the 15-layer stack, the
  function→layer map, and the assembled program.

Everything is generated for an explicit
:class:`~repro.hyperenclave.constants.MachineConfig`; geometry constants
are inlined into the MIR as literals, mirroring retrofit rule 4
(Sec. 2.3, hardcoded memory-layout constants).
"""

from repro.hyperenclave.mir_model.state import (
    make_initial_absstate,
    trusted_primitives,
    absstate_to_flat,
    flat_to_absstate,
)
from repro.hyperenclave.mir_model.layers import (
    build_program,
    build_layer_stack,
    LAYER_NAMES,
    layer_of_function,
    MirModel,
    build_model,
)

__all__ = [
    "make_initial_absstate",
    "trusted_primitives",
    "absstate_to_flat",
    "flat_to_absstate",
    "build_program",
    "build_layer_stack",
    "LAYER_NAMES",
    "layer_of_function",
    "MirModel",
    "build_model",
]
