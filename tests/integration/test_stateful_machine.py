"""Hypothesis stateful testing: the §5.2 claim "we prove that the
hypercalls preserve them", as a state machine.

The machine drives an arbitrary interleaving of hypercalls and
guest-side actions against a live monitor, and checks *every* invariant
family after *every* rule — a randomized search for an action sequence
that breaks isolation.  A parallel shadow model tracks what should be
live, so bookkeeping (EPCM counts, allocator usage) is cross-checked
too.
"""

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    Bundle, RuleBasedStateMachine, consumes, initialize, invariant, rule,
)

from repro.errors import HypervisorError, ReproError, TranslationFault
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.enclave import EnclaveState
from repro.hyperenclave.monitor import HOST_ID, RustMonitor
from repro.security import check_all_invariants

PAGE = TINY.page_size
ELRANGE_SLOTS = [16 * PAGE, 32 * PAGE, 48 * PAGE]
MBUF_SLOTS = [4 * PAGE, 5 * PAGE, 6 * PAGE]


class HypervisorMachine(RuleBasedStateMachine):
    enclaves = Bundle("enclaves")

    @initialize()
    def boot(self):
        self.monitor = RustMonitor(TINY)
        self.primary_os = self.monitor.primary_os
        self.app = self.primary_os.spawn_app(1)
        self.src = TINY.frame_base(self.primary_os.reserve_data_frame())
        self.mbufs = [TINY.frame_base(self.primary_os.reserve_data_frame())
                      for _ in MBUF_SLOTS]
        self.slot_of = {}
        self.pages_added = {}

    # -- hypercall rules ------------------------------------------------------

    @rule(target=enclaves, slot=st.integers(0, 2),
          secret=st.integers(0, 2 ** 32))
    def create(self, slot, secret):
        if slot in self.slot_of.values():
            return None
        self.primary_os.gpa_write_word(self.src, secret)
        try:
            eid = self.monitor.hc_create(
                ELRANGE_SLOTS[slot], 2 * PAGE, MBUF_SLOTS[slot],
                self.mbufs[slot], PAGE)
        except HypervisorError:
            return None
        self.slot_of[eid] = slot
        self.pages_added[eid] = 0
        return eid

    @rule(eid=enclaves, which=st.integers(0, 1))
    def add_page(self, eid, which):
        if eid not in self.slot_of:
            return
        va = ELRANGE_SLOTS[self.slot_of[eid]] + which * PAGE
        try:
            self.monitor.hc_add_page(eid, va, self.src)
            self.pages_added[eid] += 1
        except HypervisorError:
            pass

    @rule(eid=enclaves)
    def init(self, eid):
        if eid not in self.slot_of:
            return
        try:
            self.monitor.hc_init(eid)
        except HypervisorError:
            pass

    @rule(eid=enclaves, reg_value=st.integers(0, 2 ** 16))
    def enter_compute_exit(self, eid, reg_value):
        if eid not in self.slot_of:
            return
        try:
            self.monitor.hc_enter(eid)
        except HypervisorError:
            return
        self.monitor.vcpu.write_reg("rax", reg_value)
        self.monitor.hc_exit(eid)

    @rule(eid=enclaves, which=st.integers(0, 1))
    def aug_page(self, eid, which):
        if eid not in self.slot_of:
            return
        va = ELRANGE_SLOTS[self.slot_of[eid]] + which * PAGE
        try:
            self.monitor.hc_aug_page(eid, va)
            self.pages_added[eid] += 1
        except HypervisorError:
            pass

    @rule(eid=enclaves, which=st.integers(0, 1))
    def remove_page(self, eid, which):
        if eid not in self.slot_of:
            return
        va = ELRANGE_SLOTS[self.slot_of[eid]] + which * PAGE
        try:
            self.monitor.hc_remove_page(eid, va)
            self.pages_added[eid] -= 1
        except HypervisorError:
            pass

    @rule(eid=consumes(enclaves))
    def destroy(self, eid):
        if eid not in self.slot_of:
            return
        try:
            self.monitor.hc_destroy(eid)
        except HypervisorError:
            return
        del self.slot_of[eid]
        del self.pages_added[eid]

    # -- adversarial guest rules --------------------------------------------------

    @rule(offset=st.integers(0, 31))
    def probe_secure_memory(self, offset):
        gpa = TINY.frame_base(self.monitor.layout.secure_base + offset)
        with pytest.raises(TranslationFault):
            self.primary_os.gpa_read_word(gpa)

    @rule(value=st.integers(0, 2 ** 64 - 1), word=st.integers(0, 63))
    def scribble_untrusted_memory(self, value, word):
        self.primary_os.gpa_write_word(0x1000 + word * 8, value)

    @rule(eid=enclaves)
    def remap_gpt_at_enclave(self, eid):
        """Point the app's GPT at the victim's EPC — must stay blocked."""
        if eid not in self.slot_of:
            return
        for frame, _entry in self.monitor.epcm.owned_by(eid)[:1]:
            self.primary_os.gpt_map(self.app.gpt_root_gpa, 7 * PAGE,
                                    TINY.frame_base(frame))
            assert self.primary_os.probe(self.app, 7 * PAGE) is None

    # -- invariants after every rule -------------------------------------------------

    @invariant()
    def security_invariants_hold(self):
        if not hasattr(self, "monitor"):
            return
        report = check_all_invariants(self.monitor)
        assert report.ok, str(report)

    @invariant()
    def bookkeeping_consistent(self):
        if not hasattr(self, "monitor"):
            return
        # EPCM busy pages == SECS + REG accounted per live enclave.
        expected_busy = sum(1 + pages
                            for pages in self.pages_added.values())
        busy = self.monitor.layout.epc_size \
            - self.monitor.epcm.free_count()
        assert busy == expected_busy
        # The host is active between rules (every enter is paired).
        assert self.monitor.active == HOST_ID


HypervisorMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)

TestHypervisorMachine = HypervisorMachine.TestCase
