"""Geometry scaling: the tiny checking geometry vs production x86-64.

Shape claim: the same code paths handle both geometries, and the
boot-time page-table cost stays near-constant thanks to huge-page
mapping (1 GiB spans at x86 scale) even though physical memory grows by
four orders of magnitude.  The benchmark times the x86-64 boot +
enclave lifecycle + invariant sweep — the expensive end of the scale.
"""

from repro.hyperenclave.constants import MemoryLayout, TINY, X86_64
from repro.hyperenclave.monitor import RustMonitor
from repro.reporting import render_table
from repro.security import check_all_invariants


def lifecycle(config, layout=None):
    monitor = RustMonitor(config, layout=layout)
    primary_os = monitor.primary_os
    page = config.page_size
    src = config.frame_base(primary_os.reserve_data_frame())
    mbuf = config.frame_base(primary_os.reserve_data_frame())
    elrange = 64 * page
    eid = monitor.hc_create(elrange, 2 * page, 32 * page, mbuf, page)
    monitor.hc_add_page(eid, elrange, src)
    monitor.hc_init(eid)
    monitor.hc_enter(eid)
    monitor.hc_exit(eid)
    report = check_all_invariants(monitor)
    return monitor, report


def test_bench_geometry_scaling(benchmark, emit):
    x86_layout = MemoryLayout.compact_for(X86_64)

    monitor_x86, report_x86 = benchmark(lifecycle, X86_64, x86_layout)
    assert report_x86.ok

    monitor_tiny, report_tiny = lifecycle(TINY)
    assert report_tiny.ok

    rows = []
    for label, config, monitor in (
            ("tiny", TINY, monitor_tiny),
            ("x86_64", X86_64, monitor_x86)):
        rows.append([
            label,
            config.levels,
            config.entries_per_table,
            f"{config.phys_bytes // 1024} KiB",
            monitor.pt_allocator.used_count,
        ])
    emit("geometry_scaling",
         render_table(["Geometry", "Levels", "Entries/table",
                       "Phys mem", "PT frames after lifecycle"],
                      rows, title="Geometry scaling — tiny vs x86-64"))

    # Shape: boot+lifecycle PT cost grows sub-linearly (huge pages):
    # four orders of magnitude more memory, same order of table frames.
    assert monitor_x86.pt_allocator.used_count < \
        4 * monitor_tiny.pt_allocator.used_count
