"""Structured tracing: nested spans and typed events, off by default.

The checking stack is trusted in proportion to the evidence it can
replay (the Verus / Foundational-VeriFast argument): when a campaign
refutes an invariant or quietly degrades its budget, the *sequence* of
engine decisions is the audit trail.  This module is that trail's
recorder — and, critically, it is **observation only**: no instrumented
code path reads anything back from the tracer, so tracing on or off
cannot change a single verdict (asserted by the invariance suite).

Design, mirroring the fault plane (:mod:`repro.faults.plane`) and the
scheduler's instrumentation hooks:

* a module-global **installed tracer**; the hooks :func:`span` and
  :func:`event` are one-``is None``-test no-ops when nothing is
  installed, so production paths pay nothing;
* a :class:`Tracer` owns an in-memory **ring buffer** (completed spans
  and events, oldest evicted first) and an optional **JSONL sink** to
  which every record is written as one line the moment it completes;
* spans nest: ``with span("campaign.crash-step", seed=0): ...`` — the
  tracer keeps an open-span stack, and events attach to whatever span
  is innermost when they fire;
* records are plain dicts with a fixed schema (see
  :func:`validate_records`), so traces round-trip through JSON and are
  diffable across runs.

**Worker spans.**  The sharded executor runs units in other processes;
their spans are recorded by a worker-local tracer, shipped back with
the shard results, and re-emitted into the parent tracer **in unit
order** via :meth:`Tracer.adopt` — so the assembled trace is a pure
function of the unit list, never of shard layout or completion order.
Worker timestamps stay worker-relative (a perf-counter is only
comparable within one process); ordering, not wall-clock, is the
deterministic part of a trace.
"""

import json
import os
import tempfile
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

#: Event names used by the instrumented stack (informative, not closed):
#: ``degradation`` (an engine fell back), ``fault.fired`` (an armed
#: injection hit), ``lock.acquire``, ``memo`` (hit/miss of a memoised
#: checker), ``solver.check_sat`` / ``solver.must_hold``, ``verdict``,
#: ``violation``, ``schedule``, ``reseed``.
RECORD_TYPES = ("span", "event")

_SPAN_KEYS = {"type", "id", "parent", "name", "t0", "t1", "attrs"}
_EVENT_KEYS = {"type", "id", "span", "name", "t", "attrs"}


class Tracer:
    """Span/event recorder with a ring buffer and an optional JSONL sink.

    ``ring`` bounds the in-memory record list (oldest evicted first);
    ``jsonl`` names a file every completed record is appended to as one
    JSON line.  A tracer is cheap enough to leave installed for a whole
    campaign: record construction is a dict literal and an append.

    The sink is written to a temp file in the target directory and
    renamed over ``jsonl`` (fsynced) only on :meth:`close` — a crashed
    campaign leaves the previous complete trace (or no file) at the
    path, never a torn one, and readers polling the path cannot observe
    a half-written line.
    """

    def __init__(self, ring: int = 65536, jsonl: Optional[str] = None,
                 clock=time.perf_counter):
        if ring < 1:
            raise ValueError("ring size must be positive")
        self.ring = ring
        self.records: List[Dict] = []
        self._clock = clock
        self._next_id = 0
        self._stack: List[Dict] = []      # open spans, innermost last
        self._jsonl_path = jsonl
        self._sink = None
        self._sink_temp = None
        if jsonl is not None:
            directory = os.path.dirname(os.path.abspath(jsonl))
            fd, self._sink_temp = tempfile.mkstemp(
                dir=directory, prefix=os.path.basename(jsonl) + ".",
                suffix=".tmp")
            self._sink = os.fdopen(fd, "w")

    # -- record plumbing ----------------------------------------------------

    def _new_id(self) -> int:
        ident = self._next_id
        self._next_id += 1
        return ident

    def _emit(self, record: Dict):
        self.records.append(record)
        if len(self.records) > self.ring:
            del self.records[:len(self.records) - self.ring]
        if self._sink is not None:
            self._sink.write(json.dumps(record, sort_keys=True) + "\n")

    # -- spans and events ---------------------------------------------------

    def current_span_id(self) -> Optional[int]:
        return self._stack[-1]["id"] if self._stack else None

    def begin_span(self, name: str, attrs: Dict) -> Dict:
        """Open a nested span; returns the open record for
        :meth:`end_span` (most callers use the :func:`span` hook)."""
        open_span = {"type": "span", "id": self._new_id(),
                     "parent": self.current_span_id(), "name": name,
                     "t0": self._clock(), "t1": None, "attrs": attrs}
        self._stack.append(open_span)
        return open_span

    def end_span(self, open_span: Dict):
        """Close ``open_span`` (and any spans left open inside it) and
        emit it to the ring/sink."""
        open_span["t1"] = self._clock()
        # Close any spans left open inside (a return path skipped an
        # exit); innermost first, so the record order stays nested.
        while self._stack:
            inner = self._stack.pop()
            if inner is open_span:
                break
            inner["t1"] = open_span["t1"]
            self._emit(inner)
        self._emit(open_span)

    def event(self, name: str, attrs: Dict):
        self._emit({"type": "event", "id": self._new_id(),
                    "span": self.current_span_id(), "name": name,
                    "t": self._clock(), "attrs": attrs})

    # -- export / adoption --------------------------------------------------

    def export(self) -> List[Dict]:
        """A picklable copy of the ring's records (shipping format)."""
        return [dict(record) for record in self.records]

    def adopt(self, records: List[Dict], parent: Optional[int] = None):
        """Re-emit another tracer's records under this tracer.

        Ids are remapped into this tracer's id space in record order and
        root records are attached to ``parent`` (default: the current
        open span), so adopting shard exports in unit order yields a
        trace identical in structure to having run the units inline.
        The id mapping is built for the whole batch *before* any
        reference is rewritten: completed-record order is
        innermost-first, so an event always precedes the span it
        belongs to and a single-pass remap would mis-parent it.
        """
        if parent is None:
            parent = self.current_span_id()
        mapping = {record["id"]: self._new_id() for record in records}
        for record in records:
            adopted = dict(record)
            adopted["id"] = mapping[record["id"]]
            link = "parent" if record["type"] == "span" else "span"
            old = record.get(link)
            adopted[link] = mapping.get(old, parent)
            self._emit(adopted)

    def close(self):
        """End any open spans and publish the JSONL sink atomically."""
        now = self._clock()
        while self._stack:
            open_span = self._stack.pop()
            open_span["t1"] = now
            self._emit(open_span)
        if self._sink is not None:
            sink, self._sink = self._sink, None
            temp, self._sink_temp = self._sink_temp, None
            try:
                sink.flush()
                os.fsync(sink.fileno())
                sink.close()
                os.replace(temp, self._jsonl_path)
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False


# ---------------------------------------------------------------------------
# The installed tracer (module-global so instrumented code needs no plumbing)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    return _ACTIVE


def enabled() -> bool:
    """Is a tracer installed?  The one check every hook starts with."""
    return _ACTIVE is not None


def install(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` (or ``None`` to disable); returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def installed(tracer: Tracer):
    """Make ``tracer`` the active tracer for the dynamic extent."""
    previous = install(tracer)
    try:
        yield tracer
    finally:
        install(previous)


# -- the hooks instrumented code calls (cheap when no tracer is installed) ---


class _NullSpan:
    """The disabled-path span: enter/exit with zero bookkeeping."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *_exc):
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    __slots__ = ("_tracer", "_name", "_attrs", "_open")

    def __init__(self, tracer, name, attrs):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._open = None

    def __enter__(self):
        self._open = self._tracer.begin_span(self._name, self._attrs)
        return self._open

    def __exit__(self, *_exc):
        self._tracer.end_span(self._open)
        return False


def span(_span_name: str, **attrs):
    """A nested-span context manager; free when tracing is off.

    The positional parameter is underscore-prefixed so ``name`` stays
    available as an attribute key (``span("check.pure", name=fn)``).
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return _LiveSpan(tracer, _span_name, attrs)


def event(_event_name: str, **attrs):
    """Record one typed event on the innermost open span; free when off."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.event(_event_name, attrs)


# ---------------------------------------------------------------------------
# Schema validation (tests and the CI smoke both gate on this)
# ---------------------------------------------------------------------------


def validate_records(records: List[Dict]) -> int:
    """Check a record list against the trace schema; returns the count.

    Raises ``ValueError`` naming the first offending record.  Checks:
    exact key sets per type, unique integer ids, and referential
    integrity — every span ``parent`` and event ``span`` is ``None`` or
    the id of a span present in the list (ring eviction can orphan
    references, so validation is for complete traces: a JSONL sink or
    an un-evicted ring).
    """
    span_ids = {record["id"] for record in records
                if isinstance(record, dict)
                and record.get("type") == "span"}
    seen_ids = set()
    for position, record in enumerate(records):
        if not isinstance(record, dict):
            raise ValueError(f"record {position} is not an object")
        kind = record.get("type")
        if kind == "span":
            expected = _SPAN_KEYS
            ref, ref_key = record.get("parent"), "parent"
            times = [record.get("t0"), record.get("t1")]
        elif kind == "event":
            expected = _EVENT_KEYS
            ref, ref_key = record.get("span"), "span"
            times = [record.get("t")]
        else:
            raise ValueError(
                f"record {position} has unknown type {kind!r}")
        if set(record) != expected:
            raise ValueError(
                f"record {position} ({kind}) has keys "
                f"{sorted(record)}, expected {sorted(expected)}")
        if not isinstance(record["id"], int):
            raise ValueError(f"record {position} id is not an int")
        if record["id"] in seen_ids:
            raise ValueError(f"record {position} reuses id {record['id']}")
        seen_ids.add(record["id"])
        if ref is not None and ref not in span_ids:
            raise ValueError(
                f"record {position} {ref_key}={ref!r} names no span "
                f"in the trace")
        if not isinstance(record["name"], str) or not record["name"]:
            raise ValueError(f"record {position} has no name")
        if not isinstance(record["attrs"], dict):
            raise ValueError(f"record {position} attrs is not an object")
        for value in times:
            if not isinstance(value, (int, float)):
                raise ValueError(f"record {position} has a non-numeric "
                                 f"timestamp")
    return len(records)


def validate_jsonl(path: str) -> int:
    """Validate a trace JSONL file; returns the number of records."""
    records = []
    with open(path) as fh:
        for line_number, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {exc}") \
                    from None
    return validate_records(records)
