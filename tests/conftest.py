"""Shared fixtures: geometries, monitors, the corpus model."""

import pytest

from repro.hyperenclave.constants import TINY, X86_64, MemoryLayout
from repro.hyperenclave.monitor import RustMonitor
from repro.hyperenclave.mir_model import build_model


@pytest.fixture(scope="session")
def tiny():
    return TINY


@pytest.fixture(scope="session")
def x86():
    return X86_64


@pytest.fixture(scope="session")
def tiny_layout():
    return MemoryLayout.default_for(TINY)


@pytest.fixture(scope="session")
def model():
    """The mirlight corpus model (expensive enough to share)."""
    return build_model(TINY)


@pytest.fixture
def monitor():
    return RustMonitor(TINY)


def build_enclave_world(monitor_cls=RustMonitor, secret=0xDEAD,
                        pages=1, config=TINY, scrub_source=True):
    """A booted monitor with one app and one initialized enclave whose
    first EPC page holds ``secret``.  Returns (monitor, app, eid)."""
    monitor = monitor_cls(config)
    primary_os = monitor.primary_os
    app = primary_os.spawn_app(1)
    page = config.page_size
    mbuf_pa = config.frame_base(primary_os.reserve_data_frame())
    src_pa = config.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src_pa, secret)
    elrange_base = 16 * page
    eid = monitor.hc_create(elrange_base=elrange_base,
                            elrange_size=pages * page,
                            mbuf_va=12 * page, mbuf_pa=mbuf_pa,
                            mbuf_size=page)
    for index in range(pages):
        monitor.hc_add_page(eid, elrange_base + index * page, src_pa)
    if scrub_source:
        primary_os.gpa_write_word(src_pa, 0)
    monitor.hc_init(eid)
    primary_os.gpt_map(app.gpt_root_gpa, 12 * page, mbuf_pa)
    return monitor, app, eid


@pytest.fixture
def enclave_world():
    return build_enclave_world()
