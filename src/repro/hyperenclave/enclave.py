"""Enclave objects — layer 11.

An enclave bundles the monitor-side state of one trusted execution
domain: its ELRANGE (the GVA window backed by EPC pages), its
marshalling buffer, the two monitor-managed page tables (GPT and EPT,
Sec. 2.1 / Fig. 1), its lifecycle state, and the saved vCPU context used
across entries/exits.
"""

import enum

from repro.errors import HypercallError
from repro.hyperenclave.mbuf import MarshallingBuffer


class EnclaveState(enum.Enum):
    """ECREATE → EADD* → EINIT → (enter/exit)* lifecycle."""

    CREATED = "created"          # ECREATE done, pages may be added
    INITIALIZED = "initialized"  # EINIT done, may be entered
    RUNNING = "running"          # a vCPU is inside
    DESTROYED = "destroyed"


class Enclave:
    """Monitor-side state of one enclave."""

    def __init__(self, eid, elrange_base, elrange_size, mbuf, gpt, ept,
                 gpa_base):
        self.eid = eid
        self.elrange_base = elrange_base
        self.elrange_size = elrange_size
        self.mbuf = mbuf
        self.gpt = gpt            # GVA -> GPA, monitor-managed
        self.ept = ept            # GPA -> HPA, monitor-managed
        self.gpa_base = gpa_base  # where ELRANGE lands in guest-physical
        self.state = EnclaveState.CREATED
        self.saved_context = None
        self.measurement = 0      # toy EADD measurement accumulator
        if mbuf is not None and self.overlaps_elrange(
                mbuf.va_base, mbuf.size):
            raise HypercallError(
                f"enclave {eid}: marshalling buffer overlaps ELRANGE")

    def clone(self, gpt, ept):
        """An independent copy over pre-cloned page tables.

        Built via ``object.__new__`` so the constructor's overlap
        validation does not re-run — deliberately: the buggy variants
        plant enclaves that would fail it, and a clone must reproduce
        the state it was given, bugs included.
        """
        new = object.__new__(type(self))
        new.eid = self.eid
        new.elrange_base = self.elrange_base
        new.elrange_size = self.elrange_size
        new.mbuf = self.mbuf          # frozen descriptor
        new.gpt = gpt
        new.ept = ept
        new.gpa_base = self.gpa_base
        new.state = self.state
        new.saved_context = self.saved_context   # immutable tuple
        new.measurement = self.measurement
        return new

    # -- address classification -----------------------------------------------------

    @property
    def elrange_end(self):
        return self.elrange_base + self.elrange_size

    def in_elrange(self, va):
        return self.elrange_base <= va < self.elrange_end

    def overlaps_elrange(self, base, size):
        return self.elrange_base < base + size and base < self.elrange_end

    def in_mbuf(self, va):
        return self.mbuf is not None and self.mbuf.contains_va(va)

    def elrange_gpa(self, va):
        """The GPA an ELRANGE VA maps to (linear inside the window)."""
        if not self.in_elrange(va):
            raise HypercallError(
                f"va {va:#x} outside ELRANGE of enclave {self.eid}")
        return self.gpa_base + (va - self.elrange_base)

    # -- lifecycle guards ---------------------------------------------------------------

    def require_state(self, *allowed):
        if self.state not in allowed:
            names = "/".join(s.value for s in allowed)
            raise HypercallError(
                f"enclave {self.eid} is {self.state.value}, needs {names}")

    def absorb_measurement(self, va, words):
        """Toy measurement: mix added-page identity into a running hash.

        Remote attestation is out of the paper's scope (Sec. 2), but the
        hypercall surface keeps the hook so lifecycle traces look right.
        """
        mix = hash((va, words)) & ((1 << 64) - 1)
        self.measurement = (self.measurement * 1099511628211 + mix) \
            & ((1 << 64) - 1)

    def __repr__(self):
        return (f"Enclave(eid={self.eid}, state={self.state.value}, "
                f"elrange=[{self.elrange_base:#x}, {self.elrange_end:#x}))")
