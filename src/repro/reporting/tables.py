"""Fixed-width table rendering for bench and metrics output."""


def render_table(headers, rows, title=None):
    """Render an aligned text table.

    ``rows`` cells are stringified; numeric cells are right-aligned,
    text cells left-aligned.
    """
    stringified = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in stringified:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    numeric = [all(_is_numeric(row[i]) for row in stringified if row[i])
               for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in stringified:
        cells = []
        for index, cell in enumerate(row):
            if numeric[index]:
                cells.append(cell.rjust(widths[index]))
            else:
                cells.append(cell.ljust(widths[index]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def render_metrics(snapshot=None, title="metrics"):
    """Render a metrics snapshot as one aligned table.

    ``snapshot`` is a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    dict (default: the process-global registry's).  Counters and gauges
    render one row each; a histogram renders as count and mean with the
    observed min/max.  Rows are sorted by kind then name, so two
    snapshots with the same content render identically.
    """
    if snapshot is None:
        from repro.obs.metrics import REGISTRY
        snapshot = REGISTRY.snapshot()
    rows = []
    for name in sorted(snapshot.get("counters", {})):
        rows.append(["counter", name, snapshot["counters"][name], ""])
    for name in sorted(snapshot.get("gauges", {})):
        rows.append(["gauge", name, snapshot["gauges"][name], ""])
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        if hist["count"] and hist["min"] is not None:
            mean = hist["total"] / hist["count"]
            detail = (f"mean={mean:.4g} min={hist['min']:.4g} "
                      f"max={hist['max']:.4g}")
        else:
            detail = "no samples"
        rows.append(["histogram", name, hist["count"], detail])
    if not rows:
        rows.append(["(empty)", "", "", ""])
    return render_table(["kind", "name", "value", "detail"], rows,
                        title=title)


def _cell(value):
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_numeric(text):
    try:
        float(text)
        return True
    except ValueError:
        return False
