"""Unit and property tests for path addresses."""

import pytest
from hypothesis import given, strategies as st

from repro.mir.path import Field, GlobalBase, Index, LocalBase, Path


def projections():
    return st.lists(
        st.one_of(st.builds(Field, st.integers(0, 5)),
                  st.builds(Index, st.integers(0, 5))),
        max_size=5).map(tuple)


def paths():
    base = st.one_of(
        st.builds(GlobalBase, st.sampled_from(["a", "b", "c"])),
        st.builds(LocalBase, st.integers(0, 3),
                  st.sampled_from(["x", "y"])))
    return st.builds(Path, base, projections())


class TestConstruction:
    def test_global(self):
        path = Path.global_("foo")
        assert path.base == GlobalBase("foo")
        assert path.projections == ()

    def test_local_pinned_to_frame(self):
        assert Path.local(1, "x") != Path.local(2, "x")

    def test_field_and_index_extension(self):
        path = Path.global_("foo").field(2).index(1)
        assert path.indices == (2, 1)

    def test_str_matches_paper_example(self):
        # foo.bar.1 with bar at field offset 0
        path = Path.global_("foo").field(0).field(1)
        assert str(path) == "foo.0.1"

    def test_parent(self):
        path = Path.global_("foo").field(1)
        assert path.parent() == Path.global_("foo")
        assert Path.global_("foo").parent() is None


class TestOverlap:
    def test_prefix_overlaps(self):
        root = Path.global_("s")
        assert root.overlaps(root.field(0))
        assert root.field(0).overlaps(root)

    def test_siblings_disjoint(self):
        root = Path.global_("s")
        assert not root.field(0).overlaps(root.field(1))

    def test_different_bases_disjoint(self):
        assert not Path.global_("a").overlaps(Path.global_("b"))
        assert not Path.local(0, "x").overlaps(Path.local(1, "x"))

    @given(paths())
    def test_overlap_reflexive(self, path):
        assert path.overlaps(path)

    @given(paths(), paths())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(paths(), projections())
    def test_extension_overlaps_base(self, path, projs):
        extended = path
        for proj in projs:
            extended = extended.extend(proj)
        assert path.overlaps(extended)

    @given(paths())
    def test_is_prefix_of_self(self, path):
        assert path.is_prefix_of(path)
