"""The refinement relation R between flat and tree views (Sec. 4.1).

"To relate a low spec to a high spec, we use a refinement relation R
over two abstract states d1, d2 ... R d1 d2 holds if the page tables
viewed as trees in d1 agree in content with those viewed as flat memory
in d2. Defining R requires another relation R_pte p a, which relates the
PTE record p to the entry address a."

Two artefacts:

* :func:`r_pte` / :func:`relation_r` — the relations, literally,
* :func:`abstract_table` — the abstraction function α computing the tree
  view *from* flat memory.  α is partial: it refuses (raises
  :class:`AbstractionFailure`) when an intermediate entry points outside
  the monitor's frame area — which is precisely why the Sec. 4.1
  shallow-copy initialisation "would be impossible to prove in our
  setting": no tree view exists for such a table.

``relation_r(tree, flat, root)`` ⇔ ``tree == abstract_table(flat, root)``
— both directions are implemented so tests can cross-validate them.
"""

from repro.errors import ReproError
from repro.hyperenclave import pte as pte_ops
from repro.spec.pte_record import PTERecord, TreeTable
from repro.spec.flat import flat_read_entry


class AbstractionFailure(ReproError):
    """Flat memory has no tree view (entry escapes the frame area,
    malformed intermediate, cyclic/overlapping structure...)."""


def abstract_table(flat_state, root_frame, level=None,
                   _visited=None) -> TreeTable:
    """The abstraction function α: flat memory -> tree view.

    Recursively reads the table at ``root_frame``; every intermediate
    entry must point at a frame inside the pool (and no frame may appear
    twice — aliased or cyclic structures have no tree abstraction).
    """
    config = flat_state.config
    if level is None:
        level = config.levels
    visited = set() if _visited is None else _visited
    if not flat_state.in_pool(root_frame):
        raise AbstractionFailure(
            f"table frame {root_frame} escapes the monitor's frame area")
    if root_frame in visited:
        raise AbstractionFailure(
            f"table frame {root_frame} reached twice (aliasing/cycle)")
    visited.add(root_frame)
    spec = config.arch
    table = TreeTable.empty(level)
    for index in range(config.entries_per_table):
        entry = flat_read_entry(flat_state, root_frame, index)
        if not spec.is_present(entry):
            if entry != 0:
                raise AbstractionFailure(
                    f"non-present entry {entry:#x} has residual bits "
                    f"(violates unused_inv)")
            continue
        if level == 1 and not spec.is_leaf_valid(entry):
            raise AbstractionFailure(
                f"reserved leaf encoding {entry:#x} has no tree view")
        addr = pte_ops.pte_addr(entry, config)
        flags = pte_ops.pte_flags(entry, config)
        if level == 1 or spec.is_block(entry, level):
            record = PTERecord(addr=addr, flags=flags, spec=spec)
        else:
            child = abstract_table(flat_state,
                                   config.frame_of(addr),
                                   level - 1, visited)
            record = PTERecord(addr=addr, flags=flags, content=child,
                               spec=spec)
        table = table.set(index, record)
    return table


def r_pte(record, entry_value, flat_state, level) -> bool:
    """R_pte: does PTE record ``record`` agree with the 64-bit entry
    ``entry_value`` (and, recursively, with the table it points to)?"""
    config = flat_state.config
    spec = config.arch
    if record is None:
        return entry_value == 0
    if not spec.is_present(entry_value):
        return False
    if record.addr != pte_ops.pte_addr(entry_value, config):
        return False
    if record.flags != pte_ops.pte_flags(entry_value, config):
        return False
    if record.is_terminal:
        return level == 1 or spec.is_block(entry_value, level)
    # "Otherwise R_pte quantifies over page table indices and says that
    # entry at each index should be recursively related to a plus some
    # offset."
    next_frame = pte_ops.pte_frame(entry_value, config)
    if not flat_state.in_pool(next_frame):
        return False
    child = record.content
    for index in range(config.entries_per_table):
        low_entry = flat_read_entry(flat_state, next_frame, index)
        if not r_pte(child.get(index), low_entry, flat_state, level - 1):
            return False
    return True


def relation_r(tree, flat_state, root_frame) -> bool:
    """R: the whole-table relation built from R_pte."""
    config = flat_state.config
    if not flat_state.in_pool(root_frame):
        return False
    for index in range(config.entries_per_table):
        entry = flat_read_entry(flat_state, root_frame, index)
        if not r_pte(tree.get(index), entry, flat_state,
                     config.levels):
            return False
    return True


def flat_state_of_page_table(page_table, pool_base, pool_size):
    """Project a live :class:`~repro.hyperenclave.paging.PageTable`'s
    backing memory into a :class:`FlatPtState` — the bridge that lets
    the relation run against the *implementation*, not just the flat
    spec."""
    from repro.ccal.zmap import ZMap
    from repro.hyperenclave.constants import WORD_BYTES
    from repro.spec.flat import FlatPtState
    config = page_table.config
    words = ZMap(default=0)
    for frame in range(pool_base, pool_base + pool_size):
        base_word = config.frame_base(frame) // WORD_BYTES
        for offset, value in enumerate(page_table.phys.frame_words(frame)):
            if value:
                words = words.set(base_word + offset, value)
    bitmap = tuple(page_table.allocator.is_allocated(pool_base + i)
                   for i in range(pool_size))
    return FlatPtState(config=config, pool_base=pool_base,
                       pool_size=pool_size, words=words, bitmap=bitmap)
