"""``BENCH_checking.json`` merging: sections never silently clobber.

The bench CLI writes one JSON artifact shared by several benches; the
merge helper must (a) preserve every section a different bench last
wrote, and (b) refuse to overwrite a section measured under a
*different* configuration — the stale record stays, the new one lands
side-by-side under a config-tagged key, and the operator is warned.
"""

import json

from repro.engine.bench import _merged_out


def _record(benchmark, config, **extra):
    return {"benchmark": benchmark, "config": config, **extra}


def _read(path):
    with open(path) as fh:
        return json.load(fh)


def test_same_config_overwrites_in_place(tmp_path):
    out = tmp_path / "bench.json"
    config = {"workers": 4, "bounds": [2, 3]}
    _merged_out(str(out), "prefix_cache",
                _record("prefix-cache", config, speedup=1.9))
    merged = _merged_out(str(out), "prefix_cache",
                         _record("prefix-cache", config, speedup=2.1))
    assert merged["prefix_cache"]["speedup"] == 2.1
    assert set(_read(out)) == {"prefix_cache"}


def test_config_mismatch_writes_side_by_side(tmp_path, capsys):
    out = tmp_path / "bench.json"
    old = _record("prefix-cache", {"workers": 4}, speedup=1.9)
    new = _record("prefix-cache", {"workers": 8}, speedup=2.4)
    _merged_out(str(out), "prefix_cache", old)
    merged = _merged_out(str(out), "prefix_cache", new)
    assert merged["prefix_cache"] == old
    keyed = [key for key in merged if key.startswith("prefix_cache@")]
    assert len(keyed) == 1
    assert merged[keyed[0]] == new
    assert "different config" in capsys.readouterr().err
    # re-running under the new config overwrites its own keyed slot
    again = _merged_out(str(out), "prefix_cache", dict(new, speedup=2.5))
    assert again[keyed[0]]["speedup"] == 2.5
    assert len([k for k in again if k.startswith("prefix_cache@")]) == 1


def test_top_level_write_preserves_section_records(tmp_path):
    out = tmp_path / "bench.json"
    _merged_out(str(out), "durability",
                _record("durable-orchestrator", {"seed": 0}))
    _merged_out(str(out), "prefix_cache",
                _record("prefix-cache", {"seed": 0}))
    doc = _merged_out(str(out), None,
                      _record("parallel-checking-fabric", {"seed": 0},
                              sequential={"seconds": 1.0}))
    assert doc["benchmark"] == "parallel-checking-fabric"
    assert doc["durability"]["benchmark"] == "durable-orchestrator"
    assert doc["prefix_cache"]["benchmark"] == "prefix-cache"
    # stale top-level sub-dicts of a *previous* document (no benchmark
    # tag) are not resurrected
    fresh = _merged_out(str(out), None,
                        _record("parallel-checking-fabric", {"seed": 1}))
    assert "sequential" not in fresh
    assert "prefix_cache" in fresh
