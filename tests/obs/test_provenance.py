"""Provenance bundles: JSON round-trips and actual replays.

The contract: a bundle written by one process — or one month — replays
in another and reports REPRODUCED iff the recorded violation
reappears.  The replay tests here run the real engines (small grids),
not mocks: a bundle that only round-trips JSON is an anecdote.
"""

import pytest

from repro.obs import trace as trace_mod
from repro.obs.provenance import (
    ProvenanceBundle,
    ReplayOutcome,
    bundles_from_exploration,
    crash_step_bundle,
    pure_check_bundle,
    replay_bundle,
)

FACTORY = "repro.faults.campaign:default_world_factory"
WORKLOAD = "repro.faults.campaign:default_workload"


def _crash_step_record():
    """One real crash-step run: the first epcm.allocate unit."""
    from repro.engine.workers import run_crash_step_unit
    from repro.faults.campaign import (
        crash_step_units,
        default_workload,
        default_world_factory,
    )

    units = crash_step_units(default_world_factory(), default_workload(),
                             ("epcm.allocate",))
    index, site, kind, step = units[0]
    record = run_crash_step_unit({
        "factory": FACTORY, "factory_args": (), "workload": WORKLOAD,
        "index": index, "site": site, "kind": kind, "step": step,
        "seed": 0, "runner": None})
    return (index, site, kind, step), record


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        bundle = ProvenanceBundle(
            kind="pure-check", seed=3,
            check={"name": "entry_index", "max_steps": 40},
            violation={"engine": "property-sampling"},
            budget_spent={"steps": 41})
        assert ProvenanceBundle.from_json(bundle.to_json()) == bundle

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            ProvenanceBundle.from_json('{"kind": "pure-check", "bogus": 1}')

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ProvenanceBundle.from_json('{"seed": 0}')

    def test_save_load_file(self, tmp_path):
        bundle = ProvenanceBundle(kind="crash-step", seed=7,
                                  fault_plan={"site": "epcm.allocate"})
        path = bundle.save(str(tmp_path / "bundle.json"))
        assert ProvenanceBundle.load(path) == bundle

    def test_unknown_kind_refuses_to_replay(self):
        with pytest.raises(ValueError, match="unknown bundle kind"):
            replay_bundle(ProvenanceBundle(kind="teleport"))

    def test_trace_slice_captured_when_tracing(self):
        (index, site, kind, step), record = _crash_step_record()
        with trace_mod.installed(trace_mod.Tracer()):
            trace_mod.event("fault.fired", site=site)
            bundle = crash_step_bundle(index, site, kind, step,
                                       record=record)
        assert bundle.trace_slice
        assert bundle.trace_slice[-1]["name"] == "fault.fired"
        # And the slice survives the JSON round-trip.
        again = ProvenanceBundle.from_json(bundle.to_json())
        assert again.trace_slice == bundle.trace_slice

    def test_outcome_summary_marks_verdict(self):
        outcome = ReplayOutcome(kind="crash-step", matched=True,
                                expected={}, found=[1], detail="x")
        assert outcome.summary().startswith("[REPRODUCED]")
        outcome = ReplayOutcome(kind="crash-step", matched=False,
                                expected={}, found=[])
        assert outcome.summary().startswith("[DIVERGED]")


class TestReplay:
    def test_crash_step_bundle_reproduces(self, tmp_path):
        (index, site, kind, step), record = _crash_step_record()
        bundle = crash_step_bundle(index, site, kind, step, seed=0,
                                   record=record)
        # Through the file format, exactly as the CLI would.
        loaded = ProvenanceBundle.load(
            bundle.save(str(tmp_path / "bundle.json")))
        outcome = replay_bundle(loaded)
        assert outcome.matched, outcome.summary()
        assert outcome.found[0]["detail"] == record.detail

    def test_crash_step_bundle_diverges_on_wrong_expectation(self):
        (index, site, kind, step), record = _crash_step_record()
        bundle = crash_step_bundle(index, site, kind, step, record=record)
        bundle.violation["detail"] = "a finding that never happened"
        outcome = replay_bundle(bundle)
        assert not outcome.matched

    def test_pure_check_bundle_reproduces_degraded_verdict(self, model):
        from repro import fastpath
        from repro.verification.harness import (
            ENGINE_EXHAUSTIVE,
            check_pure_hardened,
        )

        with fastpath.forced():
            report = check_pure_hardened(model, "level_span",
                                         max_steps=16, sample_count=16)
        assert report.engine == ENGINE_EXHAUSTIVE
        bundle = pure_check_bundle(report, max_steps=16, sample_count=16)
        assert bundle.check["fastpath"] is True
        outcome = replay_bundle(bundle)
        assert outcome.matched, outcome.summary()
        assert outcome.found[0]["engine"] == ENGINE_EXHAUSTIVE

    def test_interleaving_bundle_reproduces_planted_bug(self):
        from repro.faults.campaign import interleaving_campaign
        from repro.hyperenclave import buggy

        result = interleaving_campaign(buggy.MissingLockMonitor,
                                       check_ni=False, max_schedules=60)
        assert result.violations, "the planted lock bug must fire"
        bundles = bundles_from_exploration(
            result, monitor_cls=buggy.MissingLockMonitor, check_ni=False)
        assert len(bundles) == len(result.violations)
        outcome = replay_bundle(bundles[0])
        assert outcome.matched, outcome.summary()

    def test_interleaving_bundle_diverges_on_fabricated_violation(self):
        from repro.concurrency import Schedule
        from repro.concurrency.explorer import Violation

        fake = Violation(Schedule(seed=0), "lock-protocol",
                         "a violation nobody observed")
        outcome = replay_bundle(bundles_from_exploration(
            type("R", (), {"violations": [fake]})(), check_ni=False)[0])
        assert not outcome.matched

    def test_pure_check_degradation_divergence_is_detected(self, model):
        """Every recorded verdict field counts — a bundle whose
        ``degradations`` differ from the replay must DIVERGE (an
        earlier whitelist silently skipped the comparison)."""
        from repro import fastpath
        from repro.verification.harness import check_pure_hardened

        with fastpath.forced():
            report = check_pure_hardened(model, "level_span",
                                         max_steps=16, sample_count=16)
        bundle = pure_check_bundle(report, max_steps=16,
                                   sample_count=16)
        assert replay_bundle(bundle).matched
        bundle.violation["degradations"] = ["an-engine-that-never-ran"]
        outcome = replay_bundle(bundle)
        assert not outcome.matched, outcome.summary()


class TestReplayCli:
    """``python -m repro replay``: divergence must exit non-zero with
    a typed message, reproduction exits zero."""

    def _crash_bundle(self):
        (index, site, kind, step), record = _crash_step_record()
        return crash_step_bundle(index, site, kind, step, seed=0,
                                 record=record)

    def test_reproduced_exits_zero(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._crash_bundle().save(str(tmp_path / "ok.json"))
        assert main(["replay", path]) == 0
        assert "[REPRODUCED]" in capsys.readouterr().out

    def test_divergence_exits_nonzero_with_typed_message(
            self, tmp_path, capsys):
        from repro.__main__ import main

        bundle = self._crash_bundle()
        bundle.violation["detail"] = "a finding that never happened"
        path = bundle.save(str(tmp_path / "edited.json"))
        assert main(["replay", path]) == 1
        captured = capsys.readouterr()
        assert "[DIVERGED]" in captured.out
        assert "replay diverged" in captured.err
        assert "was not reproduced" in captured.err

    def test_unloadable_bundle_is_a_usage_error(self, tmp_path,
                                                capsys):
        from repro.__main__ import main

        path = tmp_path / "torn.json"
        path.write_text('{"kind": "crash-step"')
        assert main(["replay", str(path)]) == 2
        assert "cannot load bundle" in capsys.readouterr().err
