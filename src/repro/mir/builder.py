"""Programmatic construction of mirlight CFGs.

The paper obtains MIR by running ``rustc --emit mir`` through
``mirlightgen``; our substitute corpus is transcribed by hand, so this
module provides a builder that keeps the transcription short while
emitting exactly the AST of :mod:`repro.mir.ast`.

Conventions mirroring rustc's output:

* the return value lives in ``_0``; :meth:`FunctionBuilder.ret` assigns
  it and emits the Return terminator,
* blocks are labelled ``bb0, bb1, ...`` and ``bb0`` is the entry,
* the *lifting pass* runs automatically at :meth:`finish`: every variable
  whose address is taken by Ref/AddressOf is classified as local, every
  other variable is a temporary (Sec. 3.2).

Operands coerce from Python values: a ``str`` is ``Copy`` of that
variable, an ``int`` is a typed constant (default type set per builder),
a ``bool`` is a boolean constant, a :class:`~repro.mir.ast.Place` is a
Copy of the place, and any :class:`~repro.mir.value.Value` is a constant.
"""

from typing import Optional

from repro.errors import MirError
from repro.mir import ast
from repro.mir.ast import (
    AggregateKind,
    AggregateRv,
    Assert,
    Assign,
    BasicBlock,
    BinOp,
    BinaryOp,
    Call,
    Cast,
    CastKind,
    CheckedBinaryOp,
    Constant,
    Copy,
    Discriminant,
    Drop,
    Function,
    Goto,
    Len,
    Nop,
    Operand,
    Place,
    Program,
    Ref,
    AddressOf,
    Repeat,
    Return,
    Rvalue,
    SetDiscriminant,
    StorageDead,
    StorageLive,
    SwitchInt,
    UnOp,
    UnaryOp,
    Use,
    place,
)
from repro.mir.types import BOOL, U64, UNIT, MirTy
from repro.mir.value import Value, mk_bool, mk_int, unit


class FunctionBuilder:
    """Builds one mirlight function block by block."""

    def __init__(self, name, params=(), ret_ty=UNIT, default_int_ty=U64,
                 layer=None, attrs=()):
        self.name = name
        self.params = tuple(params)
        self.ret_ty = ret_ty
        self.default_int_ty = default_int_ty
        self.layer = layer
        self.attrs = tuple(attrs)
        self.var_tys = {}
        self._blocks = {}
        self._order = []
        self._current_label = "bb0"
        self._current_statements = []
        self._next_block = 1
        self._finished = False
        self._forced_locals = set()

    # -- coercions ----------------------------------------------------------

    def operand(self, x):
        """Coerce ``x`` into an Operand (see module docstring)."""
        if isinstance(x, Operand):
            return x
        if isinstance(x, Place):
            return Copy(x)
        if isinstance(x, str):
            return Copy(place(x))
        if isinstance(x, bool):
            return Constant(mk_bool(x))
        if isinstance(x, int):
            return Constant(mk_int(x, self.default_int_ty))
        if isinstance(x, Value):
            return Constant(x)
        raise MirError(f"cannot coerce {x!r} into an operand")

    def _as_place(self, x):
        if isinstance(x, Place):
            return x
        if isinstance(x, str):
            return place(x)
        raise MirError(f"cannot coerce {x!r} into a place")

    def _as_rvalue(self, x):
        if isinstance(x, Rvalue):
            return x
        return Use(self.operand(x))

    # -- block management ------------------------------------------------------

    def fresh_label(self):
        """Allocate the next ``bbN`` label."""
        label = f"bb{self._next_block}"
        self._next_block += 1
        return label

    def label(self, name=None):
        """Start a new block (sealing requires a prior terminator)."""
        if self._current_label is not None:
            raise MirError(
                f"{self.name}: block {self._current_label} not terminated "
                f"before starting a new one"
            )
        new_label = name if name is not None else self.fresh_label()
        self._current_label = new_label
        self._current_statements = []
        return new_label

    def _emit(self, statement):
        if self._current_label is None:
            raise MirError(
                f"{self.name}: statement emitted outside any block "
                f"(missing label() after a terminator?)"
            )
        self._current_statements.append(statement)

    def _terminate(self, terminator):
        if self._current_label is None:
            raise MirError(f"{self.name}: terminator without an open block")
        block = BasicBlock(self._current_label,
                           tuple(self._current_statements), terminator)
        if block.label in self._blocks:
            raise MirError(f"{self.name}: duplicate block {block.label}")
        self._blocks[block.label] = block
        self._order.append(block.label)
        self._current_label = None
        self._current_statements = []

    # -- statements ---------------------------------------------------------------

    def assign(self, dest, rvalue):
        """Emit ``dest = rvalue;`` (operands coerce)."""
        self._emit(Assign(self._as_place(dest), self._as_rvalue(rvalue)))
        return self

    let = assign  # idiomatic alias: fb.let("_1", ...)

    def binop(self, dest, op, lhs, rhs):
        """Emit a binary-operation assignment."""
        self.assign(dest, BinaryOp(op, self.operand(lhs), self.operand(rhs)))
        return self

    def checked_binop(self, dest, op, lhs, rhs):
        """Emit an overflow-checked binary operation."""
        self.assign(dest,
                    CheckedBinaryOp(op, self.operand(lhs), self.operand(rhs)))
        return self

    def unop(self, dest, op, operand):
        """Emit a unary-operation assignment."""
        self.assign(dest, UnaryOp(op, self.operand(operand)))
        return self

    def cast(self, dest, operand, ty, kind=CastKind.INT_TO_INT):
        """Emit a cast assignment."""
        self.assign(dest, Cast(kind, self.operand(operand), ty))
        return self

    def ref(self, dest, target, mutable=True):
        """Emit ``dest = &target`` (forces ``target`` local)."""
        target_place = self._as_place(target)
        if _ref_forces_local(target_place):
            self._forced_locals.add(target_place.var)
        self.assign(dest, Ref(target_place, mutable))
        return self

    def address_of(self, dest, target, mutable=True):
        """Emit ``dest = &raw target``."""
        target_place = self._as_place(target)
        if _ref_forces_local(target_place):
            self._forced_locals.add(target_place.var)
        self.assign(dest, AddressOf(target_place, mutable))
        return self

    def tuple_(self, dest, *elems):
        """Emit tuple construction."""
        self.assign(dest, AggregateRv(AggregateKind.TUPLE,
                                      tuple(self.operand(e) for e in elems)))
        return self

    def struct(self, dest, *fields):
        """Emit struct construction."""
        self.assign(dest, AggregateRv(AggregateKind.STRUCT,
                                      tuple(self.operand(f) for f in fields)))
        return self

    def variant(self, dest, discriminant, *fields):
        """Emit enum-variant construction."""
        self.assign(dest, AggregateRv(AggregateKind.VARIANT,
                                      tuple(self.operand(f) for f in fields),
                                      variant=discriminant))
        return self

    def array(self, dest, elems):
        """Emit array construction."""
        self.assign(dest, AggregateRv(AggregateKind.ARRAY,
                                      tuple(self.operand(e) for e in elems)))
        return self

    def repeat(self, dest, element, count):
        """Emit ``[element; count]``."""
        self.assign(dest, Repeat(self.operand(element), count))
        return self

    def len_(self, dest, target):
        """Emit an array-length read."""
        self.assign(dest, Len(self._as_place(target)))
        return self

    def discriminant(self, dest, target):
        """Emit a discriminant read."""
        self.assign(dest, Discriminant(self._as_place(target)))
        return self

    def set_discriminant(self, target, variant):
        """Emit a SetDiscriminant statement."""
        self._emit(SetDiscriminant(self._as_place(target), variant))
        return self

    def storage_live(self, var):
        """Emit StorageLive bookkeeping."""
        self._emit(StorageLive(var))
        return self

    def storage_dead(self, var):
        """Emit StorageDead bookkeeping."""
        self._emit(StorageDead(var))
        return self

    def nop(self):
        """Emit a no-op statement."""
        self._emit(Nop())
        return self

    # -- terminators -----------------------------------------------------------------

    def goto(self, target):
        """Terminate the block with a jump."""
        self._terminate(Goto(target))
        return self

    def switch(self, operand, targets, otherwise):
        """Terminate with a multi-way integer branch."""
        self._terminate(SwitchInt(self.operand(operand),
                                  tuple(targets), otherwise))
        return self

    def branch(self, cond, if_true, if_false):
        """``if cond {if_true} else {if_false}`` — sugar over SwitchInt,
        matching rustc's lowering (false = 0 tested, true otherwise)."""
        self.switch(cond, [(0, if_false)], otherwise=if_true)
        return self

    def ret(self, value=None):
        """Assign ``_0`` (unless None) and emit Return."""
        if value is not None:
            self.assign(Function.RETURN_VAR, value)
        self._terminate(Return())
        return self

    def call(self, dest, func_name, args=(), target=None):
        """Emit a Call terminator.

        If ``target`` is None a fresh continuation block is opened
        immediately, so straight-line transcriptions read naturally::

            fb.call("_3", "alloc_frame", [])
            fb.binop("_4", BinOp.ADD, "_3", 1)
        """
        continue_at = target if target is not None else self.fresh_label()
        self._terminate(Call(ast.ConstFn(func_name),
                             tuple(self.operand(a) for a in args),
                             self._as_place(dest), continue_at))
        if target is None:
            self.label(continue_at)
        return self

    def drop_(self, target, jump_to=None):
        """Terminate with Drop, continuing at a fresh block."""
        continue_at = jump_to if jump_to is not None else self.fresh_label()
        self._terminate(Drop(self._as_place(target), continue_at))
        if jump_to is None:
            self.label(continue_at)
        return self

    def assert_(self, cond, msg, expected=True, target=None):
        """Terminate with an Assert (a modelled Rust panic)."""
        continue_at = target if target is not None else self.fresh_label()
        self._terminate(Assert(self.operand(cond), expected, msg, continue_at))
        if target is None:
            self.label(continue_at)
        return self

    # -- typing / finish ------------------------------------------------------------------

    def declare(self, var, ty):
        """Record a variable's type (documentation + symbolic widths)."""
        self.var_tys[var] = ty
        return self

    def finish(self):
        """Seal the function: run the lifting pass and build the Function."""
        if self._finished:
            raise MirError(f"{self.name}: finish() called twice")
        if self._current_label is not None:
            raise MirError(
                f"{self.name}: open block {self._current_label} at finish()"
            )
        if "bb0" not in self._blocks:
            raise MirError(f"{self.name}: no entry block bb0")
        self._finished = True
        locals_ = frozenset(self._forced_locals | _address_taken(self._blocks))
        return Function(
            name=self.name,
            params=self.params,
            blocks=dict(self._blocks),
            entry="bb0",
            locals_=locals_,
            var_tys=dict(self.var_tys),
            ret_ty=self.ret_ty,
            layer=self.layer,
            attrs=self.attrs,
        )


def _ref_forces_local(target_place):
    """Taking ``&x.f`` makes ``x`` a local; taking ``&(*p).f`` does not —
    the referent already lives behind the pointer in ``p``, so ``p``
    itself can stay a temporary."""
    projections = target_place.projections
    return not projections or not isinstance(projections[0], ast.Deref)


def _address_taken(blocks):
    """The lifting pass: variables appearing under Ref/AddressOf (not
    through a leading deref) are locals; everything else stays temporary."""
    taken = set()
    for block in blocks.values():
        for stmt in block.statements:
            if isinstance(stmt, Assign) and isinstance(
                    stmt.rvalue, (Ref, AddressOf)):
                if _ref_forces_local(stmt.rvalue.place):
                    taken.add(stmt.rvalue.place.var)
    return taken


class ProgramBuilder:
    """Accumulates functions and globals into a Program."""

    def __init__(self):
        self._program = Program()

    def function(self, name, params=(), ret_ty=UNIT, default_int_ty=U64,
                 layer=None, attrs=()):
        """Open a FunctionBuilder whose finish() also registers it."""
        builder = FunctionBuilder(name, params, ret_ty, default_int_ty,
                                  layer, attrs)
        original_finish = builder.finish
        program = self._program

        def finish_and_register():
            function = original_finish()
            program.add_function(function)
            return function

        builder.finish = finish_and_register
        return builder

    def add(self, function):
        """Register an already-built function."""
        self._program.add_function(function)
        return self

    def global_(self, name, value):
        """Declare a global with its initial value."""
        self._program.globals_[name] = value
        return self

    def build(self):
        return self._program
