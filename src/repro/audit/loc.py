"""A ``coqwc``-style line counter.

The paper reports its Table 1 statistics with ``coqwc`` (spec/proof/
comment split) and ``cloc``.  This module provides the analog for the
artifacts we produce: Python sources (code / docstring / comment /
blank) and mirlight dumps (code / comment / blank).
"""

import io
import os
import tokenize
from dataclasses import dataclass


@dataclass
class LocCount:
    """Line counts for one source or aggregate."""

    code: int = 0
    docstring: int = 0
    comment: int = 0
    blank: int = 0

    @property
    def total(self):
        return self.code + self.docstring + self.comment + self.blank

    def __add__(self, other):
        return LocCount(self.code + other.code,
                        self.docstring + other.docstring,
                        self.comment + other.comment,
                        self.blank + other.blank)

    def __str__(self):
        return (f"{self.code} code, {self.docstring} docstring, "
                f"{self.comment} comment, {self.blank} blank "
                f"({self.total} total)")


def count_text(text, language="python") -> LocCount:
    """Count one source text.  ``language`` is ``python`` or ``mirlight``
    (mirlight uses ``//`` comments and has no docstrings)."""
    if language == "mirlight":
        return _count_simple(text, comment_prefix="//")
    return _count_python(text)


def _count_simple(text, comment_prefix) -> LocCount:
    count = LocCount()
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            count.blank += 1
        elif stripped.startswith(comment_prefix):
            count.comment += 1
        else:
            count.code += 1
    return count


def _count_python(text) -> LocCount:
    """Token-accurate Python counting: a line is a docstring line if it
    belongs to a module/class/function-leading string expression."""
    lines = text.splitlines()
    classification = ["blank"] * len(lines)
    for index, line in enumerate(lines):
        if line.strip():
            classification[index] = "code"
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        tokens = []
    previous_significant = None
    for token in tokens:
        kind = token.type
        if kind == tokenize.COMMENT:
            row = token.start[0] - 1
            before = lines[row][: token.start[1]].strip()
            if not before:
                classification[row] = "comment"
        elif kind == tokenize.STRING:
            # A docstring is a STRING statement not preceded (on the
            # logical level) by an operator/name — heuristic: previous
            # significant token is NEWLINE/INDENT/DEDENT or nothing.
            if previous_significant in (None, tokenize.NEWLINE,
                                        tokenize.INDENT, tokenize.DEDENT):
                for row in range(token.start[0] - 1, token.end[0]):
                    if classification[row] == "code":
                        classification[row] = "docstring"
        if kind not in (tokenize.NL, tokenize.COMMENT):
            previous_significant = kind
    count = LocCount()
    for label in classification:
        setattr(count, label, getattr(count, label) + 1)
    return count


def count_source(path) -> LocCount:
    """Count one file on disk (.mir files use mirlight rules)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    language = "mirlight" if path.endswith(".mir") else "python"
    return count_text(text, language)


def count_package(root, suffixes=(".py",)) -> LocCount:
    """Aggregate counts over a directory tree."""
    total = LocCount()
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if any(filename.endswith(suffix) for suffix in suffixes):
                total = total + count_source(os.path.join(dirpath, filename))
    return total
