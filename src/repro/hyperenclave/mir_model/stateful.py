"""The stateful corpus: entry IO, allocation, walking, mapping, EPCM.

These functions exercise everything the pure fragment cannot: loops,
calls through the trusted layer (``phys_read_word``/``phys_write_word``
— the Sec. 3.4 case-2 pointers), multi-layer composition, and panics
(``assert`` terminators standing in for Rust panics on "already mapped"
and friends).

They are verified by co-simulation against the flat specification
(:mod:`repro.spec.flat`) — the "code proof" half of Sec. 4.3 — and the
flat spec is separately related to the tree spec by R (the "refinement
proof" half).
"""

from repro.hyperenclave.constants import MemoryLayout, WORD_BYTES
from repro.mir.ast import BinOp, place
from repro.mir.types import BOOL, U64, UNIT, TupleTy

from repro.hyperenclave.mir_model.state import (
    EPCM_FREE,
    EPCM_REG,
)



def add_stateful_functions(pb, config, layout=None):
    """Register the 17 stateful (non-AddrSpace) corpus functions."""
    layout = layout or MemoryLayout.default_for(config)
    _add_frame_alloc(pb, config)     # layer FrameAlloc (2)
    _add_entry_io(pb, config)        # layer PtEntryIo (3)
    _add_walk(pb, config)            # layer PtWalk (1)
    _add_pt_alloc(pb, config)        # layer PtAlloc (1)
    _add_map(pb, config)             # layer PtMap (2)
    _add_query(pb, config)           # layer PtQuery (2)
    _add_epcm(pb, config)            # layer Epcm (4)
    _add_enclave_mem(pb, config, layout)  # layer EnclaveMem (1)
    _add_hypercall(pb, config)       # layer Hypercalls (1)


# ---------------------------------------------------------------------------
# Layer 1 — FrameAlloc
# ---------------------------------------------------------------------------


def _add_frame_alloc(pb, config):
    # zero_frame: loop writing zero into every word of the frame.
    fb = pb.function("zero_frame", ["frame"], UNIT, layer="FrameAlloc")
    fb.binop("base", BinOp.SHL, "frame", config.page_bits)
    fb.assign("i", 0)
    fb.goto("loop")
    fb.label("loop")
    fb.binop("c", BinOp.LT, "i", config.words_per_page)
    fb.branch("c", "body", "done")
    fb.label("body")
    fb.binop("off", BinOp.MUL, "i", WORD_BYTES)
    fb.binop("addr", BinOp.ADD, "base", "off")
    fb.call("_d", "phys_write_word", ["addr", 0])
    fb.binop("i", BinOp.ADD, "i", 1)
    fb.goto("loop")
    fb.label("done")
    fb.ret()
    fb.finish()

    # alloc_frame: claim a frame from the trusted allocator and zero it.
    fb = pb.function("alloc_frame", [], U64, layer="FrameAlloc")
    fb.call("f", "alloc_frame_raw", [])
    fb.call("_d", "zero_frame", ["f"])
    fb.ret("f")
    fb.finish()


# ---------------------------------------------------------------------------
# Layer 3 — PtEntryIo
# ---------------------------------------------------------------------------


def _add_entry_io(pb, config):
    fb = pb.function("entry_paddr", ["frame", "index"], U64,
                     layer="PtEntryIo")
    fb.binop("_1", BinOp.SHL, "frame", config.page_bits)
    fb.binop("_2", BinOp.MUL, "index", WORD_BYTES)
    fb.binop("_0", BinOp.ADD, "_1", "_2")
    fb.ret()
    fb.finish()

    fb = pb.function("read_entry", ["frame", "index"], U64,
                     layer="PtEntryIo")
    fb.call("a", "entry_paddr", ["frame", "index"])
    fb.call("_0", "phys_read_word", ["a"])
    fb.ret()
    fb.finish()

    fb = pb.function("write_entry", ["frame", "index", "e"], UNIT,
                     layer="PtEntryIo")
    fb.call("a", "entry_paddr", ["frame", "index"])
    fb.call("_0", "phys_write_word", ["a", "e"])
    fb.ret()
    fb.finish()


# ---------------------------------------------------------------------------
# Layer 5 — PtWalk
# ---------------------------------------------------------------------------


def _add_walk(pb, config):
    # walk_terminal(root, va) -> (found, entry, level)
    fb = pb.function("walk_terminal", ["root", "va"],
                     TupleTy((U64, U64, U64)), layer="PtWalk")
    fb.assign("frame", place("root"))
    fb.assign("level", config.levels)
    fb.goto("loop")
    fb.label("loop")
    fb.call("idx", "entry_index", ["va", "level"])
    fb.call("e", "read_entry", ["frame", "idx"])
    fb.call("p", "pte_is_present", ["e"])
    fb.branch("p", "present", "absent")
    fb.label("absent")
    fb.tuple_("_0", 0, 0, "level")
    fb.ret()
    fb.label("present")
    fb.binop("is1", BinOp.EQ, "level", 1)
    fb.branch("is1", "terminal1", "check_huge")
    fb.label("terminal1")
    fb.tuple_("_0", 1, "e", 1)
    fb.ret()
    fb.label("check_huge")
    fb.call("h", "pte_is_huge", ["e"])
    fb.branch("h", "terminal_huge", "descend")
    fb.label("terminal_huge")
    fb.tuple_("_0", 1, "e", "level")
    fb.ret()
    fb.label("descend")
    fb.call("frame", "pte_frame", ["e"])
    fb.binop("level", BinOp.SUB, "level", 1)
    fb.goto("loop")
    fb.finish()


# ---------------------------------------------------------------------------
# Layer 6 — PtAlloc
# ---------------------------------------------------------------------------


def _add_pt_alloc(pb, config):
    fb = pb.function("get_or_create_next", ["frame", "va", "level"], U64,
                     layer="PtAlloc")
    fb.call("idx", "entry_index", ["va", "level"])
    fb.call("e", "read_entry", ["frame", "idx"])
    fb.call("p", "pte_is_present", ["e"])
    fb.branch("p", "have", "create")
    fb.label("have")
    fb.call("h", "pte_is_huge", ["e"])
    fb.assert_("h", "huge page blocks mapping", expected=False)
    fb.call("_0", "pte_frame", ["e"])
    fb.ret()
    fb.label("create")
    fb.call("nf", "alloc_frame", [])
    fb.binop("nb", BinOp.SHL, "nf", config.page_bits)
    fb.call("tf", "pte_table_flags", [])
    fb.call("ne", "pte_new", ["nb", "tf"])
    fb.call("_d", "write_entry", ["frame", "idx", "ne"])
    fb.ret("nf")
    fb.finish()


# ---------------------------------------------------------------------------
# Layer 7 — PtMap
# ---------------------------------------------------------------------------


def _add_map(pb, config):
    fb = pb.function("map_page", ["root", "va", "pa", "flags"], UNIT,
                     layer="PtMap")
    fb.call("va_ok", "is_page_aligned", ["va"])
    fb.assert_("va_ok", "map_page: unaligned va")
    fb.call("pa_ok", "is_page_aligned", ["pa"])
    fb.assert_("pa_ok", "map_page: unaligned pa")
    fb.assign("frame", place("root"))
    fb.assign("level", config.levels)
    fb.goto("loop")
    fb.label("loop")
    fb.binop("c", BinOp.GT, "level", 1)
    fb.branch("c", "body", "leaf")
    fb.label("body")
    fb.call("frame", "get_or_create_next", ["frame", "va", "level"])
    fb.binop("level", BinOp.SUB, "level", 1)
    fb.goto("loop")
    fb.label("leaf")
    fb.call("idx", "entry_index", ["va", 1])
    fb.call("e", "read_entry", ["frame", "idx"])
    fb.call("p", "pte_is_present", ["e"])
    fb.assert_("p", "map_page: va already mapped", expected=False)
    fb.call("ne", "pte_new", ["pa", "flags"])
    fb.call("_d", "write_entry", ["frame", "idx", "ne"])
    fb.ret()
    fb.finish()

    fb = pb.function("unmap_page", ["root", "va"], UNIT, layer="PtMap")
    fb.assign("frame", place("root"))
    fb.assign("level", config.levels)
    fb.goto("loop")
    fb.label("loop")
    fb.call("idx", "entry_index", ["va", "level"])
    fb.call("e", "read_entry", ["frame", "idx"])
    fb.call("p", "pte_is_present", ["e"])
    fb.assert_("p", "unmap_page: va not mapped")
    fb.binop("is1", BinOp.EQ, "level", 1)
    fb.branch("is1", "clear", "check_huge")
    fb.label("check_huge")
    fb.call("h", "pte_is_huge", ["e"])
    fb.branch("h", "clear", "descend")
    fb.label("descend")
    fb.call("frame", "pte_frame", ["e"])
    fb.binop("level", BinOp.SUB, "level", 1)
    fb.goto("loop")
    fb.label("clear")
    fb.call("_d", "write_entry", ["frame", "idx", 0])
    fb.ret()
    fb.finish()


# ---------------------------------------------------------------------------
# Layer 8 — PtQuery
# ---------------------------------------------------------------------------


def _add_query(pb, config):
    fb = pb.function("query", ["root", "va"], TupleTy((U64, U64, U64)),
                     layer="PtQuery")
    fb.call("w", "walk_terminal", ["root", "va"])
    fb.assign("found", place("w").field(0))
    fb.binop("hit", BinOp.NE, "found", 0)
    fb.branch("hit", "yes", "no")
    fb.label("no")
    fb.tuple_("_0", 0, 0, 0)
    fb.ret()
    fb.label("yes")
    fb.assign("e", place("w").field(1))
    fb.call("a", "pte_addr", ["e"])
    fb.call("f", "pte_flags", ["e"])
    fb.tuple_("_0", 1, "a", "f")
    fb.ret()
    fb.finish()

    fb = pb.function("translate_page", ["root", "va"], TupleTy((U64, U64)),
                     layer="PtQuery")
    fb.call("w", "walk_terminal", ["root", "va"])
    fb.assign("found", place("w").field(0))
    fb.binop("hit", BinOp.NE, "found", 0)
    fb.branch("hit", "yes", "no")
    fb.label("no")
    fb.tuple_("_0", 0, 0)
    fb.ret()
    fb.label("yes")
    fb.assign("e", place("w").field(1))
    fb.assign("lvl", place("w").field(2))
    fb.call("span", "level_span", ["lvl"])
    fb.binop("mask", BinOp.SUB, "span", 1)
    fb.binop("off", BinOp.BITAND, "va", "mask")
    fb.call("a", "pte_addr", ["e"])
    fb.binop("pa", BinOp.ADD, "a", "off")
    fb.tuple_("_0", 1, "pa")
    fb.ret()
    fb.finish()


# ---------------------------------------------------------------------------
# Layer 10 — Epcm
# ---------------------------------------------------------------------------


def _add_epcm(pb, config):
    fb = pb.function("epcm_find_free", [], TupleTy((U64, U64)),
                     layer="Epcm")
    fb.call("n", "epcm_size", [])
    fb.assign("i", 0)
    fb.goto("loop")
    fb.label("loop")
    fb.binop("c", BinOp.LT, "i", "n")
    fb.branch("c", "body", "no")
    fb.label("body")
    fb.call("t", "epcm_get", ["i"])
    fb.assign("st", place("t").field(0))
    fb.binop("isfree", BinOp.EQ, "st", EPCM_FREE)
    fb.branch("isfree", "yes", "next")
    fb.label("next")
    fb.binop("i", BinOp.ADD, "i", 1)
    fb.goto("loop")
    fb.label("yes")
    fb.tuple_("_0", 1, "i")
    fb.ret()
    fb.label("no")
    fb.tuple_("_0", 0, 0)
    fb.ret()
    fb.finish()

    fb = pb.function("epcm_alloc_page", ["owner", "kind", "va"],
                     TupleTy((U64, U64)), layer="Epcm")
    fb.call("r", "epcm_find_free", [])
    fb.assign("found", place("r").field(0))
    fb.binop("hit", BinOp.NE, "found", 0)
    fb.branch("hit", "yes", "no")
    fb.label("yes")
    fb.assign("idx", place("r").field(1))
    fb.call("_d", "epcm_set", ["idx", "kind", "owner", "va"])
    fb.tuple_("_0", 1, "idx")
    fb.ret()
    fb.label("no")
    fb.tuple_("_0", 0, 0)
    fb.ret()
    fb.finish()

    fb = pb.function("epcm_release_page", ["idx", "owner"], UNIT,
                     layer="Epcm")
    fb.call("t", "epcm_get", ["idx"])
    fb.assign("st", place("t").field(0))
    fb.binop("busy", BinOp.NE, "st", EPCM_FREE)
    fb.assert_("busy", "epcm_release: page already free")
    fb.assign("ow", place("t").field(1))
    fb.binop("mine", BinOp.EQ, "ow", "owner")
    fb.assert_("mine", "epcm_release: owner mismatch")
    fb.call("_d", "epcm_set", ["idx", EPCM_FREE, 0, 0])
    fb.ret()
    fb.finish()

    fb = pb.function("epcm_owner_of", ["idx"], U64, layer="Epcm")
    fb.call("t", "epcm_get", ["idx"])
    fb.assign("_0", place("t").field(1))
    fb.ret()
    fb.finish()


# ---------------------------------------------------------------------------
# Layer 11 — EnclaveMem (the composite)
# ---------------------------------------------------------------------------


def _add_enclave_mem(pb, config, layout):
    epc_base = layout.epc_base
    # The flags add_epc_page installs are baked in at transcription time,
    # from the arch spec (retrofit rule 4: constants become literals).
    leaf_flags = config.arch.leaf_flags()
    fb = pb.function(
        "add_epc_page",
        ["gpt_root", "ept_root", "gpa_base", "elrange_base",
         "elrange_size", "owner", "va"],
        TupleTy((U64, U64)), layer="EnclaveMem")
    fb.call("inr", "elrange_contains",
            ["elrange_base", "elrange_size", "va"])
    fb.branch("inr", "alloc", "no")
    fb.label("alloc")
    fb.call("ar", "epcm_alloc_page", ["owner", EPCM_REG, "va"])
    fb.assign("ok", place("ar").field(0))
    fb.binop("hit", BinOp.NE, "ok", 0)
    fb.branch("hit", "mapit", "no")
    fb.label("mapit")
    fb.assign("idx", place("ar").field(1))
    fb.call("gpa", "elrange_gpa_of", ["gpa_base", "elrange_base", "va"])
    fb.call("_d1", "map_page", ["gpt_root", "va", "gpa", leaf_flags])
    fb.binop("epc_frame", BinOp.ADD, "idx", epc_base)
    fb.binop("pa", BinOp.SHL, "epc_frame", config.page_bits)
    fb.call("_d2", "map_page", ["ept_root", "gpa", "pa", leaf_flags])
    fb.tuple_("_0", 1, "epc_frame")
    fb.ret()
    fb.label("no")
    fb.tuple_("_0", 0, 0)
    fb.ret()
    fb.finish()


# ---------------------------------------------------------------------------
# Layer 13 — Hypercalls
# ---------------------------------------------------------------------------


def _add_hypercall(pb, config):
    fb = pb.function(
        "hc_add_page_checked",
        ["gpt_root", "ept_root", "gpa_base", "elrange_base",
         "elrange_size", "owner", "va"],
        TupleTy((U64, U64)), layer="Hypercalls")
    fb.call("al", "is_page_aligned", ["va"])
    fb.branch("al", "go", "no")
    fb.label("go")
    fb.call("_0", "add_epc_page",
            ["gpt_root", "ept_root", "gpa_base", "elrange_base",
             "elrange_size", "owner", "va"])
    fb.ret()
    fb.label("no")
    fb.tuple_("_0", 0, 0)
    fb.ret()
    fb.finish()
