"""Sec. 4 — code-proof and refinement-checking throughput + ablations.

Three measurements around the paper's two-step proof structure:

* **code proofs**: co-simulation rate of MIR ``map_page`` against its
  flat spec (samples/second — the reproduction's analog of proof-
  checking time),
* **refinement**: R-checking rate between flat and tree views,
* **ablations** (DESIGN.md Sec. 6): tree-view vs flat-view query cost
  for the higher layers, and the temporary-lifting effect (memory writes
  during a pure-corpus execution must be zero).
"""

import time

from repro.ccal.refinement import CoSimChecker, mir_impl
from repro.hyperenclave import pte
from repro.hyperenclave.constants import TINY
from repro.mir.value import mk_u64
from repro.reporting import render_table
from repro.spec import (
    abstract_table, flat_alloc_frame, flat_initial_state, flat_map_page,
    flat_query, relation_r, tree_empty, tree_map_page, tree_query,
)
from repro.verification import low_spec_for, sample_states

PAGE = TINY.page_size


def test_bench_cosim_map_page(benchmark, model):
    """Co-simulation throughput for the central stateful function."""
    impl = mir_impl(model.program, "map_page", trusted=model.trusted)
    spec = low_spec_for(model, "map_page")
    checker = CoSimChecker("map_page", impl, spec)
    samples = sample_states(model, "map_page", seed=5, count=24)

    report = benchmark(checker.check, samples)
    assert report.ok
    assert report.checked > 0


def _co_evolved(pages):
    layout = None
    from repro.hyperenclave.constants import MemoryLayout
    layout = MemoryLayout.default_for(TINY)
    state = flat_initial_state(TINY, layout.pt_pool_base,
                               layout.epc_base - layout.pt_pool_base)
    root, state = flat_alloc_frame(state)
    tree = tree_empty(TINY)
    for page_no in pages:
        before = state.bitmap
        state = flat_map_page(state, root, page_no * PAGE,
                              (page_no % 8) * PAGE, pte.leaf_flags())
        created = [TINY.frame_base(layout.pt_pool_base + i)
                   for i, (a, b) in enumerate(zip(before, state.bitmap))
                   if b and not a]
        tree = tree_map_page(tree, page_no * PAGE, (page_no % 8) * PAGE,
                             pte.leaf_flags(), TINY,
                             new_table_addrs=created)
    return tree, state, root


def test_bench_relation_r(benchmark, emit):
    """R-checking rate, plus the flat-vs-tree ablation table."""
    pages = [0, 1, 5, 17, 33, 42, 63, 80, 129, 200]
    pages = [p % 256 for p in pages]
    tree, state, root = _co_evolved(pages)

    def check_r():
        assert relation_r(tree, state, root)
        assert abstract_table(state, root) == tree
        return True

    assert benchmark(check_r)

    # Ablation: querying through the tree view vs walking flat memory.
    queries = [p * PAGE for p in range(0, 256, 3)]
    t0 = time.perf_counter()
    for va in queries:
        tree_query(tree, va, TINY)
    tree_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    for va in queries:
        flat_query(state, root, va)
    flat_time = time.perf_counter() - t0
    rows = [
        ["tree (high spec)", len(queries), f"{tree_time * 1e6:.0f}"],
        ["flat (low spec)", len(queries), f"{flat_time * 1e6:.0f}"],
    ]
    emit("refinement_ablation_views",
         render_table(["View", "Queries", "Total µs"], rows,
                      title="Ablation — query cost, tree vs flat view"))


def test_bench_lifting_ablation(benchmark, model, emit):
    """Sec. 3.2 lifting: the pure corpus never writes object memory.

    65/77 paper functions are memory-free thanks to lifting; in our
    corpus every pure function runs with zero memory writes, and the
    bench measures the interpreter's speed on exactly that fragment.
    """
    from repro.verification import pure_function_names

    args_by_arity = {0: [], 1: [mk_u64(0x1234)],
                     2: [mk_u64(0x1200), mk_u64(7)],
                     3: [mk_u64(0x1000), mk_u64(0x400), mk_u64(0x1100)],
                     4: [mk_u64(0), mk_u64(0x400), mk_u64(0x200),
                         mk_u64(0x400)]}
    names = pure_function_names(model.config, model.layout)

    def run_pure_corpus():
        writes = 0
        for name in names:
            function = model.program.functions[name]
            if name == "entry_index":
                args = [mk_u64(0x1234), mk_u64(1)]
            elif name == "level_span":
                args = [mk_u64(2)]
            else:
                args = args_by_arity[len(function.params)]
            interp = model.make_interpreter()
            interp.call(name, args)
            writes += interp.memory.write_count
        return writes

    total_writes = benchmark(run_pure_corpus)
    emit("lifting_ablation",
         f"Sec 3.2 lifting ablation: {len(names)} pure functions "
         f"executed, {total_writes} object-memory writes (must be 0)")
    assert total_writes == 0
