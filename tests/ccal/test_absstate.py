"""Abstract states: functional updates and ownership enforcement."""

import pytest

from repro.ccal.absstate import AbsState
from repro.errors import LayerError


def make():
    return (AbsState()
            .with_field("pt_words", (0, 0), owner="TrustedLayer")
            .with_field("scratch", 5))


class TestFields:
    def test_get_set(self):
        state = make()
        assert state.get("scratch") == 5
        assert state.set("scratch", 6).get("scratch") == 6

    def test_set_is_functional(self):
        state = make()
        state.set("scratch", 6)
        assert state.get("scratch") == 5

    def test_unknown_field_rejected(self):
        with pytest.raises(LayerError):
            make().get("nope")
        with pytest.raises(LayerError):
            make().set("nope", 1)

    def test_duplicate_field_rejected(self):
        with pytest.raises(LayerError):
            make().with_field("scratch", 1)

    def test_update_many(self):
        state = make().update(scratch=9, pt_words=(1, 1))
        assert state.get("scratch") == 9
        assert state.get("pt_words") == (1, 1)

    def test_fields_sorted(self):
        assert make().fields() == ["pt_words", "scratch"]


class TestOwnership:
    def test_owner_recorded(self):
        assert make().owner_of("pt_words") == "TrustedLayer"
        assert make().owner_of("scratch") is None

    def test_owner_may_write(self):
        state = make().set("pt_words", (1, 0),
                           _writer_layer="TrustedLayer")
        assert state.get("pt_words") == (1, 0)

    def test_other_layer_write_rejected(self):
        with pytest.raises(LayerError, match="owned by"):
            make().set("pt_words", (1, 0), _writer_layer="PtMap")

    def test_anonymous_write_allowed(self):
        # Writes without a layer tag (harness plumbing) bypass the check.
        make().set("pt_words", (1, 0))


class TestComparison:
    def test_equality_structural(self):
        assert make() == make()
        assert make().set("scratch", 6) != make()

    def test_equal_on_subset(self):
        a = make()
        b = make().set("scratch", 7)
        assert a.equal_on(b, ["pt_words"])
        assert not a.equal_on(b, ["scratch"])
        assert a.equal_on(b, [])
