"""Physical memory (sparse-but-dense-semantics), TLB, vCPU."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import HypervisorError
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.hardware import GPR_NAMES, PhysMemory, Tlb, VCpu


class TestPhysMemory:
    def test_reads_as_zero_initially(self):
        phys = PhysMemory(TINY)
        assert phys.read_word(0) == 0
        assert phys.read_word(TINY.phys_bytes - 8) == 0

    def test_write_read_roundtrip(self):
        phys = PhysMemory(TINY)
        phys.write_word(0x100, 0xDEADBEEF)
        assert phys.read_word(0x100) == 0xDEADBEEF

    def test_write_masks_to_64_bits(self):
        phys = PhysMemory(TINY)
        phys.write_word(0, 2 ** 70 + 5)
        assert phys.read_word(0) == (2 ** 70 + 5) % 2 ** 64

    def test_unaligned_access_rejected(self):
        phys = PhysMemory(TINY)
        with pytest.raises(HypervisorError, match="unaligned"):
            phys.read_word(3)

    def test_out_of_range_rejected(self):
        phys = PhysMemory(TINY)
        with pytest.raises(HypervisorError, match="out of range"):
            phys.read_word(TINY.phys_bytes)
        with pytest.raises(HypervisorError):
            phys.write_word(-8, 1)

    def test_zero_frame(self):
        phys = PhysMemory(TINY)
        base = TINY.frame_base(3)
        phys.write_word(base, 7)
        phys.write_word(base + 8, 9)
        phys.zero_frame(3)
        assert phys.frame_words(3) == (0,) * TINY.words_per_page

    def test_copy_frame_copies_zeros_too(self):
        phys = PhysMemory(TINY)
        phys.write_word(TINY.frame_base(1), 5)
        phys.write_word(TINY.frame_base(2), 8)      # dst has stale data
        phys.write_word(TINY.frame_base(2) + 8, 9)
        phys.copy_frame(2, 1)
        assert phys.frame_words(2) == phys.frame_words(1)
        assert phys.read_word(TINY.frame_base(2) + 8) == 0

    def test_fill_frame(self):
        phys = PhysMemory(TINY)
        phys.fill_frame(0, 0xAB)
        assert set(phys.frame_words(0)) == {0xAB}

    def test_snapshot_equality_means_equal_contents(self):
        a, b = PhysMemory(TINY), PhysMemory(TINY)
        a.write_word(0x10, 4)
        b.write_word(0x10, 4)
        assert a.snapshot() == b.snapshot()
        b.write_word(0x18, 1)
        assert a.snapshot() != b.snapshot()
        b.write_word(0x18, 0)  # writing zero restores sparseness
        assert a.snapshot() == b.snapshot()

    def test_load_snapshot(self):
        a = PhysMemory(TINY)
        a.write_word(0x20, 11)
        b = PhysMemory(TINY)
        b.load_snapshot(a.snapshot())
        assert b.read_word(0x20) == 11

    def test_region_words(self):
        phys = PhysMemory(TINY)
        phys.write_word(TINY.frame_base(2), 3)
        words = phys.region_words(range(2, 4))
        assert len(words) == 2 * TINY.words_per_page
        assert words[0] == 3

    @given(st.lists(st.tuples(st.integers(0, TINY.phys_bytes // 8 - 1),
                              st.integers(0, 2 ** 64 - 1)), max_size=20))
    def test_dense_semantics(self, writes):
        """Sparse storage must behave exactly like a dense zero array."""
        phys = PhysMemory(TINY)
        dense = {}
        for index, value in writes:
            phys.write_word(index * 8, value)
            dense[index] = value
        for index, value in dense.items():
            assert phys.read_word(index * 8) == value


class TestTlb:
    def test_insert_lookup(self):
        tlb = Tlb()
        tlb.insert(asid=1, va_page=0x10, pa_page=0x99)
        assert tlb.lookup(1, 0x10) == 0x99
        assert tlb.lookup(2, 0x10) is None

    def test_flush_all(self):
        tlb = Tlb()
        tlb.insert(1, 1, 1)
        tlb.flush_all()
        assert len(tlb) == 0
        assert tlb.flush_count == 1

    def test_flush_asid_selective(self):
        tlb = Tlb()
        tlb.insert(1, 1, 1)
        tlb.insert(2, 1, 2)
        tlb.flush_asid(1)
        assert tlb.lookup(1, 1) is None
        assert tlb.lookup(2, 1) == 2


class TestVCpu:
    def test_register_roundtrip(self):
        vcpu = VCpu()
        vcpu.write_reg("rax", 5)
        assert vcpu.read_reg("rax") == 5

    def test_unknown_register_rejected(self):
        with pytest.raises(HypervisorError):
            VCpu().write_reg("r99", 1)

    def test_values_wrap_to_64_bits(self):
        vcpu = VCpu()
        vcpu.write_reg("rbx", 2 ** 64 + 3)
        assert vcpu.read_reg("rbx") == 3

    def test_context_save_restore(self):
        vcpu = VCpu()
        vcpu.write_reg("rax", 1)
        saved = vcpu.context()
        vcpu.write_reg("rax", 2)
        vcpu.restore(saved)
        assert vcpu.read_reg("rax") == 1

    def test_context_covers_all_gprs(self):
        assert {name for name, _ in VCpu().context()} == set(GPR_NAMES)

    def test_clone_is_independent(self):
        vcpu = VCpu()
        clone = vcpu.clone()
        clone.write_reg("rax", 9)
        assert vcpu.read_reg("rax") == 0
