"""The specification-level page walk used by the security model.

"As part of these specifications we need a function representing the
page table walk that the CPU performs; instead of manually writing this
function in Coq (which we could get wrong), we actually use a
corresponding page-walk function that is part of the memory module of
HyperEnclave, which we have a verified Coq specification for." (Sec. 5.1)

We reproduce that reuse: :func:`spec_translate` is a thin wrapper over
:func:`repro.spec.tree.tree_walk` — the same walk the refinement proofs
verified against the code — so the transition system of
:mod:`repro.security.transitions` resolves addresses with the verified
artifact rather than a third, hand-written walker.
"""

from typing import Optional, Tuple

from repro.spec.tree import tree_walk


def spec_walk_terminal(tree, va, config):
    """The terminal PTERecord covering ``va`` plus its huge level, or
    ``(None, 1)``."""
    _, terminal, huge_level = tree_walk(tree, va, config)
    return terminal, huge_level


def spec_translate(tree, va, config, write=False,
                   user=True) -> Optional[int]:
    """Translate a byte address through a tree-view table.

    Returns the physical byte address, or None on any fault (absent
    mapping or permission violation) — the security model treats faults
    as no-op transitions, matching hardware delivering a fault instead
    of completing the access.

    Mirrors :meth:`PageTable.translate`'s arch semantics: the
    hierarchical permission rule at every intermediate record, then the
    terminal's W/U bits and access flag.
    """
    va = config.canonical_va(va)
    records, terminal, huge_level = tree_walk(tree, va, config)
    if terminal is None:
        return None
    for record in records[:-1]:
        if write and not record.allows_write_below:
            return None
        if user and not record.allows_user_below:
            return None
    if write and not terminal.is_writable:
        return None
    if user and not terminal.is_user:
        return None
    if not terminal.access_allowed:
        return None
    span = config.level_span(huge_level)
    return terminal.addr + (va % span)
