"""The simulated machine: physical memory, TLB, virtual CPUs.

The paper's testbed is real x86-64 hardware with VT-x nested paging;
here the machine is simulated (see DESIGN.md substitutions).  Physical
memory is a flat array of 64-bit words — deliberately the *same
representation* as the paper's bottom-layer abstract data ("a big flat
array of integers representing the physical memory of the frame area",
Sec. 4.1), so the flat-view specification and the machine agree by
construction and the interesting proofs are about everything above.
"""

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.concurrency import scheduler as conc
from repro.errors import HypervisorError
from repro.faults import plane as faults
from repro.hyperenclave.constants import WORD_BYTES


class PhysMemory:
    """Flat word-addressed physical memory (sparse representation).

    Semantically a dense array of ``phys_bytes / 8`` words initialised to
    zero; stored sparsely so the full x86-64 geometry (4 GiB) is as cheap
    as the tiny one.  All views (snapshots, frame words) present the
    dense semantics.
    """

    def __init__(self, config):
        self.config = config
        self._capacity = config.phys_bytes // WORD_BYTES
        self._words: Dict[int, int] = {}
        # Monotone mutation counter.  Every path that can change the
        # dense contents bumps it (word writes, frame ops, snapshot
        # loads, transactional undo), which is what lets the engine
        # cache content fingerprints across ``clone()`` and lets the
        # snapshot tree share clean structures between sibling forks:
        # equal versions on one object lineage imply equal contents.
        self._version = 0
        # Dirty-frame tracking for incremental fingerprinting: every
        # mutator records the frames it touched; ``frame_digests``
        # re-hashes only those and keeps a per-frame digest table that
        # ``clone()`` copies, so a fingerprint after one hypercall
        # re-hashes the handful of frames that hypercall wrote instead
        # of the whole sparse store.
        self._dirty_frames: set = set()
        self._frame_fps: Dict[int, bytes] = {}

    # -- word access -------------------------------------------------------------

    def read_word(self, paddr):
        """Read the 64-bit word at byte address ``paddr`` (word-aligned)."""
        return self._words.get(self._word_index(paddr), 0)

    def write_word(self, paddr, value):
        """Write the 64-bit word at byte address ``paddr``.

        Fault-injection sites ``phys.write`` (the write faults) and
        ``phys.flip`` (in-flight bit corruption) live here; without an
        installed plane the hook is a single ``None`` test.
        """
        index = self._word_index(paddr)
        conc.yield_point("phys.write", f"word {paddr:#x}")
        value = faults.filter_write(paddr, value)
        conc.record_phys_write(index, self._words.get(index, 0))
        self._version += 1
        self._dirty_frames.add(index // self.config.words_per_page)
        masked = value & ((1 << 64) - 1)
        if masked == 0:
            self._words.pop(index, None)
        else:
            self._words[index] = masked

    def _word_index(self, paddr):
        if paddr % WORD_BYTES:
            raise HypervisorError(f"unaligned word access at {paddr:#x}")
        index = paddr // WORD_BYTES
        if not 0 <= index < self._capacity:
            raise HypervisorError(f"physical address {paddr:#x} out of range")
        return index

    # -- frame helpers --------------------------------------------------------------

    def zero_frame(self, frame):
        """Clear every word of one frame (one yield per frame)."""
        base = self.config.frame_base(frame) // WORD_BYTES
        conc.yield_point("phys.write", f"zero frame {frame}")
        self._version += 1
        self._dirty_frames.add(frame)
        for offset in range(self.config.words_per_page):
            conc.record_phys_write(base + offset,
                                   self._words.get(base + offset, 0))
            self._words.pop(base + offset, None)

    def copy_frame(self, dst_frame, src_frame):
        """Copy a whole frame (zeros included).

        Each destination word goes through the same fault sites as
        :meth:`write_word`, so the EADD frame copy is injectable
        word-by-word.
        """
        dst = self.config.frame_base(dst_frame) // WORD_BYTES
        src = self.config.frame_base(src_frame) // WORD_BYTES
        conc.yield_point("phys.write",
                         f"copy frame {src_frame}->{dst_frame}")
        self._version += 1
        self._dirty_frames.add(dst_frame)
        for offset in range(self.config.words_per_page):
            value = self._words.get(src + offset, 0)
            value = faults.filter_write((dst + offset) * WORD_BYTES, value)
            conc.record_phys_write(dst + offset,
                                   self._words.get(dst + offset, 0))
            if value == 0:
                self._words.pop(dst + offset, None)
            else:
                self._words[dst + offset] = value

    def frame_words(self, frame) -> Tuple[int, ...]:
        """The frame's contents as an immutable word tuple."""
        base = self.config.frame_base(frame) // WORD_BYTES
        return tuple(self._words.get(base + offset, 0)
                     for offset in range(self.config.words_per_page))

    def fill_frame(self, frame, pattern):
        """Fill a frame with one repeated word."""
        base = self.config.frame_base(frame) // WORD_BYTES
        for offset in range(self.config.words_per_page):
            self.write_word((base + offset) * WORD_BYTES, pattern)

    # -- bulk views --------------------------------------------------------------------

    def snapshot(self):
        """The whole memory as an immutable value (sorted nonzero words);
        equal snapshots mean equal dense contents."""
        return tuple(sorted(self._words.items()))

    def region_words(self, frame_range) -> Tuple[int, ...]:
        """Concatenated word tuples over a frame range."""
        words = []
        for frame in frame_range:
            words.extend(self.frame_words(frame))
        return tuple(words)

    def load_snapshot(self, items):
        """Replace the contents with a :meth:`snapshot`'s items."""
        self._version += 1
        self._words = dict(items)
        self._mark_all_dirty()

    def checkpoint(self):
        """Cheap mutable checkpoint (unsorted) for transactional rollback."""
        return dict(self._words)

    def restore_checkpoint(self, checkpoint):
        """Roll back to a :meth:`checkpoint` (transactional abort)."""
        self._version += 1
        self._words = dict(checkpoint)
        self._mark_all_dirty()

    def apply_undo(self, journal):
        """Restore journalled words (concurrent transactional rollback).

        ``journal`` maps word index to the pre-transaction value; a zero
        restores the sparse default.  Going through a method keeps the
        version counter honest — the undo path used to poke ``_words``
        directly, which would silently invalidate every cached
        fingerprint and shared snapshot built on version equality.
        """
        self._version += 1
        wpp = self.config.words_per_page
        for index, old_value in journal.items():
            self._dirty_frames.add(index // wpp)
            if old_value == 0:
                self._words.pop(index, None)
            else:
                self._words[index] = old_value

    def clone(self):
        """An independent copy (no yield points, no fault sites)."""
        new = object.__new__(type(self))
        new.config = self.config
        new._capacity = self._capacity
        new._words = dict(self._words)
        new._version = self._version
        new._dirty_frames = set(self._dirty_frames)
        new._frame_fps = dict(self._frame_fps)
        return new

    # -- incremental fingerprint support ------------------------------------------

    def _mark_all_dirty(self):
        """Wholesale content replacement: discard every cached frame
        digest and queue the now-populated frames for re-hashing."""
        self._frame_fps.clear()
        self._dirty_frames = {index // self.config.words_per_page
                              for index in self._words}

    def frame_digests(self) -> Dict[int, bytes]:
        """Per-frame blake2b-64 digests of every nonzero frame.

        Re-hashes only the frames dirtied since the last call and
        updates the cached table in place (frames that went all-zero
        drop out, matching the sparse semantics).  The engine's
        fingerprint layer folds the table into one combined digest —
        O(dirty frames) hashing plus O(nonzero frames) mixing, versus
        re-encoding the whole store on every fingerprint.
        """
        if self._dirty_frames:
            wpp = self.config.words_per_page
            words = self._words
            for frame in self._dirty_frames:
                base = frame * wpp
                content = tuple(
                    (offset, words[base + offset])
                    for offset in range(wpp) if base + offset in words)
                if content:
                    self._frame_fps[frame] = hashlib.blake2b(
                        repr(content).encode(), digest_size=8).digest()
                else:
                    self._frame_fps.pop(frame, None)
            self._dirty_frames.clear()
        return self._frame_fps

    def __len__(self):
        return self._capacity


class Tlb:
    """A simple tagged TLB.

    HyperEnclave flushes the TLB on every enclave transition (Sec. 2.1);
    the model records flushes so tests can assert that stale translations
    never survive a world switch.
    """

    def __init__(self):
        # key -> (pa_page, span): ``span`` is the bytes the cached
        # translation covers (None = one page).  Hardware TLBs cache
        # block translations at block granularity; the stale-translation
        # detector must sweep the whole span, not just the base page.
        self._entries: Dict[Tuple[int, int], Tuple[int, Optional[int]]] = {}
        self.flush_count = 0

    def insert(self, asid, va_page, pa_page, span=None):
        self._entries[(asid, va_page)] = (pa_page, span)

    def lookup(self, asid, va_page) -> Optional[int]:
        """The cached physical page for ``(asid, va_page)``, or None."""
        hit = self._entries.get((asid, va_page))
        return None if hit is None else hit[0]

    def lookup_entry(self, asid, va_page) -> Optional[Tuple[int, Optional[int]]]:
        """``(pa_page, span)`` for a cached translation, or None."""
        return self._entries.get((asid, va_page))

    def flush_asid(self, asid):
        """Drop every entry tagged with ``asid``."""
        self._entries = {k: v for k, v in self._entries.items()
                         if k[0] != asid}
        self.flush_count += 1

    def flush_all(self):
        """Drop every entry (the world-switch flush)."""
        self._entries.clear()
        self.flush_count += 1

    def snapshot(self):
        """(entries, flush_count) as an immutable value."""
        return (tuple(sorted(self._entries.items())), self.flush_count)

    def load_snapshot(self, snapshot):
        """Restore a :meth:`snapshot` (transactional rollback)."""
        entries, flush_count = snapshot
        self._entries = dict(entries)
        self.flush_count = flush_count

    def clone(self):
        """An independent copy, flush telemetry included."""
        new = type(self)()
        new._entries = dict(self._entries)
        new.flush_count = self.flush_count
        return new

    def __len__(self):
        return len(self._entries)


# General-purpose register names of the vCPU model (a representative
# x86-64 subset; the noninterference observation function quantifies over
# whatever is here).
GPR_NAMES = ("rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rsp", "rbp", "rip")


@dataclass
class VCpu:
    """Virtual CPU state: general registers plus the two paging roots.

    ``gpt_root`` is the guest page table root (CR3); ``ept_root`` is the
    extended page table root (EPTP).  RustMonitor switches both on every
    enclave entry/exit (Sec. 2.1).
    """

    regs: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in GPR_NAMES})
    gpt_root: Optional[int] = None
    ept_root: Optional[int] = None

    def write_reg(self, name, value):
        """Write a general register (wraps to 64 bits)."""
        if name not in self.regs:
            raise HypervisorError(f"unknown register {name!r}")
        self.regs[name] = value & ((1 << 64) - 1)

    def read_reg(self, name):
        """Read a general register."""
        if name not in self.regs:
            raise HypervisorError(f"unknown register {name!r}")
        return self.regs[name]

    def context(self) -> Tuple[Tuple[str, int], ...]:
        """Immutable register snapshot (saved on enclave exit)."""
        return tuple(sorted(self.regs.items()))

    def restore(self, context):
        self.regs = dict(context)

    def clone(self):
        return VCpu(regs=dict(self.regs), gpt_root=self.gpt_root,
                    ept_root=self.ept_root)


@dataclass
class CpuLocal:
    """Everything that is per-core on the real machine.

    Each vCPU has its own register file, its own TLB, its own notion of
    which principal it is running (``active``), and its own parked host
    context across an enclave entry.  The monitor's scalar views of
    these (``monitor.active`` etc.) dispatch on the executing vCPU.
    """

    vcpu: VCpu
    tlb: Tlb
    active: int = 0                       # HOST_ID
    saved_host_context: Optional[Tuple] = None

    def snapshot(self):
        """Immutable capture for transactional rollback."""
        return (dict(self.vcpu.regs), self.vcpu.gpt_root,
                self.vcpu.ept_root, self.active,
                self.saved_host_context, self.tlb.snapshot())

    def load_snapshot(self, snapshot):
        """Restore a :meth:`snapshot` (transactional rollback)."""
        regs, gpt_root, ept_root, active, shc, tlb = snapshot
        self.vcpu.regs = dict(regs)
        self.vcpu.gpt_root = gpt_root
        self.vcpu.ept_root = ept_root
        self.active = active
        self.saved_host_context = shc
        self.tlb.load_snapshot(tlb)

    def clone(self):
        """An independent per-core copy (``saved_host_context`` is an
        immutable register tuple, shared by reference)."""
        return CpuLocal(vcpu=self.vcpu.clone(), tlb=self.tlb.clone(),
                        active=self.active,
                        saved_host_context=self.saved_host_context)
