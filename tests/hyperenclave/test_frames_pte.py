"""Frame allocator invariants and PTE bit manipulation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import HypervisorError, OutOfMemoryError
from repro.hyperenclave import pte
from repro.hyperenclave.constants import PteFlagBits, TINY, X86_64
from repro.hyperenclave.frames import BitmapFrameAllocator


class TestAllocator:
    def test_first_fit_lowest(self):
        alloc = BitmapFrameAllocator(range(10, 15))
        assert alloc.alloc() == 10
        assert alloc.alloc() == 11

    def test_dealloc_enables_reuse(self):
        alloc = BitmapFrameAllocator(range(10, 12))
        first = alloc.alloc()
        alloc.alloc()
        alloc.dealloc(first)
        assert alloc.alloc() == first

    def test_exhaustion(self):
        alloc = BitmapFrameAllocator(range(10, 12))
        alloc.alloc(); alloc.alloc()
        with pytest.raises(OutOfMemoryError):
            alloc.alloc()

    def test_double_free_rejected(self):
        alloc = BitmapFrameAllocator(range(10, 12))
        frame = alloc.alloc()
        alloc.dealloc(frame)
        with pytest.raises(HypervisorError, match="double free"):
            alloc.dealloc(frame)

    def test_foreign_frame_rejected(self):
        alloc = BitmapFrameAllocator(range(10, 12))
        with pytest.raises(HypervisorError):
            alloc.dealloc(5)
        assert not alloc.contains(5)

    def test_alloc_specific(self):
        alloc = BitmapFrameAllocator(range(10, 15))
        assert alloc.alloc_specific(13) == 13
        with pytest.raises(HypervisorError, match="already"):
            alloc.alloc_specific(13)

    def test_noncontiguous_pool_rejected(self):
        with pytest.raises(HypervisorError):
            BitmapFrameAllocator([1, 3, 5])
        with pytest.raises(HypervisorError):
            BitmapFrameAllocator([])

    def test_counters(self):
        alloc = BitmapFrameAllocator(range(0, 4))
        alloc.alloc()
        assert alloc.used_count == 1
        assert alloc.free_count == 3
        assert alloc.allocated_frames() == [0]

    @given(st.lists(st.sampled_from(["alloc", "dealloc"]), max_size=40))
    def test_alloc_dealloc_invariants(self, script):
        """used+free == size; no frame handed out twice while live."""
        alloc = BitmapFrameAllocator(range(0, 8))
        live = set()
        for action in script:
            if action == "alloc":
                try:
                    frame = alloc.alloc()
                except OutOfMemoryError:
                    assert len(live) == 8
                    continue
                assert frame not in live
                live.add(frame)
            elif live:
                victim = sorted(live)[0]
                alloc.dealloc(victim)
                live.discard(victim)
            assert alloc.used_count == len(live)
            assert alloc.used_count + alloc.free_count == alloc.size
            assert set(alloc.allocated_frames()) == live


ENTRIES = st.integers(0, 2 ** 64 - 1)
TINY_ADDRS = st.integers(0, TINY.phys_bytes - 1).map(TINY.page_base)
FLAGS = st.integers(0, 0xFF)


class TestPteBits:
    @given(TINY_ADDRS, FLAGS)
    def test_new_entry_roundtrip(self, addr, flags):
        entry = pte.pte_new(addr, flags, TINY)
        assert pte.pte_addr(entry, TINY) == addr
        assert pte.pte_flags(entry, TINY) == flags & ~TINY.addr_mask()

    @given(ENTRIES)
    def test_addr_flags_partition(self, entry):
        """Every entry is exactly its address field plus its flag field."""
        assert pte.pte_addr(entry, TINY) | pte.pte_flags(entry, TINY) \
            == entry
        assert pte.pte_addr(entry, TINY) & pte.pte_flags(entry, TINY) == 0

    @given(ENTRIES, TINY_ADDRS)
    def test_set_addr_preserves_flags(self, entry, addr):
        updated = pte.pte_set_addr(entry, addr, TINY)
        assert pte.pte_addr(updated, TINY) == addr
        assert pte.pte_flags(updated, TINY) == pte.pte_flags(entry, TINY)

    @given(ENTRIES, FLAGS)
    def test_set_flags_preserves_addr(self, entry, flags):
        updated = pte.pte_set_flags(entry, flags, TINY)
        assert pte.pte_addr(updated, TINY) == pte.pte_addr(entry, TINY)

    def test_flag_predicates(self):
        entry = pte.pte_new(0, pte.leaf_flags(writable=True, user=False,
                                              huge=True), TINY)
        assert pte.pte_is_present(entry)
        assert pte.pte_is_writable(entry)
        assert not pte.pte_is_user(entry)
        assert pte.pte_is_huge(entry)

    def test_with_flag_set_and_clear(self):
        entry = pte.pte_with_flag(0, PteFlagBits.PRESENT)
        assert pte.pte_is_present(entry)
        assert not pte.pte_is_present(
            pte.pte_with_flag(entry, PteFlagBits.PRESENT, False))

    def test_unused_entry(self):
        assert pte.pte_is_unused(pte.pte_empty())
        assert not pte.pte_is_unused(pte.pte_new(0, 1, TINY))

    def test_nx_bit_is_outside_x86_addr_field(self):
        entry = pte.pte_new(0x1000, pte.leaf_flags(nx=True), X86_64)
        assert pte.pte_addr(entry, X86_64) == 0x1000
        assert pte.pte_flag_set(entry, PteFlagBits.NX)

    def test_frame_extraction(self):
        entry = pte.pte_new(TINY.frame_base(7), pte.leaf_flags(), TINY)
        assert pte.pte_frame(entry, TINY) == 7

    def test_describe(self):
        assert pte.describe(0, TINY) == "<unused>"
        text = pte.describe(pte.pte_new(0x100, pte.leaf_flags(), TINY), TINY)
        assert "0x100" in text and "P" in text and "W" in text
