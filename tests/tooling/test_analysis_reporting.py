"""Call-graph layering, effort accounting, tables and figures."""

import pytest

from repro.analysis import (
    PAPER_RATIOS, PAPER_TABLE1, call_graph, corpus_mirlight_loc,
    infer_layer_indices, layering_consistency, measure_components,
    proof_effort_summary, split_blob,
)
from repro.errors import LayerError
from repro.hyperenclave.constants import TINY
from repro.mir.builder import ProgramBuilder
from repro.mir.types import U64
from repro.reporting import render_table
from repro.reporting.figures import (
    fig1_architecture, fig2_translation, fig4_pointer_cases,
)

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


class TestCallGraphAnalysis:
    def test_call_graph_shape(self, model):
        graph = call_graph(model.program)
        assert "phys_read_word" in graph["read_entry"]
        assert graph["pte_new"] == []

    def test_split_blob_per_function(self, model):
        files = split_blob(model.program)
        assert len(files) == 49
        assert files["map_page"].startswith("fn map_page(")

    def test_inferred_depths_respect_calls(self, model):
        trusted = [s.name for s in model.trusted]
        depths = infer_layer_indices(model.program, trusted)
        graph = call_graph(model.program)
        for name, callees in graph.items():
            for callee in callees:
                if callee in depths:
                    assert depths[callee] < depths[name]

    def test_declared_layering_is_topological(self, model):
        trusted = [s.name for s in model.trusted]
        problems = layering_consistency(model.program, trusted,
                                        model.layer_map, model.stack)
        assert problems == []

    def test_cycle_detected(self):
        pb = ProgramBuilder()
        fb = pb.function("a", [], U64)
        fb.call("_1", "b", [])
        fb.ret(1)
        fb.finish()
        fb = pb.function("b", [], U64)
        fb.call("_1", "a", [])
        fb.ret(1)
        fb.finish()
        with pytest.raises(LayerError, match="cycle"):
            infer_layer_indices(pb.build(), [])

    def test_inconsistent_declaration_flagged(self, model):
        """Swap two layers in the declaration and the checker objects."""
        bad_map = dict(model.layer_map)
        bad_map["map_page"] = "PtEntryIo"  # below what it calls
        trusted = [s.name for s in model.trusted]
        problems = layering_consistency(model.program, trusted, bad_map,
                                        model.stack)
        assert problems


class TestEffortAccounting:
    def test_paper_constants_sane(self):
        assert PAPER_RATIOS["proof_per_mir_line"] == pytest.approx(
            PAPER_RATIOS["proof_loc"] / PAPER_RATIOS["mirlight_loc"],
            abs=0.01)
        assert PAPER_RATIOS["sekvm_proof_per_line"] == pytest.approx(
            PAPER_RATIOS["sekvm_proof_loc"]
            / PAPER_RATIOS["sekvm_c_loc"], abs=0.01)
        assert sum(PAPER_RATIOS["effort_split"].values()) == \
            pytest.approx(1.0)
        assert len(PAPER_TABLE1) == 8

    def test_measured_components_nonempty(self):
        measured = measure_components(include_harness=False)
        assert len(measured) == 7
        for component, count in measured.items():
            assert count.code > 0, component

    def test_harness_components_included_in_editable_checkout(self):
        measured = measure_components(include_harness=True)
        assert "Test suite" in measured
        assert measured["Test suite"].code > 3000
        assert measured["Benchmark harness"].code > 400

    def test_corpus_mirlight_loc(self, model):
        count = corpus_mirlight_loc(model)
        assert count.code > 500  # the corpus is substantial

    def test_effort_summary_shape_matches_paper(self, model):
        """Shape claims: 49 functions, 15 layers, MIR expansion, and a
        checker-per-MIR-line ratio below SeKVM's 2.16."""
        summary = proof_effort_summary(model)
        assert summary.corpus_functions == 49
        assert summary.corpus_layers == 15
        assert summary.checker_per_mir_line < \
            PAPER_RATIOS["sekvm_proof_per_line"]


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["name", "lines"],
                            [["alpha", 120], ["b", 7]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert set(lines[2]) <= {"-", " "}   # separator under the header
        assert "alpha" in lines[3]
        assert lines[4].endswith("7")        # numeric right-aligned

    def test_render_table_floats(self):
        text = render_table(["r"], [[1.234]])
        assert "1.23" in text

    def test_fig1_reflects_live_state(self, enclave_world):
        monitor, _app, eid = enclave_world
        text = fig1_architecture(monitor)
        assert f"Enclave {eid}" in text
        assert "EPC" in text and "RustMonitor" in text

    def test_fig2_shows_shared_mbuf_only(self, enclave_world):
        monitor, app, eid = enclave_world
        vas = [0, 12 * PAGE, 16 * PAGE]
        text = fig2_translation(monitor, eid, app, vas)
        assert "marshalling buffer" in text
        assert "ELRANGE -> EPC" in text
        assert "fault" in text  # host can't see EPC / enclave can't see 0

    def test_fig4_counts(self, model):
        from repro.ccal.pointers import classify_pointer_flows
        flows = classify_pointer_flows(model.program, model.layer_map,
                                       model.stack)
        text = fig4_pointer_cases(flows)
        assert "trusted getter/setter" in text
