"""The untrusted side: guest-physical access, GPT building, probing."""

import pytest

from repro.errors import TranslationFault
from repro.hyperenclave import pte
from repro.hyperenclave.constants import TINY

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


class TestGpaAccess:
    def test_untrusted_read_write(self, monitor):
        primary_os = monitor.primary_os
        primary_os.gpa_write_word(0x100, 0x42)
        assert primary_os.gpa_read_word(0x100) == 0x42

    def test_secure_access_faults(self, monitor):
        secure_gpa = TINY.frame_base(monitor.layout.secure_base)
        with pytest.raises(TranslationFault):
            monitor.primary_os.gpa_read_word(secure_gpa)
        with pytest.raises(TranslationFault):
            monitor.primary_os.gpa_write_word(secure_gpa, 1)

    def test_dma_goes_through_same_checks(self, monitor):
        with pytest.raises(TranslationFault):
            monitor.primary_os.dma_write(
                TINY.frame_base(monitor.layout.epc_base), 0x41)
        monitor.primary_os.dma_write(0x200, 0x41)  # untrusted ok


class TestGptConstruction:
    def test_spawn_app_and_map_data(self, monitor):
        app = monitor.primary_os.spawn_app(1)
        gpa = monitor.primary_os.app_map_data(app, 6 * PAGE)
        monitor.primary_os.store(app, 6 * PAGE, 0x77)
        assert monitor.primary_os.load(app, 6 * PAGE) == 0x77
        assert monitor.phys.read_word(gpa) == 0x77  # identity EPT

    def test_duplicate_app_rejected(self, monitor):
        monitor.primary_os.spawn_app(1)
        with pytest.raises(Exception):
            monitor.primary_os.spawn_app(1)

    def test_gpt_map_creates_intermediates_in_untrusted_memory(self,
                                                               monitor):
        primary_os = monitor.primary_os
        app = primary_os.spawn_app(1)
        reserved_before = len(primary_os._reserved_frames)
        primary_os.gpt_map(app.gpt_root_gpa, 9 * PAGE, 0)
        # root existed; levels-1 intermediates were reserved
        assert len(primary_os._reserved_frames) == \
            reserved_before + TINY.levels - 1
        for frame in primary_os._reserved_frames:
            assert monitor.layout.is_untrusted(frame)

    def test_gpt_set_raw_entry(self, monitor):
        primary_os = monitor.primary_os
        app = primary_os.spawn_app(1)
        raw = pte.pte_new(0x700, pte.leaf_flags(), TINY)
        primary_os.gpt_set_raw_entry(app.gpt_root_gpa, 2, raw)
        assert primary_os.gpa_read_word(app.gpt_root_gpa + 16) == raw

    def test_probe_returns_none_on_fault(self, monitor):
        app = monitor.primary_os.spawn_app(1)
        assert monitor.primary_os.probe(app, 9 * PAGE) is None
        monitor.primary_os.app_map_data(app, 9 * PAGE)
        assert monitor.primary_os.probe(app, 9 * PAGE) is not None

    def test_write_permission_respected_in_guest_walk(self, monitor):
        primary_os = monitor.primary_os
        app = primary_os.spawn_app(1)
        gpa = TINY.frame_base(primary_os.reserve_data_frame())
        primary_os.gpt_map(app.gpt_root_gpa, 6 * PAGE, gpa,
                           flags=pte.leaf_flags(writable=False))
        assert primary_os.probe(app, 6 * PAGE, write=False) is not None
        assert primary_os.probe(app, 6 * PAGE, write=True) is None


class TestAdversarialReach:
    def test_os_gpt_rewrite_cannot_reach_epc(self):
        """The OS may point its GPT anywhere; the EPT still wins."""
        monitor, app, eid = build_enclave_world()
        primary_os = monitor.primary_os
        for frame, _ in monitor.epcm.owned_by(eid):
            primary_os.gpt_map(app.gpt_root_gpa, 7 * PAGE,
                               TINY.frame_base(frame))
            assert primary_os.probe(app, 7 * PAGE) is None
            # clean up the probe mapping for the next round
            raw_index = TINY.entry_index(7 * PAGE, 1)
            # find the L1 table by walking the first two levels manually
            entry = primary_os.gpa_read_word(
                app.gpt_root_gpa + TINY.entry_index(7 * PAGE, 3) * 8)
            l2_gpa = pte.pte_addr(entry, TINY)
            entry = primary_os.gpa_read_word(
                l2_gpa + TINY.entry_index(7 * PAGE, 2) * 8)
            l1_gpa = pte.pte_addr(entry, TINY)
            primary_os.gpa_write_word(l1_gpa + raw_index * 8, 0)

    def test_os_cannot_touch_enclave_page_table_frames(self):
        monitor, _app, eid = build_enclave_world()
        enclave = monitor.enclaves[eid]
        for frame in enclave.gpt.table_frames():
            with pytest.raises(TranslationFault):
                monitor.primary_os.gpa_write_word(TINY.frame_base(frame),
                                                  0xBAD)
