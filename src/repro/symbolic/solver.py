"""A small exact solver over bounded domains.

No SMT backend is available offline, so satisfiability is decided by
*exhaustive model enumeration* over explicitly bounded variable domains,
after a pruning pass that narrows domains using the unary comparisons in
the constraint set.  Within the supplied domains the answers are exact:
``check_sat`` returns a genuine model or proves none exists, and
``must_hold`` is a real bounded proof.

This is precisely the "informal symbolic checking" level of assurance
the reproduction targets: universally-quantified claims hold *for the
explored domain*, not for all 2^64 inputs.

**Incremental solving (PR 4).**  Two fast-path layers sit on top of the
exact core, both gated on :mod:`repro.fastpath` and both required to be
verdict-invisible:

* :class:`Domains` is *persistent*: ``restrict``/``with_var`` return a
  copy-on-write child sharing the parent's tuples instead of copying
  the whole mapping.  Forking path executors derive thousands of
  single-variable refinements from one initial domain set; sharing
  turns each fork from O(variables) into O(1).  This holds in naive
  mode too — persistence is a data-structure choice, not a semantic
  one; only the *caches* below are fast-path-gated.
* Solver verdicts are memoised on a canonical key built from
  :func:`~repro.symbolic.terms.term_fingerprint` of the constraints (in
  call order — constraint order can matter when evaluation raises, so
  the key must not sort it away), the :meth:`Domains.fingerprint`, and
  the enumeration limit (so ``OverflowError`` behaviour is part of the
  key).  Path-condition prefixes repeat across sibling paths and across
  obligations of one function; the memo collapses the repeats.  Raised
  exceptions are never cached; cached models are copied on return so
  callers may mutate them.

:func:`solver_stats` exposes the counters (models enumerated, domain
values pruned, memo hits) that :class:`~repro.ccal.refinement.CheckReport`
surfaces, and :func:`clear_solver_caches` resets everything for the
bench's cold-cache rounds.
"""

import itertools

from repro import fastpath
from repro.errors import UnboundSymbolicVariable
from repro.obs import trace as _trace
from repro.obs.metrics import REGISTRY
from repro.symbolic.terms import (
    App, Const, SymVar, compile_evaluator, evaluate, term_fingerprint,
    term_vars,
)

DEFAULT_ENUMERATION_LIMIT = 2_000_000

# Flatten copy-on-write chains past this depth so ``of`` stays O(1)
# amortised even for pathologically deep restrict sequences.
_MAX_CHAIN_DEPTH = 8


class Domains:
    """Explicit finite domains for symbolic variables.

    ``Domains({"x": range(16), "flag": (True, False)})``.  Every variable
    appearing in the constraints must be covered.

    Persistent: ``restrict`` and ``with_var`` return a child that holds
    only the rebound variable and a pointer to its parent, so deriving a
    refinement never copies the untouched domains.  Instances are
    immutable once constructed, which is what makes the sharing — and
    the cached :meth:`fingerprint` — sound.
    """

    __slots__ = ("_mapping", "_parent", "_depth", "_fp", "_names")

    def __init__(self, mapping=None):
        self._mapping = {k: tuple(v) for k, v in (mapping or {}).items()}
        self._parent = None
        self._depth = 0
        self._fp = None
        self._names = None

    @classmethod
    def _derive(cls, parent, name, values):
        """A child equal to ``parent`` except ``name`` -> ``values``."""
        child = object.__new__(cls)
        if parent._depth >= _MAX_CHAIN_DEPTH:
            flat = parent._flat()
            flat[name] = values
            child._mapping = flat
            child._parent = None
            child._depth = 0
        else:
            child._mapping = {name: values}
            child._parent = parent
            child._depth = parent._depth + 1
        child._fp = None
        child._names = None
        return child

    def _flat(self):
        """The full name -> values dict (materialises the chain)."""
        chain = []
        node = self
        while node is not None:
            chain.append(node._mapping)
            node = node._parent
        flat = {}
        for mapping in reversed(chain):
            flat.update(mapping)
        return flat

    def of(self, name):
        """The value tuple for ``name``; raises
        :class:`~repro.errors.UnboundSymbolicVariable` (a ``KeyError``)
        when no domain was declared."""
        node = self
        while node is not None:
            values = node._mapping.get(name)
            if values is not None:
                return values
            node = node._parent
        raise UnboundSymbolicVariable(name)

    def names(self):
        """All declared variable names, sorted."""
        if self._names is None:
            if self._parent is None:
                self._names = sorted(self._mapping)
            else:
                self._names = sorted(self._flat())
        return self._names

    def restrict(self, name, predicate):
        """A new Domains with ``name`` filtered by ``predicate``."""
        return Domains._derive(
            self, name, tuple(v for v in self.of(name) if predicate(v)))

    def size(self, names):
        """Product of the domain sizes over ``names``."""
        total = 1
        for name in names:
            total *= max(len(self.of(name)), 1)
        return total

    def with_var(self, name, values):
        """A new Domains binding ``name`` to ``values``."""
        return Domains._derive(self, name, tuple(values))

    def fingerprint(self):
        """Canonical blake2b-64 of the full mapping, cached per instance
        (sound because instances are immutable)."""
        if self._fp is None:
            from repro.engine.fingerprint import content_fingerprint
            self._fp = content_fingerprint(
                "domains", tuple(sorted(self._flat().items())))
        return self._fp


# ---------------------------------------------------------------------------
# Statistics and memo tables
# ---------------------------------------------------------------------------

# The live counter storage is a registry counter group: the hot loops
# below keep their plain-dict increments, while the metrics registry
# snapshots/merges the same ints as ``solver.<key>`` (which is how
# worker processes ship their solver work back to the parent).
_STATS = REGISTRY.counter_group("solver", (
    "candidates_examined",      # assignments tried by enumerate_models
    "models_enumerated",        # assignments that satisfied everything
    "domains_pruned",           # values removed by unary pruning
    "check_sat_calls",
    "check_sat_memo_hits",
    "must_hold_calls",
    "must_hold_memo_hits",
))
_CHECK_SAT_MEMO = {}
_MUST_HOLD_MEMO = {}
_MEMO_MAX = 1 << 18


def solver_stats():
    """A snapshot of the solver counters (plain dict copy)."""
    return dict(_STATS)


def stats_delta(before, after=None):
    """Counter-wise ``after - before`` (``after`` defaults to now)."""
    if after is None:
        after = solver_stats()
    return {key: after[key] - before.get(key, 0) for key in after}


def clear_solver_caches():
    """Empty the verdict memos and zero every counter."""
    _CHECK_SAT_MEMO.clear()
    _MUST_HOLD_MEMO.clear()
    for key in _STATS:
        _STATS[key] = 0


def _constraints_key(constraints, domains, limit):
    """The canonical memo key: constraint fingerprints *in call order*
    (order can matter when evaluation raises), the domains fingerprint,
    and the limit (``OverflowError`` behaviour depends on it)."""
    return (tuple(term_fingerprint(c) for c in constraints),
            domains.fingerprint(), limit)


# ---------------------------------------------------------------------------
# Pruning
# ---------------------------------------------------------------------------


def prune_domains(constraints, domains):
    """Narrow domains using unary constraints (``x <op> const``).

    Sound: only removes values that falsify some constraint on their own,
    so the model set is unchanged.  Each unary restrict is intersective,
    idempotent and order-independent, which is why the path executor may
    apply this incrementally — pruning the parent's already-pruned
    domains with just the newly-added branch constraint yields the same
    domains as re-pruning from scratch.
    """
    pruned = domains
    for constraint in constraints:
        unary = _unary_of(constraint)
        if unary is None:
            continue
        name, predicate = unary
        try:
            before = len(pruned.of(name))
            pruned = pruned.restrict(name, predicate)
            removed = before - len(pruned.of(name))
            if removed:
                _STATS["domains_pruned"] += removed
        except KeyError:
            pass
    return pruned


def _unary_of(term):
    """:func:`_as_unary` with the parse cached on the (interned) term."""
    if not fastpath._ENABLED:
        return _as_unary(term)
    unary = getattr(term, "_unary", False)
    if unary is False:
        unary = _as_unary(term)
        try:
            object.__setattr__(term, "_unary", unary)
        except AttributeError:
            pass
    return unary


def _as_unary(term):
    """Recognise ``cmp(var, const)`` / ``cmp(const, var)`` / ``not(...)``."""
    negated = False
    while isinstance(term, App) and term.op == "not":
        negated = not negated
        term = term.args[0]
    if not isinstance(term, App) or term.op not in (
            "eq", "ne", "lt", "le", "gt", "ge"):
        return None
    left, right = term.args
    if isinstance(left, SymVar) and isinstance(right, Const):
        name, const, flipped = left.name, right.value, False
    elif isinstance(left, Const) and isinstance(right, SymVar):
        name, const, flipped = right.name, left.value, True
    else:
        return None
    op = term.op
    if flipped:
        op = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le",
              "eq": "eq", "ne": "ne"}[op]
    tests = {
        "eq": lambda v: v == const,
        "ne": lambda v: v != const,
        "lt": lambda v: v < const,
        "le": lambda v: v <= const,
        "gt": lambda v: v > const,
        "ge": lambda v: v >= const,
    }
    base = tests[op]
    if negated:
        return name, (lambda v: not base(v))
    return name, base


# ---------------------------------------------------------------------------
# Enumeration
# ---------------------------------------------------------------------------


def enumerate_models(constraints, domains, limit=DEFAULT_ENUMERATION_LIMIT,
                     required_vars=()):
    """Yield every model (dict) of the conjunction, up to ``limit``
    candidate assignments examined.

    ``required_vars`` forces enumeration over variables even when no
    constraint mentions them — needed when the caller evaluates other
    terms (e.g. return values) under the models.

    Raises :class:`~repro.errors.UnboundSymbolicVariable` (a
    ``KeyError``) listing *all* undeclared variables before examining a
    single candidate, and ``OverflowError`` when the pruned space
    exceeds ``limit``.
    """
    constraints = tuple(constraints)
    names = set(required_vars)
    for constraint in constraints:
        term_vars(constraint, names)
    names = sorted(names)
    missing = []
    for name in names:
        try:
            domains.of(name)
        except KeyError:
            missing.append(name)
    if missing:
        raise UnboundSymbolicVariable(missing)
    pruned = prune_domains(constraints, domains)
    if pruned.size(names) > limit:
        raise OverflowError(
            f"enumeration space {pruned.size(names)} exceeds limit {limit}; "
            f"shrink the domains or raise the limit")
    value_lists = [pruned.of(name) for name in names]
    if fastpath._ENABLED:
        tests = tuple(_constraint_test(c) for c in constraints)
        examined = found = 0
        try:
            for combo in itertools.product(*value_lists):
                examined += 1
                model = dict(zip(names, combo))
                for test in tests:
                    if not test(model):
                        break
                else:
                    found += 1
                    yield model
        finally:
            _STATS["candidates_examined"] += examined
            _STATS["models_enumerated"] += found
        return
    examined = found = 0
    try:
        for combo in itertools.product(*value_lists):
            examined += 1
            model = dict(zip(names, combo))
            if all(evaluate(c, model) for c in constraints):
                found += 1
                yield model
    finally:
        _STATS["candidates_examined"] += examined
        _STATS["models_enumerated"] += found


def _constraint_test(constraint):
    """A compiled ``fn(model) -> truthy`` for one constraint, falling
    back to :func:`evaluate` for out-of-vocabulary operators."""
    fn = compile_evaluator(constraint)
    if fn is not None:
        return fn
    return lambda model, _c=constraint: evaluate(_c, model)


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------


def check_sat(constraints, domains, limit=DEFAULT_ENUMERATION_LIMIT):
    """The first model of the conjunction, or None if unsatisfiable
    within the domains.

    Memoised on the canonical (constraints, domains, limit) fingerprint
    while the fast path is on; exceptions always propagate un-cached.
    """
    _STATS["check_sat_calls"] += 1
    if not fastpath._ENABLED:
        for model in enumerate_models(constraints, domains, limit):
            _trace.event("solver.check_sat", sat=True, memo=False)
            return model
        _trace.event("solver.check_sat", sat=False, memo=False)
        return None
    constraints = tuple(constraints)
    key = _constraints_key(constraints, domains, limit)
    cached = _CHECK_SAT_MEMO.get(key, False)
    if cached is not False:
        _STATS["check_sat_memo_hits"] += 1
        _trace.event("solver.check_sat", sat=cached is not None,
                     memo=True)
        return dict(cached) if cached is not None else None
    result = None
    for model in enumerate_models(constraints, domains, limit):
        result = model
        break
    if len(_CHECK_SAT_MEMO) >= _MEMO_MAX:
        _CHECK_SAT_MEMO.clear()
    _CHECK_SAT_MEMO[key] = dict(result) if result is not None else None
    _trace.event("solver.check_sat", sat=result is not None, memo=False)
    return result


def must_hold(prop, constraints, domains, limit=DEFAULT_ENUMERATION_LIMIT):
    """Bounded validity: no model of ``constraints`` falsifies ``prop``.

    Returns ``(True, None)`` or ``(False, countermodel)``.
    """
    from repro.symbolic.terms import simplify
    _STATS["must_hold_calls"] += 1
    if not fastpath._ENABLED:
        negated = simplify("not", (prop,), None)
        model = _first_model(tuple(constraints) + (negated,), domains, limit)
        if model is None:
            _trace.event("solver.must_hold", holds=True, memo=False)
            return True, None
        _trace.event("solver.must_hold", holds=False, memo=False)
        return False, model
    key = (term_fingerprint(prop),) + _constraints_key(
        tuple(constraints), domains, limit)
    cached = _MUST_HOLD_MEMO.get(key, False)
    if cached is not False:
        _STATS["must_hold_memo_hits"] += 1
        holds, model = cached
        _trace.event("solver.must_hold", holds=holds, memo=True)
        return holds, dict(model) if model is not None else None
    negated = simplify("not", (prop,), None)
    model = check_sat(tuple(constraints) + (negated,), domains, limit)
    result = (model is None, model)
    if len(_MUST_HOLD_MEMO) >= _MEMO_MAX:
        _MUST_HOLD_MEMO.clear()
    _MUST_HOLD_MEMO[key] = (
        result[0], dict(model) if model is not None else None)
    _trace.event("solver.must_hold", holds=result[0], memo=False)
    return result


def _first_model(constraints, domains, limit):
    for model in enumerate_models(constraints, domains, limit):
        return model
    return None
