"""Marshalling buffers (Sec. 2.1).

"To support passing data between the enclave and the application, a
marshalling buffer in the application's address space is allocated from
normal memory, and is shared with the enclave. The mappings of the
marshalling buffer are fixed during the entire enclave life cycle."

A :class:`MarshallingBuffer` describes one such channel: a GVA window
(identical in the app's and the enclave's address spaces, which keeps
pointers exchanged through it meaningful) backed by untrusted physical
frames.  The descriptor is immutable — fixity of the mapping is a
security property, so the model makes it unrepresentable to change.
"""

from dataclasses import dataclass

from repro.errors import HypervisorError


@dataclass(frozen=True)
class MarshallingBuffer:
    """An immutable marshalling-buffer descriptor.

    ``va_base``/``size`` — the shared GVA window;
    ``pa_base`` — backing physical base address in *untrusted* memory.
    """

    va_base: int
    pa_base: int
    size: int

    def __post_init__(self):
        if self.size <= 0:
            raise HypervisorError("marshalling buffer must be non-empty")

    @property
    def va_end(self):
        return self.va_base + self.size

    @property
    def pa_end(self):
        return self.pa_base + self.size

    def contains_va(self, va):
        return self.va_base <= va < self.va_end

    def contains_pa(self, pa):
        return self.pa_base <= pa < self.pa_end

    def va_range(self):
        return range(self.va_base, self.va_end)

    def pages(self, config):
        """(va, pa) page pairs covering the buffer."""
        if self.va_base % config.page_size or self.pa_base % config.page_size:
            raise HypervisorError("marshalling buffer must be page-aligned")
        pairs = []
        for offset in range(0, self.size, config.page_size):
            pairs.append((self.va_base + offset, self.pa_base + offset))
        return pairs

    def overlaps_va(self, base, size):
        return self.va_base < base + size and base < self.va_end
