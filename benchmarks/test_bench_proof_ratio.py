"""Sec. 6 — proof effort per line: MIRVerif 1.25 vs SeKVM 2.16, and ours.

The paper's argument: verifying compiler-generated MIR costs fewer proof
lines per verified line than verifying C (1.25 vs 2.16), though the
Rust→MIR expansion eats part of the win.  Our analog: checker-harness
code lines per mirlight code line.  Shape to hold: (a) the corpus
expands when printed as MIR (like Rust→MIR), (b) our checker-per-line
ratio stays below SeKVM's 2.16.  The benchmark times the verification
run itself — the quantity the paper buys with person-years.
"""

from repro.analysis import PAPER_RATIOS, proof_effort_summary
from repro.reporting import render_table
from repro.verification import verify_corpus


def test_bench_proof_ratio(benchmark, model, emit):
    report = benchmark(verify_corpus, model, 0, 8)
    assert report.ok

    summary = proof_effort_summary(model)
    checks = sum(v.checked for v in report.verdicts)
    rows = [
        ["verified functions",
         PAPER_RATIOS["verified_functions"], summary.corpus_functions],
        ["layers", PAPER_RATIOS["layers"], summary.corpus_layers],
        ["verified-artifact lines (MIR/mirlight)",
         PAPER_RATIOS["mirlight_loc"], summary.mirlight_code_loc],
        ["proof/checker lines",
         PAPER_RATIOS["proof_loc"], summary.checker_code_loc],
        ["proof per MIR line",
         PAPER_RATIOS["proof_per_mir_line"],
         round(summary.checker_per_mir_line, 2)],
        ["SeKVM (C) proof per line",
         PAPER_RATIOS["sekvm_proof_per_line"], "—"],
        ["individual checks executed", "—", checks],
    ]
    emit("proof_ratio",
         render_table(["Quantity", "Paper", "This repro"], rows,
                      title="Sec. 6 — proof effort per line"))

    # Shape assertions.
    assert summary.corpus_functions == 49
    assert summary.corpus_layers == 15
    assert summary.checker_per_mir_line < \
        PAPER_RATIOS["sekvm_proof_per_line"]
    assert checks > 2000
