"""The symbolic term language.

Terms represent mirlight integer and boolean computations symbolically.
Integer terms carry their :class:`~repro.mir.types.IntTy` so evaluation
wraps exactly like the concrete semantics; boolean terms carry ``None``.

The surface is deliberately small: variables, constants, and applications
of a fixed operator vocabulary.  :func:`simplify` constant-folds during
construction, so fully-concrete executions never accumulate symbolic
structure — the executor degrades gracefully into an interpreter.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import MirTypeError
from repro.mir.types import IntTy, U64

# Operator vocabulary.  Arithmetic/bitwise wrap at the result type;
# comparisons and connectives yield booleans.
ARITH_OPS = frozenset({
    "add", "sub", "mul", "div", "rem",
    "band", "bor", "bxor", "shl", "shr", "neg", "bnot",
})
CMP_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})
BOOL_OPS = frozenset({"not", "and", "or", "implies"})
ITE_OP = "ite"


class Term:
    """Base class of symbolic terms.  ``ty`` is an IntTy or None (bool)."""

    ty: Optional[IntTy]

    def is_bool(self):
        return self.ty is None


@dataclass(frozen=True)
class SymVar(Term):
    """A symbolic variable."""
    name: str
    ty: Optional[IntTy] = U64

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Const(Term):
    """A literal integer or boolean term."""
    value: object  # int (for IntTy) or bool (for ty=None)
    ty: Optional[IntTy] = U64

    def __str__(self):
        return str(self.value).lower() if self.ty is None else f"{self.value}"


@dataclass(frozen=True)
class App(Term):
    """An operator application over sub-terms."""
    op: str
    args: Tuple[Term, ...]
    ty: Optional[IntTy] = U64

    def __str__(self):
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.op}({inner})"


def bv(value, ty=U64):
    """An integer constant term, wrapped into range."""
    return Const(ty.wrap(value), ty)


def boolean(value):
    """A boolean constant term."""
    return Const(bool(value), None)


TRUE = boolean(True)
FALSE = boolean(False)


# ---------------------------------------------------------------------------
# Construction with constant folding
# ---------------------------------------------------------------------------


def simplify(op, args, ty):
    """Build ``App(op, args, ty)``, folding when all args are constant
    and applying a few cheap identities."""
    if all(isinstance(a, Const) for a in args):
        values = tuple(a.value for a in args)
        return _fold(op, values, args, ty)
    if op == "and":
        if any(a == FALSE for a in args):
            return FALSE
        remaining = tuple(a for a in args if a != TRUE)
        if not remaining:
            return TRUE
        if len(remaining) == 1:
            return remaining[0]
        return App("and", remaining, None)
    if op == "or":
        if any(a == TRUE for a in args):
            return TRUE
        remaining = tuple(a for a in args if a != FALSE)
        if not remaining:
            return FALSE
        if len(remaining) == 1:
            return remaining[0]
        return App("or", remaining, None)
    if op == "not" and isinstance(args[0], App) and args[0].op == "not":
        return args[0].args[0]
    if op == "ite" and isinstance(args[0], Const):
        return args[1] if args[0].value else args[2]
    return App(op, args, ty)


def _fold(op, values, args, ty):
    if op in CMP_OPS:
        a, b = values
        result = {
            "eq": a == b, "ne": a != b, "lt": a < b,
            "le": a <= b, "gt": a > b, "ge": a >= b,
        }[op]
        return boolean(result)
    if op in BOOL_OPS:
        if op == "not":
            return boolean(not values[0])
        if op == "and":
            return boolean(all(values))
        if op == "or":
            return boolean(any(values))
        if op == "implies":
            return boolean((not values[0]) or values[1])
    if op == ITE_OP:
        chosen = args[1] if values[0] else args[2]
        return chosen
    if op in ARITH_OPS:
        return bv(_arith(op, values, ty), ty)
    raise MirTypeError(f"cannot fold operator {op!r}")


def _arith(op, values, ty):
    if op == "neg":
        return -values[0]
    if op == "bnot":
        return ~(values[0] % ty.modulus)
    a, b = values
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        if b == 0:
            raise ZeroDivisionError("symbolic fold: divide by zero")
        return int(a / b) if (a < 0) != (b < 0) else a // b
    if op == "rem":
        if b == 0:
            raise ZeroDivisionError("symbolic fold: remainder by zero")
        quotient = int(a / b) if (a < 0) != (b < 0) else a // b
        return a - b * quotient
    ua, ub = a % ty.modulus, b % ty.modulus
    if op == "band":
        return ua & ub
    if op == "bor":
        return ua | ub
    if op == "bxor":
        return ua ^ ub
    if op == "shl":
        return ua << (ub % ty.width)
    if op == "shr":
        return ua >> (ub % ty.width)
    raise MirTypeError(f"unknown arithmetic operator {op!r}")


# ---------------------------------------------------------------------------
# Evaluation and traversal
# ---------------------------------------------------------------------------


def evaluate(term, model):
    """Evaluate ``term`` under ``model`` (name -> int/bool)."""
    if isinstance(term, Const):
        return term.value
    if isinstance(term, SymVar):
        try:
            return model[term.name]
        except KeyError:
            raise MirTypeError(f"model does not bind {term.name!r}")
    if isinstance(term, App):
        if term.op == ITE_OP:
            cond = evaluate(term.args[0], model)
            return evaluate(term.args[1 if cond else 2], model)
        values = tuple(evaluate(a, model) for a in term.args)
        folded = _fold(term.op, values,
                       tuple(Const(v, None) for v in values), term.ty)
        return folded.value
    raise MirTypeError(f"cannot evaluate {term!r}")


def term_vars(term, into=None):
    """The set of variable names occurring in ``term``."""
    names = set() if into is None else into
    if isinstance(term, SymVar):
        names.add(term.name)
    elif isinstance(term, App):
        for arg in term.args:
            term_vars(arg, names)
    return names
