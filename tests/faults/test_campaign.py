"""Campaign drivers: step enumeration, crash sweeps, bit flips, crash-NI."""

import pytest

from repro.faults import (
    DEFAULT_SITES,
    bitflip_campaign,
    crash_ni_campaign,
    crash_step_campaign,
    default_ni_trace,
    default_two_worlds,
    default_workload,
    default_world_factory,
    enumerate_injectable_steps,
    hypercall_site,
)
from repro.hyperenclave.buggy import NonTransactionalMonitor
from repro.hyperenclave.constants import TINY

FACTORY = default_world_factory()
CALLS = default_workload()


def buggy_world_factory():
    def world():
        monitor = NonTransactionalMonitor(TINY)
        primary_os = monitor.primary_os
        page = TINY.page_size
        ctx = {
            "page": page,
            "mbuf_pa": TINY.frame_base(primary_os.reserve_data_frame()),
            "src_pa": TINY.frame_base(primary_os.reserve_data_frame()),
            "elrange_base": 16 * page,
        }
        primary_os.gpa_write_word(ctx["src_pa"], 0xDEAD)
        return monitor, ctx

    return world


class TestEnumerateInjectableSteps:
    def test_every_call_reaches_its_own_crash_points(self):
        table = enumerate_injectable_steps(FACTORY, CALLS)
        assert len(table) == len(CALLS)
        for index, (name, _invoke) in enumerate(CALLS):
            assert table[index][hypercall_site(name)] >= 1

    def test_add_page_reaches_all_shared_sites(self):
        table = enumerate_injectable_steps(FACTORY, CALLS)
        add_page = table[1]
        for site in DEFAULT_SITES:
            assert add_page.get(site, 0) >= 1, site

    def test_enumeration_is_deterministic(self):
        assert enumerate_injectable_steps(FACTORY, CALLS) == \
            enumerate_injectable_steps(FACTORY, CALLS)


class TestCrashStepCampaign:
    def test_full_sweep_is_green_on_real_monitor(self):
        report = crash_step_campaign(FACTORY, CALLS, seed=0)
        assert report.ok, report.render()
        assert report.faults_injected == len(report.runs)
        assert report.rollbacks_verified == report.faults_injected
        assert report.invariant_sweeps_passed == len(report.runs)
        # Every hypercall of the workload is represented.
        swept = {run.hypercall for run in report.runs}
        assert swept == {name for name, _ in CALLS}

    def test_every_enumerated_step_is_swept(self):
        table = enumerate_injectable_steps(FACTORY, CALLS)
        expected = sum(hits for per_call in table
                       for hits in per_call.values())
        report = crash_step_campaign(FACTORY, CALLS, seed=0)
        assert len(report.runs) == expected

    def test_non_transactional_monitor_is_caught(self):
        report = crash_step_campaign(buggy_world_factory(),
                                     CALLS[:2], seed=0)
        failures = report.failures()
        assert failures, "the broken monitor must not pass the campaign"
        # The signature: aborts whose partial mutations survived, or
        # faults that escaped the (absent) transactional wrapper raw.
        assert any(run.outcome.startswith("escaped")
                   or (run.outcome == "aborted" and not run.rolled_back)
                   for run in failures)

    def test_render_mentions_summary_numbers(self):
        report = crash_step_campaign(FACTORY, CALLS[:1], seed=0)
        text = report.render()
        assert "faults injected" in text
        assert "rollbacks verified" in text
        assert "create" in text


class TestBitflipCampaign:
    def test_untrusted_flips_leave_invariants_green(self):
        report = bitflip_campaign(FACTORY, CALLS[:5], flips=32, seed=0)
        assert report.ok, report.render()
        assert len(report.runs) == 32
        assert report.invariant_sweeps_passed == 32

    def test_flips_are_seed_deterministic(self):
        first = bitflip_campaign(FACTORY, CALLS[:2], flips=8, seed=3)
        second = bitflip_campaign(FACTORY, CALLS[:2], flips=8, seed=3)
        assert [run.detail for run in first.runs] == \
            [run.detail for run in second.runs]
        third = bitflip_campaign(FACTORY, CALLS[:2], flips=8, seed=4)
        assert [run.detail for run in first.runs] != \
            [run.detail for run in third.runs]


class TestCrashNiCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return crash_ni_campaign(seed=0)

    def test_all_crash_steps_preserve_indistinguishability(self, report):
        assert report.ok, report.render(
            title="Crash-step noninterference campaign")
        assert report.runs, "the NI trace must contain faultable steps"

    def test_covers_every_lifecycle_hypercall_in_trace(self, report):
        factory = default_two_worlds()
        _worlds, eid = factory()
        trace_names = {step.name for item in default_ni_trace(
            eid, TINY.page_size)
            for step in ([item[0]] if isinstance(item, tuple) else [item])
            if hasattr(step, "name")}
        swept = {run.hypercall for run in report.runs}
        assert swept == trace_names

    def test_aug_page_shared_sites_are_swept(self, report):
        aug_sites = {run.site for run in report.runs
                     if run.hypercall == "aug_page"}
        assert "epcm.allocate" in aug_sites
        assert "phys.write" in aug_sites
