"""Code proofs: co-simulating the MIR corpus against its low specs.

"We reason about HyperEnclave code with our MIR operational semantics,
and we prove that for any two initially related states, the effects as
well as the return value of executing the HyperEnclave function (with
MIR semantics) and executing its specification should agree." (Sec. 4.3)

For every stateful corpus function this module supplies the functional
specification (over the *same* abstract state, so the relation is plain
equality), a generator of well-formed sample states, and the driver that
co-simulates the two.  Panic cases (va already mapped, huge in the way,
double free...) are specification *preconditions* — samples outside them
are skipped here and the panics themselves are pinned by dedicated
tests, mirroring how Coq specifications are simply undefined off-domain.

Pure functions are verified by the symbolic engine instead: every path
explored, every assertion discharged, exhaustive bounded equivalence
against the Python reference.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.ccal.refinement import CoSimChecker, mir_impl
from repro.ccal.spec import Spec
from repro.errors import SpecPreconditionError
from repro.hyperenclave import pte
from repro.hyperenclave.constants import WORD_BYTES
from repro.hyperenclave.mir_model.state import (
    EPCM_FREE,
    EPCM_REG,
    EPCM_SECS,
)
from repro.mir.value import Aggregate, mk_tuple, mk_u64, unit
from repro.symbolic import SymbolicUnsupported, check_equivalence, verify_assertions
from repro.verification.pure_refs import default_domains, pure_reference



# ---------------------------------------------------------------------------
# Low-spec building blocks over the abstract state
# ---------------------------------------------------------------------------


class _Ops:
    """Spec-side helpers bound to one geometry."""

    def __init__(self, model):
        self.model = model
        self.config = model.config
        self.spec = model.config.arch
        self.pool_base = model.pool_base
        self.pool_size = model.pool_size
        self.epc_base = model.layout.epc_base
        self.epc_size = model.layout.epc_size

    def in_pool(self, frame):
        return self.pool_base <= frame < self.pool_base + self.pool_size

    def entry_word(self, frame, index):
        """Word index of entry (frame, index); must be in the pool."""
        if not self.in_pool(frame):
            raise SpecPreconditionError(
                f"table frame {frame} escapes the frame area")
        return (self.config.frame_base(frame)
                + index * WORD_BYTES) // WORD_BYTES

    def read(self, state, frame, index):
        return state.get("pt_words").get(self.entry_word(frame, index))

    def write(self, state, frame, index, value):
        """Functionally write one entry word."""
        words = state.get("pt_words").set(self.entry_word(frame, index),
                                          value & ((1 << 64) - 1))
        return state.set("pt_words", words)

    def zero_frame(self, state, frame):
        """Clear every word of a pool frame."""
        if not self.in_pool(frame):
            raise SpecPreconditionError(
                f"zero_frame({frame}) escapes the frame area")
        words = state.get("pt_words")
        base = self.config.frame_base(frame) // WORD_BYTES
        for offset in range(self.config.words_per_page):
            words = words.unset(base + offset)
        return state.set("pt_words", words)

    def alloc(self, state):
        """First-fit claim + zero, like the implementation."""
        bitmap = state.get("pt_bitmap")
        for offset, used in enumerate(bitmap):
            if not used:
                frame = self.pool_base + offset
                state = state.set(
                    "pt_bitmap",
                    bitmap[:offset] + (True,) + bitmap[offset + 1:])
                return frame, self.zero_frame(state, frame)
        raise SpecPreconditionError("frame pool exhausted")

    def walk(self, state, root, va):
        """(found, entry, level) — the spec of walk_terminal."""
        config = self.config
        va = config.canonical_va(va)
        frame = root
        for level in range(config.levels, 0, -1):
            entry = self.read(state, frame, config.entry_index(va, level))
            if not self.spec.is_present(entry):
                return 0, 0, level
            if level == 1:
                return 1, entry, 1
            if self.spec.is_block_encoded(entry):
                return 1, entry, level
            frame = pte.pte_frame(entry, config)
        raise SpecPreconditionError("walk fell off the hierarchy")

    def get_or_create(self, state, frame, va, level):
        """Follow one level, allocating an intermediate on demand."""
        config = self.config
        index = config.entry_index(va, level)
        entry = self.read(state, frame, index)
        if self.spec.is_present(entry):
            if self.spec.is_block_encoded(entry):
                raise SpecPreconditionError("huge page blocks mapping")
            return pte.pte_frame(entry, config), state
        new_frame, state = self.alloc(state)
        new_entry = pte.pte_new(config.frame_base(new_frame),
                                self.spec.table_flags(), config)
        return new_frame, self.write(state, frame, index, new_entry)

    def map_page(self, state, root, va, pa, flags):
        """The full multi-level map operation, functionally."""
        config = self.config
        if config.page_offset(va) or config.page_offset(pa):
            raise SpecPreconditionError("unaligned mapping")
        va = config.canonical_va(va)
        frame = root
        for level in range(config.levels, 1, -1):
            frame, state = self.get_or_create(state, frame, va, level)
        index = config.entry_index(va, 1)
        if self.spec.is_present(self.read(state, frame, index)):
            raise SpecPreconditionError("va already mapped")
        return self.write(state, frame, index,
                          pte.pte_new(pa, flags, config))

    def unmap_page(self, state, root, va):
        """Clear the terminal entry covering va."""
        config = self.config
        va = config.canonical_va(va)
        frame = root
        for level in range(config.levels, 0, -1):
            index = config.entry_index(va, level)
            entry = self.read(state, frame, index)
            if not self.spec.is_present(entry):
                raise SpecPreconditionError("va not mapped")
            if level == 1 or self.spec.is_block_encoded(entry):
                return self.write(state, frame, index, 0)
            frame = pte.pte_frame(entry, config)
        raise SpecPreconditionError("unmap fell off the hierarchy")


# ---------------------------------------------------------------------------
# The low specs, keyed by corpus function name
# ---------------------------------------------------------------------------


def low_spec_for(model, name) -> Spec:
    """The functional specification of stateful corpus function ``name``."""
    ops = _Ops(model)
    config = model.config

    def _i(value):
        return value.expect_int("spec arg").as_unsigned

    specs = {}

    def register(fn_name):
        def wrap(fn):
            specs[fn_name] = fn
            return fn
        return wrap

    @register("zero_frame")
    def zero_frame(args, state):
        return unit(), ops.zero_frame(state, _i(args[0]))

    @register("alloc_frame")
    def alloc_frame(args, state):
        frame, state = ops.alloc(state)
        return mk_u64(frame), state

    @register("entry_paddr")
    def entry_paddr(args, state):
        frame, index = map(_i, args)
        return mk_u64((frame << config.page_bits)
                      + index * WORD_BYTES), state

    @register("read_entry")
    def read_entry(args, state):
        frame, index = map(_i, args)
        return mk_u64(ops.read(state, frame, index)), state

    @register("write_entry")
    def write_entry(args, state):
        frame, index, entry = map(_i, args)
        return unit(), ops.write(state, frame, index, entry)

    @register("walk_terminal")
    def walk_terminal(args, state):
        root, va = map(_i, args)
        found, entry, level = ops.walk(state, root, va)
        return mk_tuple(mk_u64(found), mk_u64(entry), mk_u64(level)), state

    @register("get_or_create_next")
    def get_or_create_next(args, state):
        frame, va, level = map(_i, args)
        new_frame, state = ops.get_or_create(state, frame,
                                             config.canonical_va(va), level)
        return mk_u64(new_frame), state

    @register("map_page")
    def map_page(args, state):
        root, va, pa, flags = map(_i, args)
        return unit(), ops.map_page(state, root, va, pa, flags)

    @register("unmap_page")
    def unmap_page(args, state):
        root, va = map(_i, args)
        return unit(), ops.unmap_page(state, root, va)

    @register("query")
    def query(args, state):
        root, va = map(_i, args)
        found, entry, _level = ops.walk(state, root, va)
        if not found:
            return mk_tuple(mk_u64(0), mk_u64(0), mk_u64(0)), state
        return mk_tuple(mk_u64(1),
                        mk_u64(pte.pte_addr(entry, config)),
                        mk_u64(pte.pte_flags(entry, config))), state

    @register("translate_page")
    def translate_page(args, state):
        root, va = map(_i, args)
        found, entry, level = ops.walk(state, root, va)
        if not found:
            return mk_tuple(mk_u64(0), mk_u64(0)), state
        span = config.level_span(level)
        pa = pte.pte_addr(entry, config) \
            + (config.canonical_va(va) & (span - 1))
        return mk_tuple(mk_u64(1), mk_u64(pa)), state

    @register("epcm_find_free")
    def epcm_find_free(args, state):
        epcm = state.get("epcm")
        for index in range(ops.epc_size):
            if epcm.get(index)[0] == EPCM_FREE:
                return mk_tuple(mk_u64(1), mk_u64(index)), state
        return mk_tuple(mk_u64(0), mk_u64(0)), state

    @register("epcm_alloc_page")
    def epcm_alloc_page(args, state):
        owner, kind, va = map(_i, args)
        epcm = state.get("epcm")
        for index in range(ops.epc_size):
            if epcm.get(index)[0] == EPCM_FREE:
                state = state.set("epcm",
                                  epcm.set(index, (kind, owner, va)))
                return mk_tuple(mk_u64(1), mk_u64(index)), state
        return mk_tuple(mk_u64(0), mk_u64(0)), state

    @register("epcm_release_page")
    def epcm_release_page(args, state):
        index, owner = map(_i, args)
        if index >= ops.epc_size:
            raise SpecPreconditionError("epcm index out of range")
        entry = state.get("epcm").get(index)
        if entry[0] == EPCM_FREE:
            raise SpecPreconditionError("page already free")
        if entry[1] != owner:
            raise SpecPreconditionError("owner mismatch")
        return unit(), state.set(
            "epcm", state.get("epcm").set(index, (EPCM_FREE, 0, 0)))

    @register("epcm_owner_of")
    def epcm_owner_of(args, state):
        index = _i(args[0])
        if index >= ops.epc_size:
            raise SpecPreconditionError("epcm index out of range")
        return mk_u64(state.get("epcm").get(index)[1]), state

    @register("add_epc_page")
    def add_epc_page(args, state):
        gpt_root, ept_root, gpa_base, el_base, el_size, owner, va = \
            map(_i, args)
        mask = (1 << 64) - 1
        if not (va >= el_base and va < (el_base + el_size) & mask):
            return mk_tuple(mk_u64(0), mk_u64(0)), state
        ret, state = epcm_alloc_page(
            (mk_u64(owner), mk_u64(EPCM_REG), mk_u64(va)), state)
        if ret.fields[0].value == 0:
            return mk_tuple(mk_u64(0), mk_u64(0)), state
        index = ret.fields[1].value
        gpa = (gpa_base + ((va - el_base) & mask)) & mask
        leaf = config.arch.leaf_flags()
        state = ops.map_page(state, gpt_root, va, gpa, leaf)
        epc_frame = index + ops.epc_base
        state = ops.map_page(state, ept_root, gpa,
                             (epc_frame << config.page_bits) & mask, leaf)
        return mk_tuple(mk_u64(1), mk_u64(epc_frame)), state

    @register("hc_add_page_checked")
    def hc_add_page_checked(args, state):
        va = _i(args[6])
        if config.page_offset(va):
            return mk_tuple(mk_u64(0), mk_u64(0)), state
        return add_epc_page(args, state)

    # -- AddrSpace methods: thin delegations over the root field ------------

    @register("as_root")
    def as_root(args, state):
        return args[0].expect_aggregate("self").field(0), state

    @register("as_map")
    def as_map(args, state):
        root = args[0].expect_aggregate("self").field(0)
        return map_page((root,) + tuple(args[1:]), state)

    @register("as_unmap")
    def as_unmap(args, state):
        root = args[0].expect_aggregate("self").field(0)
        return unmap_page((root,) + tuple(args[1:]), state)

    @register("as_query")
    def as_query(args, state):
        root = args[0].expect_aggregate("self").field(0)
        return query((root,) + tuple(args[1:]), state)

    @register("as_translate")
    def as_translate(args, state):
        root = args[0].expect_aggregate("self").field(0)
        return translate_page((root,) + tuple(args[1:]), state)

    if name not in specs:
        raise KeyError(f"no low spec for {name!r}")
    return Spec(name=f"{name}_spec", fn=specs[name],
                layer=model.layer_map.get(name, "?"))


_ADDR_SPACE_METHODS = ("as_root", "as_map", "as_unmap", "as_query",
                       "as_translate")

_STATEFUL = (
    "zero_frame", "alloc_frame", "entry_paddr", "read_entry",
    "write_entry", "walk_terminal", "get_or_create_next", "map_page",
    "unmap_page", "query", "translate_page", "epcm_find_free",
    "epcm_alloc_page", "epcm_release_page", "epcm_owner_of",
    "add_epc_page", "hc_add_page_checked",
) + _ADDR_SPACE_METHODS


def stateful_function_names(model=None):
    return _STATEFUL


# ---------------------------------------------------------------------------
# Sample generation
# ---------------------------------------------------------------------------


def _build_populated_state(model, rng, mapped_pages=3):
    """A well-formed state with one root table and a few mappings,
    built through the spec itself (ground truth)."""
    ops = _Ops(model)
    config = model.config
    state = model.initial_absstate()
    root, state = ops.alloc(state)
    mapped = []
    for _ in range(mapped_pages):
        va = rng.randrange(0, config.va_space, config.page_size)
        pa = rng.randrange(0, config.phys_bytes, config.page_size)
        try:
            state = ops.map_page(state, root, va, pa,
                                 config.arch.leaf_flags())
            mapped.append(va)
        except SpecPreconditionError:
            pass
    # A few EPCM entries too.
    epcm = state.get("epcm")
    for index in range(min(3, ops.epc_size)):
        if rng.random() < 0.5:
            epcm = epcm.set(index, (rng.choice([EPCM_SECS, EPCM_REG]),
                                    rng.randrange(1, 4),
                                    rng.randrange(0, config.va_space,
                                                  config.page_size)))
    state = state.set("epcm", epcm)
    return state, root, mapped


def sample_states(model, name, seed=0, count=24):
    """Samples ``(args, state)`` for co-simulating function ``name``."""
    rng = random.Random(f"{name}:{seed}")
    config = model.config
    ops = _Ops(model)
    leaf = config.arch.leaf_flags()
    samples = []
    for _ in range(count):
        state, root, mapped = _build_populated_state(
            model, rng, mapped_pages=rng.randrange(0, 4))
        page = config.page_size
        any_va = rng.randrange(0, config.va_space, WORD_BYTES)
        aligned_va = rng.choice(
            mapped + [rng.randrange(0, config.va_space, page)])
        aligned_pa = rng.randrange(0, config.phys_bytes, page)
        index = rng.randrange(config.entries_per_table)
        in_pool_frame = rng.randrange(ops.pool_base,
                                      ops.pool_base + ops.pool_size)
        # Bias EPCM samples toward busy entries with matching owners so
        # the release path is exercised, not just precondition-skipped.
        busy = [(i, state.get("epcm").get(i))
                for i in range(ops.epc_size)
                if state.get("epcm").get(i)[0] != EPCM_FREE]
        if busy and rng.random() < 0.8:
            epcm_index, entry = rng.choice(busy)
            epcm_owner = entry[1] if rng.random() < 0.8 \
                else rng.randrange(1, 4)
        else:
            epcm_index = rng.randrange(max(ops.epc_size, 1))
            epcm_owner = rng.randrange(1, 4)
        struct_self = Aggregate(0, (mk_u64(root),))
        args_by_name = {
            "zero_frame": (mk_u64(in_pool_frame),),
            "alloc_frame": (),
            "entry_paddr": (mk_u64(in_pool_frame), mk_u64(index)),
            "read_entry": (mk_u64(in_pool_frame), mk_u64(index)),
            "write_entry": (mk_u64(in_pool_frame), mk_u64(index),
                            mk_u64(rng.getrandbits(64))),
            "walk_terminal": (mk_u64(root), mk_u64(any_va)),
            "get_or_create_next": (mk_u64(root), mk_u64(aligned_va),
                                   mk_u64(config.levels)),
            "map_page": (mk_u64(root), mk_u64(aligned_va),
                         mk_u64(aligned_pa), mk_u64(leaf)),
            "unmap_page": (mk_u64(root), mk_u64(aligned_va)),
            "query": (mk_u64(root), mk_u64(any_va)),
            "translate_page": (mk_u64(root), mk_u64(any_va)),
            "epcm_find_free": (),
            "epcm_alloc_page": (mk_u64(rng.randrange(1, 4)),
                                mk_u64(EPCM_REG), mk_u64(aligned_va)),
            "epcm_release_page": (mk_u64(epcm_index),
                                  mk_u64(epcm_owner)),
            "epcm_owner_of": (mk_u64(epcm_index),),
            "add_epc_page": None,       # built below
            "hc_add_page_checked": None,
            "as_root": (struct_self,),
            "as_map": (struct_self, mk_u64(aligned_va),
                       mk_u64(aligned_pa), mk_u64(leaf)),
            "as_unmap": (struct_self, mk_u64(aligned_va)),
            "as_query": (struct_self, mk_u64(any_va)),
            "as_translate": (struct_self, mk_u64(any_va)),
        }
        if name in ("add_epc_page", "hc_add_page_checked"):
            # Two fresh roots, an ELRANGE, and a candidate va.
            state = model.initial_absstate()
            gpt_root, state = ops.alloc(state)
            ept_root, state = ops.alloc(state)
            el_base = rng.randrange(0, config.va_space // 2, page)
            el_size = rng.choice([page, 2 * page, 4 * page])
            near = rng.choice([el_base, el_base + page,
                               el_base + el_size,
                               rng.randrange(0, config.va_space, page),
                               el_base + rng.randrange(0, 2 * page,
                                                       WORD_BYTES)])
            args = (mk_u64(gpt_root), mk_u64(ept_root), mk_u64(el_base),
                    mk_u64(el_base), mk_u64(el_size), mk_u64(1),
                    mk_u64(near % config.va_space))
            samples.append((args, state))
            continue
        samples.append((args_by_name[name], state))
    return samples


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


@dataclass
class FunctionVerdict:
    """Verification outcome for one corpus function."""

    name: str
    layer: str
    method: str            # "symbolic" | "cosim"
    checked: int
    skipped: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self):
        return not self.failures

    def __str__(self):
        status = "OK " if self.ok else "FAIL"
        return (f"[{status}] {self.layer:12s} {self.name:22s} "
                f"({self.method}, {self.checked} checked)")


def _mir_args_setup(model, name):
    """Setup hook converting struct-valued 'self' args into pointers.

    AddrSpace methods receive ``&self``; the sample carries the struct
    value, and the hook materialises it into object memory and passes a
    concrete pointer — exactly how a caller in a higher layer would have
    allocated it (pointer case 1/3 of Sec. 3.4).
    """
    if name not in _ADDR_SPACE_METHODS:
        return None

    def setup(interp, args):
        from repro.mir.path import Path
        from repro.mir.value import PathPtr
        self_struct = args[0]
        path = Path.global_("__cosim_self")
        interp.memory.allocate(path.base, self_struct)
        return (PathPtr(path),) + tuple(args[1:])

    return setup


def verify_stateful_function(model, name, seed=0, count=24) -> FunctionVerdict:
    """Co-simulate one stateful corpus function against its low spec."""
    spec = low_spec_for(model, name)
    impl = mir_impl(model.program, name, trusted=model.trusted,
                    setup=_mir_args_setup(model, name))
    checker = CoSimChecker(name=name, impl=impl, spec=spec)
    report = checker.check(sample_states(model, name, seed=seed,
                                         count=count))
    return FunctionVerdict(
        name=name, layer=model.layer_map[name], method="cosim",
        checked=report.checked, skipped=report.skipped,
        failures=[str(f) for f in report.failures])


def verify_pure_function(model, name) -> FunctionVerdict:
    """Symbolically verify one pure corpus function (panic-freedom + exhaustive bounded equivalence)."""
    domains = default_domains(name, model.config)
    reference = pure_reference(name, model.config, model.layout)
    failures = []
    ok, assertion_failures = verify_assertions(model.program, name, domains)
    if not ok:
        failures.extend(
            f"assertion can fail: {ob.message} with {model_}"
            for ob, model_ in assertion_failures)
    mismatches, stats = check_equivalence(model.program, name, reference,
                                          domains)
    failures.extend(
        f"mismatch at {m}: mir={mv} ref={rv}"
        for m, mv, rv in mismatches[:5])
    return FunctionVerdict(
        name=name, layer=model.layer_map[name], method="symbolic",
        checked=stats["cells"], failures=failures)


@dataclass
class CorpusReport:
    """Verification verdicts for the whole corpus."""

    verdicts: List[FunctionVerdict] = field(default_factory=list)

    @property
    def ok(self):
        return all(v.ok for v in self.verdicts)

    def by_layer(self) -> Dict[str, List[FunctionVerdict]]:
        """Group the verdicts by CCAL layer."""
        grouped = {}
        for verdict in self.verdicts:
            grouped.setdefault(verdict.layer, []).append(verdict)
        return grouped

    def summary(self):
        """Human-readable multi-line report."""
        lines = [f"{len(self.verdicts)} functions verified, "
                 f"{'all OK' if self.ok else 'FAILURES PRESENT'}"]
        lines.extend(str(v) for v in self.verdicts)
        return "\n".join(lines)


def verify_corpus(model, seed=0, cosim_samples=24,
                  include_as_new=True) -> CorpusReport:
    """Verify every corpus function with the appropriate engine."""
    from repro.verification.pure_refs import pure_function_names
    report = CorpusReport()
    for name in pure_function_names(model.config, model.layout):
        report.verdicts.append(verify_pure_function(model, name))
    for name in _STATEFUL:
        report.verdicts.append(
            verify_stateful_function(model, name, seed=seed,
                                     count=cosim_samples))
    if include_as_new:
        report.verdicts.append(_verify_as_new(model))
    return report


def _verify_as_new(model) -> FunctionVerdict:
    """as_new returns a pointer; the check is behavioural: the handle's
    root field equals the frame the specification would have allocated,
    and the abstract state evolved identically."""
    ops = _Ops(model)
    failures = []
    state = model.initial_absstate()
    expected_frame, expected_state = ops.alloc(state)
    interp = model.make_interpreter(absstate=state)
    result = interp.call("as_new")
    handle = result.value
    root = interp.memory.read(handle.path).field(0)
    if root.value != expected_frame:
        failures.append(
            f"as_new allocated frame {root.value}, spec says "
            f"{expected_frame}")
    if interp.absstate != expected_state:
        failures.append("as_new left a different abstract state than "
                        "its specification")
    return FunctionVerdict(name="as_new", layer="AddrSpace",
                           method="cosim", checked=1, failures=failures)
