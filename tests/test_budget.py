"""Check budgets: step/wall-clock limits with a deterministic clock."""

import pytest

from repro.budget import Budget
from repro.errors import CheckBudgetExceeded


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestStepBudget:
    def test_spend_under_limit(self):
        budget = Budget(max_steps=3)
        budget.spend(3)
        assert budget.steps == 3
        assert not budget.exceeded

    def test_spend_over_limit_raises(self):
        budget = Budget(max_steps=3)
        with pytest.raises(CheckBudgetExceeded) as excinfo:
            budget.spend(4, what="symbolic steps")
        assert "symbolic steps" in str(excinfo.value)
        assert excinfo.value.spent["steps"] == 4

    def test_unlimited_never_trips(self):
        budget = Budget()
        budget.spend(10_000)
        assert not budget.exceeded

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_steps=-1)
        with pytest.raises(ValueError):
            Budget(max_seconds=-0.5)


class TestTimeBudget:
    def test_timeout_is_clock_driven(self):
        clock = FakeClock()
        budget = Budget(max_seconds=5.0, clock=clock)
        budget.spend(1)
        clock.now += 10.0
        assert budget.exceeded
        with pytest.raises(CheckBudgetExceeded) as excinfo:
            budget.spend(1, what="cosim")
        assert "time budget" in str(excinfo.value)

    def test_check_time_in_hot_loop(self):
        clock = FakeClock()
        budget = Budget(max_seconds=1.0, clock=clock)
        budget.check_time()
        clock.now += 2.0
        with pytest.raises(CheckBudgetExceeded):
            budget.check_time("tight loop")

    def test_spent_reports_both_axes(self):
        clock = FakeClock()
        budget = Budget(max_steps=100, max_seconds=100, clock=clock)
        budget.spend(7)
        clock.now += 1.5
        spent = budget.spent()
        assert spent["steps"] == 7
        assert spent["seconds"] == pytest.approx(1.5)
