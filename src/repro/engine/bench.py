"""Perf trajectory for the parallel checking fabric.

One entry point, :func:`bench_checking`, times the sequential
interleaving campaign (the pre-fabric baseline, untouched by this
subsystem) against :func:`~repro.engine.campaigns.parallel_interleaving_campaign`
on the same grid, verifies the two reports are **byte-identical**, and
returns the record that lands in ``BENCH_checking.json``:

* ``schedules_per_sec`` / ``states_per_sec`` (states = scheduler
  decisions, the unit of interleaving exploration) for both sides;
* ``speedup`` — median-of-``repeats`` wall-clock ratio (medians, not
  means: on a shared box one descheduled round would otherwise skew
  the trajectory);
* the worker-side memoisation counters and their aggregate hit rate.

Run as a module for the CI perf-smoke job::

    python -m repro.engine.bench --out BENCH_checking.json \
        --max-schedules 600 --workers 4 --repeats 3

``--smoke`` shrinks the grid (preemption bound 1) so CI spends seconds,
not minutes; the byte-identity assertion runs at every size.
"""

import argparse
import json
import statistics
import time

from repro.engine.campaigns import parallel_interleaving_campaign
from repro.engine.executor import resolve_workers


def _rates(seconds, schedules, states):
    return {
        "seconds": round(seconds, 4),
        "schedules_per_sec": round(schedules / seconds, 2),
        "states_per_sec": round(states / seconds, 2),
    }


def _memo_summary(stats):
    hits = sum(c.get("hits", 0) for c in stats.values())
    misses = sum(c.get("misses", 0) for c in stats.values())
    total = hits + misses
    return {
        "counters": stats,
        "hit_rate": round(hits / total, 4) if total else 0.0,
    }


def bench_checking(*, preemption_bound=2, max_schedules=600, seed=0,
                   workers=None, repeats=3) -> dict:
    """Time sequential vs parallel interleaving checking on one grid.

    Raises ``RuntimeError`` if any parallel round's merged report is
    not byte-identical to the sequential baseline — a perf number for
    a divergent checker would be meaningless.
    """
    from repro.engine.executor import ShardedExecutor
    from repro.faults.campaign import interleaving_campaign

    workers = resolve_workers(workers)
    grid = dict(preemption_bound=preemption_bound,
                max_schedules=max_schedules, seed=seed)
    seq_times, par_times = [], []
    baseline = None
    stats = {}
    # One pool for every round: the median then measures the fabric's
    # steady state, not per-round process forking (which a long
    # campaign amortises anyway).
    with ShardedExecutor(workers) as pool:
        for _ in range(repeats):
            t0 = time.perf_counter()
            seq = interleaving_campaign(**grid)
            seq_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            par = parallel_interleaving_campaign(
                **grid, executor=pool, stats_out=stats)
            par_times.append(time.perf_counter() - t0)
            if repr(par) != repr(seq):
                raise RuntimeError(
                    "parallel interleaving report diverged from the "
                    "sequential baseline")
            baseline = seq
    schedules = len(baseline.runs)
    states = sum(len(result.decisions) for _, result in baseline.runs)
    seq_s = statistics.median(seq_times)
    par_s = statistics.median(par_times)
    return {
        "benchmark": "parallel-checking-fabric",
        "campaign": "interleaving",
        "config": {"preemption_bound": preemption_bound,
                   "max_schedules": max_schedules, "seed": seed,
                   "workers": workers, "repeats": repeats},
        "schedules": schedules,
        "states": states,
        "sequential": _rates(seq_s, schedules, states),
        "parallel": _rates(par_s, schedules, states),
        "speedup": round(seq_s / par_s, 2),
        "byte_identical": True,
        "memo": _memo_summary(stats),
    }


def main(argv=None):
    """CLI entry point: run the bench and write ``--out`` (JSON)."""
    parser = argparse.ArgumentParser(
        description="Benchmark the parallel checking fabric")
    parser.add_argument("--out", default="BENCH_checking.json")
    parser.add_argument("--preemption-bound", type=int, default=2)
    parser.add_argument("--max-schedules", type=int, default=600)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI grid: preemption bound 1, "
                             "one repeat")
    args = parser.parse_args(argv)
    if args.smoke:
        args.preemption_bound = min(args.preemption_bound, 1)
        args.repeats = 1
    record = bench_checking(preemption_bound=args.preemption_bound,
                            max_schedules=args.max_schedules,
                            workers=args.workers, repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"sequential {record['sequential']['seconds']}s  "
          f"parallel {record['parallel']['seconds']}s  "
          f"speedup {record['speedup']}x  "
          f"({record['schedules']} schedules, "
          f"{record['states']} states, "
          f"memo hit rate {record['memo']['hit_rate']})")
    return record


if __name__ == "__main__":
    main()
