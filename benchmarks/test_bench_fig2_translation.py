"""Figure 2 — the view of address translation.

The artifact shows, per VA, where the app's GPT∘EPT composition and the
enclave's GPT∘EPT composition land: shared only inside the marshalling
buffer (hatched in the paper), ELRANGE resolving into secure memory the
app cannot reach.  The benchmark times the two-stage (nested) hardware
walk, the operation the figure is about.
"""

from repro.hyperenclave.constants import TINY
from repro.reporting import fig2_translation

from benchmarks.conftest import build_world

PAGE = TINY.page_size


def test_bench_fig2(benchmark, emit):
    monitor, app, eid = build_world()
    primary_os = monitor.primary_os
    primary_os.app_map_data(app, 6 * PAGE)   # some private app memory

    sample_vas = [0, 6 * PAGE, 12 * PAGE, 16 * PAGE, 40 * PAGE]

    def nested_walk_workload():
        # the hot path the figure depicts: both sides translating
        total = 0
        for va in sample_vas:
            if primary_os.probe(app, va) is not None:
                total += 1
            try:
                monitor.enclave_translate(eid, va)
                total += 1
            except Exception:
                pass
        return total

    resolved = benchmark(nested_walk_workload)
    assert resolved == 4  # app: mbuf+private; enclave: mbuf+elrange

    text = fig2_translation(monitor, eid, app, sample_vas)
    emit("fig2_translation", text)

    # Shape: the only VA both sides resolve is the marshalling buffer.
    assert "shared pages" in text
    assert hex(12 * PAGE) in text.split("shared pages")[1]
    assert hex(16 * PAGE) not in text.split("shared pages")[1]
