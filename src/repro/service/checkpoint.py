"""Campaign checkpoints: whole-state snapshots a ``kill -9`` cannot tear.

A checkpoint is one file — magic, CRC32, then a pickle of the
campaign's replayable state — written with
:func:`~repro.service.store.atomic_write`, so at any instant the path
holds either the previous complete checkpoint or the new complete one.
Loading verifies the frame and raises
:class:`~repro.errors.CorruptArtifact` with the precise failure when
the file is not a checkpoint (the orchestrator's cold-start fallback
catches exactly that type).

Every checkpoint carries the blake2b digest of its
:class:`~repro.service.orchestrator.CampaignSpec`; resuming with a
different spec raises :class:`~repro.errors.CheckpointMismatch`
instead of silently splicing two unrelated explorations.
"""

import hashlib
import os
import pickle
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import CheckpointMismatch, CorruptArtifact
from repro.service.store import atomic_write

CHECKPOINT_MAGIC = b"RSCP0001"


def spec_digest(payload: Dict) -> str:
    """The blake2b key of a campaign spec (a plain JSON-able dict).

    Keys the checkpoint to *what is being checked*: same spec, same
    digest, on any machine — the repr of a sorted item list is
    canonical enough for the plain values specs carry.
    """
    canonical = repr(sorted(payload.items())).encode()
    return hashlib.blake2b(canonical, digest_size=16).hexdigest()


@dataclass
class CampaignCheckpoint:
    """One loadable snapshot of a campaign in flight (or finished)."""

    spec: Dict                     # the CampaignSpec payload
    state: object                  # kind-specific resumable progress
    waves: int = 0                 # checkpoints written before this one
    done: bool = False
    stats: Dict = field(default_factory=dict)   # aggregated memo stats
    version: int = 1

    @property
    def digest(self) -> str:
        return spec_digest(self.spec)

    # -- disk round-trip ----------------------------------------------------

    def save(self, path: str) -> str:
        """Atomically persist (temp + fsync + rename); returns ``path``."""
        payload = pickle.dumps(
            {"spec": self.spec, "state": self.state, "waves": self.waves,
             "done": self.done, "stats": self.stats,
             "version": self.version, "digest": self.digest},
            protocol=pickle.HIGHEST_PROTOCOL)
        frame = CHECKPOINT_MAGIC \
            + zlib.crc32(payload).to_bytes(4, "little") + payload
        return atomic_write(path, frame)

    @classmethod
    def load(cls, path: str,
             expected_digest: Optional[str] = None) -> "CampaignCheckpoint":
        """Load and verify a checkpoint.

        Raises :class:`~repro.errors.CorruptArtifact` on a torn or
        foreign file and :class:`~repro.errors.CheckpointMismatch` when
        ``expected_digest`` (the resuming campaign's spec digest) does
        not match the one recorded at save time.
        """
        if not os.path.exists(path):
            raise FileNotFoundError(path)
        with open(path, "rb") as fh:
            blob = fh.read()
        if len(blob) < len(CHECKPOINT_MAGIC) + 4:
            raise CorruptArtifact(
                path, f"file too short ({len(blob)} bytes) to be a "
                      f"checkpoint")
        if not blob.startswith(CHECKPOINT_MAGIC):
            raise CorruptArtifact(
                path, f"bad magic {blob[:8]!r} (expected "
                      f"{CHECKPOINT_MAGIC!r})")
        crc = int.from_bytes(blob[len(CHECKPOINT_MAGIC):
                                  len(CHECKPOINT_MAGIC) + 4], "little")
        payload = blob[len(CHECKPOINT_MAGIC) + 4:]
        if zlib.crc32(payload) != crc:
            raise CorruptArtifact(
                path, "payload CRC mismatch — the checkpoint is torn")
        try:
            record = pickle.loads(payload)
        except Exception as exc:
            raise CorruptArtifact(
                path, f"payload does not unpickle: {exc}") from None
        checkpoint = cls(spec=record["spec"], state=record["state"],
                         waves=record.get("waves", 0),
                         done=record.get("done", False),
                         stats=record.get("stats", {}),
                         version=record.get("version", 1))
        recorded = record.get("digest")
        if recorded is not None and recorded != checkpoint.digest:
            raise CorruptArtifact(
                path, f"spec digest {recorded} does not match the "
                      f"spec stored alongside it ({checkpoint.digest})")
        if expected_digest is not None \
                and checkpoint.digest != expected_digest:
            raise CheckpointMismatch(path, expected_digest,
                                     checkpoint.digest)
        return checkpoint
