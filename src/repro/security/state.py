"""The abstract system state σ of the transition system (Sec. 5.1).

A :class:`SystemState` wraps a live :class:`RustMonitor` (which already
carries physical memory, the vCPU, the TLB, the EPCM, and every page
table) plus the bookkeeping the security arguments need: the step
counter and the data oracle cursor.

States support :meth:`clone` (a structured field-wise snapshot) so the
noninterference drivers can branch executions, and :meth:`principal_is_active` /
:meth:`live_principals` queries used by the lemma checkers.
"""

import copy

from repro.hyperenclave.monitor import HOST_ID


class SystemState:
    """σ: the whole machine plus model bookkeeping."""

    def __init__(self, monitor, oracle=None, use_spec_walk=False):
        self.monitor = monitor
        self.oracle = oracle
        self.step_count = 0
        # Resolve enclave accesses via the verified spec walk (Sec. 5.1)
        # instead of the hardware walker; both must agree (tested).
        self.use_spec_walk = use_spec_walk

    # -- principals -----------------------------------------------------------

    @property
    def active(self):
        return self.monitor.active

    def principal_is_active(self, principal):
        return self.monitor.active == principal

    def live_principals(self):
        return self.monitor.principals()

    def enclave(self, eid):
        return self.monitor.enclaves[eid]

    # -- branching --------------------------------------------------------------

    # Fields :meth:`clone` copies structurally; subclass extras fall
    # back to ``copy.deepcopy``.
    _CLONE_FIELDS = frozenset(
        ("monitor", "oracle", "step_count", "use_spec_walk"))

    def clone(self, *, reuse=None):
        """An independent structural copy (same oracle position).

        Uses :meth:`RustMonitor.clone` and :meth:`DataOracle.fork`
        instead of ``copy.deepcopy`` — this is the two-world
        noninterference hot path (every crash-NI campaign unit clones
        both worlds) and the parallel fabric's world builder.

        ``reuse`` passes through to :meth:`RustMonitor.clone` for the
        snapshot tree's copy-on-write structure sharing.
        """
        new = object.__new__(type(self))
        new.monitor = self.monitor.clone(reuse=reuse)
        if self.oracle is None:
            new.oracle = None
        elif hasattr(self.oracle, "fork"):
            new.oracle = self.oracle.fork()
        else:
            new.oracle = copy.deepcopy(self.oracle)
        new.step_count = self.step_count
        new.use_spec_walk = self.use_spec_walk
        for key, value in self.__dict__.items():
            if key not in self._CLONE_FIELDS:
                new.__dict__[key] = copy.deepcopy(value)
        return new

    def __repr__(self):
        return (f"SystemState(active={self.active}, "
                f"principals={self.live_principals()}, "
                f"steps={self.step_count})")


def fresh_state(config, monitor_class=None, oracle=None,
                **monitor_kwargs):
    """Boot a monitor (default :class:`RustMonitor`) into a SystemState."""
    from repro.hyperenclave.monitor import RustMonitor
    cls = monitor_class or RustMonitor
    return SystemState(cls(config, **monitor_kwargs), oracle=oracle)


__all__ = ["SystemState", "fresh_state", "HOST_ID"]
