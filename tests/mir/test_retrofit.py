"""Retrofit lints (Sec. 2.3): each rule fires on a crafted offender and
stays silent on the corpus."""

import pytest

from repro.mir.ast import (
    BinOp, Call, Cast, CastKind, ConstFn, Copy, place,
)
from repro.mir.builder import FunctionBuilder, ProgramBuilder
from repro.mir.retrofit import (
    check_function,
    check_retrofitted,
    lint_discriminant_casts,
    lint_loop_bodies,
    lint_no_indirect_calls,
    lint_no_lazy_static,
    natural_loop_blocks,
    _back_edges,
)
from repro.mir.types import U64, UNIT
from repro.mir.value import mk_u64


def big_loop_function(statements_in_body=12):
    fb = FunctionBuilder("bigloop", ["n"])
    fb.assign("i", 0)
    fb.goto("loop")
    fb.label("loop")
    fb.binop("c", BinOp.LT, "i", "n")
    fb.branch("c", "body", "done")
    fb.label("body")
    for index in range(statements_in_body):
        fb.binop(f"t{index}", BinOp.ADD, "i", index)
    fb.binop("i", BinOp.ADD, "i", 1)
    fb.goto("loop")
    fb.label("done")
    fb.ret()
    return fb.finish()


class TestRule1LoopBodies:
    def test_large_loop_flagged(self):
        findings = lint_loop_bodies(big_loop_function(12), budget=8)
        assert findings and findings[0].rule == "loop-body-size"

    def test_small_loop_clean(self):
        assert lint_loop_bodies(big_loop_function(2), budget=8) == []

    def test_back_edge_detection(self):
        function = big_loop_function(2)
        edges = _back_edges(function)
        assert any(header == "loop" for _src, header in edges)

    def test_natural_loop_includes_body(self):
        function = big_loop_function(2)
        edge = _back_edges(function)[0]
        blocks = natural_loop_blocks(function, edge)
        assert "body" in blocks and "loop" in blocks
        assert "done" not in blocks


class TestRule2Closures:
    def test_indirect_call_flagged(self):
        fb = FunctionBuilder("f", ["callback"])
        fb._terminate(Call(Copy(place("callback")), (), place("_1"),
                           "bb1"))
        fb.label("bb1")
        fb.ret()
        findings = lint_no_indirect_calls(fb.finish())
        assert findings and findings[0].rule == "closure-call"

    def test_direct_call_clean(self):
        fb = FunctionBuilder("f", [])
        fb._terminate(Call(ConstFn("g"), (), place("_1"), "bb1"))
        fb.label("bb1")
        fb.ret()
        assert lint_no_indirect_calls(fb.finish()) == []


class TestRule3IntEnums:
    def test_discriminant_cast_flagged(self):
        fb = FunctionBuilder("f", ["e"])
        fb.discriminant("d", "e")
        fb.cast("v", "d", U64)
        fb.ret("v")
        findings = lint_discriminant_casts(fb.finish())
        assert findings and findings[0].rule == "int-enum-discriminant"

    def test_discriminant_for_match_clean(self):
        fb = FunctionBuilder("f", ["e"])
        fb.discriminant("d", "e")
        fb.switch("d", [(0, "none")], "some")
        fb.label("none")
        fb.ret(0)
        fb.label("some")
        fb.ret(1)
        assert lint_discriminant_casts(fb.finish()) == []


class TestRule4LazyStatic:
    def test_attr_flagged(self):
        fb = FunctionBuilder("f", [], attrs=("lazy_static",))
        fb.ret()
        findings = lint_no_lazy_static(fb.finish())
        assert findings and findings[0].rule == "lazy-static"

    def test_check_then_init_pattern_flagged(self):
        pb = ProgramBuilder()
        pb.global_("LAYOUT", mk_u64(0))
        fb = pb.function("f", [], U64)
        fb.switch("LAYOUT", [(0, "init")], "ready")
        fb.label("init")
        fb.assign("LAYOUT", 42)
        fb.goto("ready")
        fb.label("ready")
        fb.ret("LAYOUT")
        function = fb.finish()
        findings = lint_no_lazy_static(function)
        assert findings and findings[0].rule == "lazy-static"

    def test_plain_global_read_clean(self):
        pb = ProgramBuilder()
        pb.global_("LAYOUT", mk_u64(0))
        fb = pb.function("f", [], U64)
        fb.ret("LAYOUT")
        assert lint_no_lazy_static(fb.finish()) == []


class TestCorpusIsRetrofitted:
    def test_corpus_passes_all_lints(self, model):
        """The transcribed corpus must already be in retrofitted form."""
        assert check_retrofitted(model.program) == []

    def test_check_function_aggregates(self):
        findings = check_function(big_loop_function(12), loop_budget=8)
        assert any(f.rule == "loop-body-size" for f in findings)

    def test_finding_str(self):
        findings = check_function(big_loop_function(12), loop_budget=8)
        assert "bigloop" in str(findings[0])
