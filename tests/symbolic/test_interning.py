"""Property tests pinning the interned-term fast path (PR 4).

The fast path is only admissible because it is semantically invisible;
these tests pin the invariants that make it so:

* interning: two structurally equal terms are the *same object*
  (``is``), and ``is``-distinct interned terms are structurally
  unequal — identity coincides exactly with structural equality;
* naive-mode terms (built under :func:`repro.fastpath.disabled`)
  remain structurally equal and hash-equal to their interned twins;
* ``simplify`` is idempotent and produces equivalent terms (same
  evaluation on every model) with the fast path on or off;
* compiled evaluators agree with :func:`evaluate` — same values,
  same exception types, same messages;
* ``term_fingerprint`` is mode-independent (it keys the solver memo,
  so a mode-dependent fingerprint would poison cross-mode results);
* pickling and deepcopying re-intern (round-trips preserve ``is``).
"""

import copy
import pickle

import pytest
from hypothesis import given, strategies as st

from repro import fastpath
from repro.errors import UnboundSymbolicVariable
from repro.mir.types import U8, U64
from repro.symbolic import (
    App,
    Const,
    Domains,
    SymVar,
    boolean,
    bv,
    check_sat,
    compile_evaluator,
    enumerate_models,
    evaluate,
    fast_evaluate,
    simplify,
    term_fingerprint,
)

VAR_NAMES = ("x", "y", "z")
ARITH = st.sampled_from(["add", "sub", "mul", "band", "bor", "bxor"])
CMP = st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"])


def int_terms(depth):
    """Strategy for U8 integer-sorted terms up to ``depth`` levels."""
    leaf = st.one_of(
        st.sampled_from(VAR_NAMES).map(lambda n: SymVar(n, U8)),
        st.integers(0, 255).map(lambda v: bv(v, U8)),
    )
    if depth <= 0:
        return leaf
    sub = int_terms(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(ARITH, sub, sub).map(
            lambda t: simplify(t[0], (t[1], t[2]), U8)),
    )


def bool_terms(depth):
    """Strategy for boolean-sorted terms built over integer subterms."""
    cmp = st.tuples(CMP, int_terms(depth), int_terms(depth)).map(
        lambda t: simplify(t[0], (t[1], t[2]), None))
    return st.one_of(
        cmp,
        cmp.map(lambda p: simplify("not", (p,), None)),
        st.tuples(cmp, cmp).map(
            lambda t: simplify("and", (t[0], t[1]), None)),
        st.tuples(cmp, cmp).map(
            lambda t: simplify("or", (t[0], t[1]), None)),
    )


MODELS = st.fixed_dictionaries(
    {name: st.integers(0, 255) for name in VAR_NAMES})


def rebuild(term):
    """Reconstruct ``term`` bottom-up through the public constructors."""
    if isinstance(term, SymVar):
        return SymVar(term.name, term.ty)
    if isinstance(term, Const):
        return Const(term.value, term.ty)
    return App(term.op, tuple(rebuild(a) for a in term.args), term.ty)


class TestInterningIdentity:
    @given(int_terms(2))
    def test_rebuild_is_same_object(self, term):
        assert rebuild(term) is term

    @given(bool_terms(1))
    def test_rebuild_is_same_object_bool(self, term):
        assert rebuild(term) is term

    @given(int_terms(1), int_terms(1))
    def test_identity_iff_structural_equality(self, a, b):
        assert (a is b) == (a == b)
        if a == b:
            assert hash(a) == hash(b)

    def test_const_value_class_distinguished(self):
        # bool is an int subclass; interning must not alias them.
        assert Const(True, None) is not Const(1, None)
        assert Const(True, None) != Const(1, None)

    @given(int_terms(2))
    def test_pickle_round_trip_reinterns(self, term):
        assert pickle.loads(pickle.dumps(term)) is term

    @given(int_terms(2))
    def test_deepcopy_reinterns(self, term):
        assert copy.deepcopy(term) is term


class TestNaiveModeEquivalence:
    @given(int_terms(2), MODELS)
    def test_naive_terms_equal_interned_twins(self, term, model):
        with fastpath.disabled():
            naive = rebuild(term)
        assert naive == term
        assert hash(naive) == hash(term)
        assert evaluate(naive, model) == evaluate(term, model)

    @given(int_terms(2))
    def test_fingerprint_mode_independent(self, term):
        with fastpath.disabled():
            naive = rebuild(term)
        assert term_fingerprint(naive) == term_fingerprint(term)


class TestSimplify:
    @given(ARITH, int_terms(1), int_terms(1))
    def test_idempotent(self, op, a, b):
        built = simplify(op, (a, b), U8)
        if isinstance(built, App):
            assert simplify(built.op, built.args, built.ty) is built

    @given(ARITH, int_terms(1), int_terms(1), MODELS)
    def test_fast_and_naive_agree(self, op, a, b, model):
        fast = simplify(op, (a, b), U8)
        with fastpath.disabled():
            naive = simplify(op, (rebuild(a), rebuild(b)), U8)
        assert naive == fast
        assert evaluate(naive, model) == evaluate(fast, model)

    def test_memoised_fold_error_reraises(self):
        # A folding error must surface on *every* call, never be cached.
        zero = bv(0, U8)
        for _ in range(2):
            with pytest.raises(ZeroDivisionError):
                simplify("div", (bv(1, U8), zero), U8)


class TestCompiledEvaluators:
    @given(bool_terms(1), MODELS)
    def test_matches_evaluate(self, term, model):
        compiled = compile_evaluator(term)
        assert compiled is not None
        assert compiled(model) == evaluate(term, model)
        assert fast_evaluate(term, model) == evaluate(term, model)

    @given(int_terms(2), MODELS)
    def test_matches_evaluate_arith(self, term, model):
        compiled = compile_evaluator(term)
        assert compiled is not None
        assert compiled(model) == evaluate(term, model)

    @given(bool_terms(1))
    def test_missing_binding_error_parity(self, term):
        try:
            expected = evaluate(term, {})
        except Exception as exc:  # noqa: BLE001 - parity check
            with pytest.raises(type(exc)) as caught:
                fast_evaluate(term, {})
            assert str(caught.value) == str(exc)
        else:
            assert fast_evaluate(term, {}) == expected

    def test_unsupported_op_returns_none(self):
        term = App("mul_overflows",
                   (SymVar("x", U8), SymVar("y", U8)), None)
        assert compile_evaluator(term) is None


class TestUnboundVariable:
    def test_lists_all_missing_names(self):
        prop = simplify(
            "and",
            (simplify("lt", (SymVar("a", U8), bv(1, U8)), None),
             simplify("lt", (SymVar("b", U8), bv(1, U8)), None)),
            None)
        domains = Domains({})
        with pytest.raises(UnboundSymbolicVariable) as caught:
            list(enumerate_models([prop], domains))
        assert caught.value.names == ("a", "b")
        assert "'a'" in str(caught.value) and "'b'" in str(caught.value)

    def test_is_a_key_error(self):
        # Pre-PR-4 catch sites say ``except KeyError``; the typed error
        # must keep flowing through them.
        err = UnboundSymbolicVariable("x")
        assert isinstance(err, KeyError)
        assert err.names == ("x",)

    def test_check_sat_propagates(self):
        prop = simplify("eq", (SymVar("q", U8), bv(1, U8)), None)
        with pytest.raises(UnboundSymbolicVariable):
            check_sat([prop], Domains({}))


class TestSolverStatsSurfaced:
    def test_harness_report_carries_solver_stats(self):
        from repro.hyperenclave.constants import TINY
        from repro.hyperenclave.mir_model import build_model
        from repro.verification.harness import check_pure_hardened

        model = build_model(TINY)
        report = check_pure_hardened(model, "entry_index")
        assert report.engine == "symbolic"
        stats = report.solver_stats
        assert stats["models_enumerated"] >= 0
        assert stats["candidates_examined"] > 0
        assert set(stats) >= {"models_enumerated", "domains_pruned",
                              "check_sat_memo_hits",
                              "must_hold_memo_hits"}
