"""The parameterised PTE record and tree tables (Sec. 4.1).

The paper's Coq record::

    Record PTE {content:Type} := mkPTE {
      addr_content: option (int64 * content);
      flags: list bool;
      unused_inv : addr_content = None
                   -> (is_huge = false /\\ is_present = false)
    }.

Here absence is modelled by the ZMap default (``None``), so a
:class:`PTERecord` always *has* address+content and the ``unused_inv``
obligation becomes a constructor check: a record must be present, and an
absent entry trivially satisfies "not huge and not present".  Terminal
records carry ``content=None`` (the paper's unit); intermediate records
carry the next :class:`TreeTable` *by value* — the nesting that
"constitutes a tree-shaped view of page tables".
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.ccal.zmap import ZMap
from repro.errors import SpecError
from repro.hyperenclave.archspec import ArchSpec, X86_SPEC


@dataclass(frozen=True)
class TreeTable:
    """One page table in the tree view: a total map index -> PTERecord.

    ``level`` is the paging level this table serves (root = config.levels,
    leaves = 1).  ``entries`` is a ZMap with default None (absent).
    """

    level: int
    entries: ZMap

    @staticmethod
    def empty(level):
        return TreeTable(level=level, entries=ZMap(default=None))

    def get(self, index) -> Optional["PTERecord"]:
        return self.entries.get(index)

    def set(self, index, record) -> "TreeTable":
        return TreeTable(self.level, self.entries.set(index, record))

    def unset(self, index) -> "TreeTable":
        return TreeTable(self.level, self.entries.unset(index))

    def present_indices(self):
        return self.entries.keys()


@dataclass(frozen=True)
class PTERecord:
    """A present page-table entry in the tree view.

    ``addr`` — the physical address packed in the entry (a frame base
    for terminals; for intermediates it is retained so the refinement
    relation can compare against flat memory, but the *tree* semantics
    never follow it — they follow ``content``);
    ``flags`` — the flag bitmask;
    ``content`` — the nested table, or None for a terminal entry;
    ``spec`` — the :class:`~repro.hyperenclave.archspec.ArchSpec` giving
    the flag bits their meaning (the record is parameterised by the
    architecture, like the Coq record is parameterised by ``content``).
    """

    addr: int
    flags: int
    content: Optional[TreeTable] = None
    spec: ArchSpec = field(default=X86_SPEC)

    def __post_init__(self):
        # unused_inv contrapositive: any materialised record must be
        # present; absent entries are ZMap-default None.
        if not self.is_present:
            raise SpecError(
                "PTERecord must be present; model absent entries as None "
                "(unused_inv)")
        if self.is_huge and self.content is not None:
            raise SpecError("a huge entry is terminal; it cannot carry a "
                            "nested table")

    # -- flag views (delegated to the arch spec) --------------------------------

    @property
    def is_present(self):
        return self.spec.is_present(self.flags)

    @property
    def is_writable(self):
        return self.spec.is_writable(self.flags)

    @property
    def is_user(self):
        return self.spec.is_user(self.flags)

    @property
    def is_huge(self):
        return self.spec.is_block_encoded(self.flags)

    @property
    def allows_write_below(self):
        """Hierarchical rule for an intermediate record."""
        return self.spec.table_allows_write(self.flags)

    @property
    def allows_user_below(self):
        return self.spec.table_allows_user(self.flags)

    @property
    def access_allowed(self):
        return self.spec.access_allowed(self.flags)

    @property
    def is_terminal(self):
        return self.content is None

    def with_content(self, content):
        return PTERecord(addr=self.addr, flags=self.flags, content=content,
                         spec=self.spec)
