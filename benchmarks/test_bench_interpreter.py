"""Framework microbench: small-step interpreter throughput.

Not a paper artifact; the datum that contextualises every other bench —
how fast the MIR semantics execute.  Workload: the full multi-level
``map_page``/``translate_page`` cycle through the corpus, heavy in
calls, trusted-pointer dispatch, and loops.
"""

from repro.hyperenclave.constants import TINY
from repro.mir.value import mk_u64

PAGE = TINY.page_size


def test_bench_interpreter_steps(benchmark, model):
    def map_translate_unmap_cycle():
        interp = model.make_interpreter()
        root = interp.call("alloc_frame").value
        for page_no in (0, 1, 17, 42, 63):
            interp.call("map_page", [root, mk_u64(page_no * PAGE),
                                     mk_u64((page_no % 8) * PAGE),
                                     mk_u64(7)])
        for page_no in (0, 1, 17, 42, 63):
            interp.call("translate_page",
                        [root, mk_u64(page_no * PAGE + 8)])
        for page_no in (0, 1, 17, 42, 63):
            interp.call("unmap_page", [root, mk_u64(page_no * PAGE)])
        return interp.steps

    steps = benchmark(map_translate_unmap_cycle)
    assert steps > 1000  # a substantial small-step workload
