"""mirlight — a lightweight executable semantics for Rust's MIR.

This subpackage is the Python analog of the paper's Coq deep embedding
(Sec. 3.1-3.3).  It provides:

* :mod:`repro.mir.types` — the (erased) MIR type grammar,
* :mod:`repro.mir.value` — the object-view value domain
  ``value := int | other atomics | (discriminant, fields)`` plus the three
  pointer kinds of Sec. 3.4,
* :mod:`repro.mir.path` — path addresses (base identifier + integer
  projections) replacing flat integer addresses,
* :mod:`repro.mir.memory` — the object-view memory: a collection of
  non-overlapping objects addressed by paths,
* :mod:`repro.mir.ast` — the program syntax: 28 expression constructors
  and 11 statement/terminator constructors arranged in control-flow
  graphs,
* :mod:`repro.mir.env` — temporary environments implementing the
  local/temporary variable lifting of Sec. 3.2,
* :mod:`repro.mir.interp` — the small-step operational semantics,
* :mod:`repro.mir.builder` — a programmatic CFG builder,
* :mod:`repro.mir.parser` / :mod:`repro.mir.printer` — the textual
  mirlight format (our ``mirlightgen`` substitute) and its pretty-printer,
* :mod:`repro.mir.retrofit` — lints enforcing the Sec. 2.3 retrofitting
  rules on mirlight programs.
"""

from repro.mir.types import (
    MirTy,
    IntTy,
    BoolTy,
    UnitTy,
    CharTy,
    StrTy,
    TupleTy,
    StructTy,
    EnumTy,
    ArrayTy,
    RefTy,
    RawPtrTy,
    FnTy,
    I8,
    I16,
    I32,
    I64,
    ISIZE,
    U8,
    U16,
    U32,
    U64,
    USIZE,
    BOOL,
    UNIT,
)
from repro.mir.value import (
    Value,
    IntValue,
    BoolValue,
    UnitValue,
    CharValue,
    StrValue,
    FnValue,
    Aggregate,
    PathPtr,
    TrustedPtr,
    RDataPtr,
    unit,
    mk_int,
    mk_usize,
    mk_u64,
    mk_bool,
    mk_tuple,
    mk_struct,
    mk_variant,
    mk_array,
    OPTION_NONE,
    OPTION_SOME,
    mk_none,
    mk_some,
    RESULT_OK,
    RESULT_ERR,
    mk_ok,
    mk_err,
)
from repro.mir.path import Path, GlobalBase, LocalBase, Field, Index
from repro.mir.memory import ObjectMemory
from repro.mir.ast import (
    Program,
    Function,
    BasicBlock,
    Place,
    Deref,
    FieldProj,
    IndexProj,
    ConstantIndex,
    Downcast,
    Operand,
    Copy,
    Move,
    Constant,
    Rvalue,
    Use,
    Ref,
    AddressOf,
    BinaryOp,
    CheckedBinaryOp,
    UnaryOp,
    Cast,
    AggregateRv,
    Repeat,
    Len,
    Discriminant,
    NullaryOp,
    CopyForDeref,
    BinOp,
    UnOp,
    CastKind,
    AggregateKind,
    Statement,
    Assign,
    SetDiscriminant,
    StorageLive,
    StorageDead,
    Nop,
    Terminator,
    Goto,
    SwitchInt,
    Return,
    Call,
    Drop,
    Assert,
    EXPRESSION_CONSTRUCTORS,
    STATEMENT_CONSTRUCTORS,
)
from repro.mir.env import TempEnv, Frame
from repro.mir.interp import Interpreter, ExecResult, TrustedFunction
from repro.mir.builder import FunctionBuilder, ProgramBuilder
from repro.mir.parser import parse_program, parse_function
from repro.mir.printer import print_program, print_function

__all__ = [
    # types
    "MirTy", "IntTy", "BoolTy", "UnitTy", "CharTy", "StrTy", "TupleTy",
    "StructTy", "EnumTy", "ArrayTy", "RefTy", "RawPtrTy", "FnTy",
    "I8", "I16", "I32", "I64", "ISIZE", "U8", "U16", "U32", "U64", "USIZE",
    "BOOL", "UNIT",
    # values
    "Value", "IntValue", "BoolValue", "UnitValue", "CharValue", "StrValue",
    "FnValue", "Aggregate", "PathPtr", "TrustedPtr", "RDataPtr",
    "unit", "mk_int", "mk_usize", "mk_u64", "mk_bool", "mk_tuple",
    "mk_struct", "mk_variant", "mk_array",
    "OPTION_NONE", "OPTION_SOME", "mk_none", "mk_some",
    "RESULT_OK", "RESULT_ERR", "mk_ok", "mk_err",
    # paths and memory
    "Path", "GlobalBase", "LocalBase", "Field", "Index", "ObjectMemory",
    # ast
    "Program", "Function", "BasicBlock",
    "Place", "Deref", "FieldProj", "IndexProj", "ConstantIndex", "Downcast",
    "Operand", "Copy", "Move", "Constant",
    "Rvalue", "Use", "Ref", "AddressOf", "BinaryOp", "CheckedBinaryOp",
    "UnaryOp", "Cast", "AggregateRv", "Repeat", "Len", "Discriminant",
    "NullaryOp", "CopyForDeref",
    "BinOp", "UnOp", "CastKind", "AggregateKind",
    "Statement", "Assign", "SetDiscriminant", "StorageLive", "StorageDead",
    "Nop",
    "Terminator", "Goto", "SwitchInt", "Return", "Call", "Drop", "Assert",
    "EXPRESSION_CONSTRUCTORS", "STATEMENT_CONSTRUCTORS",
    # env / interp
    "TempEnv", "Frame", "Interpreter", "ExecResult", "TrustedFunction",
    # builder / parser / printer
    "FunctionBuilder", "ProgramBuilder",
    "parse_program", "parse_function", "print_program", "print_function",
]
