#!/usr/bin/env python3
"""Export the verification artifacts to disk.

Writes, under ``./corpus_export/``:

* ``corpus.mir`` — the whole 49-function mirlight blob (Sec. 3.3),
* ``functions/<name>.mir`` — the per-function split files,
* ``layers.txt`` — the 15-layer assignment with per-layer function lists,
* ``specs/<name>.spec`` — auto-synthesized guarded specifications for
  every pure function (the Sec. 7 / Spoq artifacts).

Everything written here is re-parseable: ``corpus.mir`` feeds straight
back through ``repro.mir.parser.parse_program``.

Run:  python examples/export_corpus.py [output_dir]
"""

import os
import sys

from repro.analysis import split_blob
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.mir_model import build_model
from repro.hyperenclave.mir_model.layers import corpus_source
from repro.mir.parser import parse_program
from repro.verification import (
    default_domains, pure_function_names, synthesize_spec,
)


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "corpus_export"
    model = build_model(TINY)

    os.makedirs(os.path.join(out_dir, "functions"), exist_ok=True)
    os.makedirs(os.path.join(out_dir, "specs"), exist_ok=True)

    # 1. the big blob — and prove it re-parses before writing
    blob = corpus_source(TINY)
    assert len(parse_program(blob).functions) == 49
    with open(os.path.join(out_dir, "corpus.mir"), "w") as handle:
        handle.write(blob)
    print(f"corpus.mir            {len(blob.splitlines())} lines, "
          f"49 functions")

    # 2. per-function files
    files = split_blob(model.program)
    for name, source in sorted(files.items()):
        with open(os.path.join(out_dir, "functions", f"{name}.mir"),
                  "w") as handle:
            handle.write(source + "\n")
    print(f"functions/            {len(files)} files")

    # 3. the layer assignment
    lines = []
    for layer in model.stack.layers():
        functions = model.functions_in_layer(layer.name)
        lines.append(f"{layer.index:2d} {layer.name:14s} "
                     f"{len(functions):2d}  {', '.join(functions)}")
    with open(os.path.join(out_dir, "layers.txt"), "w") as handle:
        handle.write("\n".join(lines) + "\n")
    print(f"layers.txt            {len(model.stack)} layers")

    # 4. synthesized specs for the pure fragment
    names = pure_function_names(model.config, model.layout)
    for name in names:
        spec = synthesize_spec(model.program, name,
                               default_domains(name, model.config))
        with open(os.path.join(out_dir, "specs", f"{name}.spec"),
                  "w") as handle:
            handle.write(spec.pretty() + "\n")
    print(f"specs/                {len(names)} synthesized specs")
    print(f"\nexported to {out_dir}/")


if __name__ == "__main__":
    main()
