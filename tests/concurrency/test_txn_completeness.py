"""Checkpoint completeness (satellite): every mutable field a hypercall
can touch must be (a) visible to ``monitor_digest`` and (b) reverted by
``capture``/``restore``.

The property is checked mutator-by-mutator: each mutation must *change*
the digest — proving the digest actually watches that field, so the
revert assertion is not vacuous — and a restore must bring the digest
back exactly.  The enclaves directory is deliberately mutated through
the same dict object the checkpoint holds by reference, the historical
shallow-copy trap.
"""

from functools import partial

import pytest

from repro.hyperenclave.constants import TINY, WORD_BYTES
from repro.hyperenclave.enclave import EnclaveState
from repro.hyperenclave.epcm import PageState
from repro.hyperenclave.monitor import RustMonitor
from repro.hyperenclave.txn import capture, monitor_digest, restore

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


def free_epc_frame(monitor):
    return next(frame for frame, entry in monitor.epcm.entries()
                if entry.is_free())


def mutate_phys_word(monitor, eid):
    frame = free_epc_frame(monitor)
    monitor.phys.write_word(TINY.frame_base(frame) + 3 * WORD_BYTES,
                            0xC0FFEE)


def mutate_allocator(monitor, eid):
    monitor.pt_allocator.alloc()


def mutate_epcm(monitor, eid):
    monitor.epcm.record(free_epc_frame(monitor), eid, PageState.REG,
                        va=40 * PAGE)


def mutate_enclaves_dict_by_reference(monitor, eid):
    monitor.enclaves[999] = monitor.enclaves[eid]


def mutate_enclave_state(monitor, eid):
    monitor.enclaves[eid].state = EnclaveState.DESTROYED


def mutate_enclave_saved_context(monitor, eid):
    monitor.enclaves[eid].saved_context = (("rax", 0xBAD),)


def mutate_enclave_measurement(monitor, eid):
    enclave = monitor.enclaves[eid]
    enclave.measurement = (enclave.measurement or 0) ^ 0x5A5A


def mutate_next_eid(monitor, eid):
    monitor._next_eid += 7


def mutate_cpu_active(monitor, eid):
    monitor.cpus[1].active = eid


def mutate_cpu_saved_host_context(monitor, eid):
    monitor.cpus[1].saved_host_context = (("rbx", 0x77),)


def mutate_vcpu_register(monitor, eid):
    monitor.cpus[1].vcpu.write_reg("rax", 0x1234)


def mutate_vcpu_roots(monitor, eid):
    monitor.cpus[1].vcpu.gpt_root = monitor.enclaves[eid].gpt.root_frame
    monitor.cpus[1].vcpu.ept_root = monitor.enclaves[eid].ept.root_frame


def mutate_tlb(monitor, eid):
    monitor.cpus[1].tlb.insert(eid, (16 * PAGE, False), 0x9000)


MUTATORS = [
    mutate_phys_word,
    mutate_allocator,
    mutate_epcm,
    mutate_enclaves_dict_by_reference,
    mutate_enclave_state,
    mutate_enclave_saved_context,
    mutate_enclave_measurement,
    mutate_next_eid,
    mutate_cpu_active,
    mutate_cpu_saved_host_context,
    mutate_vcpu_register,
    mutate_vcpu_roots,
    mutate_tlb,
]


@pytest.mark.parametrize("mutate", MUTATORS,
                         ids=[m.__name__ for m in MUTATORS])
def test_checkpoint_reverts_the_field(mutate):
    monitor, _app, eid = build_enclave_world(
        monitor_cls=partial(RustMonitor, num_vcpus=2))
    before = monitor_digest(monitor)
    checkpoint = capture(monitor)
    mutate(monitor, eid)
    assert monitor_digest(monitor) != before, \
        "the digest does not observe this field — the revert check " \
        "below would be vacuous"
    restore(monitor, checkpoint)
    assert monitor_digest(monitor) == before


def test_all_mutations_at_once_revert():
    monitor, _app, eid = build_enclave_world(
        monitor_cls=partial(RustMonitor, num_vcpus=2))
    before = monitor_digest(monitor)
    checkpoint = capture(monitor)
    for mutate in MUTATORS:
        mutate(monitor, eid)
    restore(monitor, checkpoint)
    assert monitor_digest(monitor) == before


def test_restore_survives_an_enclave_created_after_capture():
    """A hypercall that *created* an enclave must fully vanish."""
    monitor, _app, eid = build_enclave_world()
    before = monitor_digest(monitor)
    checkpoint = capture(monitor)
    mbuf_pa = TINY.frame_base(monitor.primary_os.reserve_data_frame())
    monitor.hc_create(elrange_base=32 * PAGE, elrange_size=PAGE,
                      mbuf_va=13 * PAGE, mbuf_pa=mbuf_pa,
                      mbuf_size=PAGE)
    assert monitor_digest(monitor) != before
    restore(monitor, checkpoint)
    # reserve_data_frame mutated only the primary OS's bookkeeping of
    # untrusted frames, which no digest component watches.
    assert monitor_digest(monitor) == before
