"""Machine geometry and memory layout."""

import pytest
from hypothesis import given, strategies as st

from repro.hyperenclave.constants import (
    MachineConfig, MemoryLayout, TINY, X86_64,
)


class TestMachineConfig:
    def test_x86_shape(self):
        assert X86_64.page_size == 4096
        assert X86_64.entries_per_table == 512
        assert X86_64.va_bits == 48
        assert X86_64.words_per_page == 512

    def test_tiny_shape(self):
        assert TINY.page_size == 256
        assert TINY.entries_per_table == 4
        assert TINY.va_bits == 16
        assert TINY.phys_bytes == 128 * 256
        assert TINY.va_space >= TINY.phys_bytes  # GPAs cannot wrap

    def test_tables_must_fit_in_pages(self):
        with pytest.raises(ValueError, match="fit"):
            MachineConfig("bad", page_bits=8, index_bits=6, levels=2,
                          phys_frames=4)

    def test_flag_bits_must_fit_below_address_field(self):
        with pytest.raises(ValueError, match="flag bits"):
            MachineConfig("bad", page_bits=7, index_bits=2, levels=2,
                          phys_frames=4)

    @pytest.mark.parametrize("config", [TINY, X86_64])
    def test_entry_index_decomposition(self, config):
        """Recomposing the per-level indices and the offset recovers va."""
        va = config.va_space - config.page_size + 8
        rebuilt = config.page_offset(va)
        for level in range(1, config.levels + 1):
            rebuilt += config.entry_index(va, level) * config.level_span(level)
        assert rebuilt == va

    @given(st.integers(0, TINY.va_space - 1))
    def test_entry_index_in_range(self, va):
        for level in range(1, TINY.levels + 1):
            assert 0 <= TINY.entry_index(va, level) < TINY.entries_per_table

    def test_entry_index_bad_level(self):
        with pytest.raises(ValueError):
            TINY.entry_index(0, 0)
        with pytest.raises(ValueError):
            TINY.entry_index(0, TINY.levels + 1)

    @given(st.integers(0, TINY.phys_bytes - 1))
    def test_frame_roundtrip(self, paddr):
        frame = TINY.frame_of(paddr)
        assert TINY.frame_base(frame) <= paddr < TINY.frame_base(frame + 1)

    def test_addr_mask_excludes_flags(self):
        assert TINY.addr_mask() & 0xFF == 0
        assert X86_64.addr_mask() & 0xFFF == 0
        assert X86_64.addr_mask() >> 52 == 0

    def test_canonical_va(self):
        assert TINY.canonical_va(TINY.va_space + 5) == 5


class TestMemoryLayout:
    def test_default_regions_partition_memory(self):
        layout = MemoryLayout.default_for(TINY)
        regions = (list(layout.untrusted_frames)
                   + list(layout.monitor_frames)
                   + list(layout.pt_pool_frames)
                   + list(layout.epc_frames))
        assert regions == list(range(TINY.phys_frames))

    def test_classification(self):
        layout = MemoryLayout.default_for(TINY)
        assert layout.is_untrusted(0)
        assert not layout.is_untrusted(layout.secure_base)
        assert layout.is_secure(layout.secure_base)
        assert layout.is_pt_pool(layout.pt_pool_base)
        assert layout.is_epc(layout.epc_base)
        assert not layout.is_epc(layout.epc_base - 1)

    def test_epc_index(self):
        layout = MemoryLayout.default_for(TINY)
        assert layout.epc_index(layout.epc_base) == 0
        assert layout.epc_index(TINY.phys_frames - 1) == \
            layout.epc_size - 1
        with pytest.raises(ValueError):
            layout.epc_index(0)

    def test_out_of_order_bounds_rejected(self):
        with pytest.raises(ValueError):
            MemoryLayout(config=TINY, secure_base=40, pt_pool_base=30,
                         epc_base=50)

    def test_secure_fraction_controls_split(self):
        layout = MemoryLayout.default_for(TINY, secure_fraction=0.25)
        assert layout.secure_base == TINY.phys_frames - 32
