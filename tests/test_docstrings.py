"""Deliverable gate: doc comments on every public item.

Walks the installed ``repro`` package with ``ast`` and asserts that
every module, every public class, and every public function/method has
a docstring.  Private names (leading underscore) and trivial dunder
methods are exempt; tiny delegating lambdas registered inside factory
functions are not reachable here (they are closures, not module items).
"""

import ast
import os

import pytest

import repro

SRC_ROOT = os.path.dirname(repro.__file__)

# __init__ methods are documented at the class level in this codebase.
EXEMPT_NAMES = {"__init__", "__repr__", "__str__", "__len__", "__eq__",
                "__hash__", "__contains__", "__iter__", "__post_init__",
                "__getitem__", "__add__", "__call__", "__setattr__"}


def python_files():
    for dirpath, _dirnames, filenames in os.walk(SRC_ROOT):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def _is_trivial(fn_node):
    """Self-documenting forms: single-statement bodies (delegations and
    accessors) and property getters of at most two statements."""
    body = [stmt for stmt in fn_node.body
            if not (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str))]
    if len(body) <= 1:
        return True
    is_property = any(isinstance(dec, ast.Name) and dec.id == "property"
                      for dec in fn_node.decorator_list)
    return is_property and len(body) <= 2


def _is_enum_or_exception(class_node):
    bases = {getattr(base, "id", getattr(base, "attr", None))
             for base in class_node.bases}
    return bool(bases & {"Enum", "Exception"})


def missing_docstrings(path):
    """Public items in ``path`` lacking docstrings, trivial forms exempt."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read())
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if not node.name.startswith("_") \
                    and ast.get_docstring(node) is None \
                    and not _is_enum_or_exception(node):
                missing.append(f"class {node.name}")
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    if item.name.startswith("_") \
                            or item.name in EXEMPT_NAMES \
                            or _is_trivial(item):
                        continue
                    if ast.get_docstring(item) is None:
                        missing.append(f"{node.name}.{item.name}")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith("_") or _is_trivial(node):
                continue
            if ast.get_docstring(node) is None:
                missing.append(f"def {node.name}")
    return missing


@pytest.mark.parametrize(
    "path", list(python_files()),
    ids=lambda p: os.path.relpath(p, SRC_ROOT))
def test_public_items_documented(path):
    """Every non-trivial public item carries a doc comment."""
    missing = missing_docstrings(path)
    assert missing == [], (
        f"{os.path.relpath(path, SRC_ROOT)} has undocumented public "
        f"items: {missing}")
