"""Bitmap frame allocator — layer 1 of the stack (Sec. 1: "15 layers
that span from frame allocation to address space isolation").

Allocates page-table frames from the secure pool.  The allocator is the
lowest non-trusted layer: its MIR transcription is verified against the
:func:`alloc_spec`-style specifications in
:mod:`repro.hyperenclave.mir_model`.
"""

from typing import Iterable, Optional

from repro.concurrency import scheduler as conc
from repro.errors import OutOfMemoryError, HypervisorError
from repro.faults import plane as faults


class BitmapFrameAllocator:
    """First-fit bitmap allocator over a contiguous frame range."""

    def __init__(self, frame_range: Iterable[int]):
        frames = sorted(frame_range)
        if not frames:
            raise HypervisorError("empty frame pool")
        if frames != list(range(frames[0], frames[0] + len(frames))):
            raise HypervisorError("frame pool must be contiguous")
        self.base = frames[0]
        self.size = len(frames)
        self._used = [False] * self.size
        # Monotone mutation counter (see PhysMemory._version): bumped by
        # every bitmap mutation so fingerprints and snapshot sharing can
        # treat equal versions on one lineage as equal contents.
        self._version = 0

    # -- queries ------------------------------------------------------------------

    def contains(self, frame):
        return self.base <= frame < self.base + self.size

    def is_allocated(self, frame):
        """Is ``frame`` currently handed out?"""
        if not self.contains(frame):
            return False
        return self._used[frame - self.base]

    @property
    def used_count(self):
        return sum(self._used)

    @property
    def free_count(self):
        return self.size - self.used_count

    def allocated_frames(self):
        return [self.base + i for i, used in enumerate(self._used) if used]

    # -- operations ------------------------------------------------------------------

    def alloc(self) -> int:
        """Allocate the lowest free frame.

        Exhaustion — organic or injected through the ``frames.alloc``
        fault site — always raises the typed
        :class:`~repro.errors.OutOfMemoryError` (a
        :class:`~repro.errors.ResourceExhausted`), never an untyped
        failure: callers rely on the type to roll back cleanly.
        """
        conc.guard_mutation("frames")
        faults.allocation_gate(
            faults.SITE_FRAME_ALLOC,
            exhaust=lambda: OutOfMemoryError(
                "page-table frame pool exhausted (injected)"))
        for index, used in enumerate(self._used):
            if not used:
                self._version += 1
                self._used[index] = True
                return self.base + index
        raise OutOfMemoryError("page-table frame pool exhausted")

    def alloc_specific(self, frame) -> int:
        """Claim a specific free frame."""
        conc.guard_mutation("frames")
        if not self.contains(frame):
            raise HypervisorError(f"frame {frame} outside the pool")
        index = frame - self.base
        if self._used[index]:
            raise HypervisorError(f"frame {frame} already allocated")
        self._version += 1
        self._used[index] = True
        return frame

    def dealloc(self, frame):
        """Return a frame to the pool (double frees rejected)."""
        conc.guard_mutation("frames")
        if not self.contains(frame):
            raise HypervisorError(f"frame {frame} outside the pool")
        index = frame - self.base
        if not self._used[index]:
            raise HypervisorError(f"double free of frame {frame}")
        self._version += 1
        self._used[index] = False

    def snapshot(self):
        """Immutable allocation bitmap (for abstract states)."""
        return tuple(self._used)

    def load_snapshot(self, bitmap):
        """Restore a bitmap captured by :meth:`snapshot`."""
        if len(bitmap) != self.size:
            raise HypervisorError(
                f"snapshot covers {len(bitmap)} frames, pool has "
                f"{self.size}")
        self._version += 1
        self._used = list(bitmap)

    def clone(self):
        """An independent copy over the same pool geometry."""
        new = object.__new__(type(self))
        new.base = self.base
        new.size = self.size
        new._used = list(self._used)
        new._version = self._version
        return new
