"""The mirlight type grammar.

MIR is type-erased for execution purposes ("the compiler has type-checked
the program ... the operational semantics are determined by the terms of
the program and we do not need to model the type system", Sec. 3.1), so
these types exist for three practical reasons:

* the builder and parser use them to declare variables and check arity,
* integer widths drive wrap-around arithmetic and casts, and
* the symbolic executor uses widths to bound enumeration domains.

Types are immutable and hashable so they can key caches.
"""

from dataclasses import dataclass, field
from typing import Tuple


class MirTy:
    """Base class of all mirlight types."""

    def is_integer(self):
        return isinstance(self, IntTy)

    def is_pointer(self):
        return isinstance(self, (RefTy, RawPtrTy))


@dataclass(frozen=True)
class IntTy(MirTy):
    """A sized machine integer, e.g. ``u64`` or ``i32``.

    ``width`` is in bits; ``signed`` selects two's-complement
    interpretation.  Arithmetic wraps modulo ``2**width`` exactly like
    release-mode Rust (checked operations are modelled separately by the
    ``CheckedBinaryOp`` rvalue).
    """

    width: int
    signed: bool

    def __post_init__(self):
        if self.width not in (8, 16, 32, 64, 128):
            raise ValueError(f"unsupported integer width: {self.width}")

    @property
    def modulus(self):
        return 1 << self.width

    @property
    def min_value(self):
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self):
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def wrap(self, raw):
        """Reduce an unbounded Python int into this type's value range."""
        wrapped = raw % self.modulus
        if self.signed and wrapped > self.max_value:
            wrapped -= self.modulus
        return wrapped

    def contains(self, raw):
        return self.min_value <= raw <= self.max_value

    def __str__(self):
        prefix = "i" if self.signed else "u"
        return f"{prefix}{self.width}"


@dataclass(frozen=True)
class BoolTy(MirTy):
    """The boolean type."""
    def __str__(self):
        return "bool"


@dataclass(frozen=True)
class UnitTy(MirTy):
    """The unit type ``()``."""
    def __str__(self):
        return "()"


@dataclass(frozen=True)
class CharTy(MirTy):
    """The character type."""
    def __str__(self):
        return "char"


@dataclass(frozen=True)
class StrTy(MirTy):
    """String slices; only used for panic messages in the corpus."""

    def __str__(self):
        return "str"


@dataclass(frozen=True)
class TupleTy(MirTy):
    """A tuple of element types."""
    elems: Tuple[MirTy, ...]

    def __str__(self):
        inner = ", ".join(str(e) for e in self.elems)
        return f"({inner})"


@dataclass(frozen=True)
class StructTy(MirTy):
    """A nominal struct.  Field types are recorded for documentation and
    arity checks; the semantics treat the value as ``(0, fields)``."""

    name: str
    fields: Tuple[MirTy, ...] = field(default=())

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class EnumTy(MirTy):
    """A nominal enum; ``variants`` maps positionally to discriminants."""

    name: str
    variants: Tuple[str, ...] = field(default=())

    def discriminant_of(self, variant_name):
        return self.variants.index(variant_name)

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class ArrayTy(MirTy):
    """A fixed-length array type."""
    elem: MirTy
    length: int

    def __str__(self):
        return f"[{self.elem}; {self.length}]"


@dataclass(frozen=True)
class RefTy(MirTy):
    """A Rust reference (``&T`` / ``&mut T``).  At MIR level references
    have been turned into pointers (Sec. 3.1); the distinction from
    :class:`RawPtrTy` is kept only for the unsafe-block audit."""

    pointee: MirTy
    mutable: bool = False

    def __str__(self):
        mut = "mut " if self.mutable else ""
        return f"&{mut}{self.pointee}"


@dataclass(frozen=True)
class RawPtrTy(MirTy):
    """A raw pointer type (audited separately from references)."""
    pointee: MirTy
    mutable: bool = False

    def __str__(self):
        mut = "mut" if self.mutable else "const"
        return f"*{mut} {self.pointee}"


@dataclass(frozen=True)
class FnTy(MirTy):
    """A function type."""
    params: Tuple[MirTy, ...]
    ret: MirTy

    def __str__(self):
        inner = ", ".join(str(p) for p in self.params)
        return f"fn({inner}) -> {self.ret}"


# Canonical instances — mirlight programs overwhelmingly use these.
I8 = IntTy(8, True)
I16 = IntTy(16, True)
I32 = IntTy(32, True)
I64 = IntTy(64, True)
ISIZE = IntTy(64, True)
U8 = IntTy(8, False)
U16 = IntTy(16, False)
U32 = IntTy(32, False)
U64 = IntTy(64, False)
USIZE = IntTy(64, False)
BOOL = BoolTy()
UNIT = UnitTy()

_NAMED_TYPES = {
    "i8": I8, "i16": I16, "i32": I32, "i64": I64, "isize": ISIZE,
    "u8": U8, "u16": U16, "u32": U32, "u64": U64, "usize": USIZE,
    "bool": BOOL, "()": UNIT, "unit": UNIT, "char": CharTy(), "str": StrTy(),
}


def type_from_name(name):
    """Resolve a primitive type name used by the textual parser.

    Unknown names resolve to an opaque :class:`StructTy`, matching how the
    semantics treat nominal types: purely by shape, never by name.
    """
    stripped = name.strip()
    if stripped in _NAMED_TYPES:
        return _NAMED_TYPES[stripped]
    return StructTy(stripped)
