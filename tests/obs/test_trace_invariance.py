"""Tracing is observation-only: it must not change a single verdict.

Every test runs one checking campaign twice — tracing off, tracing on
— and requires the reports to be ``repr``-identical (which covers
every field of every record).  The traced run's records must also
pass schema validation, so "the tracer broke nothing" and "the tracer
recorded something coherent" are checked together.
"""

from repro.faults.campaign import (
    crash_step_campaign,
    default_workload,
    default_world_factory,
    interleaving_campaign,
)
from repro.obs import trace as trace_mod


def test_crash_step_campaign_verdicts_unchanged(tmp_path):
    sites = ("epcm.allocate", "frame.alloc")
    baseline = crash_step_campaign(default_world_factory(),
                                   default_workload(), sites=sites)
    path = str(tmp_path / "trace.jsonl")
    with trace_mod.installed(trace_mod.Tracer(jsonl=path)) as tracer:
        traced = crash_step_campaign(default_world_factory(),
                                     default_workload(), sites=sites)
        tracer.close()
    assert repr(traced) == repr(baseline)
    assert trace_mod.validate_jsonl(path) > 0
    names = {r["name"] for r in tracer.records}
    assert "campaign.crash-step" in names
    assert "fault.fired" in names


def test_interleaving_campaign_verdicts_unchanged():
    baseline = interleaving_campaign(max_schedules=25)
    with trace_mod.installed(trace_mod.Tracer()) as tracer:
        traced = interleaving_campaign(max_schedules=25)
    assert repr(traced) == repr(baseline)
    trace_mod.validate_records(tracer.records)
    names = {r["name"] for r in tracer.records}
    assert {"campaign.interleaving", "lock.acquire", "schedule"} <= names
    schedules = [r for r in tracer.records if r["name"] == "schedule"]
    assert len(schedules) == baseline.schedules_run


def test_pure_check_verdicts_unchanged(model):
    from repro.verification.harness import check_pure_hardened

    grids = [("pte_new", {}),
             ("level_span", dict(max_steps=16, sample_count=16))]
    for name, kwargs in grids:
        # Frozen clock: budget_spent["seconds"] is wall-clock and would
        # differ between any two runs, traced or not.
        kwargs = dict(kwargs, clock=lambda: 0.0)
        baseline = check_pure_hardened(model, name, **kwargs)
        with trace_mod.installed(trace_mod.Tracer()) as tracer:
            traced = check_pure_hardened(model, name, **kwargs)
        assert repr(traced) == repr(baseline)
        trace_mod.validate_records(tracer.records)
        verdicts = [r for r in tracer.records if r["name"] == "verdict"]
        assert len(verdicts) == 1
        assert verdicts[0]["attrs"]["engine"] == baseline.engine
        if baseline.degradations:
            recorded = [r["attrs"]["reason"] for r in tracer.records
                        if r["name"] == "degradation"]
            assert len(recorded) == len(baseline.degradations)


def test_parallel_campaign_traced_report_identical():
    from repro.engine import ShardedExecutor, parallel_crash_step_campaign

    sites = ("epcm.allocate",)
    baseline = crash_step_campaign(default_world_factory(),
                                   default_workload(), sites=sites)
    # The pool must fork *inside* the installed block so workers
    # inherit the tracing flag.
    with trace_mod.installed(trace_mod.Tracer()) as tracer:
        with ShardedExecutor(2) as pool:
            traced = parallel_crash_step_campaign(sites=sites,
                                                  executor=pool)
    assert repr(traced) == repr(baseline)
    trace_mod.validate_records(tracer.records)
    unit_spans = [r for r in tracer.records
                  if r["name"] == "executor.unit"]
    assert unit_spans, "worker spans must ship back with the results"
    # Re-parented deterministically: unit order, under executor.map.
    maps = [r for r in tracer.records if r["name"] == "executor.map"]
    assert [s["parent"] for s in unit_spans] == \
        [maps[0]["id"]] * len(unit_spans)
    assert [s["attrs"]["index"] for s in unit_spans] == \
        list(range(len(unit_spans)))
