"""The three pointer disciplines and their classification (Sec. 3.4, Fig. 4).

Factories:

* :func:`trusted_field_ptr` / :func:`trusted_cell_ptr` build
  :class:`~repro.mir.value.TrustedPtr` values whose getter/setter read and
  write a named abstract-state field (case 2 — pointers forged by the
  bottom layer, e.g. into physical page-table memory),
* :func:`rdata_handle` builds :class:`~repro.mir.value.RDataPtr` opaque
  handles (case 3 — pointers returned by a middle layer).

Concrete pointers (case 1) need no factory — they are ordinary
:class:`~repro.mir.value.PathPtr` values produced by ``Ref``.

:func:`classify_pointer_flows` statically scans a layered program and
sorts every pointer-producing site into the three cases, regenerating the
census behind Figure 4.
"""

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.mir import ast
from repro.mir.value import RDataPtr, TrustedPtr, mk_int
from repro.mir.types import U64


def trusted_field_ptr(field_name, origin=None):
    """A trusted pointer to a whole abstract-state field.

    The field must hold a :class:`~repro.mir.value.Value`; reads return
    it, writes replace it.
    """
    label = origin or f"state.{field_name}"

    def getter(state):
        return state.get(field_name)

    def setter(state, value):
        return state.set(field_name, value)

    return TrustedPtr(origin=label, getter=getter, setter=setter)


def trusted_cell_ptr(field_name, index, origin=None, ty=U64):
    """A trusted pointer to one cell of a tuple-of-ints state field.

    This is the paper's page-table-entry pointer: the abstract state
    "contains the array representing physical memory", and the few unsafe
    functions that cast integers to pointers get specifications returning
    these (Sec. 3.4, case 2).
    """
    label = origin or f"state.{field_name}[{index}]"

    def getter(state):
        words = state.get(field_name)
        return mk_int(words[index], ty)

    def setter(state, value):
        words = state.get(field_name)
        as_int = value.expect_int(f"write through {label}")
        updated = words[:index] + (as_int.as_unsigned,) + words[index + 1:]
        return state.set(field_name, updated)

    return TrustedPtr(origin=label, getter=getter, setter=setter)


def rdata_handle(owner_layer, ident, *indices):
    """An opaque handle usable only inside ``owner_layer`` (case 3)."""
    return RDataPtr(owner_layer=owner_layer, ident=ident,
                    indices=tuple(indices))


# ---------------------------------------------------------------------------
# Figure 4 classification
# ---------------------------------------------------------------------------


class PointerCase(enum.Enum):
    """The three flows of Figure 4."""

    ARG_TO_LOWER = "argument-to-lower-layer"      # case 1
    TRUSTED_FROM_BOTTOM = "trusted-from-bottom"   # case 2
    RDATA_FROM_MIDDLE = "rdata-from-middle"       # case 3


@dataclass(frozen=True)
class PointerFlow:
    """One classified pointer-producing site."""

    case: PointerCase
    function: str
    layer: str
    detail: str

    def __str__(self):
        return f"{self.case.value}: {self.function} ({self.layer}) — {self.detail}"


def classify_pointer_flows(program, layer_of_function, stack) -> List[PointerFlow]:
    """Scan a layered program and classify its pointer flows.

    * **case 1**: a ``Ref``/``AddressOf`` result passed as an argument to
      a callee in a strictly lower layer;
    * **case 2**: a call to a primitive whose spec is marked
      ``ptr_kind="trusted"`` (bottom layer forging trusted pointers);
    * **case 3**: a call, from a *higher* layer, to a function or
      primitive marked ``ptr_kind="rdata"`` (opaque handles crossing
      upward).
    """
    flows = []
    for fn_name in sorted(layer_of_function):
        if fn_name not in program.functions:
            continue
        function = program.functions[fn_name]
        layer_name = layer_of_function[fn_name]
        caller_layer = stack.layer(layer_name)
        pointer_vars = _pointer_producing_vars(function)
        for label in sorted(function.blocks):
            term = function.blocks[label].terminator
            if not isinstance(term, ast.Call):
                continue
            callee = _callee_name(term)
            if callee is None:
                continue
            callee_layer = _layer_of_callee(
                callee, layer_of_function, stack)
            if callee_layer is None:
                continue
            # case 1: locally-forged pointers flowing downward
            if callee_layer.index < caller_layer.index:
                for arg in term.args:
                    if (isinstance(arg, (ast.Copy, ast.Move))
                            and arg.place.var in pointer_vars):
                        flows.append(PointerFlow(
                            PointerCase.ARG_TO_LOWER, fn_name, layer_name,
                            f"&{pointer_vars[arg.place.var]} passed to "
                            f"{callee} in {label}"))
            # cases 2 and 3: pointer-returning callees
            spec = stack.owner_of_primitive(callee)
            ptr_kind = _ptr_kind_of(callee, program, stack)
            if ptr_kind == "trusted":
                flows.append(PointerFlow(
                    PointerCase.TRUSTED_FROM_BOTTOM, fn_name, layer_name,
                    f"trusted pointer from {callee} in {label}"))
            elif ptr_kind == "rdata" and callee_layer.index < caller_layer.index:
                flows.append(PointerFlow(
                    PointerCase.RDATA_FROM_MIDDLE, fn_name, layer_name,
                    f"opaque handle from {callee} (layer "
                    f"{callee_layer.name}) in {label}"))
            del spec
    return flows


def count_by_case(flows) -> Dict[PointerCase, int]:
    """Tally classified flows per pointer case."""
    counts = {case: 0 for case in PointerCase}
    for flow in flows:
        counts[flow.case] += 1
    return counts


def _callee_name(term):
    if isinstance(term.func, ast.Constant):
        return getattr(term.func.value, "name", None)
    return None


def _layer_of_callee(callee, layer_of_function, stack):
    if callee in layer_of_function:
        return stack.layer(layer_of_function[callee])
    return stack.owner_of_primitive(callee)


def _ptr_kind_of(callee, program, stack):
    owner = stack.owner_of_primitive(callee)
    if owner is not None and callee in owner.primitives:
        return getattr(owner.primitives[callee], "ptr_kind", None)
    if callee in program.functions:
        attrs = program.functions[callee].attrs
        if "returns_rdata" in attrs:
            return "rdata"
        if "returns_trusted" in attrs:
            return "trusted"
    return None


def _pointer_producing_vars(function):
    """Vars assigned from Ref/AddressOf, mapped to a readable target."""
    producing = {}
    for block in function.blocks.values():
        for stmt in block.statements:
            if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.rvalue, (ast.Ref, ast.AddressOf)):
                if stmt.place.is_bare:
                    producing[stmt.place.var] = str(stmt.rvalue.place)
    return producing
