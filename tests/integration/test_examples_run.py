"""Every shipped example must run clean — no bitrot."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")
EXAMPLES = sorted(name for name in os.listdir(EXAMPLES_DIR)
                  if name.endswith(".py"))


def test_examples_inventory():
    assert len(EXAMPLES) >= 6
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, tmp_path):
    args = [sys.executable, os.path.join(EXAMPLES_DIR, script)]
    if script == "export_corpus.py":
        args.append(str(tmp_path / "export"))
    result = subprocess.run(args, capture_output=True, text=True,
                            timeout=240)
    assert result.returncode == 0, \
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    assert result.stdout.strip()  # every example narrates its run
