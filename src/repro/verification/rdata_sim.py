"""The RData simulation proof (Sec. 3.4, case 3).

"Of course, it is not possible to verify the code of the methods with
respect to this [RData] semantics, because the code does load and store
through pointers. Instead, the functions are verified in the concrete
Rust memory model, and then we do a refinement proof showing a
simulation from the RData pointer specifications to the concrete memory
semantics."

This module builds both sides and the simulation:

* **High side** — AddrSpace specifications over an abstract registry:
  the abstract state gains an ``addrspaces`` ZMap (handle index → page
  table root); ``as_new`` returns an opaque
  :class:`~repro.mir.value.RDataPtr` and the methods take handles.
  Clients at higher layers can *only* pass the handle around.
* **Low side** — the MIR code, executed in the concrete memory model:
  ``as_new`` allocates a struct in object memory and returns a real
  :class:`~repro.mir.value.PathPtr`.
* **Simulation** — a handle↔pointer correspondence maintained across
  paired executions; after every operation the registry entry and the
  concrete struct agree, and the shared page-table state is equal.

:func:`run_simulation` drives a scripted workload through both sides
and checks the simulation relation after every step.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.ccal.spec import Spec
from repro.ccal.zmap import ZMap
from repro.errors import RefinementFailure, SpecPreconditionError
from repro.mir.value import PathPtr, RDataPtr, mk_tuple, mk_u64, unit

ADDR_SPACE_LAYER = "AddrSpace"


def extend_with_registry(state):
    """Add the high side's addrspace registry to an abstract state."""
    return state.with_field("addrspaces", ZMap(default=None),
                            owner=ADDR_SPACE_LAYER)


# ---------------------------------------------------------------------------
# The high (RData) specifications
# ---------------------------------------------------------------------------


def high_specs(model) -> Dict[str, Spec]:
    """AddrSpace specs whose handles are opaque RData pointers."""
    from repro.verification.code_proofs import low_spec_for
    alloc = low_spec_for(model, "alloc_frame")
    map_page = low_spec_for(model, "map_page")
    unmap_page = low_spec_for(model, "unmap_page")
    query = low_spec_for(model, "query")

    def _root_of(state, handle):
        if not isinstance(handle, RDataPtr) \
                or handle.owner_layer != ADDR_SPACE_LAYER:
            raise SpecPreconditionError(
                f"expected an AddrSpace handle, got {handle!r}")
        root = state.get("addrspaces").get(handle.indices[0])
        if root is None:
            raise SpecPreconditionError(
                f"dangling AddrSpace handle {handle}")
        return root

    def as_new_spec(args, state):
        frame, state = alloc((), state)
        registry = state.get("addrspaces")
        index = len(registry)
        state = state.set("addrspaces",
                          registry.set(index, frame.value))
        return RDataPtr(ADDR_SPACE_LAYER, "as", (index,)), state

    def as_root_spec(args, state):
        return mk_u64(_root_of(state, args[0])), state

    def as_map_spec(args, state):
        root = _root_of(state, args[0])
        return map_page((mk_u64(root),) + tuple(args[1:]), state)

    def as_unmap_spec(args, state):
        root = _root_of(state, args[0])
        return unmap_page((mk_u64(root),) + tuple(args[1:]), state)

    def as_query_spec(args, state):
        root = _root_of(state, args[0])
        return query((mk_u64(root),) + tuple(args[1:]), state)

    return {
        "as_new": Spec("as_new", as_new_spec, layer=ADDR_SPACE_LAYER,
                       ptr_kind="rdata"),
        "as_root": Spec("as_root", as_root_spec,
                        layer=ADDR_SPACE_LAYER),
        "as_map": Spec("as_map", as_map_spec, layer=ADDR_SPACE_LAYER),
        "as_unmap": Spec("as_unmap", as_unmap_spec,
                         layer=ADDR_SPACE_LAYER),
        "as_query": Spec("as_query", as_query_spec,
                         layer=ADDR_SPACE_LAYER),
    }


# ---------------------------------------------------------------------------
# The simulation driver
# ---------------------------------------------------------------------------


@dataclass
class SimulationRun:
    """Outcome of a paired high/low execution."""

    steps: int = 0
    handles: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self):
        return not self.failures


def run_simulation(model, script) -> SimulationRun:
    """Drive ``script`` through both semantics in lockstep.

    Script entries:

    * ``("new", tag)`` — create an address space, remember it as ``tag``
    * ``("map", tag, va, pa, flags)``
    * ``("unmap", tag, va)``
    * ``("query", tag, va)`` — return values must agree

    The simulation relation, checked after every step: the shared
    page-table fields (``pt_words``, ``pt_bitmap``, ``epcm``) are equal
    on both sides, and for every tag the registry root (high) equals the
    struct's root field behind the concrete pointer (low).
    """
    specs = high_specs(model)
    high_state = extend_with_registry(model.initial_absstate())
    low = model.make_interpreter()  # concrete memory model
    run = SimulationRun()
    handle_of: Dict[str, RDataPtr] = {}
    pointer_of: Dict[str, PathPtr] = {}

    def related():
        # shared state fields agree
        for name in ("pt_words", "pt_bitmap", "epcm"):
            if high_state.get(name) != low.absstate.get(name):
                return f"abstract field {name} diverged"
        # per-handle correspondence
        registry = high_state.get("addrspaces")
        for tag, handle in handle_of.items():
            high_root = registry.get(handle.indices[0])
            low_struct = low.memory.read(pointer_of[tag].path)
            if high_root != low_struct.field(0).value:
                return (f"{tag}: registry root {high_root} != concrete "
                        f"struct root {low_struct.field(0).value}")
        return None

    for step in script:
        run.steps += 1
        op, tag = step[0], step[1]
        if op == "new":
            handle, high_state = specs["as_new"]((), high_state)
            handle_of[tag] = handle
            pointer_of[tag] = low.call("as_new").value
            run.handles += 1
        elif op == "map":
            _va, _pa, _flags = step[2], step[3], step[4]
            args = (mk_u64(_va), mk_u64(_pa), mk_u64(_flags))
            try:
                _ret, high_state = specs["as_map"](
                    (handle_of[tag],) + args, high_state)
            except SpecPreconditionError:
                continue  # outside the spec's domain: skip the pair
            low.call("as_map", (pointer_of[tag],) + args)
        elif op == "unmap":
            args = (mk_u64(step[2]),)
            try:
                _ret, high_state = specs["as_unmap"](
                    (handle_of[tag],) + args, high_state)
            except SpecPreconditionError:
                continue
            low.call("as_unmap", (pointer_of[tag],) + args)
        elif op == "query":
            args = (mk_u64(step[2]),)
            high_ret, high_state = specs["as_query"](
                (handle_of[tag],) + args, high_state)
            low_ret = low.call("as_query",
                               (pointer_of[tag],) + args).value
            if high_ret != low_ret:
                run.failures.append(
                    f"step {run.steps}: query returns diverge "
                    f"({high_ret} vs {low_ret})")
        else:
            raise ValueError(f"unknown script op {op!r}")
        divergence = related()
        if divergence is not None:
            run.failures.append(f"step {run.steps}: {divergence}")
    return run
