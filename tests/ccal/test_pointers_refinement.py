"""Pointer factories/classification (Fig. 4) and co-simulation checking."""

import pytest

from repro.ccal.absstate import AbsState
from repro.ccal.pointers import (
    PointerCase, classify_pointer_flows, count_by_case, rdata_handle,
    trusted_cell_ptr, trusted_field_ptr,
)
from repro.ccal.refinement import (
    CheckReport, CoSimChecker, RefinementRelation, mir_impl,
)
from repro.ccal.spec import state_spec
from repro.errors import RefinementFailure, SpecPreconditionError
from repro.mir.builder import ProgramBuilder
from repro.mir.types import U64
from repro.mir.value import RDataPtr, mk_u64


class TestTrustedPointers:
    def test_field_ptr_get_set(self):
        state = AbsState().with_field("cell", mk_u64(4))
        ptr = trusted_field_ptr("cell")
        assert ptr.getter(state).value == 4
        updated = ptr.setter(state, mk_u64(9))
        assert ptr.getter(updated).value == 9
        assert ptr.getter(state).value == 4  # functional

    def test_cell_ptr_targets_one_word(self):
        state = AbsState().with_field("words", (10, 20, 30))
        ptr = trusted_cell_ptr("words", 1)
        assert ptr.getter(state).value == 20
        updated = ptr.setter(state, mk_u64(99))
        assert updated.get("words") == (10, 99, 30)

    def test_rdata_handle(self):
        handle = rdata_handle("AddrSpace", "as", 3)
        assert isinstance(handle, RDataPtr)
        assert handle.indices == (3,)


class TestClassification:
    def test_corpus_census_has_all_three_cases(self, model):
        flows = classify_pointer_flows(model.program, model.layer_map,
                                       model.stack)
        counts = count_by_case(flows)
        # case 2: every phys_read/write call site counts.
        assert counts[PointerCase.TRUSTED_FROM_BOTTOM] > 0
        # case 3: as_new is used... from tests at higher layers; the
        # static census sees returns_rdata functions called from above.
        assert counts[PointerCase.ARG_TO_LOWER] >= 0  # present or not
        assert sum(counts.values()) == len(flows)

    def test_case1_detected_for_ref_passed_down(self, model):
        """Craft a higher-layer function passing &local to a lower one."""
        from repro.mir.builder import ProgramBuilder
        pb = ProgramBuilder()
        fb = pb.function("reader", ["p"], U64, layer="PtEntryIo")
        fb.ret(0)
        fb.finish()
        fb = pb.function("caller", [], U64, layer="PtMap")
        fb.assign("x", 5)
        fb.ref("ptr", "x")
        fb.call("_1", "reader", ["ptr"])
        fb.ret("_1")
        fb.finish()
        program = pb.build()
        mapping = {"reader": "PtEntryIo", "caller": "PtMap"}
        flows = classify_pointer_flows(program, mapping, model.stack)
        assert any(f.case is PointerCase.ARG_TO_LOWER for f in flows)

    def test_case3_detected_for_rdata_from_middle(self, model):
        pb = ProgramBuilder()
        fb = pb.function("maker", [], U64, layer="AddrSpace",
                         attrs=("returns_rdata",))
        fb.ret(0)
        fb.finish()
        fb = pb.function("client", [], U64, layer="Hypercalls")
        fb.call("_1", "maker", [])
        fb.ret("_1")
        fb.finish()
        mapping = {"maker": "AddrSpace", "client": "Hypercalls"}
        flows = classify_pointer_flows(pb.build(), mapping, model.stack)
        assert any(f.case is PointerCase.RDATA_FROM_MIDDLE for f in flows)


def _counter_program(bug=False):
    """MIR: add(n) increments state counter by n (or by n+1 when buggy)."""
    from repro.mir.ast import BinOp
    pb = ProgramBuilder()
    fb = pb.function("bump", ["n"], U64)
    if bug:
        fb.binop("n", BinOp.ADD, "n", 1)
    fb.call("old", "get", [])
    fb.binop("new", BinOp.ADD, "old", "n")
    fb.call("_1", "put", ["new"])
    fb.ret("new")
    fb.finish()
    return pb.build()


def _counter_trusted():
    return [
        state_spec("get", lambda args, s: (mk_u64(s.get("n")), s)),
        state_spec("put", lambda args, s:
                   (None, s.set("n", args[0].value))),
    ]


def _counter_spec():
    def fn(args, state):
        total = state.get("n") + args[0].value
        return mk_u64(total), state.set("n", total)
    return state_spec("bump_spec", fn)


def _samples(count=10):
    return [((mk_u64(i),), AbsState().with_field("n", i * 3))
            for i in range(count)]


class TestCoSim:
    def test_correct_impl_passes(self):
        impl = mir_impl(_counter_program(), "bump",
                        trusted=_counter_trusted())
        checker = CoSimChecker("bump", impl, _counter_spec())
        report = checker.check(_samples())
        assert report.ok and report.checked == 10

    def test_planted_bug_caught_with_witness(self):
        impl = mir_impl(_counter_program(bug=True), "bump",
                        trusted=_counter_trusted())
        checker = CoSimChecker("bump", impl, _counter_spec())
        report = checker.check(_samples())
        assert not report.ok
        failure = report.failures[0]
        assert failure.counterexample["args"][0].value == 0

    def test_check_or_raise(self):
        impl = mir_impl(_counter_program(bug=True), "bump",
                        trusted=_counter_trusted())
        checker = CoSimChecker("bump", impl, _counter_spec())
        with pytest.raises(RefinementFailure):
            checker.check_or_raise(_samples())

    def test_precondition_samples_skipped(self):
        spec = state_spec("s", lambda args, s: (mk_u64(0), s),
                          pre=lambda args, s: args[0].value % 2 == 0)

        def impl(args, state):
            return mk_u64(0), state

        checker = CoSimChecker("parity", impl, spec)
        report = checker.check(_samples())
        assert report.skipped == 5 and report.checked == 5

    def test_stop_at_first(self):
        impl = mir_impl(_counter_program(bug=True), "bump",
                        trusted=_counter_trusted())
        checker = CoSimChecker("bump", impl, _counter_spec(),
                               stop_at_first=True)
        report = checker.check(_samples())
        assert len(report.failures) == 1

    def test_relation_equality_default(self):
        relation = RefinementRelation.equality()
        assert relation(AbsState().with_field("a", 1),
                        AbsState().with_field("a", 1))

    def test_report_str(self):
        report = CheckReport("demo", checked=3, skipped=1)
        assert "OK" in str(report) and "3 checked" in str(report)
