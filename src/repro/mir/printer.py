"""Pretty-printer for the textual mirlight format.

The format imitates rustc's ``--emit mir`` dumps closely enough that a
reader familiar with real MIR can follow it, while remaining fully
round-trippable through :mod:`repro.mir.parser` — the property the paper
leans on for confidence ("we are verifying the same MIR code that the
Rust compiler is operating on", Sec. 3.3), reproduced here as a
print→parse→print fixpoint checked by tests.
"""

from repro.mir import ast
from repro.mir.value import (
    Aggregate,
    BoolValue,
    CharValue,
    FnValue,
    IntValue,
    StrValue,
    UnitValue,
)


def print_program(program):
    """Render a whole Program, globals first, functions sorted by name."""
    parts = []
    for name in sorted(program.globals_):
        parts.append(f"static {name} = {_const(program.globals_[name])};")
    if parts:
        parts.append("")
    for name in sorted(program.functions):
        parts.append(print_function(program.functions[name]))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"


def print_function(function):
    """Render one function in the textual mirlight format."""
    header = f"fn {function.name}({', '.join(function.params)})"
    header += f" -> {function.ret_ty}"
    if function.layer is not None:
        header += f" @layer({function.layer})"
    if function.attrs:
        header += f" @attrs({','.join(function.attrs)})"
    lines = [header + " {"]
    for var in sorted(function.var_tys):
        lines.append(f"    let {var}: {function.var_tys[var]};")
    labels = _block_order(function)
    for label in labels:
        block = function.blocks[label]
        lines.append(f"    {label}: {{")
        for stmt in block.statements:
            lines.append(f"        {_statement(stmt)}")
        lines.append(f"        {_terminator(block.terminator)}")
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _block_order(function):
    """Entry first, then remaining blocks in numeric-ish label order."""
    def key(label):
        digits = "".join(c for c in label if c.isdigit())
        return (0 if label == function.entry else 1,
                int(digits) if digits else 0, label)
    return sorted(function.blocks, key=key)


# -- statements ---------------------------------------------------------------


def _statement(stmt):
    if isinstance(stmt, ast.Assign):
        return f"{_place(stmt.place)} = {_rvalue(stmt.rvalue)};"
    if isinstance(stmt, ast.SetDiscriminant):
        return f"discriminant({_place(stmt.place)}) = {stmt.variant};"
    if isinstance(stmt, ast.StorageLive):
        return f"StorageLive({stmt.var});"
    if isinstance(stmt, ast.StorageDead):
        return f"StorageDead({stmt.var});"
    if isinstance(stmt, ast.Nop):
        return "nop;"
    raise ValueError(f"unknown statement {stmt!r}")


def _terminator(term):
    if isinstance(term, ast.Goto):
        return f"goto -> {term.target};"
    if isinstance(term, ast.SwitchInt):
        arms = [f"{v} -> {lbl}" for v, lbl in term.targets]
        arms.append(f"otherwise -> {term.otherwise}")
        return f"switchInt({_operand(term.operand)}) [{', '.join(arms)}];"
    if isinstance(term, ast.Return):
        return "return;"
    if isinstance(term, ast.Call):
        args = ", ".join(_operand(a) for a in term.args)
        return (f"{_place(term.dest)} = {_operand(term.func)}({args}) "
                f"-> {term.target};")
    if isinstance(term, ast.Drop):
        return f"drop({_place(term.place)}) -> {term.target};"
    if isinstance(term, ast.Assert):
        expected = "true" if term.expected else "false"
        return (f'assert({_operand(term.cond)} == {expected}, '
                f'"{term.msg}") -> {term.target};')
    raise ValueError(f"unknown terminator {term!r}")


# -- places, operands, rvalues ---------------------------------------------------


def _place(place):
    text = place.var
    for proj in place.projections:
        if isinstance(proj, ast.Deref):
            text = f"(*{text})"
        elif isinstance(proj, ast.FieldProj):
            text = f"{text}.{proj.index}"
        elif isinstance(proj, ast.IndexProj):
            text = f"{text}[{proj.var}]"
        elif isinstance(proj, ast.ConstantIndex):
            text = f"{text}[{proj.index}c]"
        elif isinstance(proj, ast.Downcast):
            text = f"({text} as v{proj.variant})"
        else:
            raise ValueError(f"unknown projection {proj!r}")
    return text


def _operand(operand):
    if isinstance(operand, ast.Copy):
        return f"copy {_place(operand.place)}"
    if isinstance(operand, ast.Move):
        return f"move {_place(operand.place)}"
    if isinstance(operand, ast.Constant):
        return f"const {_const(operand.value)}"
    raise ValueError(f"unknown operand {operand!r}")


def _const(value):
    if isinstance(value, IntValue):
        return f"{value.value}_{value.ty}"
    if isinstance(value, BoolValue):
        return "true" if value.value else "false"
    if isinstance(value, UnitValue):
        return "()"
    if isinstance(value, StrValue):
        return '"' + value.value.replace("\\", "\\\\").replace('"', '\\"') + '"'
    if isinstance(value, CharValue):
        return f"'{value.value}'"
    if isinstance(value, FnValue):
        return f"fn {value.name}"
    if isinstance(value, Aggregate):
        inner = ", ".join(_const(f) for f in value.fields)
        return f"#{value.discriminant}({inner})"
    raise ValueError(f"unprintable constant {value!r}")


def _rvalue(rvalue):
    if isinstance(rvalue, ast.Use):
        return _operand(rvalue.operand)
    if isinstance(rvalue, ast.Ref):
        mut = "mut " if rvalue.mutable else ""
        return f"&{mut}{_place(rvalue.place)}"
    if isinstance(rvalue, ast.AddressOf):
        mut = "mut" if rvalue.mutable else "const"
        return f"&raw {mut} {_place(rvalue.place)}"
    if isinstance(rvalue, ast.BinaryOp):
        return (f"{_operand(rvalue.left)} {rvalue.op.value} "
                f"{_operand(rvalue.right)}")
    if isinstance(rvalue, ast.CheckedBinaryOp):
        return (f"Checked({_operand(rvalue.left)} {rvalue.op.value} "
                f"{_operand(rvalue.right)})")
    if isinstance(rvalue, ast.UnaryOp):
        return f"{rvalue.op.value}{_operand(rvalue.operand)}"
    if isinstance(rvalue, ast.Cast):
        return f"{_operand(rvalue.operand)} as {rvalue.ty} ({rvalue.kind.value})"
    if isinstance(rvalue, ast.AggregateRv):
        inner = ", ".join(_operand(o) for o in rvalue.operands)
        if rvalue.kind is ast.AggregateKind.VARIANT:
            return f"variant#{rvalue.variant}({inner})"
        return f"{rvalue.kind.value}({inner})"
    if isinstance(rvalue, ast.Repeat):
        return f"[{_operand(rvalue.operand)}; {rvalue.count}]"
    if isinstance(rvalue, ast.Len):
        return f"Len({_place(rvalue.place)})"
    if isinstance(rvalue, ast.Discriminant):
        return f"discriminant({_place(rvalue.place)})"
    if isinstance(rvalue, ast.CopyForDeref):
        return f"deref_copy {_place(rvalue.place)}"
    if isinstance(rvalue, ast.NullaryOp):
        return f"{rvalue.op.value}({rvalue.ty})"
    raise ValueError(f"unknown rvalue {rvalue!r}")
