"""Unit and property tests for the object-view memory."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MirRuntimeError, MirTypeError
from repro.mir.memory import ObjectMemory
from repro.mir.path import Path
from repro.mir.value import mk_tuple, mk_u64


def fresh(value=None):
    memory = ObjectMemory()
    memory.allocate(Path.global_("obj").base,
                    value if value is not None else
                    mk_tuple(mk_tuple(mk_u64(1), mk_u64(2)), mk_u64(3)))
    return memory


class TestAllocation:
    def test_read_back(self):
        memory = fresh(mk_u64(42))
        assert memory.read(Path.global_("obj")).value == 42

    def test_double_allocate_rejected(self):
        memory = fresh()
        with pytest.raises(MirRuntimeError):
            memory.allocate(Path.global_("obj").base, mk_u64(1))

    def test_read_unallocated_rejected(self):
        with pytest.raises(MirRuntimeError):
            ObjectMemory().read(Path.global_("nope"))

    def test_non_value_rejected(self):
        with pytest.raises(MirTypeError):
            ObjectMemory().allocate(Path.global_("x").base, 42)


class TestProjectedAccess:
    def test_nested_read(self):
        memory = fresh()
        assert memory.read(Path.global_("obj").field(0).field(1)).value == 2

    def test_nested_write(self):
        memory = fresh()
        memory.write(Path.global_("obj").field(0).field(0), mk_u64(9))
        assert memory.read(Path.global_("obj").field(0).field(0)).value == 9

    def test_write_changes_only_assigned_location(self):
        """The paper's axiom, structurally: the spine is rebuilt, every
        off-spine location is untouched."""
        memory = fresh()
        memory.write(Path.global_("obj").field(0).field(0), mk_u64(9))
        assert memory.read(Path.global_("obj").field(0).field(1)).value == 2
        assert memory.read(Path.global_("obj").field(1)).value == 3

    def test_projection_through_scalar_rejected(self):
        memory = fresh(mk_u64(1))
        with pytest.raises(MirTypeError):
            memory.read(Path.global_("obj").field(0))

    @given(st.integers(0, 2), st.integers(0, 2), st.integers(0, 1000))
    def test_disjoint_paths_never_interfere(self, i, j, raw):
        grid = mk_tuple(*[mk_tuple(*[mk_u64(r * 3 + c) for c in range(3)])
                          for r in range(3)])
        memory = ObjectMemory()
        memory.allocate(Path.global_("g").base, grid)
        memory.write(Path.global_("g").field(i).field(j), mk_u64(raw))
        for r in range(3):
            for c in range(3):
                expected = raw if (r, c) == (i, j) else r * 3 + c
                got = memory.read(Path.global_("g").field(r).field(c))
                assert got.value == expected


class TestSnapshotsAndCounters:
    def test_snapshot_is_independent(self):
        memory = fresh()
        snap = memory.snapshot()
        memory.write(Path.global_("obj").field(1), mk_u64(99))
        assert snap.read(Path.global_("obj").field(1)).value == 3
        assert memory != snap

    def test_equal_contents_compare_equal(self):
        assert fresh() == fresh()

    def test_write_count(self):
        memory = fresh()
        before = memory.write_count
        memory.write(Path.global_("obj").field(1), mk_u64(4))
        assert memory.write_count == before + 1

    def test_write_or_allocate_on_fresh_base(self):
        memory = ObjectMemory()
        memory.write_or_allocate(Path.global_("new"), mk_u64(7))
        assert memory.read(Path.global_("new")).value == 7

    def test_drop_base_then_read_fails(self):
        memory = fresh()
        memory.drop_base(Path.global_("obj").base)
        with pytest.raises(MirRuntimeError):
            memory.read(Path.global_("obj"))
