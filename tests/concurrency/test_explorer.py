"""Bounded-preemption exploration over the real scheduler."""

from repro.concurrency import (
    DeterministicScheduler,
    Schedule,
    explore,
    replay,
    scheduler as conc,
)


def stepping_workloads(log, steps=2):
    def task(vid):
        def run():
            for n in range(steps):
                conc.yield_point("step", f"vcpu{vid}-{n}")
                log.append((vid, n))
        return run
    return [task(0), task(1)]


def stepping_run(schedule):
    return DeterministicScheduler(object(), stepping_workloads([]),
                                  schedule).run()


def racy_run(schedule):
    """A genuine order bug: vCPU 1 requires vCPU 0's first step."""
    state = {"published": False}

    def t0():
        conc.yield_point("step", "publish")
        state["published"] = True
        conc.yield_point("step", "rest")

    def t1():
        conc.yield_point("step", "consume")
        if not state["published"]:
            raise RuntimeError("consumed before publish")

    return DeterministicScheduler(object(), [t0, t1], schedule).run()


class TestExploration:
    def test_root_plus_preempted_children(self):
        result = explore(stepping_run, preemption_bound=1)
        assert result.schedules_run > 1
        assert not result.truncated
        roots = [s for s, _r in result.runs if not s.preemptions]
        assert len(roots) == 1

    def test_children_honor_their_preemptions(self):
        result = explore(stepping_run, preemption_bound=2)
        for schedule, run in result.runs:
            assert len(schedule.preemptions) <= 2
            for index, vid in schedule.preemptions:
                assert run.trace[index] == vid

    def test_deduplication_never_replays_a_trace(self):
        result = explore(stepping_run, preemption_bound=2)
        traces = [run.trace for _s, run in result.runs]
        assert len(traces) == len(set(traces))

    def test_max_schedules_truncates(self):
        result = explore(stepping_run, preemption_bound=2, max_schedules=2)
        assert result.schedules_run == 2
        assert result.truncated
        assert "truncated" in result.summary()

    def test_higher_bound_explores_at_least_as_much(self):
        shallow = explore(stepping_run, preemption_bound=1)
        deep = explore(stepping_run, preemption_bound=2)
        assert deep.schedules_run >= shallow.schedules_run


class TestFindings:
    def test_explorer_catches_the_order_bug(self):
        result = explore(racy_run, preemption_bound=1)
        assert not result.ok
        kinds = result.by_kind()
        assert set(kinds) == {"vcpu-error"}
        assert "consumed before publish" in kinds["vcpu-error"][0].detail

    def test_root_schedule_alone_misses_it(self):
        assert racy_run(Schedule()).ok

    def test_violation_replays_standalone(self):
        result = explore(racy_run, preemption_bound=1)
        violation = result.violations[0]
        rerun = replay(racy_run, violation.schedule)
        assert not rerun.ok
        assert isinstance(rerun.task_errors[1], RuntimeError)

    def test_violation_string_carries_the_replay_schedule(self):
        result = explore(racy_run, preemption_bound=1)
        text = str(result.violations[0])
        assert "replay:" in text and "seed=" in text

    def test_check_callback_findings_become_violations(self):
        def check(_schedule, run):
            return [("synthetic", f"trace length {len(run.trace)}")]

        result = explore(stepping_run, preemption_bound=0, check=check)
        assert result.schedules_run == 1
        assert result.by_kind()["synthetic"][0].schedule == Schedule()
