#!/usr/bin/env python3
"""Multi-vCPU concurrency tour: explore interleavings, catch the races.

Walks the concurrency plane end to end:

1. run the two-vCPU workload (management core trims an enclave page
   while the application core races a session through it) on one
   deterministic schedule and show its decision trace,
2. sweep every interleaving up to two preemptions on the real monitor —
   lock discipline, stale-translation probe, invariant families,
   per-vCPU consistency, two-world noninterference: all green,
3. the same sweep convicts ``MissingLockMonitor`` (writes without its
   locks) and ``NoShootdownMonitor`` (trims without IPIs) — and every
   witness carries a ``(seed, schedule)`` that replays it standalone,
4. kill a vCPU at every yield point inside a critical section — the
   dying core's transaction rolls back, its locks release, the
   survivor finishes, invariants hold.

Run:  python examples/interleaving_campaign.py
"""

from repro.concurrency import Schedule, replay
from repro.faults import (
    crash_in_critical_section_campaign,
    interleaving_campaign,
    make_interleaved_run,
)
from repro.hyperenclave.buggy import MissingLockMonitor, NoShootdownMonitor


def main():
    # ---- 1. one deterministic schedule, inspected ---------------------
    run_world = make_interleaved_run()
    _state, result = run_world(41, Schedule())
    kinds = {}
    for decision in result.decisions:
        kinds[decision.chosen_kind] = kinds.get(decision.chosen_kind, 0) + 1
    print(f"root schedule: {len(result.decisions)} scheduling decisions, "
          f"{len(result.yields)} yield points")
    print("  decision kinds: " + ", ".join(
        f"{kind} x{count}" for kind, count in sorted(kinds.items())))
    print(f"  yields taken while holding locks: "
          f"{len(result.critical_yields())}\n")

    # ---- 2. the full sweep on the real monitor ------------------------
    rust = interleaving_campaign(check_ni=True)
    print(f"RustMonitor sweep (invariants + vCPU consistency + "
          f"noninterference per schedule):\n  {rust.summary()}\n")
    assert rust.ok

    # ---- 3. the sweep convicts the planted races ----------------------
    missing = interleaving_campaign(MissingLockMonitor, check_ni=False)
    print(f"MissingLockMonitor: {missing.summary()}")
    assert "lock-protocol" in missing.by_kind()

    noshoot = interleaving_campaign(NoShootdownMonitor, check_ni=False)
    print(f"NoShootdownMonitor: {noshoot.summary()}")
    witness = noshoot.by_kind()["stale-translation"][0]
    print(f"  first witness: {witness}")

    # ...and the witness replays standalone from its schedule alone.
    buggy_world = make_interleaved_run(NoShootdownMonitor)
    rerun = replay(lambda schedule: buggy_world(41, schedule)[1],
                   witness.schedule)
    assert rerun.stale_translations
    print("  replayed standalone from its (seed, schedule): "
          f"{len(rerun.stale_translations)} stale translations again\n")

    # ---- 4. crash a vCPU inside every critical section ----------------
    crash = crash_in_critical_section_campaign()
    print(crash.render())
    assert crash.ok
    print("\nevery mid-critical-section crash rolled back, released "
          "its locks, and left all invariants intact")


if __name__ == "__main__":
    main()
