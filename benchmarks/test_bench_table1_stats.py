"""Table 1 — code and proof statistics, paper vs this reproduction.

The paper's lines are Coq/Rust; ours are Python/mirlight playing the
same roles (see DESIGN.md component map).  Person-years obviously cannot
be re-measured; the paper's split is reported alongside the measured
line counts.  The benchmark times the full accounting scan.
"""

from repro.analysis import (
    PAPER_RATIOS, PAPER_TABLE1, corpus_mirlight_loc, measure_components,
)
from repro.reporting import render_table


def test_bench_table1(benchmark, model, emit):
    def account():
        return measure_components(), corpus_mirlight_loc(model)

    measured, mirlight = benchmark(account)

    rows = []
    rows.append(["— paper (Coq/Rust) —", "", ""])
    for component, lines, effort in PAPER_TABLE1:
        rows.append([component, lines,
                     f"{effort}py" if effort else ""])
    rows.append(["— this reproduction (Python/mirlight) —", "", ""])
    for component, count in measured.items():
        rows.append([component, count.code, ""])
    rows.append(["mirlight corpus (printed, code lines)",
                 mirlight.code, ""])
    emit("table1_proof_effort",
         render_table(["Component", "Lines", "Effort"], rows,
                      title="Table 1 — code and proof statistics"))

    # Shape assertions: every component exists and is non-trivial, and
    # the corpus matches the paper's 49-functions scale.
    assert len(measured) >= 7
    assert all(count.code > 100 for count in measured.values())
    assert mirlight.code > 500
    assert PAPER_RATIOS["verified_functions"] == \
        len(model.program.functions) == 49
