"""Unit and property tests for the value domain."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MirTypeError
from repro.mir.types import I8, U8, U64
from repro.mir.value import (
    Aggregate, BoolValue, IntValue, PathPtr, RDataPtr, StrValue,
    TrustedPtr, UnitValue, is_none, is_some, mk_array, mk_bool, mk_err,
    mk_int, mk_none, mk_ok, mk_some, mk_struct, mk_tuple, mk_u64, unit,
)
from repro.mir.path import Path


class TestIntValue:
    def test_out_of_range_rejected(self):
        with pytest.raises(MirTypeError):
            IntValue(256, U8)
        with pytest.raises(MirTypeError):
            IntValue(-1, U8)

    def test_mk_int_wraps(self):
        assert mk_int(256, U8).value == 0
        assert mk_int(-1, U8).value == 255

    def test_as_unsigned_of_negative(self):
        assert mk_int(-1, I8).as_unsigned == 255

    @given(st.integers())
    def test_mk_int_always_valid(self, raw):
        value = mk_int(raw, U8)
        assert 0 <= value.value <= 255

    def test_expect_int(self):
        assert mk_u64(3).expect_int().value == 3
        with pytest.raises(MirTypeError):
            mk_bool(True).expect_int()


class TestAggregate:
    def test_field_access(self):
        agg = mk_tuple(mk_u64(1), mk_u64(2))
        assert agg.field(0).value == 1
        assert agg.field(1).value == 2

    def test_field_out_of_range(self):
        with pytest.raises(MirTypeError):
            mk_tuple(mk_u64(1)).field(1)

    def test_with_field_is_functional(self):
        original = mk_tuple(mk_u64(1), mk_u64(2))
        updated = original.with_field(0, mk_u64(9))
        assert original.field(0).value == 1
        assert updated.field(0).value == 9
        assert updated.field(1) is original.field(1)

    def test_with_discriminant(self):
        assert mk_struct(unit()).with_discriminant(3).discriminant == 3

    def test_nested_immutability(self):
        inner = mk_tuple(mk_u64(5))
        outer = mk_tuple(inner, mk_u64(7))
        changed = outer.with_field(0, inner.with_field(0, mk_u64(6)))
        assert outer.field(0).field(0).value == 5
        assert changed.field(0).field(0).value == 6

    @given(st.integers(0, 3), st.integers(0, 100))
    def test_with_field_roundtrip(self, index, raw):
        agg = mk_tuple(*[mk_u64(i) for i in range(4)])
        updated = agg.with_field(index, mk_u64(raw))
        assert updated.field(index).value == raw
        for other in range(4):
            if other != index:
                assert updated.field(other) == agg.field(other)


class TestOptionResult:
    def test_option_discriminants_match_rustc(self):
        assert mk_none().discriminant == 0
        assert mk_some(mk_u64(1)).discriminant == 1
        assert is_none(mk_none())
        assert is_some(mk_some(unit()))

    def test_result(self):
        assert mk_ok(mk_u64(1)).discriminant == 0
        assert mk_err(mk_u64(1)).discriminant == 1


class TestPointers:
    def test_path_ptr_str(self):
        assert str(PathPtr(Path.global_("x"))) == "&x"

    def test_rdata_ptr_is_opaque_payload(self):
        ptr = RDataPtr("AddrSpace", "as", (1, 2))
        assert ptr.indices == (1, 2)
        assert "AddrSpace" in str(ptr)

    def test_trusted_ptr_compares_by_origin(self):
        a = TrustedPtr("o", getter=lambda s: s, setter=lambda s, v: s)
        b = TrustedPtr("o", getter=lambda s: None, setter=lambda s, v: None)
        assert a == b  # functions excluded from comparison

    def test_unit_singleton(self):
        assert unit() is unit()
        assert unit() == UnitValue()


class TestExpectHelpers:
    def test_expect_aggregate(self):
        with pytest.raises(MirTypeError):
            mk_u64(1).expect_aggregate()
        assert mk_tuple().expect_aggregate() == mk_tuple()

    def test_expect_bool(self):
        assert mk_bool(True).expect_bool().value is True
        with pytest.raises(MirTypeError):
            mk_u64(1).expect_bool()
