"""The durable campaign orchestrator: checkpoint, crash, resume, warm.

The run loop mirrors the paper's transactional hypercalls: state
advances in atomic steps (one explored wavefront), each step commits
via an atomic checkpoint, and a crash at *any* instant — between
steps, mid-wave, mid-checkpoint-write — leaves the store at the last
committed step.  ``python -m repro resume <store>`` then continues
from that step, and because the wavefront bookkeeping is the very
:class:`~repro.concurrency.explorer.FrontierState` the in-memory
explorer runs on, the resumed campaign's
:class:`~repro.concurrency.explorer.ExplorationResult` is
repr-identical to an uninterrupted run (property-tested by killing at
randomized checkpoints in ``tests/service/``).

Cross-run warm reuse rides the same store: worker memo misses are
journalled, shipped back with each shard, and appended to the
:class:`~repro.service.store.MemoStore`; the next campaign preloads
them into the parent's :class:`~repro.engine.memo.CheckMemo` *before*
forking workers, so every worker inherits the warm tables and repeat
campaigns become mostly cache hits (measured in
``BENCH_checking.json``).  :func:`warm_pure_check_grid` does the same
for whole hardened pure-check verdicts, keyed by
:func:`~repro.verification.harness.pure_check_key`.

Chaos hooks: ``REPRO_CHAOS_KILL_AFTER=<n>`` (or the
``chaos_kill_after`` argument) SIGKILLs the process right after the
n-th checkpoint commits — the crash-safety tests and the CI chaos job
drive the orchestrator through real ``kill -9`` with it.
"""

import copy
import os
import signal
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.concurrency.snapshot import locality_key, prefix_cache_enabled
from repro.engine.memo import merge_stats
from repro.errors import CorruptArtifact, ShardQuarantined
from repro.obs import trace as _trace
from repro.obs.metrics import REGISTRY
from repro.service.checkpoint import CampaignCheckpoint, spec_digest
from repro.service.store import MemoStore
from repro.service.supervisor import ResilientExecutor

CHECKPOINT_FILE = "checkpoint.bin"
MEMO_FILE = "memo.log"

#: Environment hook: SIGKILL self after this many checkpoint commits.
CHAOS_ENV = "REPRO_CHAOS_KILL_AFTER"


@dataclass(frozen=True)
class CampaignSpec:
    """What is being checked — the identity a checkpoint is keyed by."""

    kind: str = "interleaving"
    monitor: Optional[str] = None      # module:qualname, None = RustMonitor
    seed: int = 0
    preemption_bound: int = 2
    max_schedules: int = 600
    check_ni: bool = True
    observers: Optional[Tuple[int, ...]] = None

    def payload(self) -> Dict:
        return {"kind": self.kind, "monitor": self.monitor,
                "seed": self.seed,
                "preemption_bound": self.preemption_bound,
                "max_schedules": self.max_schedules,
                "check_ni": self.check_ni,
                "observers": list(self.observers)
                if self.observers is not None else None}

    @classmethod
    def from_payload(cls, payload: Dict) -> "CampaignSpec":
        """Rebuild a spec from a checkpoint's stored payload dict."""
        observers = payload.get("observers")
        return cls(kind=payload.get("kind", "interleaving"),
                   monitor=payload.get("monitor"),
                   seed=payload.get("seed", 0),
                   preemption_bound=payload.get("preemption_bound", 2),
                   max_schedules=payload.get("max_schedules", 600),
                   check_ni=payload.get("check_ni", True),
                   observers=tuple(observers)
                   if observers is not None else None)

    def digest(self) -> str:
        # payload() is the canonical form (observers as list-or-None),
        # and the checkpoint digests the same payload — the two must
        # agree or every resume would be a spec mismatch.
        return spec_digest(self.payload())


class CampaignStore:
    """One campaign's durable home: checkpoint file + memo log.

    Usable as a context manager: ``with CampaignStore(root) as store``
    releases the memo log's file handle on exit.  :meth:`close` is
    idempotent, and a closed store is not poisoned — the append log
    reopens lazily if the store is used again (closing releases OS
    resources; it does not retire the on-disk state).
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.checkpoint_path = os.path.join(root, CHECKPOINT_FILE)
        self.memo = MemoStore(os.path.join(root, MEMO_FILE))
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run since the last use."""
        return self._closed

    def has_checkpoint(self) -> bool:
        return os.path.exists(self.checkpoint_path)

    def load_checkpoint(self, expected_digest: Optional[str] = None,
                        strict: bool = False
                        ) -> Optional[CampaignCheckpoint]:
        """The stored checkpoint, or ``None`` for a cold start.

        A *corrupt* checkpoint is a warning plus cold start (strict
        off): refusing to run because last run's snapshot is damaged
        would turn one lost file into a lost service.  A checkpoint for
        a *different spec* always raises
        :class:`~repro.errors.CheckpointMismatch` — that is a caller
        error, not damage.
        """
        if not self.has_checkpoint():
            return None
        try:
            return CampaignCheckpoint.load(self.checkpoint_path,
                                           expected_digest)
        except CorruptArtifact as exc:
            if strict:
                raise
            warnings.warn(
                f"ignoring corrupt checkpoint and cold-starting: {exc}",
                RuntimeWarning, stacklevel=2)
            REGISTRY.inc("service.corrupt_checkpoints")
            return None

    def save_checkpoint(self, checkpoint: CampaignCheckpoint) -> str:
        """Atomically replace the checkpoint; metered and traced."""
        started = time.perf_counter()
        path = checkpoint.save(self.checkpoint_path)
        elapsed = time.perf_counter() - started
        REGISTRY.inc("service.checkpoints")
        REGISTRY.observe("service.checkpoint_seconds", elapsed)
        _trace.event("service.checkpoint", waves=checkpoint.waves,
                     done=checkpoint.done,
                     runs=len(getattr(checkpoint.state, "runs", ())),
                     seconds=round(elapsed, 6))
        return path

    def close(self):
        """Release the memo log's handle; safe to call repeatedly."""
        self.memo.close()
        self._closed = True

    def __enter__(self) -> "CampaignStore":
        self._closed = False
        return self

    def __exit__(self, *_exc):
        self.close()
        return False


def _coerce_store(store) -> CampaignStore:
    return store if isinstance(store, CampaignStore) else \
        CampaignStore(store)


def _chaos_threshold(chaos_kill_after: Optional[int]) -> Optional[int]:
    if chaos_kill_after is not None:
        return chaos_kill_after
    env = os.environ.get(CHAOS_ENV)
    return int(env) if env else None


def _maybe_chaos_kill(threshold: Optional[int], checkpoints_written: int,
                      pool=None):
    """The chaos hook: a real ``SIGKILL``, not an exception — nothing
    downstream of the commit gets a chance to clean up, exactly like a
    power cut.

    The pool's worker processes are killed first: they hold no durable
    state (the crash-safety property under test lives entirely in the
    store), but they do inherit the parent's stdio, and orphaned
    workers idling on an inherited pipe would wedge any harness that
    waits for the killed campaign's output to reach EOF.
    """
    if threshold is None or checkpoints_written < threshold:
        return
    if pool is not None:
        pool.terminate()
    os.kill(os.getpid(), signal.SIGKILL)


def _quarantine_output(schedule, error: ShardQuarantined):
    """A quarantined unit as an absorbable (result, findings) pair.

    The synthetic result has no decisions, so the explorer grows no
    children from it; the quarantine itself surfaces as a typed
    violation pinned to the schedule that was never checked.
    """
    from repro.concurrency.scheduler import RunResult
    empty = RunResult(schedule=schedule, decisions=(), yields=(),
                      trace=(), lock_violations=(),
                      stale_translations=(), task_errors={}, parked=())
    return empty, [("shard-quarantined", str(error))]


def _hash_cons_outputs(outputs, cache: dict) -> None:
    """Share value-equal scheduler events across a campaign's runs.

    Worker shards ship their results through separate pickles, so two
    runs that executed the same scheduling decision arrive holding
    equal-but-distinct ``Decision``/``YieldPoint`` objects.  Re-keying
    them through one campaign-lifetime cache lets every later
    checkpoint pickle emit each unique event once (pickle's memo table
    shares by identity, not value) — an order of magnitude off the
    per-wave checkpoint's size and serialisation time, while the
    result stays repr-identical by construction: the cache only ever
    substitutes an equal value.
    """
    for result, _findings in outputs:
        result.yields = tuple(cache.setdefault(y, y)
                              for y in result.yields)
        result.decisions = tuple(cache.setdefault(d, d)
                                 for d in result.decisions)


# ---------------------------------------------------------------------------
# The durable interleaving campaign
# ---------------------------------------------------------------------------


def run_durable_campaign(spec: CampaignSpec, store, *,
                         workers: Optional[int] = None,
                         executor: Optional[ResilientExecutor] = None,
                         chaos_kill_after: Optional[int] = None):
    """Run (or continue) a crash-safe interleaving campaign.

    Returns the campaign's
    :class:`~repro.concurrency.explorer.ExplorationResult`; every
    explored wavefront commits an atomic checkpoint plus the wave's
    memo-journal entries before the next wave starts, so a ``kill -9``
    at any instant loses at most one in-flight wave — which the next
    :func:`resume_campaign` re-runs to the identical verdict.

    ``executor`` (a pre-built :class:`ResilientExecutor`) is only
    honoured for pool reuse across campaigns *sharing a store* — a
    pool forked before this store's memo preload would run cold.
    """
    if spec.kind != "interleaving":
        raise ValueError(f"unknown campaign kind {spec.kind!r} "
                         f"(supported: 'interleaving')")
    from repro.concurrency.explorer import FrontierState
    from repro.engine import workers as worker_module
    from repro.hyperenclave.monitor import HOST_ID

    owns_store = not isinstance(store, CampaignStore)
    store = _coerce_store(store)
    digest = spec.digest()
    checkpoint = store.load_checkpoint(expected_digest=digest)
    threshold = _chaos_threshold(chaos_kill_after)

    if checkpoint is not None and checkpoint.done:
        if owns_store:
            store.close()
        return checkpoint.state.result()

    if checkpoint is not None:
        state: FrontierState = checkpoint.state
        base_stats = copy.deepcopy(checkpoint.stats)
        waves = checkpoint.waves
        REGISTRY.inc("service.resumes")
        _trace.event("service.resume", waves=waves,
                     runs=len(state.runs),
                     frontier=len(state.frontier))
    else:
        state = FrontierState.start(seed=spec.seed,
                                    preemption_bound=spec.preemption_bound,
                                    max_schedules=spec.max_schedules)
        base_stats = {}
        waves = 0

    # Warm start *before* the pool forks: preloaded entries and the
    # journalling flag are inherited by every worker.
    preloaded = store.memo.preload_memo(worker_module.MEMO)
    worker_module.MEMO.enable_journal()
    if preloaded:
        REGISTRY.inc("service.memo_preloaded", preloaded)
        _trace.event("service.memo-preload", entries=preloaded)

    # Seed the event cache from any resumed runs so fresh waves share
    # with the history, not just with each other.
    cons_cache: dict = {}
    _hash_cons_outputs(((result, ()) for _schedule, result in state.runs),
                       cons_cache)

    watchers = list(spec.observers) if spec.observers is not None \
        else [HOST_ID]
    pool = executor if executor is not None \
        else ResilientExecutor(workers)
    owns_pool = executor is None

    def commit(done: bool) -> None:
        nonlocal waves
        appended = store.memo.extend(pool.drain_memo_journal())
        if appended:
            REGISTRY.inc("service.memo_persisted", appended)
        waves += 1
        stats = merge_stats(copy.deepcopy(base_stats), pool.stats)
        store.save_checkpoint(CampaignCheckpoint(
            spec=spec.payload(), state=state, waves=waves, done=done,
            stats=stats))

    with _trace.span("service.campaign", kind=spec.kind,
                     seed=spec.seed, resumed=checkpoint is not None):
        try:
            finished = False
            # Snapshot-tree caching: on by default (REPRO_PREFIX_CACHE
            # gates it).  Snapshots are process-local, so a campaign
            # resumed after kill -9 — or a respawned dead worker —
            # starts with empty trees and rebuilds them from live
            # execution; pre-crash snapshots are never trusted, by
            # construction.  Digests stay byte-identical either way.
            use_cache = prefix_cache_enabled(None)
            while True:
                wave = state.take_wave()
                if not wave:
                    break
                units = [{"schedule": schedule, "monitor": spec.monitor,
                          "config": None, "check_ni": spec.check_ni,
                          "observers": watchers,
                          "prefix_cache": use_cache}
                         for schedule in wave]
                try:
                    merged = pool.map(
                        "repro.engine.workers:run_interleaving_unit",
                        units, keys=[locality_key(s) if use_cache
                                     else s.describe() for s in wave])
                except KeyboardInterrupt:
                    # The wave never merged: put it back where it came
                    # from and flush, so the checkpoint is the exact
                    # pre-wave state.
                    state.frontier.extendleft(reversed(wave))
                    commit(done=False)
                    raise
                outputs = [
                    _quarantine_output(schedule, value)
                    if isinstance(value, ShardQuarantined) else value
                    for schedule, value in zip(wave, merged)]
                _hash_cons_outputs(outputs, cons_cache)
                state.absorb(wave, outputs)
                commit(done=state.done)
                finished = state.done
                _maybe_chaos_kill(threshold, waves - (checkpoint.waves
                                                      if checkpoint else 0),
                                  pool)
            if not finished:
                # The exploration ended inside take_wave (truncation,
                # or an empty frontier on a resumed store): the last
                # per-wave checkpoint predates that decision, so leave
                # a final, done one behind.
                commit(done=True)
        finally:
            if owns_pool:
                pool.close()
            if owns_store:
                store.close()
    return state.result()


def resume_campaign(store, *, workers: Optional[int] = None,
                    executor: Optional[ResilientExecutor] = None,
                    chaos_kill_after: Optional[int] = None):
    """Continue an interrupted campaign from its store.

    The spec travels inside the checkpoint, so resuming needs only the
    store path.  Raises :class:`FileNotFoundError` when the store has
    no checkpoint and :class:`~repro.errors.CorruptArtifact` when the
    checkpoint cannot be loaded (an explicit resume of a damaged store
    should fail loudly; the *campaign* entry point is the one with the
    cold-start fallback).
    """
    owns_store = not isinstance(store, CampaignStore)
    store = _coerce_store(store)
    try:
        if not store.has_checkpoint():
            raise FileNotFoundError(
                f"no checkpoint at {store.checkpoint_path!r} — nothing "
                f"to resume")
        checkpoint = store.load_checkpoint(strict=True)
        spec = CampaignSpec.from_payload(checkpoint.spec)
        return run_durable_campaign(spec, store, workers=workers,
                                    executor=executor,
                                    chaos_kill_after=chaos_kill_after)
    finally:
        if owns_store:
            store.close()


# ---------------------------------------------------------------------------
# Warm cross-run verdict reuse for the hardened pure-check grid
# ---------------------------------------------------------------------------

VERDICT_TABLE = "pure-verdict"


def warm_pure_check_grid(names: Sequence[str], store, *,
                         total_steps: Optional[int] = None, seed: int = 0,
                         sample_count: int = 128,
                         max_exhaustive: int = 4096, config=None,
                         workers: Optional[int] = None,
                         executor=None, stats_out=None) -> List:
    """The parallel pure-check grid with a persistent verdict memo.

    Deterministic check parameters (step budgets only — wall-clock
    budgets are not reproducible, exactly the provenance-bundle rule)
    key each :class:`~repro.ccal.refinement.CheckReport` by
    :func:`~repro.verification.harness.pure_check_key`; verdicts found
    in the store are returned without running anything, the rest run
    through the sharded executor and are appended for the next
    campaign.  Reports come back in ``names`` order either way.
    """
    from repro.engine.campaigns import _executor, _pure_check_units
    from repro.verification.harness import pure_check_key

    owns_store = not isinstance(store, CampaignStore)
    store = _coerce_store(store)
    names = list(names)
    units = _pure_check_units(names, total_steps=total_steps,
                              total_seconds=None, seed=seed,
                              sample_count=sample_count,
                              max_exhaustive=max_exhaustive,
                              config=config, fake_clock=True)
    keys = [pure_check_key(unit["name"], max_steps=unit["max_steps"],
                           seed=seed, sample_count=sample_count,
                           max_exhaustive=max_exhaustive, config=config)
            for unit in units]
    cached = {key: value for table, key, value in store.memo.load()
              if table == VERDICT_TABLE}
    reports: List = [None] * len(units)
    misses = [index for index, key in enumerate(keys)
              if key not in cached]
    hits = len(units) - len(misses)
    if hits:
        REGISTRY.inc("service.verdict_hits", hits)
    for index, key in enumerate(keys):
        if key in cached:
            reports[index] = cached[key]
    if misses:
        REGISTRY.inc("service.verdict_misses", len(misses))
        with _trace.span("service.pure-grid", names=len(units),
                         misses=len(misses)), \
                _executor(executor, workers) as pool:
            fresh = pool.map("repro.engine.workers:run_pure_check_unit",
                             [units[index] for index in misses],
                             keys=[units[index]["name"]
                                   for index in misses])
            if stats_out is not None:
                merge_stats(stats_out, pool.stats)
        for index, report in zip(misses, fresh):
            reports[index] = report
        store.memo.extend(
            (VERDICT_TABLE, keys[index], report)
            for index, report in zip(misses, fresh))
    if owns_store:
        store.close()
    return reports
