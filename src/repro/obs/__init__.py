"""repro.obs — the observability plane.

Three pillars, all zero-dependency and all inert until asked for:

* :mod:`repro.obs.trace` — nested spans + typed events with a ring
  buffer and optional JSONL sink; off by default, observation-only
  (cannot change a verdict).
* :mod:`repro.obs.metrics` — named counters/gauges/histograms with the
  process-merge operation the sharded executor needs.
* :mod:`repro.obs.provenance` — replayable counterexample bundles
  (``python -m repro replay bundle.json``).
"""

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.provenance import (
    ProvenanceBundle,
    ReplayOutcome,
    bundles_from_exploration,
    crash_point_bundle,
    crash_step_bundle,
    interleaving_bundle,
    pure_check_bundle,
    replay_bundle,
)
from repro.obs.trace import (
    Tracer,
    active_tracer,
    enabled,
    event,
    install,
    installed,
    span,
    validate_jsonl,
    validate_records,
)

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "ProvenanceBundle",
    "ReplayOutcome",
    "Tracer",
    "active_tracer",
    "bundles_from_exploration",
    "crash_point_bundle",
    "crash_step_bundle",
    "enabled",
    "event",
    "install",
    "installed",
    "interleaving_bundle",
    "pure_check_bundle",
    "replay_bundle",
    "span",
    "validate_jsonl",
    "validate_records",
]
