"""The hardened harness: budgets, the degradation chain, reseeding.

The contract under test: ``check_pure_hardened`` /
``check_stateful_hardened`` never hang and never raise for budget
reasons — hostile limits produce a report with the taken path recorded
(``engine``, ``degradations``, ``budget_spent``, ``completed``), not an
exception.
"""

import pytest

from repro.verification.harness import (
    ENGINE_EXHAUSTIVE,
    ENGINE_SAMPLING,
    ENGINE_SYMBOLIC,
    PURE_ENGINE_CHAIN,
    check_pure_hardened,
    check_stateful_hardened,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestPureChain:
    def test_unlimited_budget_stays_symbolic(self, model):
        report = check_pure_hardened(model, "pte_new")
        assert report.ok, report.failures
        assert report.engine == ENGINE_SYMBOLIC
        assert report.degradations == []
        assert report.completed
        assert report.checked > 0
        assert report.budget_spent["steps"] > 0

    def test_tight_steps_degrade_without_raising(self, model):
        report = check_pure_hardened(model, "pte_new", max_steps=40,
                                     sample_count=16)
        assert report.engine in PURE_ENGINE_CHAIN
        assert report.engine != ENGINE_SYMBOLIC
        assert report.degradations, "the fallback must be recorded"
        assert ENGINE_SYMBOLIC in report.degradations[0]
        # Spend may overshoot by the tripping probe itself, never more.
        assert report.budget_spent["steps"] <= 40 + 3

    def test_domain_too_large_skips_exhaustive(self, model):
        report = check_pure_hardened(model, "pte_new", max_steps=40,
                                     max_exhaustive=1, sample_count=8)
        assert report.engine == ENGINE_SAMPLING
        assert any("domain too large" in d for d in report.degradations)

    def test_starved_chain_returns_partial_not_exception(self, model):
        report = check_pure_hardened(model, "pte_new", max_steps=3,
                                     sample_count=64)
        assert not report.completed
        assert report.engine == ENGINE_SAMPLING
        assert len(report.degradations) >= 2  # every engine fell through
        assert report.budget_spent["steps"] <= 3 + 2  # slack: trip detection

    def test_wallclock_budget_is_clock_driven(self, model):
        clock = FakeClock()

        class ExplodingClock(FakeClock):
            def __call__(self):
                self.now += 10.0     # every probe sees 10 more seconds
                return self.now

        report = check_pure_hardened(model, "pte_new", max_seconds=5.0,
                                     sample_count=8,
                                     clock=ExplodingClock())
        assert not report.completed or report.engine != ENGINE_SYMBOLIC
        assert report.degradations
        # An untouched clock must leave the symbolic path alone.
        report = check_pure_hardened(model, "pte_new", max_seconds=5.0,
                                     clock=clock)
        assert report.engine == ENGINE_SYMBOLIC

    def test_degraded_exhaustive_still_covers_full_domain(self, model):
        # level_span has a 4-value domain: too little budget for the
        # symbolic proof, plenty for the exhaustive fallback — which
        # must then check *every* input and run to completion.
        report = check_pure_hardened(model, "level_span", max_steps=16,
                                     sample_count=16)
        assert report.engine == ENGINE_EXHAUSTIVE
        assert report.ok, report.failures
        assert report.completed
        assert report.checked == 4  # the whole domain
        assert len(report.degradations) == 1


class TestStatefulHardened:
    def test_unlimited_budget_completes(self, model):
        report = check_stateful_hardened(model, "alloc_frame", count=8)
        assert report.ok, report.failures
        assert report.engine == "cosim"
        assert report.completed
        assert report.seed_retries == 0
        assert report.checked > 0

    def test_budget_trip_returns_incomplete_report(self, model):
        report = check_stateful_hardened(model, "map_page", max_steps=1,
                                         count=8)
        assert not report.completed
        assert report.checked == 0
        assert report.degradations
        assert "cosim" in report.degradations[0]

    def test_reseed_is_bounded_and_recorded(self, model):
        # An impossible min_checked forces every retry; the harness must
        # stop at max_reseeds and surface the count, not loop forever.
        report = check_stateful_hardened(model, "alloc_frame", count=4,
                                         min_checked=10**6, max_reseeds=2)
        assert report.completed
        assert report.seed_retries >= 2
        assert any("precondition" in d for d in report.degradations)

    def test_reseed_recovers_sparse_campaigns(self, model):
        # With a sane min_checked the first seed already suffices.
        report = check_stateful_hardened(model, "query", count=8,
                                         min_checked=1, seed=5)
        assert report.ok, report.failures
        assert report.seed_retries == 0
