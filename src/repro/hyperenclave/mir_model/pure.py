"""The pure fragment of the corpus: bit manipulation and range checks.

These are the functions the paper's Sec. 3.2 lifting makes "functional"
(no memory effects) and where the symbolic engine gives the strongest
guarantees: every function here is checked for panic-freedom and
exhaustive bounded equivalence against its Python reference.

All geometry constants are *inlined as literals* per retrofit rule 4 —
``add_pure_functions(pb, config)`` is the "compile time" at which the
hardcoding happens.
"""

from repro.mir.ast import BinOp, place
from repro.mir.types import BOOL, U64

U64_MAX = (1 << 64) - 1


def _consts(config):
    addr_mask = config.addr_mask()
    return {
        "PAGE_BITS": config.page_bits,
        "PAGE_SIZE": config.page_size,
        "PAGE_MASK": config.page_size - 1,
        "IDX_MASK": config.entries_per_table - 1,
        "INDEX_BITS": config.index_bits,
        "LEVELS": config.levels,
        "ADDR_MASK": addr_mask,
        "NOT_ADDR_MASK": (~addr_mask) & U64_MAX,
        "TABLE_FLAGS": config.arch.table_flags(),
    }


def add_pure_functions(pb, config):
    """Register the 26 pure corpus functions on a ProgramBuilder.

    The transcription is generated from ``config.arch``: every flag
    predicate becomes the uniform ``(mask, want)`` two-instruction
    sequence, so the x86 and VMSAv8 corpora differ only in literals —
    and the symbolic engine checks each against its arch-aware Python
    reference.
    """
    c = _consts(config)
    _add_pte_ops(pb, c, config.arch)  # layer PteOps (12 functions)
    _add_level_ops(pb, c, config)  # layer PtLevel (8 functions)
    _add_range_ops(pb, c)        # layers EnclaveMem/MBuf pure (4 functions)
    _add_region_ops(pb, c, config)  # layer Isolation pure (2 functions)


# ---------------------------------------------------------------------------
# Layer 2 — PteOps
# ---------------------------------------------------------------------------


def _add_pte_ops(pb, c, spec):
    fb = pb.function("pte_new", ["addr", "flags"], U64, layer="PteOps")
    fb.binop("_1", BinOp.BITAND, "addr", c["ADDR_MASK"])
    fb.binop("_2", BinOp.BITAND, "flags", c["NOT_ADDR_MASK"])
    fb.binop("_0", BinOp.BITOR, "_1", "_2")
    fb.ret()
    fb.finish()

    fb = pb.function("pte_addr", ["e"], U64, layer="PteOps")
    fb.binop("_0", BinOp.BITAND, "e", c["ADDR_MASK"])
    fb.ret()
    fb.finish()

    fb = pb.function("pte_flags", ["e"], U64, layer="PteOps")
    fb.binop("_0", BinOp.BITAND, "e", c["NOT_ADDR_MASK"])
    fb.ret()
    fb.finish()

    fb = pb.function("pte_frame", ["e"], U64, layer="PteOps")
    fb.call("_1", "pte_addr", ["e"])
    fb.binop("_0", BinOp.SHR, "_1", c["PAGE_BITS"])
    fb.ret()
    fb.finish()

    # Each flag predicate is (entry & MASK) == WANT — the one shape that
    # covers both positive bits (x86 W) and inverted bits (VMSAv8 AP[2],
    # where *clear* means writable).
    for name, test in (("pte_is_present", spec.present),
                       ("pte_is_writable", spec.writable),
                       ("pte_is_user", spec.user),
                       ("pte_is_huge", spec.block)):
        fb = pb.function(name, ["e"], BOOL, layer="PteOps")
        fb.binop("_1", BinOp.BITAND, "e", test.mask)
        fb.binop("_0", BinOp.EQ, "_1", test.want)
        fb.ret()
        fb.finish()

    fb = pb.function("pte_is_unused", ["e"], BOOL, layer="PteOps")
    fb.binop("_0", BinOp.EQ, "e", 0)
    fb.ret()
    fb.finish()

    fb = pb.function("pte_table_flags", [], U64, layer="PteOps")
    fb.ret(c["TABLE_FLAGS"])
    fb.finish()

    fb = pb.function("pte_set_addr", ["e", "addr"], U64, layer="PteOps")
    fb.binop("_1", BinOp.BITAND, "e", c["NOT_ADDR_MASK"])
    fb.binop("_2", BinOp.BITAND, "addr", c["ADDR_MASK"])
    fb.binop("_0", BinOp.BITOR, "_1", "_2")
    fb.ret()
    fb.finish()

    fb = pb.function("pte_set_flags", ["e", "flags"], U64, layer="PteOps")
    fb.binop("_1", BinOp.BITAND, "e", c["ADDR_MASK"])
    fb.binop("_2", BinOp.BITAND, "flags", c["NOT_ADDR_MASK"])
    fb.binop("_0", BinOp.BITOR, "_1", "_2")
    fb.ret()
    fb.finish()


# ---------------------------------------------------------------------------
# Layer 4 — PtLevel
# ---------------------------------------------------------------------------


def _add_level_ops(pb, c, config):
    # entry_index(va, level): switch over the level, shift amounts inlined.
    fb = pb.function("entry_index", ["va", "level"], U64, layer="PtLevel")
    arms = []
    for level in range(1, config.levels + 1):
        arms.append((level, f"lvl{level}"))
    fb.switch("level", arms, otherwise="bad")
    for level in range(1, config.levels + 1):
        fb.label(f"lvl{level}")
        shift = config.page_bits + config.index_bits * (level - 1)
        fb.binop("_1", BinOp.SHR, "va", shift)
        fb.binop("_0", BinOp.BITAND, "_1", c["IDX_MASK"])
        fb.ret()
    fb.label("bad")
    fb.assert_(False, "entry_index: level out of range", target="unreach")
    fb.label("unreach")
    fb.ret(0)
    fb.finish()

    fb = pb.function("level_span", ["level"], U64, layer="PtLevel")
    arms = [(level, f"lvl{level}") for level in range(1, config.levels + 1)]
    fb.switch("level", arms, otherwise="bad")
    for level in range(1, config.levels + 1):
        fb.label(f"lvl{level}")
        fb.ret(config.level_span(level))
    fb.label("bad")
    fb.assert_(False, "level_span: level out of range", target="unreach")
    fb.label("unreach")
    fb.ret(0)
    fb.finish()

    fb = pb.function("align_page_down", ["addr"], U64, layer="PtLevel")
    fb.binop("_1", BinOp.BITAND, "addr", c["PAGE_MASK"])
    fb.binop("_0", BinOp.SUB, "addr", "_1")
    fb.ret()
    fb.finish()

    fb = pb.function("align_page_up", ["addr"], U64, layer="PtLevel")
    fb.binop("_1", BinOp.ADD, "addr", c["PAGE_MASK"])
    fb.binop("_2", BinOp.BITAND, "_1", c["PAGE_MASK"])
    fb.binop("_0", BinOp.SUB, "_1", "_2")
    fb.ret()
    fb.finish()

    fb = pb.function("page_offset_of", ["addr"], U64, layer="PtLevel")
    fb.binop("_0", BinOp.BITAND, "addr", c["PAGE_MASK"])
    fb.ret()
    fb.finish()

    fb = pb.function("is_page_aligned", ["addr"], BOOL, layer="PtLevel")
    fb.binop("_1", BinOp.BITAND, "addr", c["PAGE_MASK"])
    fb.binop("_0", BinOp.EQ, "_1", 0)
    fb.ret()
    fb.finish()

    fb = pb.function("frame_base_of", ["frame"], U64, layer="PtLevel")
    fb.binop("_0", BinOp.SHL, "frame", c["PAGE_BITS"])
    fb.ret()
    fb.finish()

    fb = pb.function("frame_of_addr", ["addr"], U64, layer="PtLevel")
    fb.binop("_0", BinOp.SHR, "addr", c["PAGE_BITS"])
    fb.ret()
    fb.finish()


# ---------------------------------------------------------------------------
# Layers 11-12 pure — range predicates
# ---------------------------------------------------------------------------


def _range_contains(pb, name, layer):
    fb = pb.function(name, ["base", "size", "va"], BOOL, layer=layer)
    fb.binop("_1", BinOp.GE, "va", "base")
    fb.branch("_1", "check_hi", "no")
    fb.label("check_hi")
    fb.binop("_2", BinOp.ADD, "base", "size")
    fb.binop("_0", BinOp.LT, "va", "_2")
    fb.ret()
    fb.label("no")
    fb.ret(False)
    fb.finish()


def _add_range_ops(pb, c):
    _range_contains(pb, "elrange_contains", "EnclaveMem")
    _range_contains(pb, "mbuf_contains", "MBuf")

    fb = pb.function("elrange_gpa_of", ["gpa_base", "elrange_base", "va"],
                     U64, layer="EnclaveMem")
    fb.binop("_1", BinOp.SUB, "va", "elrange_base")
    fb.binop("_0", BinOp.ADD, "gpa_base", "_1")
    fb.ret()
    fb.finish()

    fb = pb.function("ranges_overlap",
                     ["a_base", "a_size", "b_base", "b_size"],
                     BOOL, layer="MBuf")
    fb.binop("_1", BinOp.ADD, "b_base", "b_size")
    fb.binop("_2", BinOp.LT, "a_base", "_1")
    fb.branch("_2", "check_other", "no")
    fb.label("check_other")
    fb.binop("_3", BinOp.ADD, "a_base", "a_size")
    fb.binop("_0", BinOp.LT, "b_base", "_3")
    fb.ret()
    fb.label("no")
    fb.ret(False)
    fb.finish()


# ---------------------------------------------------------------------------
# Layer 14 pure — physical-region classification
# ---------------------------------------------------------------------------


def _add_region_ops(pb, c, config):
    from repro.hyperenclave.constants import MemoryLayout
    layout = MemoryLayout.default_for(config)
    pool_lo = config.frame_base(layout.pt_pool_base)
    pool_hi = config.frame_base(layout.epc_base)
    epc_lo = config.frame_base(layout.epc_base)
    epc_hi = config.frame_base(config.phys_frames)

    for name, lo, hi in (("pa_in_pool", pool_lo, pool_hi),
                         ("pa_in_epc", epc_lo, epc_hi)):
        fb = pb.function(name, ["pa"], BOOL, layer="Isolation")
        fb.binop("_1", BinOp.GE, "pa", lo)
        fb.branch("_1", "check_hi", "no")
        fb.label("check_hi")
        fb.binop("_0", BinOp.LT, "pa", hi)
        fb.ret()
        fb.label("no")
        fb.ret(False)
        fb.finish()
