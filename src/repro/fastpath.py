"""The global fast-path switch.

PR 4 adds three performance layers that are *semantically invisible*:
hash-consed term interning (:mod:`repro.symbolic.terms`), incremental
solving with verdict memoisation (:mod:`repro.symbolic.solver`), and a
compiled per-CFG dispatch loop (:mod:`repro.mir.compile`).  Each layer
is required to produce byte-identical verdicts with and without the
optimisation — the symbolic bench (:func:`repro.engine.bench.bench_symbolic`)
asserts exactly that on every run.

This module is the one switch the bench (and a suspicious debugger)
flips to get the naive baseline back.  It is deliberately tiny and
dependency-free: the symbolic and mir layers both import it, and it
must not import either of them.

The switch is read at well-defined *entry* points (term construction,
solver calls, interpreter construction), so toggling it mid-execution
of one engine is not supported — use the :func:`disabled` context
manager around a whole checking run.
"""

from contextlib import contextmanager

_ENABLED = True


def enabled() -> bool:
    """Is the fast path (interning, memoisation, compiled dispatch) on?"""
    return _ENABLED


def set_enabled(value: bool) -> bool:
    """Set the switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(value)
    return previous


@contextmanager
def disabled():
    """Run a block with every fast-path layer off (the naive baseline)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


@contextmanager
def forced():
    """Run a block with the fast path on regardless of the ambient state."""
    previous = set_enabled(True)
    try:
        yield
    finally:
        set_enabled(previous)
