"""All thirteen planted bugs convicted through the parallel fabric.

The verdict triples — ``(bug, detected, how)`` with the exact
violation-kind strings — must come back identical to the sequential
matrix: memoised invariant sweeps and fabric-run campaigns may change
*how fast* a bug is convicted, never *what* the conviction says.
"""

from repro.engine.bug_matrix import run_matrix, run_matrix_parallel
from repro.hyperenclave import buggy


def test_parallel_matrix_convicts_all_13_identically(pool):
    seq = run_matrix()
    stats = {}
    par = run_matrix_parallel(executor=pool, stats_out=stats)
    assert len(par) == len(buggy.ALL_BUGGY_MONITORS) == 13
    assert all(detected for _bug, detected, _how in par)
    assert par == seq
    # the memoised invariant sweeps actually engaged
    assert stats["invariants"]["hits"] > 0
