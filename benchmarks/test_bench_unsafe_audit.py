"""Sec. 6.1 — the unsafe-block audit.

Paper: 105 unsafe blocks; 74 indirect calls to unsafe functions; 13 raw
pointer dereferences, none involving page-table memory.  The scanner
recovers that distribution from the synthesized source mirror exactly,
and the benchmark times the whole-tree scan (the mechanised version of
the paper's manual audit).
"""

from repro.audit import (
    UnsafeCategory, blocks_touching_page_tables, classify_summary,
    generate_rust_corpus, scan_tree,
)
from repro.reporting import render_table


def test_bench_unsafe_audit(benchmark, emit):
    corpus = generate_rust_corpus()

    blocks = benchmark(scan_tree, corpus)
    summary = classify_summary(blocks)
    touching = blocks_touching_page_tables(blocks)

    rows = [
        ["total unsafe blocks", 105, len(blocks)],
        ["indirect unsafe-fn calls", 74,
         summary[UnsafeCategory.INDIRECT_CALL]],
        ["raw pointer dereferences", 13,
         summary[UnsafeCategory.RAW_DEREF]],
        ["raw derefs touching page tables", 0, len(touching)],
        ["inline assembly", "—", summary[UnsafeCategory.ASM]],
        ["slice construction", "—", summary[UnsafeCategory.SLICE]],
        ["transmutes", "—", summary[UnsafeCategory.TRANSMUTE]],
        ["static-mut accesses", "—",
         summary[UnsafeCategory.STATIC_MUT]],
    ]
    emit("unsafe_audit",
         render_table(["Class", "Paper", "Scanner"], rows,
                      title="Sec. 6.1 — unsafe-block audit"))

    assert len(blocks) == 105
    assert summary[UnsafeCategory.INDIRECT_CALL] == 74
    assert summary[UnsafeCategory.RAW_DEREF] == 13
    assert touching == []
