"""Crash-consistent hypercalls: snapshot-rollback transactions.

The paper's Sec. 5.2 claim quantifies over *every* hypercall — including
the ones that die halfway through.  ``hc_add_page`` is five mutations
long (EPCM allocate, frame copy, GPT map, EPT map, measure); if the
frame pool runs dry between the GPT map and the EPT map, the naive
monitor leaves a mapping with no backing translation and an EPCM entry
nothing points at.  The :func:`transactional` decorator makes every
hypercall atomic: capture a checkpoint on entry, and on *any* failure —
validation, resource exhaustion, or an injected fault — restore the
checkpoint before re-raising, so the observable state machine only ever
moves in whole hypercalls.

The checkpoint is a value snapshot of everything a hypercall can touch:
physical memory (which transitively holds every page table), the
page-table frame allocator bitmap, the EPCM array, the per-enclave
metadata, the vCPU, the TLB, and the monitor's scalars.  On the
simulated machine this is cheap (the sparse word store is the dominant
cost); a real monitor would keep an undo journal instead, but the
contract is identical and that is what the campaigns verify.

Restoration runs with the fault plane suspended: rolling back must not
itself trip a ``phys.write`` injection, or the system could never
recover.
"""

import functools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import (
    FaultInjected,
    HypercallAborted,
    HypercallError,
    HypervisorError,
)
from repro.faults import plane as faults


@dataclass
class MonitorCheckpoint:
    """A full value snapshot of the mutable monitor state."""

    phys: Dict[int, int]
    allocator: Tuple[bool, ...]
    epcm: Tuple
    enclaves: Dict[int, object]                  # eid -> Enclave (by ref)
    enclave_meta: Dict[int, Tuple]               # eid -> mutable fields
    next_eid: int
    active: int
    saved_host_context: Optional[Tuple]
    vcpu_regs: Dict[str, int]
    vcpu_gpt_root: Optional[int]
    vcpu_ept_root: Optional[int]
    tlb: Tuple


def capture(monitor) -> MonitorCheckpoint:
    """Checkpoint everything a hypercall may mutate."""
    return MonitorCheckpoint(
        phys=monitor.phys.checkpoint(),
        allocator=monitor.pt_allocator.snapshot(),
        epcm=monitor.epcm.snapshot(),
        enclaves=dict(monitor.enclaves),
        enclave_meta={
            eid: (enclave.state, enclave.saved_context,
                  enclave.measurement)
            for eid, enclave in monitor.enclaves.items()},
        next_eid=monitor._next_eid,
        active=monitor.active,
        saved_host_context=monitor.saved_host_context,
        vcpu_regs=dict(monitor.vcpu.regs),
        vcpu_gpt_root=monitor.vcpu.gpt_root,
        vcpu_ept_root=monitor.vcpu.ept_root,
        tlb=monitor.tlb.snapshot(),
    )


def restore(monitor, checkpoint: MonitorCheckpoint):
    """Rewind the monitor to ``checkpoint`` (undoes partial hypercalls)."""
    monitor.phys.restore_checkpoint(checkpoint.phys)
    monitor.pt_allocator.load_snapshot(checkpoint.allocator)
    monitor.epcm.load_snapshot(checkpoint.epcm)
    monitor.enclaves.clear()
    monitor.enclaves.update(checkpoint.enclaves)
    for eid, (state, saved_context, measurement) in \
            checkpoint.enclave_meta.items():
        enclave = monitor.enclaves[eid]
        enclave.state = state
        enclave.saved_context = saved_context
        enclave.measurement = measurement
    monitor._next_eid = checkpoint.next_eid
    monitor.active = checkpoint.active
    monitor.saved_host_context = checkpoint.saved_host_context
    monitor.vcpu.regs = dict(checkpoint.vcpu_regs)
    monitor.vcpu.gpt_root = checkpoint.vcpu_gpt_root
    monitor.vcpu.ept_root = checkpoint.vcpu_ept_root
    monitor.tlb.load_snapshot(checkpoint.tlb)


def monitor_digest(monitor) -> Tuple:
    """A comparable value of the security-relevant monitor state.

    Two monitors with equal digests are indistinguishable to every
    invariant checker and to every observation function: physical
    memory (hence all page tables), allocator bitmap, EPCM, enclave
    metadata, scheduling scalars, vCPU, and live TLB entries.  The TLB
    *flush count* is deliberately excluded — it is telemetry, not
    state.
    """
    return (
        monitor.phys.snapshot(),
        monitor.pt_allocator.snapshot(),
        monitor.epcm.snapshot(),
        tuple(sorted(
            (eid, enclave.state.value, enclave.measurement,
             enclave.saved_context, enclave.gpt.root_frame,
             enclave.ept.root_frame)
            for eid, enclave in monitor.enclaves.items())),
        monitor._next_eid,
        monitor.active,
        monitor.saved_host_context,
        monitor.vcpu.context(),
        monitor.vcpu.gpt_root,
        monitor.vcpu.ept_root,
        monitor.tlb.snapshot()[0],
    )


def transactional(fn):
    """Make one hypercall atomic: any failure rolls back, then re-raises.

    * Validation rejections (:class:`HypercallError`) re-raise as-is —
      the rollback is a no-op for them, but running it anyway means the
      guarantee does not depend on validations preceding mutations.
    * Mid-sequence failures (injected faults, exhausted allocators, any
      other hypervisor error) re-raise as the typed
      :class:`HypercallAborted`, chaining the cause.

    The undecorated body stays reachable as ``__wrapped__`` — the
    deliberately broken ``NonTransactionalMonitor`` uses it, and the
    fault campaign demonstrates that variant violating rollback.
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        checkpoint = capture(self)
        try:
            return fn(self, *args, **kwargs)
        except HypercallError:
            with faults.suspended():
                restore(self, checkpoint)
            raise
        except (FaultInjected, HypervisorError) as exc:
            with faults.suspended():
                restore(self, checkpoint)
            raise HypercallAborted(fn.__name__, exc) from exc

    return wrapper
