"""The compiled dispatch loop must be invisible (PR 4).

:mod:`repro.mir.compile` precompiles each CFG into per-block closure
lists so the hot interpreter loop skips per-step AST dispatch.  The
contract is byte-identical behaviour with :meth:`Interpreter.step`:
same values, same step accounting (fuel exhaustion at the same step,
with the same message), same error types and messages.  These tests
run the same programs through both modes and compare everything
observable.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import fastpath
from repro.errors import MirAssertError, MirRuntimeError, OutOfFuel
from repro.mir.ast import BinOp
from repro.mir.builder import ProgramBuilder
from repro.mir.compile import block_plan, compiled_blocks
from repro.mir.interp import Interpreter
from repro.mir.types import U64
from repro.mir.value import mk_u64

from tests.mir.test_random_programs import random_programs


def both_modes(program, name="f", args=(), fuel=None):
    """Run ``name`` naively and compiled; return the two outcomes.

    An outcome is ``("ok", value, steps)`` or
    ``("err", type_name, message, steps)`` — everything the two modes
    must agree on.
    """
    outcomes = []
    for context in (fastpath.disabled, fastpath.forced):
        with context():
            interp = Interpreter(program)
            if fuel is not None:
                interp.fuel = fuel
            try:
                result = interp.call(name, args)
            except Exception as exc:  # noqa: BLE001 - parity capture
                outcomes.append(("err", type(exc).__name__, str(exc),
                                 interp.steps))
            else:
                outcomes.append(("ok", result.value, interp.steps))
    return outcomes


@settings(max_examples=40, deadline=None)
@given(program=random_programs(),
       a=st.integers(0, 2 ** 64 - 1), b=st.integers(0, 2 ** 64 - 1))
def test_random_programs_agree(program, a, b):
    naive, compiled = both_modes(program, args=[mk_u64(a), mk_u64(b)])
    assert compiled == naive


@settings(max_examples=25, deadline=None)
@given(program=random_programs(),
       a=st.integers(0, 2 ** 64 - 1), b=st.integers(0, 2 ** 64 - 1),
       fuel=st.integers(1, 12))
def test_fuel_exhaustion_parity(program, a, b, fuel):
    # Tight fuel makes most runs die mid-function; both modes must die
    # at the same step with the same OutOfFuel message.
    naive, compiled = both_modes(program, args=[mk_u64(a), mk_u64(b)],
                                 fuel=fuel)
    assert compiled == naive


class TestErrorParity:
    def test_divide_by_zero(self):
        def build(pb):
            fb = pb.function("f", ["a"], U64)
            fb.binop("_0", BinOp.DIV, "a", 0)
            fb.ret()
            fb.finish()
        pb = ProgramBuilder()
        build(pb)
        naive, compiled = both_modes(pb.build(), args=[mk_u64(7)])
        assert naive[0] == "err" and naive[1] == "MirAssertError"
        assert compiled == naive

    def test_uninitialised_temp_read(self):
        pb = ProgramBuilder()
        fb = pb.function("f", [], U64)
        fb.assign("_0", "never_written")
        fb.ret()
        fb.finish()
        naive, compiled = both_modes(pb.build())
        assert naive[0] == "err" and naive[1] == "MirRuntimeError"
        assert "never_written" in naive[2]
        assert compiled == naive

    def test_assert_failure_message(self):
        pb = ProgramBuilder()
        fb = pb.function("f", ["a"], U64)
        fb.binop("cond", BinOp.LT, "a", 10)
        fb.assert_("cond", "a must stay below 10")
        fb.ret("a")
        fb.finish()
        naive, compiled = both_modes(pb.build(), args=[mk_u64(99)])
        assert naive[0] == "err" and naive[1] == "MirAssertError"
        assert "a must stay below 10" in naive[2]
        assert compiled == naive


class TestCallsAndControlFlow:
    def _call_program(self):
        pb = ProgramBuilder()
        fb = pb.function("callee", ["x"], U64)
        fb.binop("_0", BinOp.ADD, "x", 1)
        fb.ret()
        fb.finish()
        fb = pb.function("f", ["a"], U64)
        fb.call("_0", "callee", ["a"])
        fb.ret()
        fb.finish()
        return pb.build()

    def test_call_agrees_with_naive(self):
        naive, compiled = both_modes(self._call_program(),
                                     args=[mk_u64(41)])
        assert naive[0] == "ok" and naive[1].value == 42
        assert compiled == naive

    def test_switch_multiway(self):
        pb = ProgramBuilder()
        fb = pb.function("f", ["a"], U64)
        fb.switch("a", [(0, "zero"), (1, "one")], "other")
        fb.label("zero")
        fb.ret(100)
        fb.label("one")
        fb.ret(200)
        fb.label("other")
        fb.ret(300)
        fb.finish()
        program = pb.build()
        for value, expected in ((0, 100), (1, 200), (7, 300)):
            naive, compiled = both_modes(program, args=[mk_u64(value)])
            assert naive == ("ok", naive[1], naive[2])
            assert naive[1].value == expected
            assert compiled == naive


class TestCaching:
    def test_compiled_blocks_cached_per_program(self):
        pb = ProgramBuilder()
        fb = pb.function("f", [], U64)
        fb.assign("_0", 1)
        fb.ret()
        fb.finish()
        program = pb.build()
        function = program.functions["f"]
        first = compiled_blocks(function, program)
        assert compiled_blocks(function, program) is first

    def test_block_plan_cached(self):
        pb = ProgramBuilder()
        fb = pb.function("f", [], U64)
        fb.assign("_0", 1)
        fb.ret()
        fb.finish()
        function = pb.build().functions["f"]
        assert block_plan(function) is block_plan(function)
