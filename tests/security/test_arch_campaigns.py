"""The verification campaigns, parametrized per architecture.

Every checking plane the repo has — the Sec. 5.2 invariant families,
the Sec. 4.1 refinement, the Sec. 5 noninterference theorem, the fault
campaign, and the bounded-preemption interleaving explorer — runs on
both :data:`~repro.hyperenclave.constants.ARCH_CONFIGS` worlds.  The
x86 rows re-check what the rest of the suite already pins; the
VMSAv8-64 rows are the point: nothing in the checking stack may assume
x86 PTE encodings.
"""

import pytest

from repro.hyperenclave import buggy
from repro.hyperenclave.constants import ARCH_CONFIGS
from repro.hyperenclave.monitor import HOST_ID, RustMonitor
from repro.engine.bug_matrix import (
    _CAMPAIGN_DETECTORS,
    MATRIX,
    build_world,
    leak_trace,
    run_case,
)
from repro.faults import interleaving_campaign
from repro.security import DataOracle, SystemState
from repro.security.invariants import check_all_invariants
from repro.security.noninterference import (
    TwoWorlds,
    check_theorem_noninterference,
)

from tests.conftest import build_enclave_world

ARCHES = sorted(ARCH_CONFIGS)

LIGHT_ROWS = [index for index, (_cls, detector, _arg) in enumerate(MATRIX)
              if detector not in _CAMPAIGN_DETECTORS]
CAMPAIGN_ROWS = [index for index in range(len(MATRIX))
                 if index not in LIGHT_ROWS]


@pytest.fixture(params=ARCHES)
def config(request):
    return ARCH_CONFIGS[request.param]


class TestInvariantsPerArch:
    def test_good_world_satisfies_every_family(self, config):
        monitor, _app, _eid = build_enclave_world(config=config)
        report = check_all_invariants(monitor)
        assert report.ok, report.violated_families()

    def test_boot_blocks_satisfy_every_family(self, config):
        """The boot-time untrusted mapping uses block (huge) entries —
        the 2 MiB-analog scenario.  Every invariant sweep must
        understand block structure on both arches."""
        monitor, _app, _eid = build_enclave_world(config=config)
        page = config.page_size
        sizes = {size for _va, _pa, size, _f in monitor.os_ept.mappings()}
        assert any(size > page for size in sizes), \
            "boot mapping no longer exercises block entries"
        report = check_all_invariants(monitor)
        assert report.ok, report.violated_families()

    def test_planted_bugs_convicted(self, config):
        for index in LIGHT_ROWS:
            bug, detected, how = run_case(index, config=config)
            assert detected, f"{bug} escaped on {config.arch.name}: {how}"


class TestNoninterferencePerArch:
    def build_two_worlds(self, config, monitor_cls=None):
        def world(secret):
            monitor, app, eid = build_world(monitor_cls, secret=secret,
                                            pages=2, config=config)
            return SystemState(monitor, DataOracle.seeded(5)), app, eid
        state_a, app, eid = world(41)
        state_b, _, _ = world(42)
        return TwoWorlds(state_a, state_b), app, eid

    def test_theorem_holds_on_correct_monitor(self, config):
        worlds, app, eid = self.build_two_worlds(config)
        violations = check_theorem_noninterference(
            worlds, leak_trace(app, eid, config), observers=[HOST_ID])
        assert violations == []

    def test_leaky_exit_violates(self, config):
        worlds, app, eid = self.build_two_worlds(
            config, buggy.LeakyExitMonitor)
        violations = check_theorem_noninterference(
            worlds, leak_trace(app, eid, config), observers=[HOST_ID])
        assert violations


class TestInterleavingPerArch:
    def test_correct_monitor_sweep_is_green(self, config):
        result = interleaving_campaign(check_ni=True, config=config,
                                       max_schedules=120)
        assert result.ok
        assert result.schedules_run >= 50

    def test_missing_lock_caught(self, config):
        result = interleaving_campaign(buggy.MissingLockMonitor,
                                       check_ni=False, config=config,
                                       max_schedules=200)
        assert not result.ok
        assert "lock-protocol" in result.by_kind()

    def test_campaign_rows_convict(self, config):
        for index in CAMPAIGN_ROWS:
            bug, detected, how = run_case(index, config=config)
            assert detected, f"{bug} escaped on {config.arch.name}: {how}"
