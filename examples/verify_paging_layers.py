#!/usr/bin/env python3
"""Walk the full MIRVerif pipeline over the paging corpus (Sec. 3-4).

Stages, printed as they run:

1. retrofit lints over the corpus (Sec. 2.3),
2. "mirlightgen": print the corpus to the textual format and re-parse
   it, confirming the fixpoint (Sec. 3.3),
3. split the blob into per-function files and infer the layer order from
   the call graph (the paper's "ad-hoc scripts"),
4. structural checks: 15 layers, no upward calls,
5. code proofs: symbolic for the pure fragment, co-simulation for the
   stateful fragment — the per-layer report,
6. the flat→tree refinement on a freshly built table.

Run:  python examples/verify_paging_layers.py
"""

from repro.analysis import infer_layer_indices, split_blob
from repro.hyperenclave import pte
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.mir_model import build_model
from repro.mir.parser import parse_program
from repro.mir.printer import print_program
from repro.mir.retrofit import check_retrofitted
from repro.spec import (
    abstract_table, flat_alloc_frame, flat_initial_state, flat_map_page,
    relation_r, tree_empty, tree_map_page,
)
from repro.verification import verify_corpus

PAGE = TINY.page_size


def main():
    model = build_model(TINY)

    print("== stage 1: retrofitting lints ==")
    findings = check_retrofitted(model.program)
    print(f"   {len(findings)} findings (must be 0)")
    assert not findings

    print("== stage 2: mirlightgen roundtrip ==")
    source = print_program(model.program)
    reparsed = parse_program(source)
    assert print_program(reparsed) == source
    print(f"   {len(source.splitlines())} lines of mirlight; "
          f"print→parse→print is a fixpoint")

    print("== stage 3: splitting the blob, inferring layers ==")
    files = split_blob(model.program)
    depths = infer_layer_indices(model.program,
                                 [s.name for s in model.trusted])
    deepest = max(depths, key=depths.get)
    print(f"   {len(files)} per-function files; deepest call chain: "
          f"{deepest} at depth {depths[deepest]}")

    print("== stage 4: layer structure ==")
    violations = model.check_call_order()
    print(f"   {len(model.stack)} layers, "
          f"{len(violations)} upward-call violations")
    assert not violations

    print("== stage 5: code proofs ==")
    report = verify_corpus(model, cosim_samples=16)
    for layer, verdicts in sorted(
            report.by_layer().items(),
            key=lambda item: model.stack.layer(item[0]).index):
        checked = sum(v.checked for v in verdicts)
        status = "OK" if all(v.ok for v in verdicts) else "FAIL"
        index = model.stack.layer(layer).index
        print(f"   layer {index:2d} {layer:12s} "
              f"{len(verdicts):2d} functions, {checked:5d} checks  "
              f"[{status}]")
    assert report.ok

    print("== stage 6: flat -> tree refinement ==")
    layout = model.layout
    state = flat_initial_state(TINY, layout.pt_pool_base,
                               layout.epc_base - layout.pt_pool_base)
    root, state = flat_alloc_frame(state)
    tree = tree_empty(TINY)
    for page_no in (0, 1, 17, 42):
        before = state.bitmap
        state = flat_map_page(state, root, page_no * PAGE,
                              (page_no % 8) * PAGE, pte.leaf_flags())
        created = [TINY.frame_base(layout.pt_pool_base + i)
                   for i, (a, b) in enumerate(zip(before, state.bitmap))
                   if b and not a]
        tree = tree_map_page(tree, page_no * PAGE, (page_no % 8) * PAGE,
                             pte.leaf_flags(), TINY,
                             new_table_addrs=created)
    assert relation_r(tree, state, root)
    assert abstract_table(state, root) == tree
    print("   R(tree, flat) holds and α(flat) == tree")
    print("pipeline complete — all stages green.")


if __name__ == "__main__":
    main()
