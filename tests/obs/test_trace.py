"""The tracer itself: ring, nesting, adoption, hooks, validation.

Everything here is pure :mod:`repro.obs.trace` — no instrumented
subsystem runs, so these tests pin the recorder's own contract:
record shapes, eviction, orphan-closing, id remapping on adoption,
and the disabled-path hooks being true no-ops.
"""

import pytest

from repro.obs import trace as trace_mod
from repro.obs.trace import Tracer, validate_jsonl, validate_records


class StepClock:
    """A deterministic clock: every read advances by one."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestTracer:
    def test_ring_evicts_oldest_first(self):
        tracer = Tracer(ring=4)
        for index in range(10):
            tracer.event(f"e{index}", {})
        assert len(tracer.records) == 4
        assert [r["name"] for r in tracer.records] == \
            ["e6", "e7", "e8", "e9"]

    def test_ring_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(ring=0)

    def test_span_nesting_and_event_attachment(self):
        tracer = Tracer(clock=StepClock())
        outer = tracer.begin_span("outer", {})
        inner = tracer.begin_span("inner", {"depth": 2})
        tracer.event("hit", {"k": 1})
        tracer.end_span(inner)
        tracer.event("after", {})
        tracer.end_span(outer)
        # Completed records appear innermost-first.
        assert [(r["type"], r["name"]) for r in tracer.records] == \
            [("event", "hit"), ("span", "inner"),
             ("event", "after"), ("span", "outer")]
        by_name = {r["name"]: r for r in tracer.records}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["hit"]["span"] == by_name["inner"]["id"]
        assert by_name["after"]["span"] == by_name["outer"]["id"]
        assert by_name["inner"]["t0"] < by_name["inner"]["t1"]
        validate_records(tracer.records)

    def test_end_span_closes_orphans_inside(self):
        tracer = Tracer(clock=StepClock())
        outer = tracer.begin_span("outer", {})
        tracer.begin_span("inner", {})       # a return path skipped it
        tracer.end_span(outer)
        by_name = {r["name"]: r for r in tracer.records}
        assert by_name["inner"]["t1"] == by_name["outer"]["t1"]
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        validate_records(tracer.records)

    def test_close_ends_open_spans_and_sink(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(jsonl=path)
        tracer.begin_span("open", {})
        tracer.event("inside", {})
        tracer.close()
        assert validate_jsonl(path) == 2

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with Tracer(jsonl=path) as tracer:
            with trace_mod.installed(tracer):
                with trace_mod.span("work"):
                    trace_mod.event("step", n=1)
        assert validate_jsonl(path) == 2

    def test_export_is_a_copy(self):
        tracer = Tracer()
        tracer.event("only", {})
        exported = tracer.export()
        exported[0]["name"] = "mutated"
        assert tracer.records[0]["name"] == "only"

    def test_adopt_remaps_ids_under_current_span(self):
        worker = Tracer()
        unit = worker.begin_span("unit", {"index": 0})
        worker.event("inside", {})
        worker.end_span(unit)
        parent = Tracer()
        top = parent.begin_span("map", {})
        parent.adopt(worker.export())
        parent.end_span(top)
        by_name = {r["name"]: r for r in parent.records}
        assert by_name["unit"]["parent"] == by_name["map"]["id"]
        assert by_name["inside"]["span"] == by_name["unit"]["id"]
        # Adopted ids landed in the parent's id space, no collisions.
        validate_records(parent.records)

    def test_adopting_two_workers_yields_unique_ids(self):
        exports = []
        for index in range(2):
            worker = Tracer()
            span = worker.begin_span("unit", {"index": index})
            worker.event("inside", {})
            worker.end_span(span)
            exports.append(worker.export())
        parent = Tracer()
        for export in exports:
            parent.adopt(export)
        validate_records(parent.records)
        indices = [r["attrs"]["index"] for r in parent.records
                   if r["name"] == "unit"]
        assert indices == [0, 1]


class TestHooks:
    def test_disabled_hooks_are_noops(self):
        assert not trace_mod.enabled()
        assert trace_mod.active_tracer() is None
        with trace_mod.span("nothing", k=1) as opened:
            assert opened is None
        trace_mod.event("nothing", k=1)      # must not raise

    def test_installed_hooks_record_and_restore(self):
        tracer = Tracer()
        with trace_mod.installed(tracer):
            assert trace_mod.enabled()
            assert trace_mod.active_tracer() is tracer
            with trace_mod.span("outer", name="x"):
                trace_mod.event("ping", name="y", value=3)
        assert not trace_mod.enabled()
        assert [r["name"] for r in tracer.records] == ["ping", "outer"]
        # ``name`` stays usable as an attribute key (the hook's own
        # positional parameter is underscore-prefixed for this).
        assert tracer.records[0]["attrs"] == {"name": "y", "value": 3}
        assert tracer.records[1]["attrs"] == {"name": "x"}

    def test_install_returns_previous(self):
        first, second = Tracer(), Tracer()
        assert trace_mod.install(first) is None
        assert trace_mod.install(second) is first
        assert trace_mod.install(None) is second
        assert not trace_mod.enabled()


class TestValidation:
    @staticmethod
    def _one_event():
        return {"type": "event", "id": 0, "span": None, "name": "e",
                "t": 0.0, "attrs": {}}

    def test_accepts_a_complete_trace(self):
        tracer = Tracer()
        with trace_mod.installed(tracer):
            with trace_mod.span("a"):
                trace_mod.event("b")
        assert validate_records(tracer.records) == 2

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown type"):
            validate_records([{"type": "mystery", "id": 0}])

    def test_rejects_wrong_keys(self):
        record = self._one_event()
        del record["t"]
        with pytest.raises(ValueError, match="keys"):
            validate_records([record])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="reuses id"):
            validate_records([self._one_event(), self._one_event()])

    def test_rejects_dangling_references(self):
        record = self._one_event()
        record["span"] = 99
        with pytest.raises(ValueError, match="names no span"):
            validate_records([record])

    def test_rejects_invalid_jsonl(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_jsonl(str(path))
