"""The per-structure lock model of the multi-vCPU monitor.

RustMonitor's shared state decomposes into independently lockable
structures, each with a fixed rank in one global acquisition order:

======================  =============================================
lock name               guards
======================  =============================================
``enclaves``            the ``eid -> Enclave`` directory + ``_next_eid``
``enclave:{eid}``       one enclave's mutable fields and its GPT/EPT
``epcm``                the EPC page-state map
``frames``              the page-table frame allocator bitmap
======================  =============================================

Every hypercall pre-declares the locks it needs (strict two-phase
locking: all acquires up front in rank order, all releases at hypercall
return), which makes deadlock impossible by construction and makes the
three discipline rules checkable:

1. **global lock order** — acquires must be strictly rank-ascending
   within one hypercall,
2. **no hold-across-hypercall-return** — the lock set must be empty
   whenever a vCPU is between hypercalls,
3. **writes only under the owning lock** — every mutation entry point
   of a guarded structure asserts its lock is held by the executing
   vCPU.

The :class:`LockManager` enforces blocking/mutual exclusion always; the
*discipline* rules are recorded (campaign mode, the default — so a
buggy monitor keeps running and its downstream damage stays observable)
or raised as :class:`~repro.errors.LockProtocolViolation` (strict
mode).
"""

from typing import Dict, List, Optional, Tuple

from repro.errors import LockProtocolViolation
from repro.obs import trace as _trace

LOCK_ENCLAVES = "enclaves"
LOCK_EPCM = "epcm"
LOCK_FRAMES = "frames"

_RANK_CLASS = {LOCK_ENCLAVES: 1, LOCK_EPCM: 3, LOCK_FRAMES: 4}


def enclave_lock(eid) -> str:
    """The lock guarding enclave ``eid``'s fields and page tables."""
    return f"enclave:{eid}"


def lock_rank(name) -> Tuple[int, int]:
    """Position of ``name`` in the global lock order (totally ordered)."""
    if name.startswith("enclave:"):
        return (2, int(name.split(":", 1)[1]))
    try:
        return (_RANK_CLASS[name], 0)
    except KeyError:
        raise ValueError(f"unknown lock {name!r}")


def order_locks(names) -> List[str]:
    """Deduplicate and sort ``names`` into global acquisition order."""
    return sorted(set(names), key=lock_rank)


class LockManager:
    """Mutual exclusion plus the three-rule discipline checker.

    Mutual exclusion is always enforced (``would_block`` /
    ``acquire``); discipline breaches are appended to ``violations``
    unless ``strict`` is set, in which case they raise immediately.
    """

    def __init__(self, strict=False):
        self.strict = strict
        self._owner: Dict[str, int] = {}          # lock -> vid
        self._held: Dict[int, List[str]] = {}     # vid -> locks, in order
        self.violations: List[LockProtocolViolation] = []
        self.acquisitions = 0
        self.contentions = 0

    # -- queries ------------------------------------------------------------------

    def owner_of(self, name) -> Optional[int]:
        return self._owner.get(name)

    def holds(self, vid, name) -> bool:
        return self._owner.get(name) == vid

    def held_by(self, vid) -> Tuple[str, ...]:
        return tuple(self._held.get(vid, ()))

    def any_held(self) -> bool:
        return bool(self._owner)

    def would_block(self, vid, name) -> bool:
        """Is ``name`` held by a *different* vCPU than ``vid``?"""
        owner = self._owner.get(name)
        return owner is not None and owner != vid

    # -- transitions -----------------------------------------------------------------

    def acquire(self, vid, name):
        """Take a free (or re-entered) lock; checks the global order."""
        if self.would_block(vid, name):
            raise RuntimeError(       # scheduler bug, not a model error
                f"acquire of contended lock {name!r} by vCPU {vid}")
        held = self._held.setdefault(vid, [])
        if name in held:
            return
        if held and lock_rank(name) <= lock_rank(held[-1]):
            self._violate("lock-order", vid,
                          f"acquired {name!r} while holding "
                          f"{held[-1]!r} (rank order is "
                          f"{' < '.join(order_locks(held + [name]))})")
        self._owner[name] = vid
        held.append(name)
        self.acquisitions += 1
        _trace.event("lock.acquire", vid=vid, lock=name,
                     held=len(held))

    def release_all(self, vid) -> Tuple[str, ...]:
        """Drop every lock ``vid`` holds (the hypercall-return bulk
        release of strict two-phase locking)."""
        released = tuple(self._held.pop(vid, ()))
        for name in released:
            del self._owner[name]
        return released

    # -- discipline checks ------------------------------------------------------------

    def check_mutation(self, vid, name):
        """Rule 3: a guarded structure is being mutated by ``vid``."""
        if not self.holds(vid, name):
            self._violate(
                "unlocked-mutation", vid,
                f"mutated {name!r}-guarded state while holding "
                f"{list(self.held_by(vid)) or 'no locks'}")

    def check_none_held(self, vid, where):
        """Rule 2: ``vid`` sits outside any hypercall."""
        held = self.held_by(vid)
        if held:
            self._violate("hold-across-return", vid,
                          f"still holds {list(held)} at {where}")

    def _violate(self, rule, vid, message):
        violation = LockProtocolViolation(rule, vid, message)
        if self.strict:
            raise violation
        self.violations.append(violation)
