"""A small exact solver over bounded domains.

No SMT backend is available offline, so satisfiability is decided by
*exhaustive model enumeration* over explicitly bounded variable domains,
after a pruning pass that narrows domains using the unary comparisons in
the constraint set.  Within the supplied domains the answers are exact:
``check_sat`` returns a genuine model or proves none exists, and
``must_hold`` is a real bounded proof.

This is precisely the "informal symbolic checking" level of assurance
the reproduction targets: universally-quantified claims hold *for the
explored domain*, not for all 2^64 inputs.
"""

import itertools

from repro.symbolic.terms import App, Const, SymVar, evaluate, term_vars

DEFAULT_ENUMERATION_LIMIT = 2_000_000


class Domains:
    """Explicit finite domains for symbolic variables.

    ``Domains({"x": range(16), "flag": (True, False)})``.  Every variable
    appearing in the constraints must be covered.
    """

    def __init__(self, mapping=None):
        self._mapping = {k: tuple(v) for k, v in (mapping or {}).items()}

    def of(self, name):
        try:
            return self._mapping[name]
        except KeyError:
            raise KeyError(
                f"no domain declared for symbolic variable {name!r}")

    def names(self):
        return sorted(self._mapping)

    def restrict(self, name, predicate):
        """A new Domains with ``name`` filtered by ``predicate``."""
        new_mapping = dict(self._mapping)
        new_mapping[name] = tuple(v for v in self.of(name) if predicate(v))
        return Domains(new_mapping)

    def size(self, names):
        """Product of the domain sizes over ``names``."""
        total = 1
        for name in names:
            total *= max(len(self.of(name)), 1)
        return total

    def with_var(self, name, values):
        """A new Domains binding ``name`` to ``values``."""
        new_mapping = dict(self._mapping)
        new_mapping[name] = tuple(values)
        return Domains(new_mapping)


def prune_domains(constraints, domains):
    """Narrow domains using unary constraints (``x <op> const``).

    Sound: only removes values that falsify some constraint on their own,
    so the model set is unchanged.
    """
    pruned = domains
    for constraint in constraints:
        unary = _as_unary(constraint)
        if unary is None:
            continue
        name, predicate = unary
        try:
            pruned = pruned.restrict(name, predicate)
        except KeyError:
            pass
    return pruned


def _as_unary(term):
    """Recognise ``cmp(var, const)`` / ``cmp(const, var)`` / ``not(...)``."""
    negated = False
    while isinstance(term, App) and term.op == "not":
        negated = not negated
        term = term.args[0]
    if not isinstance(term, App) or term.op not in (
            "eq", "ne", "lt", "le", "gt", "ge"):
        return None
    left, right = term.args
    if isinstance(left, SymVar) and isinstance(right, Const):
        name, const, flipped = left.name, right.value, False
    elif isinstance(left, Const) and isinstance(right, SymVar):
        name, const, flipped = right.name, left.value, True
    else:
        return None
    op = term.op
    if flipped:
        op = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le",
              "eq": "eq", "ne": "ne"}[op]
    tests = {
        "eq": lambda v: v == const,
        "ne": lambda v: v != const,
        "lt": lambda v: v < const,
        "le": lambda v: v <= const,
        "gt": lambda v: v > const,
        "ge": lambda v: v >= const,
    }
    base = tests[op]
    if negated:
        return name, (lambda v: not base(v))
    return name, base


def enumerate_models(constraints, domains, limit=DEFAULT_ENUMERATION_LIMIT,
                     required_vars=()):
    """Yield every model (dict) of the conjunction, up to ``limit``
    candidate assignments examined.

    ``required_vars`` forces enumeration over variables even when no
    constraint mentions them — needed when the caller evaluates other
    terms (e.g. return values) under the models.
    """
    constraints = tuple(constraints)
    names = set(required_vars)
    for constraint in constraints:
        term_vars(constraint, names)
    names = sorted(names)
    pruned = prune_domains(constraints, domains)
    if pruned.size(names) > limit:
        raise OverflowError(
            f"enumeration space {pruned.size(names)} exceeds limit {limit}; "
            f"shrink the domains or raise the limit")
    value_lists = [pruned.of(name) for name in names]
    for combo in itertools.product(*value_lists):
        model = dict(zip(names, combo))
        if all(evaluate(c, model) for c in constraints):
            yield model


def check_sat(constraints, domains, limit=DEFAULT_ENUMERATION_LIMIT):
    """The first model of the conjunction, or None if unsatisfiable
    within the domains."""
    for model in enumerate_models(constraints, domains, limit):
        return model
    return None


def must_hold(prop, constraints, domains, limit=DEFAULT_ENUMERATION_LIMIT):
    """Bounded validity: no model of ``constraints`` falsifies ``prop``.

    Returns ``(True, None)`` or ``(False, countermodel)``.
    """
    from repro.symbolic.terms import simplify
    negated = simplify("not", (prop,), None)
    model = check_sat(tuple(constraints) + (negated,), domains, limit)
    if model is None:
        return True, None
    return False, model
