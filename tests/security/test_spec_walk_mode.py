"""Sec. 5.1's page-walk reuse: the transition system can resolve
enclave accesses through the verified *specification* walk, and it must
behave identically to the hardware walker — the observable payoff of
the refinement proofs."""

import pytest

from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import HOST_ID
from repro.security import (
    DataOracle, Hypercall, LocalCompute, MemLoad, MemStore, SystemState,
    apply_step, apply_trace,
)
from repro.security.transitions import spec_walk_enclave

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


def paired_states(secret=0x41, pages=2):
    hw = SystemState(build_enclave_world(secret=secret, pages=pages)[0],
                     oracle=DataOracle.seeded(6))
    spec = SystemState(build_enclave_world(secret=secret, pages=pages)[0],
                       oracle=DataOracle.seeded(6), use_spec_walk=True)
    return hw, spec


class TestSpecWalkAgreement:
    def test_spec_walk_resolves_like_hardware(self):
        monitor, _app, eid = build_enclave_world(secret=1, pages=2)
        for va in (16 * PAGE, 17 * PAGE, 12 * PAGE):
            assert spec_walk_enclave(monitor, eid, va) == \
                monitor.enclave_translate(eid, va)

    def test_spec_walk_faults_like_hardware(self):
        monitor, _app, eid = build_enclave_world()
        assert spec_walk_enclave(monitor, eid, 0) is None
        assert spec_walk_enclave(monitor, eid, 40 * PAGE) is None

    def test_identical_traces_identical_outcomes(self):
        hw, spec = paired_states()
        eid = 1
        trace = [
            Hypercall(HOST_ID, "enter", (eid,)),
            MemLoad(eid, 16 * PAGE, "rax"),
            LocalCompute(eid, "rbx", op="copy", src1="rax"),
            MemStore(eid, 17 * PAGE, "rbx"),
            MemLoad(eid, 17 * PAGE, "rcx"),
            MemLoad(eid, 12 * PAGE, "rdx"),       # mbuf via oracle
            MemLoad(eid, 40 * PAGE, "rsi"),       # fault: no-op
            Hypercall(eid, "exit", (eid,)),
        ]
        hw_outcomes = apply_trace(hw, trace)
        spec_outcomes = apply_trace(spec, trace)
        for hw_outcome, spec_outcome in zip(hw_outcomes, spec_outcomes):
            assert hw_outcome.applied == spec_outcome.applied
            assert hw_outcome.result == spec_outcome.result
        assert hw.monitor.phys.snapshot() == spec.monitor.phys.snapshot()
        assert hw.monitor.vcpu.context() == spec.monitor.vcpu.context()

    def test_spec_walk_refuses_malformed_tables(self):
        """On the shallow-copy monitor the spec walk cannot even
        abstract the tables — accesses become faults, which is the safe
        direction (deny by unprovability)."""
        from repro.hyperenclave.buggy import ShallowCopyMonitor
        monitor = ShallowCopyMonitor(TINY)
        primary_os = monitor.primary_os
        app = primary_os.spawn_app(1)
        primary_os.app_map_data(app, 16 * PAGE)
        mbuf = TINY.frame_base(primary_os.reserve_data_frame())
        eid = monitor.hc_create_from_app(app, 16 * PAGE, 2 * PAGE,
                                         4 * PAGE, mbuf, PAGE)
        assert spec_walk_enclave(monitor, eid, 16 * PAGE) is None

    def test_noninterference_holds_in_spec_mode(self):
        from repro.security.noninterference import (
            TwoWorlds, check_theorem_noninterference,
        )
        def world(secret):
            return SystemState(build_enclave_world(secret=secret)[0],
                               oracle=DataOracle.seeded(9),
                               use_spec_walk=True)
        worlds = TwoWorlds(world(41), world(42))
        eid = 1
        trace = [
            Hypercall(HOST_ID, "enter", (eid,)),
            (MemLoad(eid, 16 * PAGE, "rax"),
             MemLoad(eid, 16 * PAGE, "rax")),
            (Hypercall(eid, "exit", (eid,)),
             Hypercall(eid, "exit", (eid,))),
        ]
        assert check_theorem_noninterference(worlds, trace,
                                             observers=[HOST_ID]) == []
