"""Fingerprint soundness: the memo key sees every mutation.

The memoised checkers are only sound if *any* state change a worker's
execution can make lands in some structure fingerprint.  Hypothesis
drives the two mutation planes the monitor exposes — raw physical
memory writes and the lock-guarded structure paths exercised by the
hypercall surface — and requires the fingerprints to move every time,
with :func:`~repro.engine.fingerprint.dirty_structures` naming the
right structure.  Determinism across rebuilds and clones is pinned
too: a fingerprint that drifted between a prototype and its clone
would silently poison every cache hit.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.fingerprint import (
    STRUCTURES,
    dirty_structures,
    fingerprint,
    state_fingerprint,
    structure_fingerprints,
    structure_versions,
)
from repro.faults.campaign import (
    build_interleaved_world,
    default_workload,
    default_world_factory,
)
from repro.hyperenclave.constants import TINY

WORKLOAD = default_workload()


@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_any_phys_write_changes_the_fingerprint(data):
    monitor, _ctx = default_world_factory()()
    frame = data.draw(st.integers(0, 30), label="frame")
    offset = data.draw(st.integers(0, TINY.words_per_page - 1),
                       label="word")
    paddr = TINY.frame_base(frame) + offset * 8
    value = data.draw(
        st.integers(1, (1 << 64) - 1).filter(
            lambda v: v != monitor.phys.read_word(paddr)),
        label="value")
    before = structure_fingerprints(monitor)
    monitor.phys.write_word(paddr, value)
    after = structure_fingerprints(monitor)
    assert dirty_structures(before, after) == ("phys",)
    assert fingerprint(monitor, after) != fingerprint(monitor, before)


@given(prefix=st.integers(1, len(WORKLOAD)))
@settings(max_examples=len(WORKLOAD), deadline=None)
def test_every_hypercall_of_a_random_prefix_moves_the_fingerprint(prefix):
    monitor, ctx = default_world_factory()()
    fps = structure_fingerprints(monitor)
    last = fingerprint(monitor, fps)
    for _name, invoke in WORKLOAD[:prefix]:
        invoke(monitor, ctx)
        fps = structure_fingerprints(monitor)
        combined = fingerprint(monitor, fps)
        # every hypercall mutates some covered structure, so the
        # combined fingerprint must move step over step (a *revisit*
        # of an earlier state — aug then trim — is legal; a missed
        # mutation is not)
        assert combined != last
        last = combined


def test_lock_structure_paths_name_their_structure():
    monitor, ctx = default_world_factory()()
    before = structure_fingerprints(monitor)
    monitor.pt_allocator.alloc()
    after = structure_fingerprints(monitor)
    assert dirty_structures(before, after) == ("frames",)
    before = after
    monitor.cpus[0].vcpu.write_reg("rax", 0xC0FFEE)
    after = structure_fingerprints(monitor)
    assert dirty_structures(before, after) == ("cpus",)


@given(prefix=st.integers(0, len(WORKLOAD)))
@settings(max_examples=6, deadline=None)
def test_fingerprints_are_stable_across_rebuilds(prefix):
    """Two independently built worlds running the same prefix agree on
    every structure fingerprint — the cross-run half of the memo-key
    contract (cross-*process* stability rides on the same canonical
    encoding plus the executor's forked workers)."""
    results = []
    for _ in range(2):
        monitor, ctx = default_world_factory()()
        for _name, invoke in WORKLOAD[:prefix]:
            invoke(monitor, ctx)
        results.append(structure_fingerprints(monitor))
    assert results[0] == results[1]


def test_clone_preserves_every_fingerprint():
    state, _ctx = build_interleaved_world()
    clone = state.clone()
    assert (structure_fingerprints(clone.monitor)
            == structure_fingerprints(state.monitor))
    assert state_fingerprint(clone) == state_fingerprint(state)


def test_structure_list_matches_fingerprint_dict():
    monitor, _ctx = default_world_factory()()
    fps = structure_fingerprints(monitor)
    assert tuple(fps) == STRUCTURES


@given(prefix=st.integers(0, len(WORKLOAD)))
@settings(max_examples=6, deadline=None)
def test_cloned_clean_fingerprints_match_recomputation(prefix):
    """The version-keyed fingerprint cache carried across ``clone()``
    is sound: for structures the clone has not touched, the cached
    fingerprint equals a cold recomputation — and a mutation after the
    clone (version bump) invalidates it."""
    monitor, ctx = default_world_factory()()
    for _name, invoke in WORKLOAD[:prefix]:
        invoke(monitor, ctx)
    warm = structure_fingerprints(monitor)   # populates the cache
    clone = monitor.clone()
    cached = structure_fingerprints(clone)   # served from the carried cache
    clone._fp_cache = {}
    cold = structure_fingerprints(clone)     # recomputed from content
    assert cached == cold == warm
    paddr = TINY.frame_base(0)
    clone.phys.write_word(paddr,
                          clone.phys.read_word(paddr) ^ 0xDEAD)
    moved = structure_fingerprints(clone)
    assert moved["phys"] != cold["phys"]
    # the original's cache is untouched by the clone's mutation
    assert structure_fingerprints(monitor) == warm


def test_structure_versions_advance_on_mutation():
    """Version counters are monotone per mutation plane and survive
    ``clone()`` unchanged (the COW-sharing precondition)."""
    monitor, _ctx = default_world_factory()()
    before = structure_versions(monitor)
    assert structure_versions(monitor.clone()) == before
    monitor.phys.write_word(TINY.frame_base(1), 0x1234)
    monitor.pt_allocator.alloc()
    after = structure_versions(monitor)
    assert after["phys"] > before["phys"]
    assert after["frames"] > before["frames"]
    assert after["epcm"] == before["epcm"]
