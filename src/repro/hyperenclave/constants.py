"""Machine geometry and memory-layout constants.

The paper hardcodes HyperEnclave's memory-layout constants during
retrofitting (Sec. 2.3 rule 4, replacing ``lazy_static``); we follow
suit: a :class:`MemoryLayout` is computed once from a
:class:`MachineConfig` and then treated as plain constants everywhere.

Two geometries ship:

* :data:`X86_64` — the production shape: 4 paging levels, 9 index bits
  per level (512-entry tables), 4 KiB pages, 64-bit entries.
* :data:`TINY` — a checkable shape: 3 levels, 2 index bits (4-entry
  tables), 32-byte pages, 11-bit virtual addresses.  Small enough that
  invariant and noninterference checks can sweep the whole space, large
  enough that every structural behaviour (multi-level walks, intermediate
  allocation, aliasing) is exercised.
"""

from dataclasses import dataclass, field

from repro.hyperenclave.archspec import (ArchSpec, X86_SPEC, VMSAV8_SPEC,
                                         SPECS_BY_NAME)

WORD_BYTES = 8


class PteFlagBits:
    """Bit positions of the page-table-entry flags (x86 EPT-style)."""

    PRESENT = 0
    WRITE = 1
    USER = 2
    ACCESSED = 5
    DIRTY = 6
    HUGE = 7
    NX = 63

    ALL = (PRESENT, WRITE, USER, ACCESSED, DIRTY, HUGE, NX)

    NAMES = {
        PRESENT: "P", WRITE: "W", USER: "U",
        ACCESSED: "A", DIRTY: "D", HUGE: "H", NX: "NX",
    }


@dataclass(frozen=True)
class MachineConfig:
    """Paging geometry.

    ``page_bits`` — log2 of the page size in bytes;
    ``index_bits`` — log2 of entries per table (each entry 8 bytes);
    ``levels`` — number of paging levels (level ``levels`` is the root,
    level 1 entries are terminal);
    ``phys_frames`` — total physical memory in frames.
    """

    name: str
    page_bits: int
    index_bits: int
    levels: int
    phys_frames: int
    #: PTE field layout and permission semantics (default: x86-64 EPT).
    arch: ArchSpec = field(default=X86_SPEC)

    def __post_init__(self):
        entry_bytes = (1 << self.index_bits) * WORD_BYTES
        if entry_bytes > self.page_size:
            raise ValueError(
                f"{self.name}: a table ({entry_bytes} B) must fit in a "
                f"page ({self.page_size} B)")
        if self.page_bits < 8:
            # The PTE address field starts at page_bits; the x86 flag
            # layout (HUGE at bit 7) must sit strictly below it.
            raise ValueError(
                f"{self.name}: page_bits must be >= 8 so the flag bits "
                f"(0..7) stay out of the address field")
        low_flags = self.arch.flags_mask() & ((1 << 64) - 1)
        if low_flags & self.addr_mask():
            raise ValueError(
                f"{self.name}: {self.arch.name} flag bits "
                f"{low_flags & self.addr_mask():#x} collide with the "
                f"address field [bit {self.page_bits}..{self.arch.output_bits})")

    # -- sizes ----------------------------------------------------------------

    @property
    def page_size(self):
        return 1 << self.page_bits

    @property
    def entries_per_table(self):
        return 1 << self.index_bits

    @property
    def va_bits(self):
        return self.page_bits + self.index_bits * self.levels

    @property
    def va_space(self):
        return 1 << self.va_bits

    @property
    def phys_bytes(self):
        return self.phys_frames * self.page_size

    @property
    def words_per_page(self):
        return self.page_size // WORD_BYTES

    # -- address arithmetic (the pure helpers the MIR corpus mirrors) ------------

    def page_offset(self, addr):
        return addr & (self.page_size - 1)

    def page_base(self, addr):
        return addr & ~(self.page_size - 1)

    def frame_of(self, paddr):
        return paddr >> self.page_bits

    def frame_base(self, frame):
        return frame << self.page_bits

    def entry_index(self, va, level):
        """The table index used at paging ``level`` (levels..1) for ``va``."""
        if not 1 <= level <= self.levels:
            raise ValueError(f"level {level} out of range")
        shift = self.page_bits + self.index_bits * (level - 1)
        return (va >> shift) & (self.entries_per_table - 1)

    def level_span(self, level):
        """Bytes of VA space one entry covers at ``level``."""
        return 1 << (self.page_bits + self.index_bits * (level - 1))

    def addr_mask(self):
        """Mask selecting the physical-frame bits of a PTE (bits
        ``page_bits..arch.output_bits-1`` — 51 on x86-64, 47 on
        VMSAv8-64; the width is an arch-spec parameter, not a
        hardcoded x86-ism)."""
        return self.arch.addr_mask(self.page_bits)

    def canonical_va(self, va):
        return va & (self.va_space - 1)


X86_64 = MachineConfig(name="x86_64", page_bits=12, index_bits=9,
                       levels=4, phys_frames=1 << 20)

# The same production geometry under VMSAv8-64 semantics: 4 KiB granule,
# 4 levels, 48-bit output addresses, AP[2:1]/AF/UXN/APTable flags.
VMSA8_64 = MachineConfig(name="vmsa8_64", page_bits=12, index_bits=9,
                         levels=4, phys_frames=1 << 20, arch=VMSAV8_SPEC)

# 4 levels like x86-64, 4-entry tables, 256 B pages, 16-bit VA space.
# The VA space (64 KiB) strictly contains the physical space (32 KiB),
# so out-of-range guest-physical addresses fault instead of wrapping.
TINY = MachineConfig(name="tiny", page_bits=8, index_bits=2,
                     levels=4, phys_frames=128)

# The checkable shape under VMSAv8-64 semantics.  The AF flag lives at
# bit 10, so the page size must be at least 2 KiB (page_bits >= 11) for
# the address field to clear the flag bits — itself an arch-spec fact
# the config validator now checks.
TINY_ARM = MachineConfig(name="tiny_arm", page_bits=11, index_bits=2,
                         levels=4, phys_frames=128, arch=VMSAV8_SPEC)

#: The per-arch campaign matrix: each checkable geometry paired with its
#: production-shape counterpart.
ARCH_CONFIGS = {"x86_64": TINY, "vmsav8_64": TINY_ARM}


@dataclass(frozen=True)
class MemoryLayout:
    """The boot-time split of physical memory (Fig. 1's red secure box).

    ``[0, secure_base)``                      — untrusted (primary OS) memory
    ``[secure_base, pt_pool_base)``           — RustMonitor image & data
    ``[pt_pool_base, epc_base)``              — page-table frame pool
    ``[epc_base, phys_end)``                  — EPC (enclave page cache)

    All bounds are frame numbers.  The layout is validated on
    construction; a HyperEnclave instance treats it as hardcoded
    constants (Sec. 2.3 rule 4).
    """

    config: MachineConfig
    secure_base: int
    pt_pool_base: int
    epc_base: int

    def __post_init__(self):
        if not (0 < self.secure_base <= self.pt_pool_base
                <= self.epc_base <= self.config.phys_frames):
            raise ValueError("memory layout bounds out of order")

    @staticmethod
    def compact_for(config, pt_pool_frames=32, epc_frames=30,
                    monitor_frames=2):
        """A layout with a *small* secure region at the top of memory.

        On the x86-64 geometry the default half-memory split would give
        the page-table pool hundreds of thousands of frames — correct,
        but needlessly heavy for the checking engines (the allocation
        bitmap lives in immutable abstract states).  ``compact_for``
        keeps the full untrusted expanse while bounding the secure
        bookkeeping, like a HyperEnclave boot parameterised with a small
        reserved region.
        """
        secure = monitor_frames + pt_pool_frames + epc_frames
        secure_base = config.phys_frames - secure
        return MemoryLayout(
            config=config, secure_base=secure_base,
            pt_pool_base=secure_base + monitor_frames,
            epc_base=secure_base + monitor_frames + pt_pool_frames)

    @staticmethod
    def default_for(config, secure_fraction=0.5, monitor_frames=2,
                    pt_fraction=0.6):
        """The boot layout: the top ``secure_fraction`` of memory is
        reserved, the monitor image takes ``monitor_frames``, and the
        remaining secure frames split between page-table pool and EPC."""
        secure_base = config.phys_frames - int(
            config.phys_frames * secure_fraction)
        pt_pool_base = secure_base + monitor_frames
        secure_left = config.phys_frames - pt_pool_base
        epc_base = pt_pool_base + max(int(secure_left * pt_fraction), 1)
        return MemoryLayout(config=config, secure_base=secure_base,
                            pt_pool_base=pt_pool_base, epc_base=epc_base)

    # -- regions (frame-number ranges) ---------------------------------------------

    @property
    def untrusted_frames(self):
        return range(0, self.secure_base)

    @property
    def monitor_frames(self):
        return range(self.secure_base, self.pt_pool_base)

    @property
    def pt_pool_frames(self):
        return range(self.pt_pool_base, self.epc_base)

    @property
    def epc_frames(self):
        return range(self.epc_base, self.config.phys_frames)

    @property
    def secure_frames(self):
        return range(self.secure_base, self.config.phys_frames)

    # -- classification -----------------------------------------------------------

    def is_untrusted(self, frame):
        return 0 <= frame < self.secure_base

    def is_secure(self, frame):
        return self.secure_base <= frame < self.config.phys_frames

    def is_pt_pool(self, frame):
        return self.pt_pool_base <= frame < self.epc_base

    def is_epc(self, frame):
        return self.epc_base <= frame < self.config.phys_frames

    def epc_index(self, frame):
        """Index of an EPC frame into the EPCM array."""
        if not self.is_epc(frame):
            raise ValueError(f"frame {frame} is not in the EPC")
        return frame - self.epc_base

    @property
    def epc_size(self):
        return self.config.phys_frames - self.epc_base
