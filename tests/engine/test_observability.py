"""Worker config, worker stats shipping, worker span re-parenting.

Three fabric-level observability contracts:

* ``resolve_workers`` rejects a malformed ``REPRO_CHECK_WORKERS`` with
  a typed :class:`~repro.errors.ConfigError` naming the variable (it
  used to leak ``int()``'s raw ``ValueError``, which named neither the
  knob nor the fix);
* per-worker solver counters ship back with shard results and merge,
  so a sharded campaign's aggregate solver statistics equal the
  sequential run's (they used to read only the parent's counters and
  undercount by exactly the pool's work);
* worker trace spans re-parent deterministically — the assembled trace
  is a pure function of the unit list, not of worker count.
"""

import pytest

from repro import fastpath
from repro.engine import (
    ShardedExecutor,
    parallel_pure_check_grid,
    sequential_pure_check_grid,
)
from repro.engine.executor import WORKERS_ENV, resolve_workers
from repro.errors import ConfigError, ReproError
from repro.obs import trace as trace_mod
from repro.symbolic import clear_solver_caches, solver_stats, stats_delta

NAMES = ["entry_index", "align_page_down", "pte_flags", "level_span"]


class TestResolveWorkers:
    def test_explicit_argument_beats_a_broken_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "banana")
        assert resolve_workers(3) == 3

    def test_unset_env_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() >= 1

    def test_empty_env_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "")
        assert resolve_workers() >= 1

    def test_valid_env_is_used(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert resolve_workers() == 2

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_nonpositive_env_raises_config_error(self, monkeypatch,
                                                 value):
        monkeypatch.setenv(WORKERS_ENV, value)
        with pytest.raises(ConfigError) as excinfo:
            resolve_workers()
        message = str(excinfo.value)
        assert WORKERS_ENV in message
        assert value in message
        assert ">= 1" in message

    def test_non_integer_env_raises_config_error(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "banana")
        with pytest.raises(ConfigError) as excinfo:
            resolve_workers()
        message = str(excinfo.value)
        assert WORKERS_ENV in message
        assert "banana" in message
        assert "not an integer" in message

    def test_config_error_is_a_repro_error(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "banana")
        with pytest.raises(ReproError):
            resolve_workers()


class TestWorkerStatsShipping:
    def test_parallel_solver_stats_equal_sequential(self):
        """The stats-accounting regression: a sharded grid's aggregate
        solver counters must match the sequential run exactly.

        Runs under the naive engines — with the fast path on, solver
        memo counters depend on cache warmth, which fork inheritance
        makes a function of pool history rather than of the grid.
        """
        grid = dict(fake_clock=True, seed=0)
        with fastpath.disabled():
            clear_solver_caches()
            before = solver_stats()
            seq = sequential_pure_check_grid(NAMES, **grid)
            seq_delta = stats_delta(before)

            clear_solver_caches()
            before = solver_stats()
            # Fresh pool: workers fork here, inheriting cleared caches.
            with ShardedExecutor(4) as pool:
                par = parallel_pure_check_grid(NAMES, **grid,
                                               executor=pool)
            par_delta = stats_delta(before)
        assert repr(par) == repr(seq)
        assert par_delta == seq_delta
        assert par_delta["check_sat_calls"] > 0

    def test_per_report_solver_stats_survive_sharding(self):
        with fastpath.disabled():
            with ShardedExecutor(2) as pool:
                reports = parallel_pure_check_grid(NAMES,
                                                   fake_clock=True,
                                                   executor=pool)
        for report in reports:
            assert report.solver_stats, report.name
            assert report.solver_stats["check_sat_calls"] >= 0


class TestWorkerSpanAdoption:
    @staticmethod
    def _shape(records):
        """Records with timestamps dropped and the one legitimately
        worker-count-dependent attribute (shard count) removed."""
        shaped = []
        for record in records:
            record = dict(record)
            for key in ("t", "t0", "t1"):
                record.pop(key, None)
            attrs = dict(record["attrs"])
            if record["name"] == "executor.map":
                attrs.pop("shards", None)
            record["attrs"] = attrs
            shaped.append(record)
        return shaped

    def test_trace_structure_independent_of_worker_count(self):
        shapes = []
        with fastpath.disabled():
            for workers in (1, 4):
                with trace_mod.installed(trace_mod.Tracer()) as tracer:
                    with ShardedExecutor(workers) as pool:
                        parallel_pure_check_grid(NAMES, fake_clock=True,
                                                 executor=pool)
                trace_mod.validate_records(tracer.records)
                shapes.append(self._shape(tracer.records))
        assert shapes[0] == shapes[1]
        unit_spans = [r for r in shapes[0]
                      if r["name"] == "executor.unit"]
        assert [s["attrs"]["index"] for s in unit_spans] == \
            list(range(len(NAMES)))
