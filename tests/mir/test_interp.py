"""Operational-semantics tests: one class per rule family."""

import pytest

from repro.ccal.absstate import AbsState
from repro.errors import (
    EncapsulationViolation, MirAssertError, MirRuntimeError, OutOfFuel,
)
from repro.mir.ast import (
    AggregateKind, AggregateRv, BinOp, Cast, CastKind, CheckedBinaryOp,
    Copy, Discriminant, Len, Repeat, UnOp, Use, place,
)
from repro.mir.builder import ProgramBuilder
from repro.mir.interp import Interpreter, TrustedFunction
from repro.mir.types import BOOL, I64, U8, U64, UNIT
from repro.mir.value import (
    PathPtr, RDataPtr, TrustedPtr, mk_bool, mk_int, mk_u64, unit,
)
from repro.mir.path import Path


def run(build, name="f", args=(), absstate=None, trusted=(),
        rdata_resolvers=None):
    pb = ProgramBuilder()
    build(pb)
    interp = Interpreter(pb.build(), absstate=absstate)
    for tf in trusted:
        interp.register_trusted(tf)
    for owner, resolver in (rdata_resolvers or {}).items():
        interp.register_rdata_resolver(owner, resolver)
    return interp.call(name, args), interp


class TestArithmetic:
    @pytest.mark.parametrize("op,a,b,expected", [
        (BinOp.ADD, 3, 4, 7),
        (BinOp.SUB, 3, 4, 2 ** 64 - 1),   # unsigned wrap
        (BinOp.MUL, 5, 6, 30),
        (BinOp.DIV, 7, 2, 3),
        (BinOp.REM, 7, 2, 1),
        (BinOp.BITAND, 0b1100, 0b1010, 0b1000),
        (BinOp.BITOR, 0b1100, 0b1010, 0b1110),
        (BinOp.BITXOR, 0b1100, 0b1010, 0b0110),
        (BinOp.SHL, 1, 8, 256),
        (BinOp.SHR, 256, 8, 1),
    ])
    def test_u64_ops(self, op, a, b, expected):
        def build(pb):
            fb = pb.function("f", ["a", "b"], U64)
            fb.binop("_0", op, "a", "b")
            fb.ret()
            fb.finish()
        result, _ = run(build, args=[mk_u64(a), mk_u64(b)])
        assert result.value.value == expected

    def test_signed_division_truncates_toward_zero(self):
        def build(pb):
            fb = pb.function("f", ["a", "b"], I64, default_int_ty=I64)
            fb.binop("_0", BinOp.DIV, "a", "b")
            fb.ret()
            fb.finish()
        result, _ = run(build, args=[mk_int(-7, I64), mk_int(2, I64)])
        assert result.value.value == -3  # Rust: -7 / 2 == -3

    def test_signed_remainder_sign_of_dividend(self):
        def build(pb):
            fb = pb.function("f", ["a", "b"], I64, default_int_ty=I64)
            fb.binop("_0", BinOp.REM, "a", "b")
            fb.ret()
            fb.finish()
        result, _ = run(build, args=[mk_int(-7, I64), mk_int(2, I64)])
        assert result.value.value == -1  # Rust: -7 % 2 == -1

    def test_divide_by_zero_panics(self):
        def build(pb):
            fb = pb.function("f", ["a"], U64)
            fb.binop("_0", BinOp.DIV, "a", 0)
            fb.ret()
            fb.finish()
        with pytest.raises(MirAssertError):
            run(build, args=[mk_u64(1)])

    def test_shift_amount_masked_like_x86(self):
        def build(pb):
            fb = pb.function("f", ["a"], U64)
            fb.binop("_0", BinOp.SHL, "a", 64)  # 64 % 64 == 0
            fb.ret()
            fb.finish()
        result, _ = run(build, args=[mk_u64(5)])
        assert result.value.value == 5

    def test_checked_add_reports_overflow(self):
        def build(pb):
            fb = pb.function("f", ["a", "b"], U64, default_int_ty=U8)
            fb.checked_binop("_1", BinOp.ADD, "a", "b")
            fb.assign("_0", Use(Copy(place("_1"))))
            fb.ret()
            fb.finish()
        result, _ = run(build, args=[mk_int(200, U8), mk_int(100, U8)])
        wrapped, overflowed = result.value.fields
        assert wrapped.value == 44
        assert overflowed.value is True

    def test_unary_not_and_neg(self):
        def build(pb):
            fb = pb.function("f", ["a"], U64)
            fb.unop("_1", UnOp.NOT, "a")
            fb.assign("_0", Use(Copy(place("_1"))))
            fb.ret()
            fb.finish()
        result, _ = run(build, args=[mk_u64(0)])
        assert result.value.value == 2 ** 64 - 1

    def test_comparisons(self):
        def build(pb):
            fb = pb.function("f", ["a", "b"], BOOL)
            fb.binop("_0", BinOp.LT, "a", "b")
            fb.ret()
            fb.finish()
        result, _ = run(build, args=[mk_u64(1), mk_u64(2)])
        assert result.value.value is True

    def test_cast_int_to_int_truncates(self):
        def build(pb):
            fb = pb.function("f", ["a"], U8)
            fb.cast("_0", "a", U8)
            fb.ret()
            fb.finish()
        result, _ = run(build, args=[mk_u64(0x1FF)])
        assert result.value.value == 0xFF
        assert result.value.ty == U8


class TestControlFlow:
    def test_branch_goto_return(self):
        def build(pb):
            fb = pb.function("f", ["a"], U64)
            fb.binop("_1", BinOp.GT, "a", 10)
            fb.branch("_1", "big", "small")
            fb.label("big")
            fb.ret(1)
            fb.label("small")
            fb.ret(0)
            fb.finish()
        assert run(build, args=[mk_u64(11)])[0].value.value == 1
        assert run(build, args=[mk_u64(9)])[0].value.value == 0

    def test_switch_multiway(self):
        def build(pb):
            fb = pb.function("f", ["a"], U64)
            fb.switch("a", [(0, "zero"), (7, "seven")], "other")
            fb.label("zero")
            fb.ret(100)
            fb.label("seven")
            fb.ret(107)
            fb.label("other")
            fb.ret(999)
            fb.finish()
        assert run(build, args=[mk_u64(0)])[0].value.value == 100
        assert run(build, args=[mk_u64(7)])[0].value.value == 107
        assert run(build, args=[mk_u64(3)])[0].value.value == 999

    def test_loop_with_counter(self):
        def build(pb):
            fb = pb.function("f", ["n"], U64)
            fb.assign("acc", 0)
            fb.assign("i", 0)
            fb.goto("loop")
            fb.label("loop")
            fb.binop("c", BinOp.LT, "i", "n")
            fb.branch("c", "body", "done")
            fb.label("body")
            fb.binop("acc", BinOp.ADD, "acc", "i")
            fb.binop("i", BinOp.ADD, "i", 1)
            fb.goto("loop")
            fb.label("done")
            fb.ret("acc")
            fb.finish()
        assert run(build, args=[mk_u64(5)])[0].value.value == 10

    def test_assert_pass_and_fail(self):
        def build(pb):
            fb = pb.function("f", ["a"], U64)
            fb.binop("_1", BinOp.NE, "a", 0)
            fb.assert_("_1", "a must not be zero")
            fb.ret("a")
            fb.finish()
        assert run(build, args=[mk_u64(3)])[0].value.value == 3
        with pytest.raises(MirAssertError, match="must not be zero"):
            run(build, args=[mk_u64(0)])

    def test_fuel_exhaustion(self):
        def build(pb):
            fb = pb.function("f", [], UNIT)
            fb.goto("loop")
            fb.label("loop")
            fb.goto("loop")
            fb.finish()
        pb = ProgramBuilder()
        build(pb)
        interp = Interpreter(pb.build(), fuel=100)
        with pytest.raises(OutOfFuel):
            interp.call("f")

    def test_drop_is_jump(self):
        def build(pb):
            fb = pb.function("f", [], U64)
            fb.assign("x", 5)
            fb.drop_("x")
            fb.ret("x")  # never-free semantics: x still readable
            fb.finish()
        assert run(build)[0].value.value == 5


class TestCallsAndFrames:
    def test_call_returns_value(self):
        def build(pb):
            fb = pb.function("double", ["x"], U64)
            fb.binop("_0", BinOp.MUL, "x", 2)
            fb.ret()
            fb.finish()
            fb = pb.function("f", [], U64)
            fb.call("_0", "double", [21])
            fb.ret()
            fb.finish()
        assert run(build)[0].value.value == 42

    def test_recursion_uses_separate_frames(self):
        def build(pb):
            fb = pb.function("f", ["n"], U64)
            fb.binop("_1", BinOp.EQ, "n", 0)
            fb.branch("_1", "base", "rec")
            fb.label("base")
            fb.ret(0)
            fb.label("rec")
            fb.binop("m", BinOp.SUB, "n", 1)
            fb.call("sub", "f", ["m"])
            fb.binop("_0", BinOp.ADD, "sub", "n")
            fb.ret()
            fb.finish()
        assert run(build, args=[mk_u64(4)])[0].value.value == 10

    def test_unknown_function_rejected(self):
        def build(pb):
            fb = pb.function("f", [], UNIT)
            fb.call("_1", "ghost", [])
            fb.ret()
            fb.finish()
        with pytest.raises(MirRuntimeError, match="ghost"):
            run(build)

    def test_arity_mismatch_rejected(self):
        def build(pb):
            fb = pb.function("g", ["a"], UNIT)
            fb.ret()
            fb.finish()
            fb = pb.function("f", [], UNIT)
            fb.call("_1", "g", [])
            fb.ret()
            fb.finish()
        with pytest.raises(MirRuntimeError, match="expected 1"):
            run(build)

    def test_trusted_function_dispatches_to_spec(self):
        state = AbsState().with_field("counter", 0)

        def spec(args, absstate):
            return mk_u64(absstate.get("counter")), \
                absstate.set("counter", absstate.get("counter") + 1)

        def build(pb):
            fb = pb.function("f", [], U64)
            fb.call("a", "tick", [])
            fb.call("b", "tick", [])
            fb.binop("_0", BinOp.ADD, "a", "b")
            fb.ret()
            fb.finish()
        result, interp = run(
            build, absstate=state,
            trusted=[TrustedFunction("tick", spec)])
        assert result.value.value == 1  # 0 + 1
        assert interp.absstate.get("counter") == 2


class TestPointers:
    def test_write_through_path_pointer(self):
        def build(pb):
            fb = pb.function("set_to", ["p", "v"], UNIT)
            fb.assign(place("p").deref(), Use(Copy(place("v"))))
            fb.ret()
            fb.finish()
            fb = pb.function("f", [], U64)
            fb.assign("x", 1)
            fb.ref("ptr", "x")
            fb.call("_1", "set_to", ["ptr", 99])
            fb.assign("_0", Use(Copy(place("x"))))
            fb.ret()
            fb.finish()
        assert run(build)[0].value.value == 99

    def test_pointer_to_field(self):
        def build(pb):
            fb = pb.function("f", [], U64)
            fb.tuple_("t", 1, 2)
            fb.ref("ptr", place("t").field(1))
            fb.assign("_0", Use(Copy(place("ptr").deref())))
            fb.ret()
            fb.finish()
        assert run(build)[0].value.value == 2

    def test_returning_pointer_to_local_stays_valid(self):
        """Memory safety implies pointer validity (Sec. 3.2): locals are
        never freed, so returned pointers keep working."""
        def build(pb):
            fb = pb.function("make", [], U64)
            fb.assign("x", 7)
            fb.ref("_0", "x")
            fb.ret()
            fb.finish()
            fb = pb.function("f", [], U64)
            fb.call("p", "make", [])
            fb.assign("_0", Use(Copy(place("p").deref())))
            fb.ret()
            fb.finish()
        assert run(build)[0].value.value == 7

    def test_trusted_pointer_reads_abstract_state(self):
        state = AbsState().with_field("cell", mk_u64(5))
        ptr = TrustedPtr("cell",
                         getter=lambda s: s.get("cell"),
                         setter=lambda s, v: s.set("cell", v))

        def build(pb):
            fb = pb.function("f", ["p"], U64)
            fb.assign("_1", Use(Copy(place("p").deref())))
            fb.binop("_2", BinOp.ADD, "_1", 1)
            fb.assign(place("p").deref(), Use(Copy(place("_2"))))
            fb.assign("_0", Use(Copy(place("p").deref())))
            fb.ret()
            fb.finish()
        result, interp = run(build, args=[ptr], absstate=state)
        assert result.value.value == 6
        assert interp.absstate.get("cell").value == 6

    def test_rdata_deref_outside_owner_layer_raises(self):
        handle = RDataPtr("Secret", "obj", (0,))

        def build(pb):
            fb = pb.function("f", ["p"], U64, layer="Other")
            fb.assign("_0", Use(Copy(place("p").deref())))
            fb.ret()
            fb.finish()
        with pytest.raises(EncapsulationViolation, match="Secret"):
            run(build, args=[handle])

    def test_rdata_deref_inside_owner_layer_with_resolver(self):
        handle = RDataPtr("Secret", "obj", (0,))

        def build(pb):
            fb = pb.function("f", ["p"], U64, layer="Secret")
            fb.assign("_0", Use(Copy(place("p").deref())))
            fb.ret()
            fb.finish()
        pb = ProgramBuilder()
        build(pb)
        interp = Interpreter(pb.build())
        interp.memory.allocate(Path.global_("secret_obj").base, mk_u64(77))
        interp.register_rdata_resolver(
            "Secret", lambda ptr: Path.global_("secret_obj"))
        assert interp.call("f", [handle]).value.value == 77

    def test_integer_deref_rejected(self):
        def build(pb):
            fb = pb.function("f", ["p"], U64)
            fb.assign("_0", Use(Copy(place("p").deref())))
            fb.ret()
            fb.finish()
        with pytest.raises(EncapsulationViolation, match="forged"):
            run(build, args=[mk_u64(0x1000)])


class TestAggregatesAndEnums:
    def test_aggregate_construction_and_projection(self):
        def build(pb):
            fb = pb.function("f", [], U64)
            fb.variant("opt", 1, 42)            # Some(42)
            fb.discriminant("d", "opt")
            fb.assign("v", Use(Copy(place("opt").downcast(1).field(0))))
            fb.binop("_0", BinOp.ADD, "d", "v")
            fb.ret()
            fb.finish()
        assert run(build)[0].value.value == 43

    def test_wrong_downcast_rejected(self):
        def build(pb):
            fb = pb.function("f", [], U64)
            fb.variant("opt", 0)                # None
            fb.assign("_0", Use(Copy(place("opt").downcast(1).field(0))))
            fb.ret()
            fb.finish()
        with pytest.raises(MirRuntimeError, match="downcast"):
            run(build)

    def test_set_discriminant(self):
        def build(pb):
            fb = pb.function("f", [], U64)
            fb.variant("v", 0, 5)
            fb.set_discriminant("v", 1)
            fb.discriminant("_0", "v")
            fb.ret()
            fb.finish()
        assert run(build)[0].value.value == 1

    def test_repeat_and_len(self):
        def build(pb):
            fb = pb.function("f", [], U64)
            fb.repeat("arr", 9, 4)
            fb.len_("_0", "arr")
            fb.ret()
            fb.finish()
        assert run(build)[0].value.value == 4

    def test_array_index_by_variable(self):
        def build(pb):
            fb = pb.function("f", ["i"], U64)
            fb.array("arr", [10, 20, 30])
            fb.assign("_0", Use(Copy(place("arr").index_by("i"))))
            fb.ret()
            fb.finish()
        assert run(build, args=[mk_u64(2)])[0].value.value == 30


class TestLocalsVsTemporaries:
    def test_pure_function_never_touches_memory(self):
        """Sec. 3.2: temporary lifting — functions without address-taken
        variables create no memory traffic at all."""
        def build(pb):
            fb = pb.function("f", ["a"], U64)
            fb.binop("_1", BinOp.ADD, "a", 1)
            fb.binop("_0", BinOp.MUL, "_1", 2)
            fb.ret()
            fb.finish()
        result, interp = run(build, args=[mk_u64(3)])
        assert result.value.value == 8
        assert interp.memory.write_count == 0
        assert len(interp.memory) == 0

    def test_address_taken_variable_lands_in_memory(self):
        def build(pb):
            fb = pb.function("f", [], U64)
            fb.assign("x", 5)
            fb.ref("p", "x")
            fb.assign("_0", Use(Copy(place("p").deref())))
            fb.ret()
            fb.finish()
        result, interp = run(build)
        assert result.value.value == 5
        assert interp.memory.write_count > 0

    def test_globals_are_memory_resident(self):
        def build(pb):
            pb.global_("G", mk_u64(3))
            fb = pb.function("f", [], U64)
            fb.binop("_1", BinOp.ADD, "G", 1)
            fb.assign("G", Use(Copy(place("_1"))))
            fb.assign("_0", Use(Copy(place("G"))))
            fb.ret()
            fb.finish()
        result, interp = run(build)
        assert result.value.value == 4
        assert interp.memory.read(Path.global_("G")).value == 4
