"""repro — reproduction of "Verifying Rust Implementation of Page Tables in a
Software Enclave Hypervisor" (ASPLOS 2024).

The package rebuilds both sides of the paper:

* the *system under verification* — an executable model of HyperEnclave's
  memory subsystem (:mod:`repro.hyperenclave`), and
* the *verification system* — the MIRVerif framework: a lightweight MIR
  semantics (:mod:`repro.mir`), a CCAL-style layered framework
  (:mod:`repro.ccal`), a bounded symbolic executor (:mod:`repro.symbolic`),
  functional specifications and refinement relations (:mod:`repro.spec`),
  and security properties (:mod:`repro.security`).

Because faithful Coq proofs cannot be reproduced in Python, every theorem
of the paper is reproduced as a *checkable property*: exhaustive bounded
model checking, co-simulation refinement testing, and property-based
testing.  See DESIGN.md for the substitution rationale.
"""

from repro.errors import (
    ReproError,
    ConfigError,
    MirError,
    MirTypeError,
    MirRuntimeError,
    EncapsulationViolation,
    OutOfFuel,
    SpecError,
    RefinementFailure,
    InvariantViolation,
    NoninterferenceViolation,
    HypervisorError,
    ResourceExhausted,
    HypercallAborted,
    FaultInjected,
    LockProtocolViolation,
    StaleTranslation,
    CheckBudgetExceeded,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigError",
    "MirError",
    "MirTypeError",
    "MirRuntimeError",
    "EncapsulationViolation",
    "OutOfFuel",
    "SpecError",
    "RefinementFailure",
    "InvariantViolation",
    "NoninterferenceViolation",
    "HypervisorError",
    "ResourceExhausted",
    "HypercallAborted",
    "FaultInjected",
    "LockProtocolViolation",
    "StaleTranslation",
    "CheckBudgetExceeded",
    "__version__",
]
