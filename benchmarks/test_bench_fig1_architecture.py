"""Figure 1 — the HyperEnclave architecture, rendered from a live boot.

The benchmark times the full boot + two-enclave lifecycle that the
figure depicts; the artifact is the live architecture diagram.
"""

from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import RustMonitor
from repro.reporting import fig1_architecture

PAGE = TINY.page_size


def boot_two_enclave_system():
    monitor = RustMonitor(TINY)
    primary_os = monitor.primary_os
    for index in range(2):
        app = primary_os.spawn_app(index + 1)
        src = TINY.frame_base(primary_os.reserve_data_frame())
        mbuf = TINY.frame_base(primary_os.reserve_data_frame())
        base = (16 + 16 * index) * PAGE
        eid = monitor.hc_create(base, PAGE, (4 + index) * PAGE, mbuf,
                                PAGE)
        monitor.hc_add_page(eid, base, src)
        monitor.hc_init(eid)
        primary_os.gpt_map(app.gpt_root_gpa, (4 + index) * PAGE, mbuf)
    return monitor


def test_bench_fig1(benchmark, emit):
    monitor = benchmark(boot_two_enclave_system)
    text = fig1_architecture(monitor)
    emit("fig1_architecture", text)

    # Shape: both guest VMs and both enclaves appear, secure memory is
    # partitioned, and the EPCM accounts for SECS + REG pages.
    assert "Prim. OS" in text
    assert "Enclave 1" in text and "Enclave 2" in text
    assert "page-table pool" in text and "EPC" in text
    assert "4/" in text  # 2 enclaves x (SECS + REG) recorded
