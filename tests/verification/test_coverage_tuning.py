"""Sec. 4.4 — "Tuning Verification Coverage".

"We rely on the separation of layers to verify the system piecemeal ...
'Trusted' functions can later be pulled out and verified as more
resources become available."

Demonstrated mechanically: verify ``query`` while ``walk_terminal`` is
*trusted* (its spec registered as a primitive, its code skipped), then
pull the trust out and verify the same function against the real code —
both verdicts agree, and the trusted run demonstrably executes less
code.  The same knob in the other direction: trusting a *wrong* spec is
caught the moment the callee is pulled out and verified itself.
"""

import pytest

from repro.ccal.refinement import CoSimChecker, mir_impl
from repro.ccal.spec import Spec
from repro.errors import SpecPreconditionError
from repro.mir.value import mk_tuple, mk_u64
from repro.verification import low_spec_for, sample_states


def checker_for_query(model, extra_trusted=()):
    impl = mir_impl(model.program, "query",
                    trusted=list(model.trusted) + list(extra_trusted))
    return CoSimChecker("query", impl, low_spec_for(model, "query"))


class TestTrustKnob:
    def test_query_verifies_with_walk_trusted(self, model):
        """walk_terminal in the TCB: its spec answers, its code never
        runs — the 'limit the scope of verification' mode."""
        walk_spec = low_spec_for(model, "walk_terminal")
        walk_spec.name = "walk_terminal"  # dispatch by callee name
        report = checker_for_query(model,
                                   extra_trusted=[walk_spec]).check(
            sample_states(model, "query", seed=2, count=16))
        assert report.ok and report.checked > 0

    def test_query_verifies_with_walk_pulled_out(self, model):
        report = checker_for_query(model).check(
            sample_states(model, "query", seed=2, count=16))
        assert report.ok and report.checked > 0

    def test_trusted_mode_executes_less_code(self, model):
        """The point of trusting: the callee's loop never runs."""
        walk_spec = low_spec_for(model, "walk_terminal")
        walk_spec.name = "walk_terminal"
        samples = sample_states(model, "query", seed=3, count=1)
        (args, state), = samples

        trusted_interp = model.make_interpreter(absstate=state)
        trusted_interp.register_trusted(walk_spec.as_trusted_function())
        trusted_steps = trusted_interp.call("query", args).steps

        full_interp = model.make_interpreter(absstate=state)
        full_steps = full_interp.call("query", args).steps
        assert trusted_steps < full_steps

    def test_wrong_trusted_spec_caught_when_pulled_out(self, model):
        """Trusting hides bugs in the trusted spec from *this* proof —
        but pulling the function out exposes the lie immediately."""

        def lying_walk(args, state):
            return mk_tuple(mk_u64(0), mk_u64(0), mk_u64(1)), state

        lie = Spec("walk_terminal", lying_walk)
        # With the lie trusted, query's own proof can still pass or fail
        # depending on samples — the danger of a hole in the TCB.  Now
        # pull walk_terminal out and verify it against the lie-as-spec:
        impl = mir_impl(model.program, "walk_terminal",
                        trusted=model.trusted)
        checker = CoSimChecker("walk_terminal", impl, lie)
        report = checker.check(
            sample_states(model, "walk_terminal", seed=1, count=16))
        assert not report.ok  # the lie cannot survive verification

    def test_every_layer_can_be_cut_at(self, model):
        """The knob works at any boundary: trust each single callee of
        map_page in turn; map_page still verifies."""
        for boundary in ("get_or_create_next", "read_entry",
                         "write_entry"):
            spec = low_spec_for(model, boundary)
            spec.name = boundary
            impl = mir_impl(model.program, "map_page",
                            trusted=list(model.trusted) + [spec])
            checker = CoSimChecker(f"map_page/{boundary}", impl,
                                   low_spec_for(model, "map_page"))
            report = checker.check(
                sample_states(model, "map_page", seed=4, count=10))
            assert report.ok, (boundary, report.failures)
