"""The HTTP/JSON front: routes, backpressure, drain, chaos restart.

In-process tests drive a real ``ThreadingHTTPServer`` on an ephemeral
port through the real client.  The subprocess tests exercise the two
lifecycle guarantees end to end: SIGTERM drains and exits 0 with
checkpoints flushed, and a ``kill -9`` mid-campaign loses at most one
wave — the restarted daemon auto-resumes to the identical verdict
(the CI chaos job repeats this against two concurrent campaigns).
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import AdmissionRefused, CampaignNotFound, ServiceError
from repro.service.client import ServiceClient
from repro.service.daemon import CheckingDaemon
from repro.service.scheduler import DONE

SPEC = {"preemption_bound": 1, "max_schedules": 12}


@pytest.fixture
def daemon(tmp_path):
    with CheckingDaemon(str(tmp_path / "svc"), port=0, workers=1,
                        round_capacity=6) as running:
        yield running


@pytest.fixture
def client(daemon):
    return ServiceClient(daemon.url, backoff=0.001)


class TestRoutes:
    def test_healthz_reports_ok(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] >= 1

    def test_submit_status_wait_artifacts(self, client):
        reply = client.submit(dict(SPEC, id="one"))
        assert reply["id"] == "one"
        final = client.wait("one", deadline=120)
        assert final["status"] == DONE and final["ok"]
        assert client.artifacts("one") == []
        assert [c["id"] for c in client.list_campaigns()] == ["one"]

    def test_resubmit_same_id_is_idempotent(self, client):
        client.submit(dict(SPEC, id="twice"))
        again = client.submit(dict(SPEC, id="twice"))
        assert again["id"] == "twice"

    def test_unknown_campaign_is_404_typed(self, client):
        with pytest.raises(CampaignNotFound):
            client.status("ghost")
        with pytest.raises(CampaignNotFound):
            client.artifacts("ghost")

    def test_unknown_field_is_400_typed(self, client):
        with pytest.raises(ServiceError, match="unknown submission"):
            client.submit({"bogus": 1})

    def test_unknown_route_is_404(self, daemon):
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(daemon.url + "/teapot")
        assert exc.value.code == 404

    def test_traversal_id_is_400_and_writes_nothing(
            self, daemon, client, tmp_path):
        """A dot-only id would resolve the campaign store outside the
        service root; the submission must die as a 400 with no file
        created in (or above) the root."""
        with pytest.raises(ServiceError, match="all dots"):
            client.submit(dict(SPEC, id=".."))
        with pytest.raises(ServiceError, match="all dots"):
            client.submit(dict(SPEC, id="."))
        assert not (tmp_path / "campaign.json").exists()
        assert not (tmp_path / "svc" / "campaign.json").exists()

    def test_non_numeric_budget_is_400_typed(self, client):
        with pytest.raises(ServiceError, match="wall_budget"):
            client.submit(dict(SPEC, id="wb", wall_budget="abc"))
        with pytest.raises(ServiceError, match="wave_budget"):
            client.submit(dict(SPEC, id="wv", wave_budget=True))
        # Nothing was admitted, and the daemon keeps scheduling.
        assert client.list_campaigns() == []
        assert client.healthz()["status"] == "ok"

    def test_untyped_failure_maps_to_500_json(
            self, daemon, client, monkeypatch):
        client.submit(dict(SPEC, id="oops"))

        def boom(_campaign_id):
            raise OSError("disk gone")

        monkeypatch.setattr(daemon.scheduler, "artifacts", boom)
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(
                daemon.url + "/campaigns/oops/artifacts")
        assert exc.value.code == 500
        payload = json.loads(exc.value.read().decode())
        assert payload["error"] == "internal"
        assert "disk gone" in payload["detail"]

    def test_cancel_route(self, client):
        client.submit(dict(SPEC, id="doomed", max_schedules=600,
                           preemption_bound=2))
        verdict = client.cancel("doomed")
        assert verdict["status"] in ("cancelled", "done")

    def test_metrics_route_serves_registry(self, client):
        snapshot = client._request("GET", "/metrics")
        assert isinstance(snapshot, dict)

    def test_metrics_expose_scheduler_engine_family(self, client):
        """After a campaign, ``/metrics`` carries the ``sched.*``
        counter family next to ``snapshot_cache.*``, plus the
        ``sched.engine`` gauge labelling which engine ran."""
        client.submit(dict(SPEC, id="metered"))
        final = client.wait("metered", deadline=120)
        assert final["status"] == DONE
        snapshot = client._request("GET", "/metrics")
        counters = snapshot["counters"]
        for name in ("sched.handoffs", "sched.inline_decisions",
                     "sched.arena_reuses"):
            assert name in counters, sorted(counters)
        runs = (counters["sched.runs_continuation"]
                + counters["sched.runs_threads"])
        assert runs > 0
        assert snapshot["gauges"]["sched.engine"] in (
            "continuation", "threads")

    def test_violations_surface_replayable_bundles(self, client):
        from repro.obs.provenance import ProvenanceBundle, replay_bundle

        client.submit({
            "id": "buggy",
            "monitor": "repro.hyperenclave.buggy:MissingLockMonitor",
            "check_ni": False, "preemption_bound": 1,
            "max_schedules": 30})
        final = client.wait("buggy", deadline=180)
        assert final["status"] == DONE and not final["ok"]
        artifacts = client.artifacts("buggy")
        assert len(artifacts) == final["violations"] > 0
        bundle = ProvenanceBundle.from_json(
            json.dumps(artifacts[0]["bundle"]))
        outcome = replay_bundle(bundle)
        assert outcome.matched, outcome.summary()


class TestBackpressure:
    def test_admission_bound_maps_to_429(self, tmp_path):
        # The scheduler thread never starts, so everything stays
        # queued and the third submission hits the admission bound.
        import threading
        from repro.service.scheduler import CampaignScheduler
        scheduler = CampaignScheduler(str(tmp_path / "svc"), workers=1,
                                      max_active=1, max_queued=1)
        daemon = CheckingDaemon(str(tmp_path / "svc"), port=0,
                                scheduler=scheduler)
        thread = threading.Thread(target=daemon.httpd.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            client = ServiceClient(daemon.url, max_attempts=1)
            client.submit(dict(SPEC, id="a", seed=0))
            client.submit(dict(SPEC, id="b", seed=1))
            with pytest.raises(AdmissionRefused) as exc:
                client.submit(dict(SPEC, id="c", seed=2))
            assert exc.value.retry_after is not None
        finally:
            daemon.httpd.shutdown()
            daemon.httpd.server_close()
            scheduler.drain()

    def test_draining_maps_to_503(self, daemon):
        client = ServiceClient(daemon.url, max_attempts=1)
        daemon.scheduler.drain()
        with pytest.raises(AdmissionRefused) as exc:
            client.submit(dict(SPEC))
        assert exc.value.retry_after is None


def _serve_env():
    return dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))


def _start_daemon(root, *extra):
    """``python -m repro serve`` on an ephemeral port; returns
    (process, url) once the listen line appears."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", root,
         "--port", "0", "--workers", "1", *extra],
        env=_serve_env(), stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    assert "listening on" in line, line
    url = next(tok for tok in line.split() if tok.startswith("http://"))
    return proc, url


class TestLifecycleSubprocess:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        root = str(tmp_path / "svc")
        proc, url = _start_daemon(root)
        try:
            client = ServiceClient(url)
            client.submit({"id": "big", "preemption_bound": 2,
                           "max_schedules": 200})
            # Let it get some waves committed, then ask for a drain.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if client.status("big")["waves"] >= 1:
                    break
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, err
        assert "draining" in out and "checkpoints" in out
        assert "big:" in out          # the per-campaign resume report

    def test_kill9_then_restart_resumes_identical_verdict(
            self, tmp_path):
        from repro.service import CampaignSpec, run_durable_campaign
        from repro.service.scheduler import _result_digest

        spec = {"id": "chaos", "preemption_bound": 2,
                "max_schedules": 60}
        reference = _result_digest(run_durable_campaign(
            CampaignSpec(preemption_bound=2, max_schedules=60),
            str(tmp_path / "ref"), workers=1))
        root = str(tmp_path / "svc")
        proc, url = _start_daemon(root)
        try:
            client = ServiceClient(url)
            client.submit(spec)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if client.status("chaos")["waves"] >= 1:
                    break
                time.sleep(0.05)
            proc.kill()                        # SIGKILL, no flush
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        # The restarted daemon auto-resumes the incomplete store.
        proc, url = _start_daemon(root)
        try:
            client = ServiceClient(url)
            final = client.wait("chaos", deadline=120)
            assert final["status"] == DONE
            assert final["resumed"]
            assert final["result_digest"] == reference
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
