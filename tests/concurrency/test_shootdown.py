"""TLB shootdown and the stale-translation detector."""

from functools import partial

from repro.hyperenclave import buggy
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import RustMonitor
from repro.concurrency.shootdown import (
    detect_stale_translations,
    tlb_shootdown,
)

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


def two_vcpu_world(monitor_cls=RustMonitor):
    return build_enclave_world(
        monitor_cls=partial(monitor_cls, num_vcpus=2))


def cache_translation(monitor, eid, va):
    """Make vCPU 1 run the enclave with ``va``'s translation cached."""
    pa = TINY.page_base(monitor.enclave_translate(eid, va, write=False))
    monitor.cpus[1].active = eid
    monitor.cpus[1].tlb.insert(eid, (va, False), pa)
    return pa


class TestShootdown:
    def test_flushes_every_vcpu(self):
        monitor, _app, eid = two_vcpu_world()
        monitor.cpus[0].tlb.insert(eid, (16 * PAGE, False), 0x111)
        monitor.cpus[1].tlb.insert(eid, (16 * PAGE, False), 0x222)
        tlb_shootdown(monitor)
        assert len(monitor.cpus[0].tlb) == 0
        assert len(monitor.cpus[1].tlb) == 0

    def test_trim_shoots_down_remote_tlbs(self):
        monitor, _app, eid = two_vcpu_world()
        va = 16 * PAGE
        cache_translation(monitor, eid, va)
        monitor.hc_trim_page(eid, va)
        assert monitor.cpus[1].tlb.lookup(eid, (va, False)) is None
        assert not detect_stale_translations(monitor)


class TestDetector:
    def test_live_translation_is_clean(self):
        monitor, _app, eid = two_vcpu_world()
        cache_translation(monitor, eid, 16 * PAGE)
        assert detect_stale_translations(monitor) == []

    def test_host_vcpus_are_skipped(self):
        monitor, _app, eid = two_vcpu_world()
        # Host loads go through the direct physical map, not this TLB;
        # a leftover entry on a host-mode vCPU convicts nobody.
        monitor.cpus[1].tlb.insert(eid, (16 * PAGE, False), 0x333)
        assert monitor.cpus[1].active == 0
        assert detect_stale_translations(monitor) == []

    def test_unmapped_but_unreleased_page_is_benign(self):
        monitor, _app, eid = two_vcpu_world()
        va = 16 * PAGE
        cache_translation(monitor, eid, va)
        # The mid-shootdown window: the GPT mapping is gone but the
        # EPCM still accounts the frame to (eid, va) as a REG page.
        monitor.enclaves[eid].gpt.unmap(va)
        assert detect_stale_translations(monitor) == []

    def test_released_frame_is_convicted(self):
        monitor, _app, eid = two_vcpu_world(buggy.NoShootdownMonitor)
        va = 16 * PAGE
        pa = cache_translation(monitor, eid, va)
        monitor.hc_trim_page(eid, va)   # BUG: only vCPU 0's TLB flushed
        findings = detect_stale_translations(monitor)
        assert len(findings) == 1
        stale = findings[0]
        assert stale.vid == 1 and stale.principal == eid
        assert stale.va_page == va and stale.cached_pa == pa
        assert "free" in stale.reason

    def test_remapped_va_is_convicted(self):
        monitor, _app, eid = two_vcpu_world()
        va = 16 * PAGE
        cache_translation(monitor, eid, va)
        # Point the cached entry at a non-EPC frame the walk disowns.
        monitor.cpus[1].tlb.insert(eid, (va, False), 0)
        findings = detect_stale_translations(monitor)
        assert len(findings) == 1
        assert "maps to" in findings[0].reason
