"""``repro.service`` — the durable campaign orchestrator.

The paper's central robustness claim is that page-table transactions
survive a crash at any step via snapshot-rollback; this package gives
the *checking infrastructure itself* the same property.  A campaign
run through the orchestrator is crash-safe end to end:

* :mod:`repro.service.store` — atomic write-fsync-rename snapshots and
  an append-only, CRC-framed, blake2b-keyed log that persist the
  fingerprint/verdict memo tables and per-wave results, so a
  ``kill -9`` at any instant leaves a loadable prefix;
* :mod:`repro.service.supervisor` — a fault-tolerant executor: dead
  workers are detected and respawned, failing shards retry with
  exponential backoff + deterministic jitter, and a poison shard is
  quarantined as a typed :class:`~repro.errors.ShardQuarantined`
  result instead of sinking the campaign;
* :mod:`repro.service.orchestrator` — checkpoint-per-wave campaign
  execution whose resumed verdict is repr-identical to an
  uninterrupted run, plus warm cross-run memo reuse
  (``python -m repro campaign`` / ``python -m repro resume``);
* :mod:`repro.service.scheduler` — fair-share wavefront interleaving
  of many campaigns over one shared pool, with admission control,
  budgets, work stealing, and graceful drain;
* :mod:`repro.service.daemon` / :mod:`repro.service.client` — the
  checking-as-a-service HTTP/JSON front and its deadline-aware client
  (``python -m repro serve`` / ``submit`` / ``status``).
"""

from repro.service.checkpoint import CampaignCheckpoint
from repro.service.orchestrator import (
    CampaignSpec,
    CampaignStore,
    resume_campaign,
    run_durable_campaign,
)
from repro.service.scheduler import CampaignScheduler
from repro.service.store import AppendLog, MemoStore, atomic_write
from repro.service.supervisor import ResilientExecutor

__all__ = [
    "AppendLog",
    "CampaignCheckpoint",
    "CampaignScheduler",
    "CampaignSpec",
    "CampaignStore",
    "MemoStore",
    "ResilientExecutor",
    "atomic_write",
    "resume_campaign",
    "run_durable_campaign",
]
