"""The symbolic executor: paths, obligations, equivalence, coverage."""

import pytest

from repro.mir.ast import BinOp, Copy, Use, place
from repro.mir.builder import ProgramBuilder
from repro.mir.types import BOOL, U64, UNIT
from repro.mir.value import mk_bool, mk_u64
from repro.symbolic import (
    Domains,
    SymExecutor,
    SymbolicUnsupported,
    SymVar,
    check_equivalence,
    path_coverage_inputs,
    verify_assertions,
)


def abs_diff_program():
    pb = ProgramBuilder()
    fb = pb.function("abs_diff", ["a", "b"], U64)
    fb.binop("_1", BinOp.GT, "a", "b")
    fb.branch("_1", "gt", "le")
    fb.label("gt")
    fb.binop("_0", BinOp.SUB, "a", "b")
    fb.ret()
    fb.label("le")
    fb.binop("_0", BinOp.SUB, "b", "a")
    fb.ret()
    fb.finish()
    return pb.build()


class TestPathExploration:
    def test_two_paths(self):
        executor = SymExecutor(abs_diff_program())
        paths = executor.run("abs_diff", (SymVar("a"), SymVar("b")))
        assert len(paths) == 2

    def test_concrete_input_single_path(self):
        executor = SymExecutor(abs_diff_program())
        paths = executor.run("abs_diff", (mk_u64(5), mk_u64(3)))
        assert len(paths) == 1
        from repro.symbolic.terms import Const
        assert isinstance(paths[0].ret, Const)
        assert paths[0].ret.value == 2

    def test_feasibility_pruning(self):
        """With domains, contradictory branches are not explored."""
        pb = ProgramBuilder()
        fb = pb.function("f", ["a"], U64)
        fb.binop("_1", BinOp.LT, "a", 3)
        fb.branch("_1", "low", "high")
        fb.label("low")
        fb.binop("_2", BinOp.GT, "a", 5)      # contradiction
        fb.branch("_2", "dead", "alive")
        fb.label("dead")
        fb.ret(666)
        fb.label("alive")
        fb.ret(1)
        fb.label("high")
        fb.ret(2)
        fb.finish()
        domains = Domains({"a": range(8)})
        executor = SymExecutor(pb.build(), domains=domains)
        paths = executor.run("f", (SymVar("a"),))
        assert len(paths) == 2  # dead branch pruned

    def test_inlined_call_forks_propagate(self):
        program = abs_diff_program()
        pb = ProgramBuilder()
        for name, function in program.functions.items():
            pb.add(function)
        fb = pb.function("wrap", ["a", "b"], U64)
        fb.call("d", "abs_diff", ["a", "b"])
        fb.binop("_0", BinOp.ADD, "d", 1)
        fb.ret()
        fb.finish()
        executor = SymExecutor(pb.build())
        paths = executor.run("wrap", (SymVar("a"), SymVar("b")))
        assert len(paths) == 2

    def test_loop_unrolls_with_concrete_bound(self):
        pb = ProgramBuilder()
        fb = pb.function("sum3", ["a"], U64)
        fb.assign("i", 0)
        fb.assign("acc", 0)
        fb.goto("loop")
        fb.label("loop")
        fb.binop("c", BinOp.LT, "i", 3)
        fb.branch("c", "body", "done")
        fb.label("body")
        fb.binop("acc", BinOp.ADD, "acc", "a")
        fb.binop("i", BinOp.ADD, "i", 1)
        fb.goto("loop")
        fb.label("done")
        fb.ret("acc")
        fb.finish()
        executor = SymExecutor(pb.build())
        paths = executor.run("sum3", (SymVar("a"),))
        assert len(paths) == 1


class TestUnsupportedFragment:
    def test_memory_functions_rejected(self):
        pb = ProgramBuilder()
        fb = pb.function("f", [], U64)
        fb.assign("x", 1)
        fb.ref("p", "x")
        fb.assign("_0", Use(Copy(place("p").deref())))
        fb.ret()
        fb.finish()
        executor = SymExecutor(pb.build())
        with pytest.raises(SymbolicUnsupported):
            executor.run("f", ())

    def test_unknown_callee_rejected(self):
        pb = ProgramBuilder()
        fb = pb.function("f", [], U64)
        fb.call("_0", "phys_read_word", [0])
        fb.ret()
        fb.finish()
        executor = SymExecutor(pb.build())
        with pytest.raises(SymbolicUnsupported):
            executor.run("f", ())

    def test_unbounded_loop_rejected(self):
        pb = ProgramBuilder()
        fb = pb.function("f", [], UNIT)
        fb.goto("loop")
        fb.label("loop")
        fb.goto("loop")
        fb.finish()
        executor = SymExecutor(pb.build(), max_steps_per_path=100)
        with pytest.raises(SymbolicUnsupported, match="steps"):
            executor.run("f", ())


class TestAssertionVerification:
    def test_safe_function_verified(self):
        ok, failures = verify_assertions(
            abs_diff_program(), "abs_diff",
            Domains({"a": range(8), "b": range(8)}))
        assert ok and failures == []

    def test_failing_assert_yields_countermodel(self):
        pb = ProgramBuilder()
        fb = pb.function("f", ["a"], U64)
        fb.binop("_1", BinOp.NE, "a", 5)
        fb.assert_("_1", "a must differ from five")
        fb.ret("a")
        fb.finish()
        ok, failures = verify_assertions(pb.build(), "f",
                                         Domains({"a": range(8)}))
        assert not ok
        obligation, countermodel = failures[0]
        assert countermodel == {"a": 5}
        assert obligation.message == "a must differ from five"

    def test_guarded_assert_verified(self):
        """An assert made unreachable by a dominating branch holds."""
        pb = ProgramBuilder()
        fb = pb.function("f", ["a"], U64)
        fb.binop("_1", BinOp.LT, "a", 5)
        fb.branch("_1", "safe", "out")
        fb.label("safe")
        fb.binop("_2", BinOp.NE, "a", 7)   # always true when a < 5
        fb.assert_("_2", "unreachable failure")
        fb.ret("a")
        fb.label("out")
        fb.ret(0)
        fb.finish()
        ok, _ = verify_assertions(pb.build(), "f", Domains({"a": range(16)}))
        assert ok


class TestEquivalence:
    def test_exhaustive_equivalence(self):
        domains = Domains({"a": range(8), "b": range(8)})
        mismatches, stats = check_equivalence(
            abs_diff_program(), "abs_diff",
            lambda a, b: mk_u64(abs(a.value - b.value)), domains)
        assert mismatches == []
        assert stats["cells"] == 64  # the whole bounded input space
        assert stats["paths"] == 2

    def test_planted_divergence_found(self):
        pb = ProgramBuilder()
        fb = pb.function("inc", ["a"], U64)
        fb.binop("_1", BinOp.EQ, "a", 6)
        fb.branch("_1", "bug", "fine")
        fb.label("bug")
        fb.ret(0)                      # wrong on exactly a == 6
        fb.label("fine")
        fb.binop("_0", BinOp.ADD, "a", 1)
        fb.ret()
        fb.finish()
        mismatches, _ = check_equivalence(
            pb.build(), "inc", lambda a: mk_u64(a.value + 1),
            Domains({"a": range(8)}))
        assert len(mismatches) == 1
        model, mir_value, ref_value = mismatches[0]
        assert model == {"a": 6}
        assert (mir_value.value, ref_value.value) == (0, 7)

    def test_path_coverage_inputs(self):
        witnesses = path_coverage_inputs(
            abs_diff_program(), "abs_diff",
            Domains({"a": range(4), "b": range(4)}))
        assert len(witnesses) == 2
        gt = [w for w in witnesses if w[0].value > w[1].value]
        le = [w for w in witnesses if w[0].value <= w[1].value]
        assert gt and le  # one witness per path


class TestCorpusSymbolically:
    def test_every_pure_corpus_function_panic_free(self, model):
        """No pure corpus function can panic within its domain."""
        from repro.verification import default_domains, pure_function_names
        for name in pure_function_names(model.config, model.layout):
            domains = default_domains(name, model.config)
            ok, failures = verify_assertions(model.program, name, domains)
            assert ok, f"{name}: {failures}"
