"""Multi-level page tables — layers 3-9 of the stack.

:class:`PageTable` implements the monitor-managed tables (all EPTs and
the enclaves' GPTs, Sec. 2.1): walking, mapping with on-demand
intermediate-table allocation, unmapping, querying, and translation.
Table frames live in the secure page-table pool and the walker reads
physical memory directly (host-physical space).

The *primary OS* GPT is different: it is a guest-owned data structure in
untrusted memory whose every table access is itself translated through
the EPT — :func:`guest_walk` models that hardware walker faithfully,
which is exactly what makes OS-side page-table ("mapping") attacks
expressible and lets the invariants of Sec. 5.2 rule them out.

Terminology: ``va`` is the input address of whatever space the table
translates (GVA for GPTs, GPA for EPTs); entries hold output-space
addresses.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.concurrency import scheduler as conc
from repro.errors import PagingError, ReproError, TranslationFault
from repro.faults import plane as faults
from repro.hyperenclave import pte
from repro.hyperenclave.constants import WORD_BYTES


@dataclass(frozen=True)
class WalkStep:
    """One visited entry during a walk."""

    level: int
    table_frame: int
    index: int
    entry: int


@dataclass(frozen=True)
class WalkResult:
    """Outcome of walking a VA: the visited spine and the terminal entry.

    ``terminal`` is None when the walk ended at a non-present entry;
    ``huge_level`` is the level of a huge-page terminal (1 for a normal
    4K-style leaf).
    """

    va: int
    steps: Tuple[WalkStep, ...]
    terminal: Optional[int]
    huge_level: int = 1

    @property
    def complete(self):
        return self.terminal is not None


class PageTable:
    """A monitor-managed multi-level page table."""

    def __init__(self, config, phys, allocator, root_frame=None,
                 allow_huge=False, name=""):
        self.config = config
        self.phys = phys
        self.allocator = allocator
        self.allow_huge = allow_huge
        self.name = name
        # Lock discipline: when set (to a lock name), every structural
        # mutation of this table must run under that lock.  hc_create
        # publishes the owning enclave's lock here.
        self.owner_lock = None
        if root_frame is None:
            root_frame = allocator.alloc()
            phys.zero_frame(root_frame)
        self.root_frame = root_frame

    def clone(self, phys, allocator):
        """Rebind this table onto cloned backing stores.

        A page table owns no state of its own beyond the root frame and
        the lock name — the entries live in physical memory — so a clone
        is the same descriptor wired to the *cloned* ``phys`` and
        ``allocator`` (the caller clones those first).
        """
        new = object.__new__(type(self))
        new.config = self.config
        new.phys = phys
        new.allocator = allocator
        new.allow_huge = self.allow_huge
        new.name = self.name
        new.owner_lock = self.owner_lock
        new.root_frame = self.root_frame
        return new

    # -- entry IO (layer 3: the trusted load/store pair) --------------------------

    def entry_paddr(self, table_frame, index):
        return self.config.frame_base(table_frame) + index * WORD_BYTES

    def read_entry(self, table_frame, index):
        return self.phys.read_word(self.entry_paddr(table_frame, index))

    def write_entry(self, table_frame, index, entry):
        self.phys.write_word(self.entry_paddr(table_frame, index), entry)

    # -- walking (layers 4-5) ---------------------------------------------------------

    def walk(self, va) -> WalkResult:
        """Follow the tables from the root; stop at the first non-present
        entry, a huge leaf, or the level-1 terminal."""
        va = self.config.canonical_va(va)
        spec = self.config.arch
        steps = []
        frame = self.root_frame
        for level in range(self.config.levels, 0, -1):
            index = self.config.entry_index(va, level)
            entry = self.read_entry(frame, index)
            steps.append(WalkStep(level, frame, index, entry))
            if not spec.is_present(entry):
                return WalkResult(va, tuple(steps), None)
            if level == 1:
                # VMSAv8: bits[1:0] == 0b01 at level 1 is reserved.
                if not spec.is_leaf_valid(entry):
                    return WalkResult(va, tuple(steps), None)
                return WalkResult(va, tuple(steps), entry, huge_level=1)
            if spec.is_block(entry, level):
                return WalkResult(va, tuple(steps), entry, huge_level=level)
            frame = pte.pte_frame(entry, self.config)
        raise PagingError("walk fell off the table hierarchy")  # unreachable

    def _get_or_create_table(self, frame, level, va, created=None):
        """Layer 6: follow one level, allocating a zeroed intermediate
        table when the entry is empty.

        ``created`` (when given) records ``(parent_frame, index,
        new_frame)`` for every table allocated here, so a failing
        caller can unwind them instead of leaking pool frames.
        """
        index = self.config.entry_index(va, level)
        entry = self.read_entry(frame, index)
        spec = self.config.arch
        if spec.is_present(entry):
            if spec.is_block(entry, level):
                raise PagingError(
                    f"{self.name}: huge page at level {level} blocks "
                    f"mapping va={va:#x}")
            return pte.pte_frame(entry, self.config)
        new_frame = self.allocator.alloc()
        # Record before the parent-entry write: if that write faults,
        # the frame is already allocated and must be unwound too.
        if created is not None:
            created.append((frame, index, new_frame))
        self.phys.zero_frame(new_frame)
        new_entry = pte.pte_new(self.config.frame_base(new_frame),
                                spec.table_flags(), self.config)
        self.write_entry(frame, index, new_entry)
        return new_frame

    def _unwind_created(self, created):
        """Give back intermediate tables allocated by a failed mapping.

        Unwinds in reverse (children before parents): clear the parent
        entry, scrub the frame, return it to the pool.  Runs with the
        fault plane suspended — recovery must not itself be faultable,
        or a ``phys.write`` injection could make the leak unfixable.
        """
        with faults.suspended():
            for parent_frame, index, new_frame in reversed(created):
                self.write_entry(parent_frame, index, pte.pte_empty())
                self.phys.zero_frame(new_frame)
                self.allocator.dealloc(new_frame)

    # -- mapping (layer 7) -----------------------------------------------------------------

    def map_page(self, va, paddr, flags):
        """Install a level-1 mapping ``va -> paddr`` with ``flags``.

        Atomic in the frame pool: if any step fails after intermediate
        tables were allocated (pool exhaustion deeper in the walk, a
        present terminal, an injected write fault), those tables are
        unwound before the error propagates — a failed ``map_page``
        never consumes frames.
        """
        if self.owner_lock is not None:
            conc.guard_mutation(self.owner_lock)
        va = self.config.canonical_va(va)
        if self.config.page_offset(va) or self.config.page_offset(paddr):
            raise PagingError(
                f"{self.name}: unaligned mapping {va:#x} -> {paddr:#x}")
        created = []
        try:
            frame = self.root_frame
            for level in range(self.config.levels, 1, -1):
                frame = self._get_or_create_table(frame, level, va,
                                                  created)
            index = self.config.entry_index(va, 1)
            existing = self.read_entry(frame, index)
            if self.config.arch.is_present(existing):
                raise PagingError(
                    f"{self.name}: va {va:#x} is already mapped")
            self.write_entry(frame, index,
                             pte.pte_new(paddr, flags, self.config))
        except ReproError:
            self._unwind_created(created)
            raise

    def map_huge(self, va, paddr, level, flags):
        """Install a block mapping covering ``level_span(level)`` bytes.

        ``level`` must be one of the architecture's supported block
        levels (2 MiB / 1 GiB equivalents).  The old check accepted any
        ``2 <= level <= config.levels``, silently permitting root-level
        blocks (512 GiB on x86-64) that no supported architecture has.
        """
        if self.owner_lock is not None:
            conc.guard_mutation(self.owner_lock)
        if not self.allow_huge:
            raise PagingError(f"{self.name}: huge pages are not allowed")
        if level not in self.config.arch.block_levels:
            raise PagingError(
                f"level {level} is not a supported block level on "
                f"{self.config.arch.name} "
                f"(supported: {self.config.arch.block_levels})")
        va = self.config.canonical_va(va)
        span = self.config.level_span(level)
        if va % span or paddr % span:
            raise PagingError(
                f"{self.name}: huge mapping must be {span:#x}-aligned")
        created = []
        try:
            frame = self.root_frame
            for walk_level in range(self.config.levels, level, -1):
                frame = self._get_or_create_table(frame, walk_level, va,
                                                  created)
            index = self.config.entry_index(va, level)
            existing = self.read_entry(frame, index)
            spec = self.config.arch
            if spec.is_present(existing):
                raise PagingError(
                    f"{self.name}: va {va:#x} is already mapped")
            self.write_entry(
                frame, index,
                pte.pte_new(paddr, spec.to_block(flags | spec.leaf_flags()),
                            self.config))
        except ReproError:
            self._unwind_created(created)
            raise

    def unmap(self, va):
        """Remove the terminal mapping covering ``va``.

        Intermediate tables are left in place (HyperEnclave does not
        reclaim them during an enclave's lifetime; the whole tree is
        reclaimed on enclave destruction).
        """
        if self.owner_lock is not None:
            conc.guard_mutation(self.owner_lock)
        result = self.walk(va)
        if not result.complete:
            raise PagingError(f"{self.name}: va {va:#x} is not mapped")
        last = result.steps[-1]
        self.write_entry(last.table_frame, last.index, pte.pte_empty())

    # -- queries (layer 8) --------------------------------------------------------------------

    def query(self, va) -> Optional[Tuple[int, int]]:
        """``(paddr, flags)`` for the page containing ``va``, or None."""
        result = self.walk(va)
        if not result.complete:
            return None
        return (pte.pte_addr(result.terminal, self.config),
                pte.pte_flags(result.terminal, self.config))

    def translate(self, va, write=False, user=True) -> int:
        """Translate a byte address, enforcing the architecture's
        permission semantics: the hierarchical rule at every
        intermediate level (x86 ANDs W/U across levels; VMSAv8 uses
        APTable) plus the leaf's W/U bits and access flag."""
        va = self.config.canonical_va(va)
        spec = self.config.arch
        result = self.walk(va)
        if not result.complete:
            raise TranslationFault(
                f"{self.name}: no mapping for {va:#x}", va=va)
        for step in result.steps[:-1]:
            if write and not spec.table_allows_write(step.entry):
                raise TranslationFault(
                    f"{self.name}: write denied at level {step.level} "
                    f"for {va:#x}", va=va)
            if user and not spec.table_allows_user(step.entry):
                raise TranslationFault(
                    f"{self.name}: user access denied at level "
                    f"{step.level} for {va:#x}", va=va)
        entry = result.terminal
        if write and not spec.is_writable(entry):
            raise TranslationFault(
                f"{self.name}: write to read-only page at {va:#x}", va=va)
        if user and not spec.is_user(entry):
            raise TranslationFault(
                f"{self.name}: user access to supervisor page {va:#x}",
                va=va)
        if not spec.access_allowed(entry):
            raise TranslationFault(
                f"{self.name}: access flag clear for {va:#x}", va=va)
        span = self.config.level_span(result.huge_level)
        base = pte.pte_addr(entry, self.config)
        return base + (va % span)

    # -- whole-table views (used by invariants and figures) ----------------------------------------

    def mappings(self) -> List[Tuple[int, int, int, int]]:
        """All terminal mappings as ``(va, paddr, size, flags)``."""
        found = []
        self._collect(self.root_frame, self.config.levels, 0, found)
        return found

    def _collect(self, frame, level, va_prefix, found):
        span = self.config.level_span(level)
        spec = self.config.arch
        for index in range(self.config.entries_per_table):
            entry = self.read_entry(frame, index)
            if not spec.is_present(entry):
                continue
            va = va_prefix + index * span
            if level == 1:
                if spec.is_leaf_valid(entry):
                    found.append((va, pte.pte_addr(entry, self.config),
                                  span, pte.pte_flags(entry, self.config)))
            elif spec.is_block(entry, level):
                found.append((va, pte.pte_addr(entry, self.config),
                              span, pte.pte_flags(entry, self.config)))
            else:
                self._collect(pte.pte_frame(entry, self.config),
                              level - 1, va, found)

    def table_frames(self) -> List[int]:
        """Every frame used by this table's structure (root included)."""
        frames = []
        self._collect_frames(self.root_frame, self.config.levels, frames)
        return frames

    def _collect_frames(self, frame, level, frames):
        frames.append(frame)
        if level == 1:
            return
        spec = self.config.arch
        for index in range(self.config.entries_per_table):
            entry = self.read_entry(frame, index)
            if spec.is_present(entry) and not spec.is_block(entry, level):
                self._collect_frames(pte.pte_frame(entry, self.config),
                                     level - 1, frames)


# ---------------------------------------------------------------------------
# The hardware walker for guest-owned tables
# ---------------------------------------------------------------------------


def guest_walk(config, phys, ept, gpt_root_gpa, va, write=False,
               user=True):
    """Walk a guest-owned GPT whose structures live in guest memory.

    Every table access is a guest-physical access translated through
    ``ept`` first — the faithful nested-paging behaviour.  The terminal
    GPT entry yields a GPA which is translated through the EPT again.
    Raises :class:`TranslationFault` tagged with the failing stage.

    Permission checks follow the architecture's hierarchical rule at
    intermediate levels for *both* W and U (the old walker enforced W at
    every level but never U — asymmetric with x86's AND-across-levels
    semantics and with :meth:`PageTable.translate`), then the leaf's own
    W/U bits and access flag.
    """
    va = config.canonical_va(va)
    spec = config.arch
    table_gpa = gpt_root_gpa
    for level in range(config.levels, 0, -1):
        table_hpa = _ept_translate(ept, config.page_base(table_gpa),
                                   stage_va=va)
        index = config.entry_index(va, level)
        entry = phys.read_word(table_hpa + index * WORD_BYTES)
        if not spec.is_present(entry):
            raise TranslationFault(
                f"guest PT: no mapping for {va:#x} at level {level}",
                stage="gpt", va=va)
        terminal = level == 1 or spec.is_block(entry, level)
        if terminal:
            if level == 1 and not spec.is_leaf_valid(entry):
                raise TranslationFault(
                    f"guest PT: reserved leaf encoding for {va:#x}",
                    stage="gpt", va=va)
            if write and not spec.is_writable(entry):
                raise TranslationFault(
                    f"guest PT: write denied at level {level} for "
                    f"{va:#x}", stage="gpt", va=va)
            if user and not spec.is_user(entry):
                raise TranslationFault(
                    f"guest PT: user access denied at level {level} "
                    f"for {va:#x}", stage="gpt", va=va)
            if not spec.access_allowed(entry):
                raise TranslationFault(
                    f"guest PT: access flag clear for {va:#x}",
                    stage="gpt", va=va)
            span = config.level_span(level if level > 1 else 1)
            gpa = pte.pte_addr(entry, config) + (va % span)
            return _ept_translate(ept, config.page_base(gpa),
                                  stage_va=va, write=write) \
                + config.page_offset(gpa)
        if write and not spec.table_allows_write(entry):
            raise TranslationFault(
                f"guest PT: write denied at level {level} for {va:#x}",
                stage="gpt", va=va)
        if user and not spec.table_allows_user(entry):
            raise TranslationFault(
                f"guest PT: user access denied at level {level} for "
                f"{va:#x}", stage="gpt", va=va)
        table_gpa = pte.pte_addr(entry, config)
    raise PagingError("guest walk fell off the hierarchy")  # unreachable


def _ept_translate(ept, gpa, stage_va, write=False):
    # The second stage translates *guest-physical* addresses: guest-PT
    # USER semantics do not apply to EPT entries, so the user check is
    # explicitly off here.  (Inheriting ``translate``'s ``user=True``
    # default made monitor-owned EPT mappings without USER spuriously
    # fault the whole guest walk.)
    try:
        return ept.translate(gpa, write=write, user=False)
    except TranslationFault as fault:
        raise TranslationFault(
            f"EPT violation translating GPA {gpa:#x} "
            f"(guest VA {stage_va:#x}): {fault}",
            stage="ept", va=stage_va)


def two_stage_translate(config, phys, ept, gpt, va, write=False):
    """Compose a monitor-managed GPT with an EPT (the enclave path).

    Enclave GPTs are monitor-owned structures in secure memory, so the
    GPT stage walks host-physical space directly; only the resulting GPA
    goes through the EPT (Sec. 2.1: "all enclaves' GPTs are managed by
    RustMonitor").
    """
    gpa = gpt.translate(va, write=write)
    return _ept_translate(ept, config.page_base(gpa), stage_va=va,
                          write=write) + config.page_offset(gpa)
