"""Security properties of HyperEnclave (Sec. 5).

* :mod:`repro.security.invariants` — the four page-table invariant
  families of Sec. 5.2 plus page-table residency, as executable checkers
  over a live monitor,
* :mod:`repro.security.state` / :mod:`repro.security.transitions` — the
  abstract transition system of Sec. 5.1 (nondeterministic CPU-local
  moves, ``mem_load``/``mem_store``, hypercalls),
* :mod:`repro.security.oracle` — data oracles declassifying the
  marshalling buffer (Sec. 5.4),
* :mod:`repro.security.observation` — the observation function V(p, σ)
  of Sec. 5.3,
* :mod:`repro.security.noninterference` — Lemmas 5.2-5.4 and Theorem 5.1
  as trace-pair checkers,
* :mod:`repro.security.attacks` — adversarial primary-OS strategies
  exercising the threat model of Sec. 2.2.
"""

from repro.security.invariants import (
    InvariantReport,
    check_elrange_isolation,
    check_mbuf_invariant,
    check_epcm_invariant,
    check_enclave_invariants,
    check_pt_residency,
    check_all_invariants,
    assert_invariants,
    enclave_translations,
    host_reachable_hpas,
)
from repro.security.state import SystemState
from repro.security.oracle import DataOracle
from repro.security.transitions import (
    Step,
    LocalCompute,
    MemLoad,
    MemStore,
    Hypercall,
    apply_step,
    apply_trace,
)
from repro.security.observation import observe, Observation
from repro.security.noninterference import (
    indistinguishable,
    check_lemma_integrity,
    check_lemma_confidentiality,
    check_lemma_activation,
    check_theorem_noninterference,
    TwoWorlds,
)
from repro.security.attacks import (
    AttackOutcome,
    mapping_attack,
    epc_probe_sweep,
    dma_attack,
    hypercall_fuzz,
    gpt_remap_attack,
    run_standard_attack_suite,
)

__all__ = [
    "InvariantReport",
    "check_elrange_isolation", "check_mbuf_invariant",
    "check_epcm_invariant", "check_enclave_invariants",
    "check_pt_residency", "check_all_invariants", "assert_invariants",
    "enclave_translations", "host_reachable_hpas",
    "SystemState", "DataOracle",
    "Step", "LocalCompute", "MemLoad", "MemStore", "Hypercall",
    "apply_step", "apply_trace",
    "observe", "Observation",
    "indistinguishable", "check_lemma_integrity",
    "check_lemma_confidentiality", "check_lemma_activation",
    "check_theorem_noninterference", "TwoWorlds",
    "AttackOutcome", "mapping_attack", "epc_probe_sweep", "dma_attack",
    "hypercall_fuzz", "gpt_remap_attack", "run_standard_attack_suite",
]
