"""End-to-end integration: the whole paper pipeline in one place.

Retrofit-checked corpus → parsed mirlight → layered verification →
refinement to the tree spec → security invariants over the running
system → noninterference over adversarial traces.
"""

import pytest

from repro.hyperenclave.constants import TINY, MemoryLayout
from repro.hyperenclave.monitor import HOST_ID, RustMonitor
from repro.mir.parser import parse_program
from repro.mir.printer import print_program
from repro.mir.retrofit import check_retrofitted
from repro.security import (
    DataOracle, Hypercall, LocalCompute, MemLoad, MemStore, SystemState,
    check_all_invariants,
)
from repro.security.noninterference import (
    TwoWorlds, check_theorem_noninterference,
)
from repro.security.attacks import run_standard_attack_suite
from repro.spec import abstract_table, relation_r, tree_mappings
from repro.spec.relation import flat_state_of_page_table
from repro.verification import verify_corpus

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


class TestPipeline:
    def test_stage1_corpus_is_retrofitted(self, model):
        assert check_retrofitted(model.program) == []

    def test_stage2_mirlightgen_roundtrip(self, model):
        source = print_program(model.program)
        assert print_program(parse_program(source)) == source

    def test_stage3_layering_holds(self, model):
        assert model.check_call_order() == []
        assert len(model.stack) == 15

    def test_stage4_code_proofs_green(self, model):
        report = verify_corpus(model, cosim_samples=6)
        assert report.ok, report.summary()

    def test_stage5_refinement_on_live_system(self, enclave_world):
        monitor, _app, eid = enclave_world
        layout = monitor.layout
        enclave = monitor.enclaves[eid]
        for table in (enclave.gpt, enclave.ept, monitor.os_ept):
            flat = flat_state_of_page_table(
                table, layout.pt_pool_base,
                layout.epc_base - layout.pt_pool_base)
            tree = abstract_table(flat, table.root_frame)
            assert relation_r(tree, flat, table.root_frame)
            assert sorted(tree_mappings(tree, TINY)) == \
                sorted(table.mappings())

    def test_stage6_invariants_and_attacks(self, enclave_world):
        monitor, app, eid = enclave_world
        assert check_all_invariants(monitor).ok
        outcomes = run_standard_attack_suite(monitor, app, eid, seed=11)
        assert all(o.contained for o in outcomes.values())
        assert check_all_invariants(monitor).ok  # still, after attacks

    def test_stage7_noninterference_full_trace(self):
        def world(secret):
            monitor, app, eid = build_enclave_world(secret=secret,
                                                    pages=2)
            return SystemState(monitor, oracle=DataOracle.seeded(3)), eid

        state_a, eid = world(0x41)
        state_b, _ = world(0x42)
        worlds = TwoWorlds(state_a, state_b)
        trace = [
            LocalCompute(HOST_ID, "rax", value=1),
            MemStore(HOST_ID, 0x300, "rax"),
            Hypercall(HOST_ID, "enter", (eid,)),
            (MemLoad(eid, 16 * PAGE, "rax"),
             MemLoad(eid, 16 * PAGE, "rax")),
            (MemStore(eid, 17 * PAGE, "rax"),
             MemStore(eid, 17 * PAGE, "rax")),  # secret propagates in EPC
            (Hypercall(eid, "exit", (eid,)),
             Hypercall(eid, "exit", (eid,))),
            MemLoad(HOST_ID, 0x300, "rbx"),
            MemLoad(HOST_ID, 12 * PAGE, "rcx"),     # mbuf via oracle
            Hypercall(HOST_ID, "enter", (eid,)),
            (MemLoad(eid, 17 * PAGE, "rdx"),
             MemLoad(eid, 17 * PAGE, "rdx")),
            (Hypercall(eid, "exit", (eid,)),
             Hypercall(eid, "exit", (eid,))),
        ]
        violations = check_theorem_noninterference(worlds, trace,
                                                   observers=[HOST_ID])
        assert violations == []


class TestMultiEnclaveScenario:
    def build(self):
        monitor = RustMonitor(TINY)
        primary_os = monitor.primary_os
        apps, eids = [], []
        for index in range(2):
            app = primary_os.spawn_app(index + 1)
            apps.append(app)
            src = TINY.frame_base(primary_os.reserve_data_frame())
            primary_os.gpa_write_word(src, 0x100 + index)
            mbuf = TINY.frame_base(primary_os.reserve_data_frame())
            base = (16 + 16 * index) * PAGE
            eid = monitor.hc_create(base, PAGE, (4 + index) * PAGE,
                                    mbuf, PAGE)
            monitor.hc_add_page(eid, base, src)
            monitor.hc_init(eid)
            primary_os.gpt_map(app.gpt_root_gpa, (4 + index) * PAGE, mbuf)
            eids.append(eid)
        return monitor, apps, eids

    def test_two_enclaves_isolated(self):
        monitor, _apps, eids = self.build()
        assert check_all_invariants(monitor).ok
        assert monitor.enclave_load(eids[0], 16 * PAGE) == 0x100
        assert monitor.enclave_load(eids[1], 32 * PAGE) == 0x101
        # distinct physical backing
        pa0 = monitor.enclave_translate(eids[0], 16 * PAGE)
        pa1 = monitor.enclave_translate(eids[1], 32 * PAGE)
        assert pa0 != pa1

    def test_sequential_world_switches(self):
        monitor, _apps, eids = self.build()
        for _round in range(3):
            for eid in eids:
                monitor.hc_enter(eid)
                monitor.vcpu.write_reg("rax", eid * 1000 + _round)
                monitor.hc_exit(eid)
        for eid in eids:
            monitor.hc_enter(eid)
            assert monitor.vcpu.read_reg("rax") == eid * 1000 + 2
            monitor.hc_exit(eid)

    def test_destroy_one_keeps_other_intact(self):
        monitor, _apps, eids = self.build()
        monitor.hc_destroy(eids[0])
        assert check_all_invariants(monitor).ok
        assert monitor.enclave_load(eids[1], 32 * PAGE) == 0x101

    def test_epc_reuse_after_destroy_is_clean(self):
        monitor, _apps, eids = self.build()
        monitor.hc_destroy(eids[0])
        primary_os = monitor.primary_os
        src = TINY.frame_base(primary_os.reserve_data_frame())
        mbuf = TINY.frame_base(primary_os.reserve_data_frame())
        eid = monitor.hc_create(48 * PAGE, 2 * PAGE, 6 * PAGE, mbuf, PAGE)
        monitor.hc_add_page(eid, 48 * PAGE, src)
        monitor.hc_init(eid)
        monitor.hc_aug_page(eid, 49 * PAGE)
        assert monitor.enclave_load(eid, 49 * PAGE) == 0  # scrubbed
        assert check_all_invariants(monitor).ok


class TestStressScale:
    def test_many_lifecycle_rounds_stay_invariant(self):
        monitor = RustMonitor(TINY)
        primary_os = monitor.primary_os
        src = TINY.frame_base(primary_os.reserve_data_frame())
        mbuf = TINY.frame_base(primary_os.reserve_data_frame())
        for round_no in range(12):
            eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, mbuf, PAGE)
            monitor.hc_add_page(eid, 16 * PAGE, src)
            monitor.hc_init(eid)
            monitor.hc_enter(eid)
            monitor.hc_exit(eid)
            monitor.hc_destroy(eid)
            assert check_all_invariants(monitor).ok
        assert monitor.pt_allocator.used_count <= 2  # no frame leaks
        assert monitor.epcm.free_count() == monitor.layout.epc_size
