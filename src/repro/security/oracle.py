"""Data oracles for marshalling-buffer declassification (Sec. 5.4).

"Each execution is parameterized by an oracle (a stream of values) and
we modify the semantics for memory load and memory store to treat the
marshalling buffer separately. In particular, stores to the marshalling
buffer are in effect ignored ... Reads from the marshalling buffer are
taken from the oracle. Because the theorem is proved for all possible
oracles, including the one which returns the same values that were
written by other guests, it still covers all possible code paths."

A :class:`DataOracle` is that stream.  The noninterference drivers hand
*the same oracle values* to both worlds, so mbuf data can never be the
source of a distinguishing observation — which is precisely what
"declassified" means.
"""

from repro.errors import SecurityError


class DataOracle:
    """A deterministic stream of 64-bit values."""

    def __init__(self, values=(), cycle=True):
        self._values = [v & ((1 << 64) - 1) for v in values]
        self._cursor = 0
        self._cycle = cycle

    @staticmethod
    def constant(value=0):
        return DataOracle([value])

    @staticmethod
    def seeded(seed, length=64):
        """A pseudorandom oracle — 'all possible oracles' sampled."""
        import random
        rng = random.Random(seed)
        return DataOracle([rng.getrandbits(64) for _ in range(length)])

    def next(self) -> int:
        """The next declassified value."""
        if not self._values:
            return 0
        if self._cursor >= len(self._values):
            if not self._cycle:
                raise SecurityError("data oracle exhausted")
            self._cursor = 0
        value = self._values[self._cursor]
        self._cursor += 1
        return value

    @property
    def position(self):
        return self._cursor

    def fork(self):
        """A copy at the same position (for cloned worlds)."""
        clone = DataOracle(self._values, self._cycle)
        clone._cursor = self._cursor
        return clone


class MemoryEchoOracle:
    """The distinguished oracle of Sec. 5.4: "the one which returns the
    same values that were written by other guests".

    Instead of a pre-chosen stream, a marshalling-buffer read yields the
    *actual current contents* of the accessed physical word.  Theorem
    5.1 is quantified over all oracles, so it must hold for this one
    too — which it does, because the model ignores mbuf *stores*: both
    worlds' buffer contents evolve identically under identical traces,
    so the echoed values can never distinguish them.
    """

    def next_for(self, state, hpa) -> int:
        return state.monitor.phys.read_word(hpa)

    def next(self) -> int:  # stream-protocol fallback (no location)
        return 0
