"""The production x86-64 geometry, end to end.

The tiny geometry carries the bounded checking; this file pins that the
same code paths work at real scale: 4-level 512-entry tables, 4 KiB
pages, 48-bit VA, gigabyte-huge boot mappings, and the full corpus
verifying with x86 constants inlined.
"""

import pytest

from repro.hyperenclave import pte
from repro.hyperenclave.constants import MemoryLayout, X86_64
from repro.hyperenclave.mir_model import build_model
from repro.hyperenclave.monitor import RustMonitor
from repro.errors import TranslationFault
from repro.security import check_all_invariants

PAGE = X86_64.page_size
ELRANGE = 0x10000000
MBUF_VA = 0x20000000


@pytest.fixture(scope="module")
def x86_layout():
    return MemoryLayout.compact_for(X86_64)


@pytest.fixture(scope="module")
def x86_world(x86_layout):
    monitor = RustMonitor(X86_64, layout=x86_layout)
    primary_os = monitor.primary_os
    app = primary_os.spawn_app(1)
    src = X86_64.frame_base(primary_os.reserve_data_frame())
    mbuf = X86_64.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src, 0xFEEDFACE)
    eid = monitor.hc_create(ELRANGE, 2 * PAGE, MBUF_VA, mbuf, PAGE)
    monitor.hc_add_page(eid, ELRANGE, src)
    monitor.hc_init(eid)
    primary_os.gpt_map(app.gpt_root_gpa, MBUF_VA, mbuf)
    return monitor, app, eid


class TestX86Boot:
    def test_boot_uses_huge_pages_sparingly(self, x86_layout):
        monitor = RustMonitor(X86_64, layout=x86_layout)
        assert monitor.pt_allocator.used_count <= 8
        sizes = {size for _va, _pa, size, _f
                 in monitor.os_ept.mappings()}
        assert max(sizes) >= X86_64.level_span(3)  # 1 GiB entries

    def test_identity_translation_across_the_range(self, x86_world):
        monitor, _app, _eid = x86_world
        for gpa in (0, 0x200000, 0x40000000, 0x7FFFF000):
            assert monitor.os_ept.translate(gpa) == gpa

    def test_secure_region_unreachable(self, x86_world):
        monitor, _app, _eid = x86_world
        secure_gpa = X86_64.frame_base(monitor.layout.secure_base)
        with pytest.raises(TranslationFault):
            monitor.primary_os.gpa_read_word(secure_gpa)


class TestX86Lifecycle:
    def test_enclave_reads_its_page(self, x86_world):
        monitor, _app, eid = x86_world
        assert monitor.enclave_load(eid, ELRANGE) == 0xFEEDFACE

    def test_mbuf_shared(self, x86_world):
        monitor, app, eid = x86_world
        monitor.primary_os.store(app, MBUF_VA, 0x12)
        assert monitor.enclave_load(eid, MBUF_VA) == 0x12

    def test_invariants_hold(self, x86_world):
        monitor, _app, _eid = x86_world
        report = check_all_invariants(monitor)
        assert report.ok, str(report)

    def test_enter_exit(self, x86_world):
        monitor, _app, eid = x86_world
        monitor.hc_enter(eid)
        monitor.hc_exit(eid)

    def test_four_level_walk_depth(self, x86_world):
        monitor, _app, eid = x86_world
        enclave = monitor.enclaves[eid]
        result = enclave.gpt.walk(ELRANGE)
        assert [s.level for s in result.steps] == [4, 3, 2, 1]


class TestX86Corpus:
    @pytest.fixture(scope="class")
    def x86_model(self, x86_layout):
        return build_model(X86_64, layout=x86_layout)

    def test_corpus_builds_and_layers(self, x86_model):
        assert len(x86_model.program.functions) == 49
        assert x86_model.check_call_order() == []

    @pytest.mark.parametrize("name", [
        "pte_new", "pte_addr", "entry_index", "level_span",
        "align_page_up", "pa_in_epc",
    ])
    def test_pure_functions_verify_with_x86_constants(self, x86_model,
                                                      name):
        from repro.verification import verify_pure_function
        verdict = verify_pure_function(x86_model, name)
        assert verdict.ok, verdict.failures

    @pytest.mark.parametrize("name", [
        "map_page", "walk_terminal", "query", "alloc_frame",
    ])
    def test_stateful_functions_cosim_at_scale(self, x86_model, name):
        from repro.verification import verify_stateful_function
        verdict = verify_stateful_function(x86_model, name, count=6)
        assert verdict.ok, verdict.failures

    def test_x86_constants_inlined_differently(self, x86_model, model):
        """Retrofit rule 4: the constants really are baked per geometry."""
        from repro.mir.printer import print_function
        tiny_text = print_function(model.program.functions["pte_addr"])
        x86_text = print_function(
            x86_model.program.functions["pte_addr"])
        assert tiny_text != x86_text  # different addr masks inlined

    def test_mir_x86_map_matches_impl(self, x86_model):
        from repro.mir.value import mk_u64
        interp = x86_model.make_interpreter()
        root = interp.call("alloc_frame").value
        interp.call("map_page", [root, mk_u64(ELRANGE),
                                 mk_u64(0x3000), mk_u64(7)])
        result = interp.call("translate_page",
                             [root, mk_u64(ELRANGE + 0x18)])
        assert result.value.fields[0].value == 1
        assert result.value.fields[1].value == 0x3018
