"""The deadline-aware client, without a network.

A fake transport replaces :meth:`ServiceClient._once` so the retry
loop is exercised against scripted failures: connection refusals,
backpressure verdicts with and without ``retry_after`` hints, and
deadlines that run out mid-backoff.  The sleeps are recorded, never
slept, and the fake clock only advances when the loop "sleeps" — so
the schedule assertions are exact.
"""

import urllib.error

import pytest

from repro.errors import (
    AdmissionRefused,
    CampaignNotFound,
    DeadlineExceeded,
)
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.supervisor import backoff_delay


class ScriptedClient(ServiceClient):
    """Each element of ``script`` is an exception to raise or a dict
    to return, consumed one call at a time."""

    def __init__(self, script, **options):
        self.script = list(script)
        self.calls = []
        self.slept = []
        self.timeouts = []
        self.now = 0.0
        options.setdefault("backoff", 0.1)
        super().__init__("http://fake:1", sleep=self._fake_sleep,
                         clock=lambda: self.now, **options)

    def _fake_sleep(self, delay):
        self.slept.append(delay)
        self.now += delay

    def _once(self, method, path, body,
              timeout=ServiceClient.REQUEST_TIMEOUT):
        self.calls.append((method, path))
        self.timeouts.append(timeout)
        action = self.script.pop(0)
        if isinstance(action, BaseException):
            raise action
        return action


def refused():
    return urllib.error.URLError(ConnectionRefusedError(111))


class TestRetries:
    def test_transient_refusals_retry_then_succeed(self):
        client = ScriptedClient([refused(), refused(), {"ok": True}])
        assert client.healthz() == {"ok": True}
        assert len(client.calls) == 3
        # The backoff schedule is the supervisor's: deterministic
        # jitter keyed by (path, shard 0, attempt).
        assert client.slept == [
            backoff_delay("/healthz", 0, 1, base=0.1, cap=2.0),
            backoff_delay("/healthz", 0, 2, base=0.1, cap=2.0)]

    def test_retry_budget_exhaustion_is_typed(self):
        client = ScriptedClient([refused()] * 3, max_attempts=3)
        with pytest.raises(ServiceUnavailable, match="3 attempts"):
            client.healthz()
        assert len(client.calls) == 3

    def test_deadline_cuts_the_retry_loop(self):
        client = ScriptedClient([refused()] * 50, backoff=10.0)
        with pytest.raises(DeadlineExceeded) as exc:
            client.healthz(deadline=12.0)
        assert exc.value.deadline == 12.0
        assert isinstance(exc.value.cause, urllib.error.URLError)

    def test_socket_timeout_clamped_to_deadline(self):
        """A deadline bounds the per-request socket timeout too — a
        black-holed server must fail in ~deadline seconds, not hang
        for the full 30s transport ceiling."""
        client = ScriptedClient([refused()] * 50, backoff=1.0)
        with pytest.raises(DeadlineExceeded):
            client.healthz(deadline=5.0)
        assert client.timeouts[0] == 5.0
        assert all(t <= 5.0 for t in client.timeouts)
        # Without a deadline, the transport ceiling applies unchanged.
        relaxed = ScriptedClient([{"ok": True}])
        relaxed.healthz()
        assert relaxed.timeouts == [ServiceClient.REQUEST_TIMEOUT]

    def test_retry_schedule_is_deterministic(self):
        first = ScriptedClient([refused(), refused(), {}])
        second = ScriptedClient([refused(), refused(), {}])
        first.healthz()
        second.healthz()
        assert first.slept == second.slept

    def test_backpressure_honours_server_hint(self):
        client = ScriptedClient(
            [AdmissionRefused("queue full", retry_after=0.7), {"id": "x"}])
        assert client.submit({"id": "x"}, deadline=60)["id"] == "x"
        assert client.slept == [0.7]

    def test_draining_verdict_without_deadline_raises_now(self):
        client = ScriptedClient([AdmissionRefused("draining",
                                                  retry_after=None)])
        with pytest.raises(AdmissionRefused):
            client.submit({"id": "x"})
        assert client.slept == []

    def test_not_found_never_retries(self):
        client = ScriptedClient([CampaignNotFound("ghost")])
        with pytest.raises(CampaignNotFound):
            client.status("ghost")
        assert len(client.calls) == 1


class TestWait:
    def test_wait_polls_to_terminal_state(self):
        client = ScriptedClient([
            {"status": "queued"},
            {"status": "running"},
            {"status": "done", "ok": True}])
        final = client.wait("c", poll=0.5)
        assert final["status"] == "done"
        assert client.slept == [0.5, 0.5]

    def test_wait_deadline_names_last_state(self):
        client = ScriptedClient([{"status": "running"}] * 100,
                                backoff=0.0)
        with pytest.raises(DeadlineExceeded, match="still running"):
            client.wait("c", deadline=2.0, poll=1.0)
