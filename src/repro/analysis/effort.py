"""Proof-effort accounting — the Table 1 / Sec. 6 reproduction.

Holds the paper's published numbers as constants and measures the
corresponding artifacts of *this* reproduction, so the bench can print
them side by side.  Person-year columns obviously cannot be re-measured;
they are reported from the paper only.
"""

import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.audit.loc import LocCount, count_package, count_text
from repro.mir.printer import print_program

# Table 1, verbatim from the paper (lines; py = person-years).
PAPER_TABLE1 = (
    # (component, lines, effort-py or None)
    ("HyperEnclave", 5881, None),
    ("HyperEnclave undergone verification", 2130, None),
    ("MIRVerif framework", 3778, 0.6),
    ("Page table refinement proofs", 4394, 0.3),
    ("Code specifications/models", 2445, 1.2),   # 1.2py spans this row
    ("Code proofs", 4191, None),                 # ...and this one
    ("Top-level specifications/models", 2015, 0.9),
    ("Top-level proofs", 6600, None),
)

# Sec. 6 ratios and counts.
PAPER_RATIOS = {
    "verified_functions": 49,
    "total_functions": 77,
    "layers": 15,
    "verified_rust_loc": 1279,
    "memory_module_rust_loc": 1279,
    "mirlight_loc": 3358,
    "proof_loc": 4191,
    "proof_per_mir_line": 1.25,
    "sekvm_proof_loc": 4884,
    "sekvm_c_loc": 2260,
    "sekvm_proof_per_line": 2.16,
    "noninterference_proof_loc": 6600,
    "effort_split": {"framework": 0.20, "invariants+noninterference": 0.30,
                     "page-table refinement": 0.10, "code proofs": 0.40},
    "unsafe_blocks": 105,
    "unsafe_indirect_calls": 74,
    "unsafe_raw_derefs": 13,
}


def _src_root():
    import repro
    return os.path.dirname(repro.__file__)


# Component name -> subpackages of this reproduction that play the role.
COMPONENT_MAP = {
    "HyperEnclave (system model)": ("hyperenclave",),
    "HyperEnclave undergone verification (mirlight corpus)":
        (os.path.join("hyperenclave", "mir_model"),),
    "MIRVerif framework (mir+ccal+symbolic)":
        ("mir", "ccal", "symbolic"),
    "Page table refinement (spec package)": ("spec",),
    "Code specifications + proofs (verification)": ("verification",),
    "Top-level specifications/models (security)": ("security",),
    "Analysis & audit tooling": ("analysis", "audit", "reporting"),
}


def measure_components(include_harness=True) -> Dict[str, LocCount]:
    """Line counts of this reproduction's components.

    With ``include_harness`` the test suite and bench harness are
    reported too (the paper's Coq proof scripts play both roles at
    once; in this reproduction they are separate artifacts).
    """
    root = _src_root()
    measured = {}
    for component, subdirs in COMPONENT_MAP.items():
        total = LocCount()
        for subdir in subdirs:
            total = total + count_package(os.path.join(root, subdir))
        measured[component] = total
    if include_harness:
        repo_root = os.path.dirname(os.path.dirname(root))
        for component, subdir in (("Test suite", "tests"),
                                  ("Benchmark harness", "benchmarks"),
                                  ("Examples", "examples")):
            path = os.path.join(repo_root, subdir)
            if os.path.isdir(path):
                measured[component] = count_package(path)
    return measured


def corpus_mirlight_loc(model) -> LocCount:
    """Lines of the printed mirlight corpus (the coqwc -s analog)."""
    return count_text(print_program(model.program), language="mirlight")


@dataclass
class EffortSummary:
    """Our measured analog of the Sec. 6 ratios."""

    corpus_functions: int
    corpus_layers: int
    mirlight_code_loc: int
    checker_code_loc: int

    @property
    def checker_per_mir_line(self):
        return self.checker_code_loc / max(self.mirlight_code_loc, 1)


def proof_effort_summary(model) -> EffortSummary:
    """Measure this reproduction's Sec. 6 quantities."""
    root = _src_root()
    checker = count_package(os.path.join(root, "verification"))
    mirlight = corpus_mirlight_loc(model)
    layers_used = {fn.layer for fn in model.program.functions.values()}
    return EffortSummary(
        corpus_functions=len(model.program.functions),
        corpus_layers=len(model.stack) if model.stack else len(layers_used),
        mirlight_code_loc=mirlight.code,
        checker_code_loc=checker.code,
    )
