"""The verification harness: MIRVerif's proofs, as checks.

Ties the pieces together the way the paper's Coq development does:

* **code proofs** (Sec. 4.3, code -> low spec):
  :mod:`repro.verification.code_proofs` co-simulates every stateful
  corpus function against its functional specification over the same
  abstract state;
* **pure-function proofs**: :mod:`repro.verification.pure_refs` pairs
  every pure corpus function with its Python reference, checked by
  exhaustive bounded symbolic equivalence and panic-freedom
  (:func:`repro.symbolic.check_equivalence` /
  :func:`repro.symbolic.verify_assertions`);
* **refinement proofs** (Sec. 4.1, low spec -> high spec): driven via
  :mod:`repro.spec.relation` by the tests and benches;
* :func:`repro.verification.code_proofs.verify_corpus` — the one-call
  "check everything" driver producing the per-layer report behind the
  Sec. 6 statistics;
* **hardened checking** (:mod:`repro.verification.harness`): every
  engine runs under a wall-clock/step budget and degrades gracefully
  (symbolic → exhaustive-bounded → property sampling) instead of
  hanging, with the taken path recorded in the
  :class:`~repro.ccal.refinement.CheckReport`.
"""

from repro.verification.pure_refs import (
    pure_reference,
    pure_function_names,
    default_domains,
)
from repro.verification.code_proofs import (
    low_spec_for,
    stateful_function_names,
    sample_states,
    verify_stateful_function,
    verify_pure_function,
    verify_corpus,
    CorpusReport,
    FunctionVerdict,
)
from repro.verification.autospec import (
    SynthesizedSpec,
    synthesize_spec,
    check_synthesized_spec,
)
from repro.verification.harness import (
    ENGINE_EXHAUSTIVE,
    ENGINE_SAMPLING,
    ENGINE_SYMBOLIC,
    check_pure_hardened,
    check_stateful_hardened,
    split_budget,
)

__all__ = [
    "pure_reference", "pure_function_names", "default_domains",
    "low_spec_for", "stateful_function_names", "sample_states",
    "verify_stateful_function", "verify_pure_function", "verify_corpus",
    "CorpusReport", "FunctionVerdict",
    "SynthesizedSpec", "synthesize_spec", "check_synthesized_spec",
    "ENGINE_EXHAUSTIVE", "ENGINE_SAMPLING", "ENGINE_SYMBOLIC",
    "check_pure_hardened", "check_stateful_hardened", "split_budget",
]
