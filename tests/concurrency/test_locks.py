"""The lock model: global order, mutual exclusion, discipline rules."""

import pytest

from repro.errors import (
    HypervisorError,
    LockProtocolViolation,
    StaleTranslation,
)
from repro.concurrency.locks import (
    LOCK_ENCLAVES,
    LOCK_EPCM,
    LOCK_FRAMES,
    LockManager,
    enclave_lock,
    lock_rank,
    order_locks,
)


class TestGlobalOrder:
    def test_rank_total_order(self):
        names = [LOCK_ENCLAVES, enclave_lock(0), enclave_lock(5),
                 LOCK_EPCM, LOCK_FRAMES]
        assert [lock_rank(n) for n in names] == sorted(
            lock_rank(n) for n in names)

    def test_enclave_locks_rank_by_eid(self):
        assert lock_rank(enclave_lock(1)) < lock_rank(enclave_lock(2))

    def test_order_locks_dedups_and_sorts(self):
        assert order_locks([LOCK_FRAMES, LOCK_ENCLAVES, LOCK_FRAMES,
                            enclave_lock(3)]) == \
            [LOCK_ENCLAVES, enclave_lock(3), LOCK_FRAMES]

    def test_unknown_lock_rejected(self):
        with pytest.raises(ValueError):
            lock_rank("mystery")


class TestMutualExclusion:
    def test_acquire_and_release(self):
        locks = LockManager()
        locks.acquire(0, LOCK_EPCM)
        assert locks.holds(0, LOCK_EPCM)
        assert locks.owner_of(LOCK_EPCM) == 0
        assert locks.would_block(1, LOCK_EPCM)
        assert not locks.would_block(0, LOCK_EPCM)
        assert locks.release_all(0) == (LOCK_EPCM,)
        assert not locks.any_held()

    def test_release_all_drops_every_lock_of_one_vcpu(self):
        locks = LockManager()
        locks.acquire(0, LOCK_ENCLAVES)
        locks.acquire(0, LOCK_EPCM)
        locks.acquire(1, LOCK_FRAMES)
        assert locks.release_all(0) == (LOCK_ENCLAVES, LOCK_EPCM)
        assert locks.holds(1, LOCK_FRAMES)

    def test_reentrant_acquire_is_a_noop(self):
        locks = LockManager()
        locks.acquire(0, LOCK_EPCM)
        locks.acquire(0, LOCK_EPCM)
        assert locks.held_by(0) == (LOCK_EPCM,)
        assert not locks.violations

    def test_contended_acquire_is_a_scheduler_bug(self):
        locks = LockManager()
        locks.acquire(0, LOCK_EPCM)
        with pytest.raises(RuntimeError):
            locks.acquire(1, LOCK_EPCM)


class TestDisciplineRules:
    def test_rule1_out_of_order_acquire_recorded(self):
        locks = LockManager()
        locks.acquire(0, LOCK_FRAMES)
        locks.acquire(0, LOCK_ENCLAVES)
        assert len(locks.violations) == 1
        assert locks.violations[0].rule == "lock-order"

    def test_rule2_hold_across_return_recorded(self):
        locks = LockManager()
        locks.acquire(0, LOCK_EPCM)
        locks.check_none_held(0, "return from hc_create")
        assert locks.violations[0].rule == "hold-across-return"

    def test_rule3_unlocked_mutation_recorded(self):
        locks = LockManager()
        locks.check_mutation(1, LOCK_EPCM)
        assert locks.violations[0].rule == "unlocked-mutation"
        assert locks.violations[0].vid == 1

    def test_locked_mutation_is_clean(self):
        locks = LockManager()
        locks.acquire(1, LOCK_EPCM)
        locks.check_mutation(1, LOCK_EPCM)
        assert not locks.violations

    def test_strict_mode_raises(self):
        locks = LockManager(strict=True)
        with pytest.raises(LockProtocolViolation):
            locks.check_mutation(0, LOCK_FRAMES)


class TestErrorTaxonomy:
    def test_violations_are_not_hypervisor_errors(self):
        """Harness verdicts must never be absorbed by normal hypercall
        error handling (the FaultInjected precedent)."""
        assert not issubclass(LockProtocolViolation, HypervisorError)
        assert not issubclass(StaleTranslation, HypervisorError)

    def test_stale_translation_message_carries_the_witness(self):
        exc = StaleTranslation(vid=1, principal=2, va_page=0x4000,
                               cached_pa=0x7000, reason="the frame is free")
        assert exc.vid == 1 and exc.cached_pa == 0x7000
        assert "0x4000" in str(exc) and "free" in str(exc)
