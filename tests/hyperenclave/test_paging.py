"""Page tables: walking, mapping, unmapping, translation, nested walks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PagingError, TranslationFault
from repro.hyperenclave import pte
from repro.hyperenclave.constants import MemoryLayout, TINY
from repro.hyperenclave.frames import BitmapFrameAllocator
from repro.hyperenclave.hardware import PhysMemory
from repro.hyperenclave.paging import (
    PageTable, guest_walk, two_stage_translate,
)

PAGE = TINY.page_size


@pytest.fixture
def setup():
    layout = MemoryLayout.default_for(TINY)
    phys = PhysMemory(TINY)
    allocator = BitmapFrameAllocator(layout.pt_pool_frames)
    table = PageTable(TINY, phys, allocator, name="test")
    return phys, allocator, table


class TestMapAndWalk:
    def test_map_then_translate(self, setup):
        _, _, table = setup
        table.map_page(3 * PAGE, 9 * PAGE, pte.leaf_flags())
        assert table.translate(3 * PAGE) == 9 * PAGE
        assert table.translate(3 * PAGE + 17) == 9 * PAGE + 17

    def test_walk_spine_has_all_levels(self, setup):
        _, _, table = setup
        table.map_page(0, PAGE, pte.leaf_flags())
        result = table.walk(0)
        assert [s.level for s in result.steps] == \
            list(range(TINY.levels, 0, -1))
        assert result.complete

    def test_unmapped_walk_incomplete(self, setup):
        _, _, table = setup
        result = table.walk(5 * PAGE)
        assert not result.complete
        assert table.query(5 * PAGE) is None

    def test_double_map_rejected(self, setup):
        _, _, table = setup
        table.map_page(0, PAGE, pte.leaf_flags())
        with pytest.raises(PagingError, match="already mapped"):
            table.map_page(0, 2 * PAGE, pte.leaf_flags())

    def test_unaligned_rejected(self, setup):
        _, _, table = setup
        with pytest.raises(PagingError, match="unaligned"):
            table.map_page(5, PAGE, pte.leaf_flags())
        with pytest.raises(PagingError, match="unaligned"):
            table.map_page(PAGE, 5, pte.leaf_flags())

    def test_intermediate_tables_shared_within_span(self, setup):
        _, allocator, table = setup
        before = allocator.used_count
        table.map_page(0, PAGE, pte.leaf_flags())
        after_first = allocator.used_count
        table.map_page(PAGE, 2 * PAGE, pte.leaf_flags())  # same L2/L1
        assert allocator.used_count == after_first
        assert after_first == before + TINY.levels - 1

    def test_unmap_then_translate_faults(self, setup):
        _, _, table = setup
        table.map_page(0, PAGE, pte.leaf_flags())
        table.unmap(0)
        with pytest.raises(TranslationFault):
            table.translate(0)

    def test_unmap_unmapped_rejected(self, setup):
        _, _, table = setup
        with pytest.raises(PagingError, match="not mapped"):
            table.unmap(0)

    def test_unmap_keeps_intermediates(self, setup):
        _, allocator, table = setup
        table.map_page(0, PAGE, pte.leaf_flags())
        used = allocator.used_count
        table.unmap(0)
        assert allocator.used_count == used

    def test_query_returns_addr_and_flags(self, setup):
        _, _, table = setup
        flags = pte.leaf_flags(writable=False)
        table.map_page(2 * PAGE, 6 * PAGE, flags)
        paddr, got_flags = table.query(2 * PAGE)
        assert paddr == 6 * PAGE
        assert got_flags == flags

    def test_permission_enforcement(self, setup):
        _, _, table = setup
        table.map_page(0, PAGE, pte.leaf_flags(writable=False))
        table.map_page(PAGE, 2 * PAGE, pte.leaf_flags(user=False))
        assert table.translate(0, write=False) == PAGE
        with pytest.raises(TranslationFault, match="read-only"):
            table.translate(0, write=True)
        with pytest.raises(TranslationFault, match="supervisor"):
            table.translate(PAGE, user=True)
        assert table.translate(PAGE, user=False) == 2 * PAGE

    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.integers(0, TINY.va_space // PAGE - 1),
                   min_size=1, max_size=8))
    def test_mappings_reports_exactly_what_was_mapped(self, pages):
        layout = MemoryLayout.default_for(TINY)
        phys = PhysMemory(TINY)
        allocator = BitmapFrameAllocator(layout.pt_pool_frames)
        table = PageTable(TINY, phys, allocator)
        expected = {}
        for page_no in pages:
            table.map_page(page_no * PAGE, (page_no % 8) * PAGE,
                           pte.leaf_flags())
            expected[page_no * PAGE] = (page_no % 8) * PAGE
        got = {va: pa for va, pa, size, _ in table.mappings()}
        assert got == expected
        for va, pa in expected.items():
            assert table.translate(va) == pa


class TestHugePages:
    def test_huge_disallowed_by_default(self, setup):
        _, _, table = setup
        with pytest.raises(PagingError, match="not allowed"):
            table.map_huge(0, 0, 2, pte.leaf_flags())

    def test_huge_map_and_translate(self):
        layout = MemoryLayout.default_for(TINY)
        phys = PhysMemory(TINY)
        allocator = BitmapFrameAllocator(layout.pt_pool_frames)
        table = PageTable(TINY, phys, allocator, allow_huge=True)
        span = TINY.level_span(2)
        table.map_huge(0, span, 2, pte.leaf_flags())
        assert table.translate(0) == span
        assert table.translate(PAGE + 4) == span + PAGE + 4
        mappings = table.mappings()
        assert mappings[0][2] == span  # size

    def test_huge_alignment_enforced(self):
        layout = MemoryLayout.default_for(TINY)
        phys = PhysMemory(TINY)
        allocator = BitmapFrameAllocator(layout.pt_pool_frames)
        table = PageTable(TINY, phys, allocator, allow_huge=True)
        with pytest.raises(PagingError, match="aligned"):
            table.map_huge(PAGE, 0, 2, pte.leaf_flags())

    def test_huge_blocks_fine_grained_mapping(self):
        layout = MemoryLayout.default_for(TINY)
        phys = PhysMemory(TINY)
        allocator = BitmapFrameAllocator(layout.pt_pool_frames)
        table = PageTable(TINY, phys, allocator, allow_huge=True)
        table.map_huge(0, 0, 2, pte.leaf_flags())
        with pytest.raises(PagingError, match="huge"):
            table.map_page(PAGE, 5 * PAGE, pte.leaf_flags())

    def test_table_frames_excludes_huge_targets(self):
        layout = MemoryLayout.default_for(TINY)
        phys = PhysMemory(TINY)
        allocator = BitmapFrameAllocator(layout.pt_pool_frames)
        table = PageTable(TINY, phys, allocator, allow_huge=True)
        table.map_huge(0, 0, 3, pte.leaf_flags())
        frames = table.table_frames()
        assert frames[0] == table.root_frame
        # root + the level-3 table holding the block entry; the block's
        # target frame (0) is data, not structure
        assert len(frames) == 2
        assert 0 not in frames

    def test_root_level_blocks_rejected(self):
        # No supported architecture has root-level blocks; the old
        # check (any 2 <= level <= levels) silently permitted them.
        layout = MemoryLayout.default_for(TINY)
        phys = PhysMemory(TINY)
        allocator = BitmapFrameAllocator(layout.pt_pool_frames)
        table = PageTable(TINY, phys, allocator, allow_huge=True)
        with pytest.raises(PagingError, match="block level"):
            table.map_huge(0, 0, TINY.levels, pte.leaf_flags())


class TestTableFrames:
    def test_all_frames_in_pool(self, setup):
        _, allocator, table = setup
        for page_no in range(6):
            table.map_page(page_no * PAGE, page_no * PAGE,
                           pte.leaf_flags())
        frames = table.table_frames()
        assert frames[0] == table.root_frame
        assert all(allocator.contains(f) for f in frames)
        assert len(frames) == allocator.used_count


class TestNestedWalks:
    def build_nested(self):
        """An EPT identity-mapping frames 0..16 plus a guest GPT."""
        layout = MemoryLayout.default_for(TINY)
        phys = PhysMemory(TINY)
        allocator = BitmapFrameAllocator(layout.pt_pool_frames)
        ept = PageTable(TINY, phys, allocator, name="ept")
        for frame in range(16):
            base = TINY.frame_base(frame)
            ept.map_page(base, base, pte.leaf_flags())
        # Guest page tables live in guest frames 0..2 (identity mapped).
        gpt_root_gpa = TINY.frame_base(0)
        return phys, ept, gpt_root_gpa

    def write_guest_entry(self, phys, table_gpa, index, entry):
        phys.write_word(table_gpa + index * 8, entry)

    def build_guest_chain(self, phys, gpt_root, va, leaf_frame):
        """Hand-build the guest table chain for ``va`` in frames 1..n."""
        table_gpa = gpt_root
        next_free = 1
        for level in range(TINY.levels, 1, -1):
            child = TINY.frame_base(next_free)
            next_free += 1
            self.write_guest_entry(phys, table_gpa,
                                   TINY.entry_index(va, level),
                                   pte.pte_new(child, pte.table_flags(),
                                               TINY))
            table_gpa = child
        self.write_guest_entry(phys, table_gpa, TINY.entry_index(va, 1),
                               pte.pte_new(TINY.frame_base(leaf_frame),
                                           pte.leaf_flags(), TINY))

    def test_guest_walk_resolves(self):
        phys, ept, gpt_root = self.build_nested()
        va = 5 * PAGE
        self.build_guest_chain(phys, gpt_root, va, leaf_frame=9)
        hpa = guest_walk(TINY, phys, ept, gpt_root, va + 24)
        assert hpa == TINY.frame_base(9) + 24

    def test_guest_walk_gpt_fault(self):
        phys, ept, gpt_root = self.build_nested()
        with pytest.raises(TranslationFault) as excinfo:
            guest_walk(TINY, phys, ept, gpt_root, 5 * PAGE)
        assert excinfo.value.stage == "gpt"

    def test_guest_walk_ept_fault_on_secure_target(self):
        """A GPT entry pointing at unmapped (secure) GPA faults at the
        EPT stage — the mapping-attack containment in miniature."""
        phys, ept, gpt_root = self.build_nested()
        self.build_guest_chain(phys, gpt_root, 0, leaf_frame=120)
        with pytest.raises(TranslationFault) as excinfo:
            guest_walk(TINY, phys, ept, gpt_root, 0)
        assert excinfo.value.stage == "ept"

    def test_two_stage_translate(self):
        layout = MemoryLayout.default_for(TINY)
        phys = PhysMemory(TINY)
        allocator = BitmapFrameAllocator(layout.pt_pool_frames)
        gpt = PageTable(TINY, phys, allocator, name="gpt")
        ept = PageTable(TINY, phys, allocator, name="ept")
        gpt.map_page(7 * PAGE, 3 * PAGE, pte.leaf_flags())
        ept.map_page(3 * PAGE, 11 * PAGE, pte.leaf_flags())
        assert two_stage_translate(TINY, phys, ept, gpt, 7 * PAGE + 5) \
            == 11 * PAGE + 5

    def test_two_stage_fault_propagates_stage(self):
        layout = MemoryLayout.default_for(TINY)
        phys = PhysMemory(TINY)
        allocator = BitmapFrameAllocator(layout.pt_pool_frames)
        gpt = PageTable(TINY, phys, allocator, name="gpt")
        ept = PageTable(TINY, phys, allocator, name="ept")
        gpt.map_page(7 * PAGE, 3 * PAGE, pte.leaf_flags())
        with pytest.raises(TranslationFault) as excinfo:
            two_stage_translate(TINY, phys, ept, gpt, 7 * PAGE)
        assert excinfo.value.stage == "ept"
