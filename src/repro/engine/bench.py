"""Perf trajectory for the checking engines.

Two entry points, one rule: **a perf number for a divergent checker is
meaningless**, so every benchmark here compares its fast configuration
against the naive baseline and raises if the verdicts are not
byte-identical.

:func:`bench_checking` times the sequential interleaving campaign (the
pre-fabric baseline, untouched by that subsystem) against
:func:`~repro.engine.campaigns.parallel_interleaving_campaign` on the
same grid and returns the record that lands in ``BENCH_checking.json``:

* ``schedules_per_sec`` / ``states_per_sec`` (states = scheduler
  decisions, the unit of interleaving exploration) for both sides;
* ``speedup`` — median-of-``repeats`` wall-clock ratio (medians, not
  means: on a shared box one descheduled round would otherwise skew
  the trajectory);
* the worker-side memoisation counters and their aggregate hit rate.

:func:`bench_symbolic` times the symbolic fast path (hash-consed terms,
incremental solving with verdict memoisation, compiled MIR dispatch —
the :mod:`repro.fastpath` switch) against the naive engines on the full
corpus sweep (:func:`repro.verification.code_proofs.verify_corpus`),
asserts the per-function verdicts are byte-identical, and reports the
speedup plus the intern/simplify/solver-memo hit rates that explain it.
It also runs a *degradation ladder*: the hardened harness under
shrinking wall-clock budgets, recording — per budget, per mode — which
engine produced each verdict, so the record shows the budgets where the
naive chain falls back to sampling while the fast path still finishes
symbolically.

Run as a module for the CI perf-smoke job::

    python -m repro.engine.bench --out BENCH_checking.json \
        --max-schedules 600 --workers 4 --repeats 3
    python -m repro.engine.bench --symbolic --out BENCH_symbolic.json
    python -m repro.engine.bench --durability --out BENCH_checking.json
    python -m repro.engine.bench --service --out BENCH_checking.json
    python -m repro.engine.bench --prefix-cache --out BENCH_checking.json

:func:`bench_durability` prices the durable orchestrator
(:mod:`repro.service`): per-wave checkpoint overhead vs the plain
fabric (acceptance bar ≤5%), the warm cross-run memo store, and the
cost of resuming an interrupted campaign — merged into
``BENCH_checking.json`` under the ``durability`` key.

:func:`bench_prefix_cache` prices the snapshot-tree execution cache
(:mod:`repro.concurrency.snapshot`): the interleaving campaign with the
cache on vs off at each preemption bound (repr-identical results
required), with the hit-rate / steps-saved / bytes-resident counters —
merged into ``BENCH_checking.json`` under the ``prefix_cache`` key.

:func:`bench_service` prices checking-as-a-service: 2/4/8 concurrent
campaigns through the fair-share scheduler vs a sequential loop of
durable campaigns (digest-identical verdicts required), plus the
HTTP/JSON request-path cost vs calling the scheduler directly —
merged into ``BENCH_checking.json`` under the ``service`` key.

``--smoke`` shrinks the grid (preemption bound 1 for the fabric, fewer
repeats and a shorter ladder for the symbolic bench) so CI spends
seconds, not minutes; the byte-identity assertion runs at every size.
"""

import argparse
import json
import os
import statistics
import time

from repro.engine.campaigns import parallel_interleaving_campaign
from repro.engine.executor import resolve_workers


def _engine_config() -> dict:
    """The scheduler-engine knobs that shape every timing: which
    engine runs vCPUs, whether the extended snapshot-capture gate is
    on, and whether fiber stacks are pooled.  Folded into every bench
    ``config`` block so :func:`_merged_out` refuses to silently
    overwrite a section measured under a different engine setup."""
    from repro.concurrency.scheduler import resolve_engine
    from repro.concurrency.snapshot import extended_gate_enabled
    return {
        "sched_engine": resolve_engine(),
        "snapshot_gate": ("extended" if extended_gate_enabled()
                          else "legacy"),
        "fiber_arena": True,
    }


def _arch_name(config):
    if config is None:
        from repro.hyperenclave.constants import TINY
        config = TINY
    return config.arch.name


def _rates(seconds, schedules, states):
    return {
        "seconds": round(seconds, 4),
        "schedules_per_sec": round(schedules / seconds, 2),
        "states_per_sec": round(states / seconds, 2),
    }


def _memo_summary(stats):
    hits = sum(c.get("hits", 0) for c in stats.values())
    misses = sum(c.get("misses", 0) for c in stats.values())
    total = hits + misses
    return {
        "counters": stats,
        "hit_rate": round(hits / total, 4) if total else 0.0,
    }


def bench_checking(*, preemption_bound=2, max_schedules=600, seed=0,
                   workers=None, repeats=3, trace_overhead=True,
                   config=None) -> dict:
    """Time sequential vs parallel interleaving checking on one grid.

    Raises ``RuntimeError`` if any parallel round's merged report is
    not byte-identical to the sequential baseline — a perf number for
    a divergent checker would be meaningless.

    With ``trace_overhead`` the sequential campaign additionally runs
    with a tracer installed (ring only, no sink) and the record gains a
    ``tracing`` section: traced seconds, the overhead fraction, the
    record count, and the verdict-identity flag (tracing is
    observation-only, so the traced report must repr-match the
    untraced baseline — enforced here).  Overhead compares the
    *fastest* round of each configuration: on a shared box scheduling
    noise swamps the per-record cost, and the minimum is the least
    contaminated estimate of intrinsic cost on both sides.
    """
    from repro.engine.executor import ShardedExecutor
    from repro.faults.campaign import interleaving_campaign
    from repro.obs import trace as _trace

    workers = resolve_workers(workers)
    grid = dict(preemption_bound=preemption_bound,
                max_schedules=max_schedules, seed=seed, config=config)
    seq_times, par_times, traced_times = [], [], []
    baseline = None
    trace_records = 0
    stats = {}
    # One pool for every round: the median then measures the fabric's
    # steady state, not per-round process forking (which a long
    # campaign amortises anyway).
    with ShardedExecutor(workers) as pool:
        for _ in range(repeats):
            t0 = time.perf_counter()
            seq = interleaving_campaign(**grid)
            seq_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            par = parallel_interleaving_campaign(
                **grid, executor=pool, stats_out=stats)
            par_times.append(time.perf_counter() - t0)
            if repr(par) != repr(seq):
                raise RuntimeError(
                    "parallel interleaving report diverged from the "
                    "sequential baseline")
            baseline = seq
            if trace_overhead:
                with _trace.installed(_trace.Tracer()) as tracer:
                    t0 = time.perf_counter()
                    traced = interleaving_campaign(**grid)
                    traced_times.append(time.perf_counter() - t0)
                trace_records = len(tracer.records)
                if repr(traced) != repr(seq):
                    raise RuntimeError(
                        "tracing changed the interleaving report — "
                        "observation-only instrumentation is broken")
    schedules = len(baseline.runs)
    states = sum(len(result.decisions) for _, result in baseline.runs)
    seq_s = statistics.median(seq_times)
    par_s = statistics.median(par_times)
    record = {
        "benchmark": "parallel-checking-fabric",
        "campaign": "interleaving",
        "config": {"preemption_bound": preemption_bound,
                   "max_schedules": max_schedules, "seed": seed,
                   "workers": workers, "repeats": repeats,
                   "arch": _arch_name(config),
                   **_engine_config()},
        "schedules": schedules,
        "states": states,
        "sequential": _rates(seq_s, schedules, states),
        "parallel": _rates(par_s, schedules, states),
        "speedup": round(seq_s / par_s, 2),
        "byte_identical": True,
        "memo": _memo_summary(stats),
    }
    if trace_overhead:
        traced_s = min(traced_times)
        record["tracing"] = {
            "seconds": round(traced_s, 4),
            "overhead": round(traced_s / min(seq_times) - 1.0, 4),
            "records": trace_records,
            "verdict_identical": True,
        }
    return record


def bench_durability(*, preemption_bound=2, max_schedules=600, seed=0,
                     workers=None, repeats=3, tmp_root=None) -> dict:
    """Price the durable orchestrator against the plain parallel fabric.

    Four measurements on the same campaign grid, every one of them
    gated on repr-identity with the plain parallel run (a durability
    layer that changed a verdict would be worse than useless):

    * **checkpoint overhead** — durable vs plain wall-clock (best
      observed over the repeats, after a ``gc.collect()`` barrier so
      one round's garbage is never collected inside the next round's
      timing): the cost of per-wave atomic checkpoints plus the
      fsynced memo log.  The acceptance bar is ≤5%.
    * **warm store** — a fresh campaign preloading the previous run's
      memo log: the cross-run reuse the store exists for.  (At the
      TINY geometry the interleaving memo holds only a few dozen
      uniques, so this lands within noise of break-even — the verdict
      cache below is where warm reuse actually pays.)
    * **verdict cache** — :func:`~repro.service.orchestrator.
      warm_pure_check_grid` cold vs warm: the second run answers every
      function from the store's ``pure-verdict`` table without
      executing a single check.
    * **resume** — a campaign interrupted after its second wave and
      resumed: what finishing costs relative to a full run (the saved
      fraction is the wavefronts that did not re-run).

    Every round resets the worker memo: campaigns in one process would
    otherwise warm each other through the in-process cache and the
    store would have nothing left to prove.
    """
    import gc
    import os
    import shutil
    import tempfile

    from repro.engine import workers as worker_module
    from repro.engine.memo import CheckMemo
    from repro.service import (
        CampaignSpec,
        CampaignStore,
        ResilientExecutor,
        resume_campaign,
        run_durable_campaign,
    )

    workers = resolve_workers(workers)
    grid = dict(preemption_bound=preemption_bound,
                max_schedules=max_schedules, seed=seed, config=config)
    spec = CampaignSpec(**grid)
    root = tempfile.mkdtemp(prefix="bench-durability.", dir=tmp_root)
    plain_times, durable_times, warm_times = [], [], []
    original_memo = worker_module.MEMO

    def cold_memo():
        # Also a GC barrier: the previous round's campaign results are
        # hundreds of thousands of objects, and collecting them inside
        # the *next* round's timing would charge one variant for
        # another's garbage.
        worker_module.MEMO = CheckMemo()
        gc.collect()

    try:
        # Campaign results are compared (and kept) as repr strings:
        # holding the object graphs across rounds would hand the next
        # timed section the deallocation bill for this one's result.
        for index in range(repeats):
            cold_memo()
            t0 = time.perf_counter()
            plain = parallel_interleaving_campaign(**grid,
                                                   workers=workers)
            plain_times.append(time.perf_counter() - t0)
            plain_repr, total_runs = repr(plain), len(plain.runs)
            plain = None

            cold_memo()
            store = os.path.join(root, f"cold{index}")
            t0 = time.perf_counter()
            durable = run_durable_campaign(spec, store, workers=workers)
            durable_times.append(time.perf_counter() - t0)
            if repr(durable) != plain_repr:
                raise RuntimeError(
                    "durable campaign diverged from the plain parallel "
                    "fabric")
            durable = None

            warm_store = os.path.join(root, f"warm{index}")
            os.makedirs(warm_store)
            shutil.copy(CampaignStore(store).memo.path,
                        os.path.join(warm_store, "memo.log"))
            cold_memo()
            t0 = time.perf_counter()
            warm = run_durable_campaign(spec, warm_store,
                                        workers=workers)
            warm_times.append(time.perf_counter() - t0)
            if repr(warm) != plain_repr:
                raise RuntimeError(
                    "warm-store campaign diverged from the plain "
                    "parallel fabric")
            warm = None

        # One interrupted-and-resumed campaign: Ctrl-C lands right
        # before the third wavefront, the checkpoint preserves the
        # first two, and the resume pays only for the rest.
        class _Interrupting(ResilientExecutor):
            calls = 0

            def map(self, fn_path, units, *, keys=None):
                """Raise KeyboardInterrupt on the third wavefront."""
                type(self).calls += 1
                if type(self).calls == 3:
                    raise KeyboardInterrupt
                return super().map(fn_path, units, keys=keys)

        cold_memo()
        interrupted = os.path.join(root, "interrupted")
        pool = _Interrupting(workers)
        try:
            run_durable_campaign(spec, interrupted, executor=pool)
        except KeyboardInterrupt:
            pass
        finally:
            pool.close()
        interrupted_checkpoint = \
            CampaignStore(interrupted).load_checkpoint()
        waves_done = interrupted_checkpoint.waves
        preserved = len(interrupted_checkpoint.state.runs)
        resume_times = []
        for index in range(repeats):
            # Resuming completes the store, so each repeat resumes a
            # fresh copy of the interrupted snapshot.
            snapshot = os.path.join(root, f"resume{index}")
            shutil.copytree(interrupted, snapshot)
            cold_memo()
            t0 = time.perf_counter()
            resumed = resume_campaign(snapshot, workers=workers)
            resume_times.append(time.perf_counter() - t0)
            if repr(resumed) != plain_repr:
                raise RuntimeError(
                    "resumed campaign diverged from the plain parallel "
                    "fabric")
            resumed = None
        resume_s = min(resume_times)

        # The verdict cache: a pure-check grid answered twice from one
        # store — the warm pass is pure replay.
        from repro.service.orchestrator import warm_pure_check_grid
        grid_names = ["pte_new", "pte_addr", "pte_flags",
                      "pte_is_present", "pte_set_flags"]
        verdict_store = os.path.join(root, "verdicts")
        cold_memo()
        t0 = time.perf_counter()
        cold_grid = warm_pure_check_grid(grid_names, verdict_store,
                                         total_steps=40000,
                                         workers=workers)
        grid_cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_grid = warm_pure_check_grid(grid_names, verdict_store,
                                         total_steps=40000,
                                         workers=workers)
        grid_warm_s = time.perf_counter() - t0
        if repr(warm_grid) != repr(cold_grid):
            raise RuntimeError(
                "warm verdict grid diverged from its cold run")
    finally:
        worker_module.MEMO = original_memo
        shutil.rmtree(root, ignore_errors=True)

    # Best observed over the repeats: box noise (scheduling, frequency
    # scaling) only ever *adds* time, so with the GC barrier in place
    # the minimum is the repeat closest to the true cost of the code.
    plain_s = min(plain_times)
    durable_s = min(durable_times)
    warm_s = min(warm_times)
    overhead = durable_s / plain_s - 1.0
    warm_speedup = durable_s / warm_s
    return {
        "benchmark": "durable-orchestrator",
        "config": {"preemption_bound": preemption_bound,
                   "max_schedules": max_schedules, "seed": seed,
                   "workers": workers, "repeats": repeats,
                   "arch": _arch_name(config),
                   **_engine_config()},
        "plain": {"seconds_per_repeat": [round(t, 4)
                                         for t in plain_times],
                  "seconds": round(plain_s, 4)},
        "durable": {"seconds_per_repeat": [round(t, 4)
                                           for t in durable_times],
                    "seconds": round(durable_s, 4)},
        "checkpoint_overhead": round(overhead, 4),
        "warm_store": {"seconds_per_repeat": [round(t, 4)
                                              for t in warm_times],
                       "seconds": round(warm_s, 4),
                       "speedup_vs_cold": round(warm_speedup, 2)},
        "resume": {"seconds_per_repeat": [round(t, 4)
                                          for t in resume_times],
                   "seconds": round(resume_s, 4),
                   "interrupted_after_waves": waves_done,
                   "schedules_preserved": preserved,
                   "schedules_total": total_runs,
                   "fraction_of_full_run": round(resume_s / durable_s,
                                                 4)},
        "verdict_cache": {"functions": len(grid_names),
                          "cold_seconds": round(grid_cold_s, 4),
                          "warm_seconds": round(grid_warm_s, 4),
                          "speedup": round(grid_cold_s / grid_warm_s,
                                           1),
                          "verdicts_identical": True},
        "byte_identical": True,
    }


def bench_service(*, preemption_bound=2, max_schedules=240, seed=0,
                  workers=None, concurrency=(2, 4, 8),
                  request_probes=200, tmp_root=None) -> dict:
    """Price checking-as-a-service against a sequential campaign loop.

    Two measurements, both gated on digest-identity with solo
    :func:`~repro.service.orchestrator.run_durable_campaign` runs (a
    scheduler that changed a verdict would disqualify itself):

    * **multi-campaign throughput** — for each concurrency level, N
      distinct-seed campaigns run (a) as a sequential loop of durable
      campaigns and (b) submitted together to one
      :class:`~repro.service.scheduler.CampaignScheduler` sharing one
      executor pool.  The fair-share wavefront interleaving trades
      time-to-first-verdict for fairness, not throughput: total
      wall-clock should track the sequential loop, and the recorded
      ``scheduling_overhead`` is the price of chunked absorbs,
      per-chunk checkpoints, and round bookkeeping.
    * **request path** — the HTTP/JSON front's per-request cost:
      ``GET /campaigns/<id>`` through a live daemon and the real
      client vs the same ``status()`` call made directly on the
      scheduler, ``request_probes`` times each.

    Every variant starts from a cold worker memo (one variant would
    otherwise warm the next through the in-process cache).
    """
    import gc
    import shutil
    import tempfile

    from repro.engine import workers as worker_module
    from repro.engine.memo import CheckMemo
    from repro.obs.metrics import REGISTRY
    from repro.service import CampaignSpec, run_durable_campaign
    from repro.service.client import ServiceClient
    from repro.service.daemon import CheckingDaemon
    from repro.service.scheduler import (
        DONE,
        CampaignScheduler,
        _result_digest,
    )

    workers = resolve_workers(workers)
    root = tempfile.mkdtemp(prefix="bench-service.", dir=tmp_root)
    original_memo = worker_module.MEMO

    def cold_memo():
        worker_module.MEMO = CheckMemo()
        gc.collect()

    def specs_for(count):
        return [CampaignSpec(preemption_bound=preemption_bound,
                             max_schedules=max_schedules,
                             seed=seed + index)
                for index in range(count)]

    levels = {}
    try:
        for count in concurrency:
            specs = specs_for(count)

            cold_memo()
            t0 = time.perf_counter()
            reference = [
                _result_digest(run_durable_campaign(
                    spec, os.path.join(root, f"seq{count}-{index}"),
                    workers=workers))
                for index, spec in enumerate(specs)]
            sequential_s = time.perf_counter() - t0

            cold_memo()
            stolen_before = REGISTRY.counters.get(
                "service.units_stolen", 0)
            scheduler = CampaignScheduler(
                os.path.join(root, f"svc{count}"), workers=workers,
                max_active=count)
            try:
                t0 = time.perf_counter()
                ids = [scheduler.submit(spec) for spec in specs]
                scheduler.run_until_idle()
                service_s = time.perf_counter() - t0
                for index, campaign_id in enumerate(ids):
                    snapshot = scheduler.status(campaign_id)
                    if snapshot["status"] != DONE \
                            or snapshot["result_digest"] \
                            != reference[index]:
                        raise RuntimeError(
                            f"scheduled campaign {campaign_id} "
                            f"diverged from its solo durable run")
            finally:
                scheduler.drain()
            stolen = REGISTRY.counters.get("service.units_stolen", 0) \
                - stolen_before

            levels[str(count)] = {
                "campaigns": count,
                "sequential_seconds": round(sequential_s, 4),
                "service_seconds": round(service_s, 4),
                "scheduling_overhead": round(
                    service_s / sequential_s - 1.0, 4),
                "units_stolen": stolen,
                "verdicts_identical": True,
            }

        # The request path: a live daemon on an ephemeral port, one
        # finished campaign, then status round-trips through HTTP vs
        # straight into the scheduler.
        cold_memo()
        probe_spec = {"id": "probe", "preemption_bound": 1,
                      "max_schedules": 6}
        with CheckingDaemon(os.path.join(root, "http"), port=0,
                            workers=1) as daemon:
            client = ServiceClient(daemon.url)
            client.submit(probe_spec)
            client.wait("probe", deadline=120)
            t0 = time.perf_counter()
            for _ in range(request_probes):
                daemon.scheduler.status("probe")
            direct_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            for _ in range(request_probes):
                client.status("probe")
            http_s = time.perf_counter() - t0
    finally:
        worker_module.MEMO = original_memo
        shutil.rmtree(root, ignore_errors=True)

    return {
        "benchmark": "checking-service",
        "config": {"preemption_bound": preemption_bound,
                   "max_schedules": max_schedules, "seed": seed,
                   "workers": workers,
                   "concurrency": list(concurrency),
                   "request_probes": request_probes,
                   **_engine_config()},
        "concurrency": levels,
        "request_path": {
            "probes": request_probes,
            "direct_ms_per_call": round(
                direct_s / request_probes * 1000, 4),
            "http_ms_per_call": round(
                http_s / request_probes * 1000, 4),
            "overhead_ms_per_call": round(
                (http_s - direct_s) / request_probes * 1000, 4),
        },
        "byte_identical": True,
    }


def bench_prefix_cache(*, bounds=(2, 3), max_schedules=600, seed=0,
                       workers=None, repeats=3) -> dict:
    """Price the snapshot-tree execution cache against the plain fabric.

    For each preemption bound the same interleaving campaign runs with
    the prefix cache off (the exact legacy fabric code path) and on
    (schedules restore their deepest cached ancestor and execute only
    the suffix), gated on repr-identity — a cache that changed a single
    verdict, decision, or trace byte would disqualify itself.  The
    record carries the median speedup per bound plus the
    ``snapshot_cache`` counters that explain it: hit rate, suffix steps
    saved, COW structure shares, evictions, and resident bytes.

    Every run starts cold: the worker memo is reset, and each variant
    gets a *fresh* executor pool, so the cached side's workers fork
    with empty snapshot trees and the measurement is intra-campaign
    prefix sharing, not warm-pool carry-over.  (In-process pools share
    the parent's tree, so it is reset explicitly too.)
    """
    import gc

    from repro.concurrency.snapshot import reset_process_tree
    from repro.engine import workers as worker_module
    from repro.engine.executor import ShardedExecutor
    from repro.engine.memo import CheckMemo
    from repro.obs.metrics import REGISTRY

    workers = resolve_workers(workers)
    original_memo = worker_module.MEMO

    def cold_run(bound, use_cache):
        worker_module.MEMO = CheckMemo()
        reset_process_tree()
        gc.collect()
        with ShardedExecutor(workers) as pool:
            before = REGISTRY.snapshot()
            t0 = time.perf_counter()
            result = parallel_interleaving_campaign(
                preemption_bound=bound, max_schedules=max_schedules,
                seed=seed, executor=pool, prefix_cache=use_cache)
            seconds = time.perf_counter() - t0
            delta = REGISTRY.delta(before)
        return result, seconds, delta

    per_bound = {}
    try:
        for bound in bounds:
            off_times, on_times = [], []
            counters = {}
            bytes_resident = 0
            schedules = states = 0
            for _ in range(repeats):
                off, seconds, _delta = cold_run(bound, False)
                off_times.append(seconds)
                off_repr = repr(off)
                schedules = len(off.runs)
                states = sum(len(r.decisions) for _, r in off.runs)
                off = None

                on, seconds, delta = cold_run(bound, True)
                on_times.append(seconds)
                if repr(on) != off_repr:
                    raise RuntimeError(
                        f"prefix-cached campaign diverged from the "
                        f"plain fabric at preemption bound {bound}")
                on = None
                for name, value in delta["counters"].items():
                    if name.startswith("snapshot_cache."):
                        key = name[len("snapshot_cache."):]
                        counters[key] = counters.get(key, 0) + value
                bytes_resident = max(
                    bytes_resident,
                    delta["gauges"].get("snapshot_cache.bytes_resident",
                                        0))
            off_s = statistics.median(off_times)
            on_s = statistics.median(on_times)
            hits = counters.get("hits", 0)
            lookups = hits + counters.get("misses", 0)
            per_bound[str(bound)] = {
                "preemption_bound": bound,
                "schedules": schedules,
                "states": states,
                "off": {"seconds_per_repeat": [round(t, 4)
                                               for t in off_times],
                        "seconds": round(off_s, 4)},
                "on": {"seconds_per_repeat": [round(t, 4)
                                              for t in on_times],
                       "seconds": round(on_s, 4)},
                "speedup": round(off_s / on_s, 2),
                "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
                "counters": counters,
                "bytes_resident": int(bytes_resident),
                "byte_identical": True,
            }
    finally:
        worker_module.MEMO = original_memo
        reset_process_tree()

    return {
        "benchmark": "prefix-cache",
        "config": {"bounds": list(bounds),
                   "max_schedules": max_schedules, "seed": seed,
                   "workers": workers, "repeats": repeats,
                   **_engine_config()},
        "bounds": per_bound,
        "byte_identical": True,
    }


def bench_fixed_cost(*, bound=2, max_schedules=600, seed=0,
                     workers=None, repeats=3) -> dict:
    """Price the per-run fixed costs the continuation engine retires.

    Four full campaign variants on the same grid, every one gated on
    repr-identity against the first:

    * ``threads`` engine, prefix cache off, legacy capture gate — the
      pre-cache fabric;
    * ``threads`` engine, cache on, legacy gate — the PR 8 shipping
      configuration, the baseline the acceptance speedup is measured
      against;
    * ``continuation`` engine, cache off, extended gate;
    * ``continuation`` engine, cache on, extended gate — the new
      default.

    The headline ``speedup_vs_pr8_baseline`` times the bound-2
    sequential interleaving bench head-to-head: the PR 8 shipping path
    (threads engine, per-schedule world rebuild, a third world
    execution inside the NI check, unmemoised final diff) against the
    amortized default (continuation engine, prototype clones, prepared
    NI reuse, digest-tier diff) — repr-identical required.  The
    ``variants`` section times the *parallel* campaign matrix, with
    ``speedup_parallel`` comparing the PR 8 configuration
    (threads/cache-on/legacy-gate) to the new default.  The ``gate``
    section compares
    the legacy and extended capture gates' decision-states-saved
    fraction, hit rate, and resident bytes so a raised capture ceiling
    that quietly tanked the hit rate would show up here.

    The ``components`` section prices each retired fixed cost in
    isolation: per-run scheduler drive cost on both engines (the
    thread-creation/join + Event handoff tax vs the arena'd loop), the
    NI digest fast path vs a direct observation diff, warm incremental
    vs cold full-rehash state fingerprinting, and bare world assembly
    (clone + scheduler construction, the floor neither engine can
    remove).
    """
    import gc

    from repro.concurrency.scheduler import ENV_ENGINE, Schedule
    from repro.concurrency.snapshot import ENV_GATE, reset_process_tree
    from repro.engine import workers as worker_module
    from repro.engine.executor import ShardedExecutor
    from repro.engine.fingerprint import fingerprint, state_fingerprint
    from repro.engine.memo import CheckMemo
    from repro.faults.campaign import (
        build_interleaved_world, execute_interleaved,
        interleaving_campaign)
    from repro.hyperenclave.monitor import HOST_ID
    from repro.obs.metrics import REGISTRY
    from repro.security.noninterference import observation_diff

    workers = resolve_workers(workers)
    original_memo = worker_module.MEMO
    saved_env = {name: os.environ.get(name)
                 for name in (ENV_ENGINE, ENV_GATE)}

    def set_env(engine, gate):
        # plain assignment, not a context manager: ``fork`` propagates
        # the environment, so pool workers inherit the variant's knobs
        os.environ[ENV_ENGINE] = engine
        os.environ[ENV_GATE] = gate

    def cold_run(engine, use_cache, gate):
        set_env(engine, gate)
        worker_module.MEMO = CheckMemo()
        reset_process_tree()
        gc.collect()
        with ShardedExecutor(workers) as pool:
            before = REGISTRY.snapshot()
            t0 = time.perf_counter()
            result = parallel_interleaving_campaign(
                preemption_bound=bound, max_schedules=max_schedules,
                seed=seed, executor=pool, prefix_cache=use_cache)
            seconds = time.perf_counter() - t0
            delta = REGISTRY.delta(before)
        return result, seconds, delta

    VARIANTS = [
        ("threads", False, "legacy"),
        ("threads", True, "legacy"),          # PR 8 shipping config
        ("continuation", False, "extended"),
        ("continuation", True, "extended"),   # new default
    ]

    variants = {}
    baseline_repr = None
    schedules = states = 0
    try:
        for engine, use_cache, gate in VARIANTS:
            name = f"{engine}/{'on' if use_cache else 'off'}/{gate}"
            times = []
            counters = {}
            bytes_resident = 0
            for _ in range(repeats):
                result, seconds, delta = cold_run(engine, use_cache, gate)
                times.append(seconds)
                if baseline_repr is None:
                    baseline_repr = repr(result)
                    schedules = len(result.runs)
                    states = sum(len(r.decisions)
                                 for _, r in result.runs)
                elif repr(result) != baseline_repr:
                    raise RuntimeError(
                        f"fixed-cost variant {name} diverged from the "
                        f"threads/cache-off baseline")
                result = None
                for cname, value in delta["counters"].items():
                    if cname.startswith("snapshot_cache."):
                        key = cname[len("snapshot_cache."):]
                        counters[key] = counters.get(key, 0) + value
                bytes_resident = max(
                    bytes_resident,
                    delta["gauges"].get(
                        "snapshot_cache.bytes_resident", 0))
            hits = counters.get("hits", 0)
            lookups = hits + counters.get("misses", 0)
            steps_saved = counters.get("steps_saved", 0)
            variants[name] = {
                "engine": engine,
                "prefix_cache": use_cache,
                "snapshot_gate": gate,
                "seconds_per_repeat": [round(t, 4) for t in times],
                "seconds": round(statistics.median(times), 4),
                "hit_rate": (round(hits / lookups, 4)
                             if lookups else 0.0),
                "decision_states_saved": (
                    round(steps_saved / (states * repeats), 4)
                    if states else 0.0),
                "counters": counters,
                "bytes_resident": int(bytes_resident),
            }

        baseline = variants["threads/on/legacy"]
        default = variants["continuation/on/extended"]
        legacy_gate = baseline
        extended_gate = default

        # -- the headline: bound-2 sequential bench, PR 8 path vs the
        # amortized default --------------------------------------------
        seq_grid = dict(preemption_bound=bound,
                        max_schedules=max_schedules, seed=seed)
        pr8_times, new_times = [], []
        pr8_repr = new_repr = None
        for _ in range(repeats):
            set_env("threads", "legacy")
            t0 = time.perf_counter()
            result = interleaving_campaign(**seq_grid, amortize=False)
            pr8_times.append(time.perf_counter() - t0)
            pr8_repr = repr(result)
            set_env("continuation", "extended")
            t0 = time.perf_counter()
            result = interleaving_campaign(**seq_grid)
            new_times.append(time.perf_counter() - t0)
            new_repr = repr(result)
        if new_repr != pr8_repr:
            raise RuntimeError(
                "amortized sequential campaign diverged from the "
                "PR 8-style baseline")
        pr8_s = statistics.median(pr8_times)
        new_s = statistics.median(new_times)
        sequential = {
            "pr8_style": {
                "engine": "threads", "amortize": False,
                "seconds_per_repeat": [round(t, 4) for t in pr8_times],
                "seconds": round(pr8_s, 4),
            },
            "amortized": {
                "engine": "continuation", "amortize": True,
                "seconds_per_repeat": [round(t, 4) for t in new_times],
                "seconds": round(new_s, 4),
            },
            "byte_identical": True,
        }

        # -- per-component fixed costs, measured in isolation ---------
        def timed(fn, rounds):
            t0 = time.perf_counter()
            for _ in range(rounds):
                fn()
            return (time.perf_counter() - t0) / rounds

        rounds = max(10, 5 * repeats)
        root = Schedule(seed=seed, preemptions=(), crash=None)

        def drive(engine):
            set_env(engine, "legacy" if engine == "threads"
                    else "extended")
            state, ctx = build_interleaved_world()

            def run():
                s, _ = build_interleaved_world()
                execute_interleaved(s, ctx, root)
            before = REGISTRY.snapshot()
            per_run = timed(run, rounds)
            delta = REGISTRY.delta(before)["counters"]
            return {
                "ms_per_run": round(per_run * 1e3, 3),
                "handoffs": delta.get("sched.handoffs", 0),
                "inline_decisions": delta.get(
                    "sched.inline_decisions", 0),
                "arena_reuses": delta.get("sched.arena_reuses", 0),
                "fiber_steps": delta.get("sched.fiber_steps", 0),
            }

        thread_handoff = {
            "threads": drive("threads"),
            "continuation": drive("continuation"),
        }
        thread_handoff["ms_saved_per_run"] = round(
            thread_handoff["threads"]["ms_per_run"]
            - thread_handoff["continuation"]["ms_per_run"], 3)

        # NI diff: the digest fast path (two fingerprint-distinct but
        # observation-equal states) vs a direct pairwise diff.
        set_env("continuation", "extended")
        state_a, ctx_a = build_interleaved_world()
        execute_interleaved(state_a, ctx_a, root)
        state_b, ctx_b = build_interleaved_world()
        execute_interleaved(state_b, ctx_b, root)
        memo = CheckMemo()
        fingerprint(state_a.monitor), fingerprint(state_b.monitor)
        digest_us = timed(
            lambda: memo.final_state_diff(
                state_a, state_b, HOST_ID, HOST_ID), rounds * 10) * 1e6
        direct_us = timed(
            lambda: observation_diff(state_a, state_b, HOST_ID),
            rounds * 10) * 1e6
        ni_diff = {
            "digest_us_per_pair": round(digest_us, 2),
            "direct_us_per_pair": round(direct_us, 2),
            "speedup": (round(direct_us / digest_us, 2)
                        if digest_us else 0.0),
        }

        # Fingerprint: warm incremental (clean frame-digest cache) vs
        # a cold full rehash (every frame marked dirty).
        state_fingerprint(state_a)

        def cold_fp():
            state_a.monitor.phys._mark_all_dirty()
            state_fingerprint(state_a)
        warm_us = timed(lambda: state_fingerprint(state_a),
                        rounds * 10) * 1e6
        cold_us = timed(cold_fp, rounds * 10) * 1e6
        fp_component = {
            "warm_us": round(warm_us, 2),
            "cold_rehash_us": round(cold_us, 2),
            "speedup": round(cold_us / warm_us, 2) if warm_us else 0.0,
        }

        assembly_ms = timed(lambda: build_interleaved_world(),
                            rounds) * 1e3

        record = {
            "benchmark": "fixed-cost",
            "config": {"preemption_bound": bound,
                       "max_schedules": max_schedules, "seed": seed,
                       "workers": workers, "repeats": repeats,
                       **_engine_config()},
            "schedules": schedules,
            "states": states,
            "sequential": sequential,
            "variants": variants,
            "speedup_vs_pr8_baseline": round(pr8_s / new_s, 2),
            "speedup_parallel": round(
                baseline["seconds"] / default["seconds"], 2),
            "gate": {
                "legacy": {
                    "decision_states_saved":
                        legacy_gate["decision_states_saved"],
                    "hit_rate": legacy_gate["hit_rate"],
                    "bytes_resident": legacy_gate["bytes_resident"],
                },
                "extended": {
                    "decision_states_saved":
                        extended_gate["decision_states_saved"],
                    "hit_rate": extended_gate["hit_rate"],
                    "bytes_resident": extended_gate["bytes_resident"],
                },
            },
            "components": {
                "thread_handoff": thread_handoff,
                "ni_diff": ni_diff,
                "fingerprint": fp_component,
                "assembly": {"ms_per_world": round(assembly_ms, 3)},
            },
            "byte_identical": True,
        }
    finally:
        worker_module.MEMO = original_memo
        reset_process_tree()
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    return record


def _canonical_verdicts(report):
    """A corpus report as a canonical JSON string for byte-comparison.

    Every field of every :class:`FunctionVerdict` participates
    (failures stringified), so any behavioural divergence between the
    fast and naive engines — a different verdict, count, or even
    failure *message* — breaks equality.
    """
    return json.dumps(
        [[v.name, v.layer, v.method, v.checked, v.skipped,
          [str(f) for f in v.failures]]
         for v in report.verdicts],
        sort_keys=True)


def _rate(hits, misses):
    total = hits + misses
    return round(hits / total, 4) if total else 0.0


def _sweep(model, *, seed, cosim_samples, repeats):
    """Time ``repeats`` corpus sweeps; return (times, canonical verdicts).

    The model (and with it every per-function compiled-code cache) is
    shared across repeats on purpose: warm caches *are* the fast path,
    and the first repeat still pays the one-time compile cost so the
    per-repeat list shows both the cold and the steady-state number.
    """
    from repro.verification.code_proofs import verify_corpus

    times, verdicts = [], None
    for _ in range(repeats):
        t0 = time.perf_counter()
        report = verify_corpus(model, seed=seed,
                               cosim_samples=cosim_samples)
        times.append(time.perf_counter() - t0)
        canon = _canonical_verdicts(report)
        if verdicts is None:
            verdicts = canon
        elif canon != verdicts:
            raise RuntimeError(
                "corpus verdicts changed between repeats of the same "
                "mode — the sweep is not deterministic")
    return times, verdicts


def _ladder_rung(model, names, budget_seconds, *, seed):
    """Run the hardened chain on each pure function under one budget.

    Returns the per-engine verdict counts — the shape of the
    degradation ladder at this rung.
    """
    from repro.verification.harness import check_pure_hardened

    engines = {}
    for name in names:
        report = check_pure_hardened(model, name, seed=seed,
                                     max_seconds=budget_seconds)
        engines[report.engine] = engines.get(report.engine, 0) + 1
    return engines


def bench_symbolic(*, seed=0, cosim_samples=24, repeats=3,
                   ladder=(0.02, 0.05, 0.2)) -> dict:
    """Time the symbolic fast path against the naive engines.

    Runs the full corpus sweep (49 pure + stateful functions on the
    TINY geometry) ``repeats`` times in each mode over a shared model,
    raises ``RuntimeError`` if any verdict differs between modes, and
    returns the ``BENCH_symbolic.json`` record: median speedup, the
    cold (first-repeat, includes one-time compilation) ratio, the
    intern/simplify/solver-memo hit rates, and the degradation ladder
    showing which budgets the naive chain survives only by sampling.
    """
    from repro import fastpath
    from repro.hyperenclave.constants import TINY
    from repro.hyperenclave.mir_model import build_model
    from repro.symbolic import (
        clear_solver_caches,
        clear_term_caches,
        intern_stats,
        solver_stats,
    )
    from repro.verification.pure_refs import pure_function_names

    sweep = dict(seed=seed, cosim_samples=cosim_samples, repeats=repeats)

    clear_term_caches()
    clear_solver_caches()
    with fastpath.disabled():
        naive_model = build_model(TINY)
        naive_times, naive_verdicts = _sweep(naive_model, **sweep)
        pure_names = list(pure_function_names(naive_model.config,
                                              naive_model.layout))
        naive_ladder = {
            budget: _ladder_rung(naive_model, pure_names, budget,
                                 seed=seed)
            for budget in ladder}

    clear_term_caches()
    clear_solver_caches()
    with fastpath.forced():
        fast_model = build_model(TINY)
        fast_times, fast_verdicts = _sweep(fast_model, **sweep)
        interning = intern_stats()
        solving = solver_stats()
        fast_ladder = {
            budget: _ladder_rung(fast_model, pure_names, budget,
                                 seed=seed)
            for budget in ladder}

    if fast_verdicts != naive_verdicts:
        raise RuntimeError(
            "symbolic fast path verdicts diverged from the naive "
            "baseline — the optimisation changed observable behaviour")

    naive_s = statistics.median(naive_times)
    fast_s = statistics.median(fast_times)
    functions = len(json.loads(naive_verdicts))
    return {
        "benchmark": "symbolic-fast-path",
        "config": {"geometry": "TINY", "seed": seed,
                   "cosim_samples": cosim_samples, "repeats": repeats,
                   **_engine_config()},
        "functions": functions,
        "naive": {"seconds_per_repeat": [round(t, 4) for t in naive_times],
                  "seconds": round(naive_s, 4)},
        "fast": {"seconds_per_repeat": [round(t, 4) for t in fast_times],
                 "seconds": round(fast_s, 4)},
        "speedup": round(naive_s / fast_s, 2),
        "speedup_cold": round(naive_times[0] / fast_times[0], 2),
        "byte_identical": True,
        "interning": {
            "counters": interning,
            "intern_hit_rate": _rate(interning["intern_hits"],
                                     interning["intern_misses"]),
            "simplify_hit_rate": _rate(interning["simplify_hits"],
                                       interning["simplify_misses"]),
        },
        "solver": {
            "counters": solving,
            "memo_hit_rate": _rate(
                solving["check_sat_memo_hits"]
                + solving["must_hold_memo_hits"],
                (solving["check_sat_calls"]
                 - solving["check_sat_memo_hits"])
                + (solving["must_hold_calls"]
                   - solving["must_hold_memo_hits"])),
        },
        "degradation_ladder": {
            "budgets_seconds": list(ladder),
            "pure_functions": len(pure_names),
            "naive": {str(b): naive_ladder[b] for b in ladder},
            "fast": {str(b): fast_ladder[b] for b in ladder},
        },
    }


def format_symbolic_record(record) -> str:
    """The ``benchmarks/artifacts/symbolic_fastpath.txt`` rendering."""
    lines = [
        "Symbolic fast path: hash-consed terms, incremental solving, "
        "compiled MIR dispatch",
        "=" * 72,
        "",
        f"Corpus sweep ({record['functions']} functions, geometry "
        f"{record['config']['geometry']}, "
        f"{record['config']['repeats']} repeats):",
        f"  naive  {record['naive']['seconds']:>8.4f}s median  "
        f"(per repeat: {record['naive']['seconds_per_repeat']})",
        f"  fast   {record['fast']['seconds']:>8.4f}s median  "
        f"(per repeat: {record['fast']['seconds_per_repeat']})",
        f"  speedup {record['speedup']}x warm, "
        f"{record['speedup_cold']}x cold (first repeat pays "
        f"one-time compilation)",
        "  verdicts byte-identical across modes: "
        f"{record['byte_identical']}",
        "",
        "Cache effectiveness:",
        f"  term intern hit rate     {record['interning']['intern_hit_rate']}",
        f"  simplify memo hit rate   {record['interning']['simplify_hit_rate']}",
        f"  solver verdict memo rate {record['solver']['memo_hit_rate']}",
        "",
        f"Degradation ladder ({record['degradation_ladder']['pure_functions']} "
        "pure functions through the hardened chain; entries are "
        "verdict counts per engine):",
    ]
    for budget in record["degradation_ladder"]["budgets_seconds"]:
        key = str(budget)
        naive = record["degradation_ladder"]["naive"][key]
        fast = record["degradation_ladder"]["fast"][key]
        lines.append(f"  budget {budget}s/function:")
        lines.append(f"    naive: {naive}")
        lines.append(f"    fast:  {fast}")
    lines.append("")
    lines.append(
        "Reading the ladder: at budgets where the naive chain records "
        "exhaustive-bounded or property-sampling verdicts, the fast "
        "path still finishes symbolically — the optimisation widens "
        "the budget range over which checking returns proofs instead "
        "of samples.")
    return "\n".join(lines) + "\n"


def _config_slug(config) -> str:
    """A short stable tag for a bench ``config`` block."""
    import hashlib

    blob = json.dumps(config, sort_keys=True, default=str).encode()
    return hashlib.blake2b(blob, digest_size=3).hexdigest()


def _merged_out(path, section, record) -> dict:
    """Write ``record`` into ``path``, preserving the other sections.

    ``BENCH_checking.json`` holds the fabric record (the top-level
    document) plus the per-subsystem records (the ``durability``,
    ``service``, and ``prefix_cache`` keys); any of the benches may run
    alone, so each write keeps whatever the others last produced.
    With ``section`` the record lands under that key; with
    ``section=None`` it becomes the new document, carrying over every
    existing section record (any sub-dict carrying a ``benchmark``
    tag — the shape every section record here has).

    A section write never silently replaces a record measured under a
    *different* configuration: when the existing section's ``config``
    block differs from the incoming record's, the old record stays put
    and the new one lands side-by-side under ``<section>@<slug>`` (a
    short hash of the new config), with a warning on stderr.  Re-runs
    under the same config overwrite in place, as before.  The write is
    atomic — this file is a published artifact.
    """
    import sys

    from repro.service.store import atomic_write_text

    existing = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh)
        except (OSError, ValueError):
            existing = {}
    if section is not None:
        merged = dict(existing)
        target = section
        current = existing.get(section)
        if (isinstance(current, dict) and "config" in current
                and current.get("config") != record.get("config")):
            target = f"{section}@{_config_slug(record.get('config'))}"
            print(f"bench: existing '{section}' section in {path} was "
                  f"measured under a different config; keeping it and "
                  f"writing this run to '{target}' instead",
                  file=sys.stderr)
        merged[target] = record
    else:
        merged = dict(record)
        for key, value in existing.items():
            if key not in merged and isinstance(value, dict) \
                    and "benchmark" in value:
                merged[key] = value
    atomic_write_text(path,
                      json.dumps(merged, indent=2, sort_keys=True)
                      + "\n")
    return merged


def main(argv=None):
    """CLI entry point: run the bench and write ``--out`` (JSON)."""
    parser = argparse.ArgumentParser(
        description="Benchmark the checking engines")
    parser.add_argument("--out", default=None)
    parser.add_argument("--symbolic", action="store_true",
                        help="run the symbolic fast-path bench instead "
                             "of the parallel checking fabric")
    parser.add_argument("--durability", action="store_true",
                        help="measure the durable orchestrator "
                             "(checkpoint overhead, warm store, "
                             "resume) and merge the section into "
                             "--out")
    parser.add_argument("--service", action="store_true",
                        help="measure checking-as-a-service "
                             "(concurrent campaigns through the "
                             "scheduler vs a sequential loop, plus "
                             "the HTTP request-path cost) and merge "
                             "the section into --out")
    parser.add_argument("--prefix-cache", action="store_true",
                        help="measure the snapshot-tree execution "
                             "cache (campaign with the cache on vs "
                             "off per preemption bound) and merge the "
                             "section into --out")
    parser.add_argument("--fixed-cost", action="store_true",
                        help="measure the per-run fixed costs across "
                             "the engine matrix (threads vs "
                             "continuation, cache on/off, legacy vs "
                             "extended capture gate, plus per-"
                             "component breakdowns) and merge the "
                             "section into --out")
    parser.add_argument("--preemption-bound", type=int, default=2)
    parser.add_argument("--max-schedules", type=int, default=600)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--budget", type=float, default=None,
                        help="single degradation-ladder budget in "
                             "seconds per function (symbolic bench); "
                             "default is the built-in ladder")
    parser.add_argument("--artifact", default=None,
                        help="also write the human-readable summary "
                             "here (symbolic bench)")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI run: preemption bound 1 / one "
                             "repeat (fabric), two repeats and a "
                             "two-rung ladder (symbolic)")
    parser.add_argument("--no-trace", action="store_true",
                        help="skip the tracing-overhead measurement "
                             "(fabric bench)")
    parser.add_argument("--arch", default=None,
                        help="run the checking-fabric bench on one "
                             "architecture world (x86_64 or "
                             "vmsav8_64); non-default arches land "
                             "under an arch_<name> section of --out")
    args = parser.parse_args(argv)

    arch_config = None
    if args.arch is not None:
        from repro.hyperenclave.constants import ARCH_CONFIGS
        if args.arch not in ARCH_CONFIGS:
            parser.error(f"unknown --arch {args.arch!r} "
                         f"(choose from {sorted(ARCH_CONFIGS)})")
        if (args.symbolic or args.durability or args.service
                or args.prefix_cache or args.fixed_cost):
            parser.error("--arch only applies to the checking-fabric "
                         "bench")
        arch_config = ARCH_CONFIGS[args.arch]

    if args.symbolic:
        out = args.out or "BENCH_symbolic.json"
        repeats = min(args.repeats, 2) if args.smoke else args.repeats
        if args.budget is not None:
            ladder = (args.budget,)
        elif args.smoke:
            ladder = (0.02, 0.2)
        else:
            ladder = (0.02, 0.05, 0.2)
        record = bench_symbolic(repeats=repeats, ladder=ladder)
        with open(out, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        if args.artifact:
            with open(args.artifact, "w") as fh:
                fh.write(format_symbolic_record(record))
        print(f"naive {record['naive']['seconds']}s  "
              f"fast {record['fast']['seconds']}s  "
              f"speedup {record['speedup']}x warm / "
              f"{record['speedup_cold']}x cold  "
              f"({record['functions']} functions, intern hit rate "
              f"{record['interning']['intern_hit_rate']}, solver memo "
              f"rate {record['solver']['memo_hit_rate']})")
        return record

    out = args.out or "BENCH_checking.json"
    if args.smoke:
        args.preemption_bound = min(args.preemption_bound, 1)
        args.repeats = 1

    if args.durability:
        # Durability measurements merge into the fabric record — both
        # land in BENCH_checking.json; whichever ran last updated only
        # its own section.
        record = bench_durability(preemption_bound=args.preemption_bound,
                                  max_schedules=args.max_schedules,
                                  workers=args.workers,
                                  repeats=args.repeats)
        merged = _merged_out(out, "durability", record)
        print(f"plain {record['plain']['seconds']}s  "
              f"durable {record['durable']['seconds']}s  "
              f"checkpoint overhead "
              f"{record['checkpoint_overhead'] * 100:+.1f}%  "
              f"warm {record['warm_store']['seconds']}s "
              f"({record['warm_store']['speedup_vs_cold']}x vs cold)  "
              f"resume {record['resume']['seconds']}s "
              f"({record['resume']['fraction_of_full_run'] * 100:.0f}% "
              f"of a full run, "
              f"{record['resume']['schedules_preserved']}/"
              f"{record['resume']['schedules_total']} schedules "
              f"preserved)  verdict cache "
              f"{record['verdict_cache']['speedup']}x warm")
        return merged

    if args.prefix_cache:
        bounds = (1,) if args.smoke else (2, 3)
        record = bench_prefix_cache(bounds=bounds,
                                    max_schedules=args.max_schedules,
                                    workers=args.workers,
                                    repeats=args.repeats)
        merged = _merged_out(out, "prefix_cache", record)
        print("  ".join(
            f"bound={entry['preemption_bound']} "
            f"off {entry['off']['seconds']}s on "
            f"{entry['on']['seconds']}s "
            f"speedup {entry['speedup']}x "
            f"(hit rate {entry['hit_rate']}, "
            f"{entry['counters'].get('steps_saved', 0)} steps saved, "
            f"{entry['bytes_resident']} bytes resident)"
            for entry in record["bounds"].values()))
        return merged

    if args.fixed_cost:
        record = bench_fixed_cost(bound=args.preemption_bound,
                                  max_schedules=args.max_schedules,
                                  workers=args.workers,
                                  repeats=args.repeats)
        merged = _merged_out(out, "fixed_cost", record)
        gate = record["gate"]
        print(f"sequential PR8-style "
              f"{record['sequential']['pr8_style']['seconds']}s  "
              f"amortized "
              f"{record['sequential']['amortized']['seconds']}s  "
              f"speedup vs PR8 baseline "
              f"{record['speedup_vs_pr8_baseline']}x  "
              f"parallel {record['speedup_parallel']}x  "
              f"states-saved legacy "
              f"{gate['legacy']['decision_states_saved']} -> extended "
              f"{gate['extended']['decision_states_saved']}  "
              f"handoff saving "
              f"{record['components']['thread_handoff']['ms_saved_per_run']}"
              f"ms/run")
        return merged

    if args.service:
        record = bench_service(
            preemption_bound=args.preemption_bound,
            max_schedules=args.max_schedules,
            workers=args.workers,
            concurrency=(2,) if args.smoke else (2, 4, 8),
            request_probes=50 if args.smoke else 200)
        merged = _merged_out(out, "service", record)
        per_level = "  ".join(
            f"n={entry['campaigns']} seq "
            f"{entry['sequential_seconds']}s svc "
            f"{entry['service_seconds']}s "
            f"({entry['scheduling_overhead'] * 100:+.1f}%)"
            for entry in record["concurrency"].values())
        print(f"{per_level}  request path "
              f"+{record['request_path']['overhead_ms_per_call']}ms/"
              f"call over direct "
              f"({record['request_path']['direct_ms_per_call']}ms)")
        return merged

    record = bench_checking(preemption_bound=args.preemption_bound,
                            max_schedules=args.max_schedules,
                            workers=args.workers, repeats=args.repeats,
                            trace_overhead=not args.no_trace,
                            config=arch_config)
    # The default-arch record is the top-level document; other arches
    # get their own section so BENCH_checking.json carries per-arch
    # numbers side by side.
    section = (None if args.arch in (None, "x86_64")
               else f"arch_{args.arch}")
    merged = _merged_out(out, section, record)
    line = (f"sequential {record['sequential']['seconds']}s  "
            f"parallel {record['parallel']['seconds']}s  "
            f"speedup {record['speedup']}x  "
            f"({record['schedules']} schedules, "
            f"{record['states']} states, "
            f"memo hit rate {record['memo']['hit_rate']})")
    if "tracing" in record:
        line += (f"  tracing overhead "
                 f"{record['tracing']['overhead'] * 100:+.1f}% "
                 f"({record['tracing']['records']} records)")
    if args.arch:
        line = f"[{args.arch}] " + line
    print(line)
    return merged


if __name__ == "__main__":
    main()
