"""The symbolic term language.

Terms represent mirlight integer and boolean computations symbolically.
Integer terms carry their :class:`~repro.mir.types.IntTy` so evaluation
wraps exactly like the concrete semantics; boolean terms carry ``None``.

The surface is deliberately small: variables, constants, and applications
of a fixed operator vocabulary.  :func:`simplify` constant-folds during
construction, so fully-concrete executions never accumulate symbolic
structure — the executor degrades gracefully into an interpreter.

**Hash-consing (PR 4).**  Term construction is *interned*: while the
fast path (:mod:`repro.fastpath`) is enabled, structurally-equal terms
are pointer-equal — ``SymVar("x") is SymVar("x")`` — because every
constructor routes through a global intern table keyed on the term's
structure.  Three things fall out:

* equality is an identity check first (with a structural fallback so
  terms built while the fast path was off still compare correctly),
* ``__hash__`` is computed once per term and cached, so terms are O(1)
  dict keys no matter how deep they are,
* per-term caches become sound: :func:`simplify` is memoised on the
  (interned) argument structure, :func:`term_fingerprint` and
  :func:`compile_evaluator` cache their result *on* the term.

Interning is semantically invisible — the symbolic bench asserts
byte-identical verdicts with the table on and off.  :func:`intern_stats`
exposes hit rates; :func:`clear_term_caches` empties every table (used
by the bench to measure cold-cache rounds).
"""

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro import fastpath
from repro.errors import MirTypeError
from repro.mir.types import IntTy, U64

# Operator vocabulary.  Arithmetic/bitwise wrap at the result type;
# comparisons and connectives yield booleans.
ARITH_OPS = frozenset({
    "add", "sub", "mul", "div", "rem",
    "band", "bor", "bxor", "shl", "shr", "neg", "bnot",
})
CMP_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})
BOOL_OPS = frozenset({"not", "and", "or", "implies"})
ITE_OP = "ite"


# ---------------------------------------------------------------------------
# The intern table
# ---------------------------------------------------------------------------

_INTERN = {}
_INTERN_STATS = {"hits": 0, "misses": 0}
_SIMPLIFY_MEMO = {}
_SIMPLIFY_STATS = {"hits": 0, "misses": 0}
_MEMO_MAX = 1 << 20  # safety valve for the simplify memo


def intern_stats():
    """Intern-table and simplify-memo counters (for reports/benches)."""
    return {
        "terms_interned": len(_INTERN),
        "intern_hits": _INTERN_STATS["hits"],
        "intern_misses": _INTERN_STATS["misses"],
        "simplify_hits": _SIMPLIFY_STATS["hits"],
        "simplify_misses": _SIMPLIFY_STATS["misses"],
    }


def clear_term_caches():
    """Empty the intern table, the simplify memo, and their counters."""
    _INTERN.clear()
    _SIMPLIFY_MEMO.clear()
    for stats in (_INTERN_STATS, _SIMPLIFY_STATS):
        stats["hits"] = stats["misses"] = 0


class Term:
    """Base class of symbolic terms.  ``ty`` is an IntTy or None (bool).

    Subclasses cache their structural hash on first use and compare by
    identity first; interning makes the identity check hit for all
    fast-path-constructed terms.
    """

    ty: Optional[IntTy]

    def is_bool(self):
        return self.ty is None


@dataclass(frozen=True, eq=False, repr=True)
class SymVar(Term):
    """A symbolic variable."""
    name: str
    ty: Optional[IntTy] = U64

    def __new__(cls, name, ty=U64):
        if fastpath._ENABLED:
            key = ("v", name, ty)
            canon = _INTERN.get(key)
            if canon is not None:
                _INTERN_STATS["hits"] += 1
                return canon
            _INTERN_STATS["misses"] += 1
            self = object.__new__(cls)
            _INTERN[key] = self
            return self
        return object.__new__(cls)

    def __reduce__(self):
        return (SymVar, (self.name, self.ty))

    def __hash__(self):
        try:
            return self._h
        except AttributeError:
            h = hash(("v", self.name, self.ty))
            object.__setattr__(self, "_h", h)
            return h

    def __eq__(self, other):
        if self is other:
            return True
        if type(other) is not SymVar:
            return NotImplemented
        return self.name == other.name and self.ty == other.ty

    def __str__(self):
        return self.name


@dataclass(frozen=True, eq=False, repr=True)
class Const(Term):
    """A literal integer or boolean term."""
    value: object  # int (for IntTy) or bool (for ty=None)
    ty: Optional[IntTy] = U64

    def __new__(cls, value, ty=U64):
        if fastpath._ENABLED:
            # bool is an int subtype: key on the concrete type too so
            # Const(True, ...) and Const(1, ...) never alias.
            key = ("c", value.__class__, value, ty)
            canon = _INTERN.get(key)
            if canon is not None:
                _INTERN_STATS["hits"] += 1
                return canon
            _INTERN_STATS["misses"] += 1
            self = object.__new__(cls)
            _INTERN[key] = self
            return self
        return object.__new__(cls)

    def __reduce__(self):
        return (Const, (self.value, self.ty))

    def __hash__(self):
        try:
            return self._h
        except AttributeError:
            h = hash(("c", self.value.__class__, self.value, self.ty))
            object.__setattr__(self, "_h", h)
            return h

    def __eq__(self, other):
        if self is other:
            return True
        if type(other) is not Const:
            return NotImplemented
        return (self.value.__class__ is other.value.__class__
                and self.value == other.value and self.ty == other.ty)

    def __str__(self):
        return str(self.value).lower() if self.ty is None else f"{self.value}"


@dataclass(frozen=True, eq=False, repr=True)
class App(Term):
    """An operator application over sub-terms."""
    op: str
    args: Tuple[Term, ...]
    ty: Optional[IntTy] = U64

    def __new__(cls, op, args, ty=U64):
        if fastpath._ENABLED:
            key = ("a", op, args, ty)
            canon = _INTERN.get(key)
            if canon is not None:
                _INTERN_STATS["hits"] += 1
                return canon
            _INTERN_STATS["misses"] += 1
            self = object.__new__(cls)
            _INTERN[key] = self
            return self
        return object.__new__(cls)

    def __reduce__(self):
        return (App, (self.op, self.args, self.ty))

    def __hash__(self):
        try:
            return self._h
        except AttributeError:
            h = hash(("a", self.op, self.args, self.ty))
            object.__setattr__(self, "_h", h)
            return h

    def __eq__(self, other):
        if self is other:
            return True
        if type(other) is not App:
            return NotImplemented
        return (self.op == other.op and self.args == other.args
                and self.ty == other.ty)

    def __str__(self):
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.op}({inner})"


def bv(value, ty=U64):
    """An integer constant term, wrapped into range."""
    return Const(ty.wrap(value), ty)


def boolean(value):
    """A boolean constant term."""
    return Const(bool(value), None)


TRUE = boolean(True)
FALSE = boolean(False)


# ---------------------------------------------------------------------------
# Construction with constant folding
# ---------------------------------------------------------------------------


def simplify(op, args, ty):
    """Build ``App(op, args, ty)``, folding when all args are constant
    and applying a few cheap identities.

    Memoised on the (interned) argument structure while the fast path
    is enabled; folding that raises (division by zero) is never cached
    and re-raises on every call, exactly like the naive build.
    """
    if fastpath._ENABLED:
        key = (op, args, ty)
        cached = _SIMPLIFY_MEMO.get(key)
        if cached is not None:
            _SIMPLIFY_STATS["hits"] += 1
            return cached
        _SIMPLIFY_STATS["misses"] += 1
        result = _simplify_build(op, args, ty)
        if len(_SIMPLIFY_MEMO) >= _MEMO_MAX:
            _SIMPLIFY_MEMO.clear()
        _SIMPLIFY_MEMO[key] = result
        return result
    return _simplify_build(op, args, ty)


def _simplify_build(op, args, ty):
    if all(isinstance(a, Const) for a in args):
        values = tuple(a.value for a in args)
        return _fold(op, values, args, ty)
    if op == "and":
        if any(a == FALSE for a in args):
            return FALSE
        remaining = tuple(a for a in args if a != TRUE)
        if not remaining:
            return TRUE
        if len(remaining) == 1:
            return remaining[0]
        return App("and", remaining, None)
    if op == "or":
        if any(a == TRUE for a in args):
            return TRUE
        remaining = tuple(a for a in args if a != FALSE)
        if not remaining:
            return FALSE
        if len(remaining) == 1:
            return remaining[0]
        return App("or", remaining, None)
    if op == "not" and isinstance(args[0], App) and args[0].op == "not":
        return args[0].args[0]
    if op == "ite" and isinstance(args[0], Const):
        return args[1] if args[0].value else args[2]
    return App(op, args, ty)


def _fold(op, values, args, ty):
    if op in CMP_OPS:
        a, b = values
        result = {
            "eq": a == b, "ne": a != b, "lt": a < b,
            "le": a <= b, "gt": a > b, "ge": a >= b,
        }[op]
        return boolean(result)
    if op in BOOL_OPS:
        if op == "not":
            return boolean(not values[0])
        if op == "and":
            return boolean(all(values))
        if op == "or":
            return boolean(any(values))
        if op == "implies":
            return boolean((not values[0]) or values[1])
    if op == ITE_OP:
        chosen = args[1] if values[0] else args[2]
        return chosen
    if op in ARITH_OPS:
        return bv(_arith(op, values, ty), ty)
    raise MirTypeError(f"cannot fold operator {op!r}")


def _div_toward_zero(a, b):
    if b == 0:
        raise ZeroDivisionError("symbolic fold: divide by zero")
    return int(a / b) if (a < 0) != (b < 0) else a // b


def _rem_toward_zero(a, b):
    if b == 0:
        raise ZeroDivisionError("symbolic fold: remainder by zero")
    quotient = int(a / b) if (a < 0) != (b < 0) else a // b
    return a - b * quotient


def _arith(op, values, ty):
    if op == "neg":
        return -values[0]
    if op == "bnot":
        return ~(values[0] % ty.modulus)
    a, b = values
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        return _div_toward_zero(a, b)
    if op == "rem":
        return _rem_toward_zero(a, b)
    ua, ub = a % ty.modulus, b % ty.modulus
    if op == "band":
        return ua & ub
    if op == "bor":
        return ua | ub
    if op == "bxor":
        return ua ^ ub
    if op == "shl":
        return ua << (ub % ty.width)
    if op == "shr":
        return ua >> (ub % ty.width)
    raise MirTypeError(f"unknown arithmetic operator {op!r}")


# ---------------------------------------------------------------------------
# Evaluation and traversal
# ---------------------------------------------------------------------------


def evaluate(term, model):
    """Evaluate ``term`` under ``model`` (name -> int/bool)."""
    if isinstance(term, Const):
        return term.value
    if isinstance(term, SymVar):
        try:
            return model[term.name]
        except KeyError:
            raise MirTypeError(f"model does not bind {term.name!r}")
    if isinstance(term, App):
        if term.op == ITE_OP:
            cond = evaluate(term.args[0], model)
            return evaluate(term.args[1 if cond else 2], model)
        values = tuple(evaluate(a, model) for a in term.args)
        folded = _fold(term.op, values,
                       tuple(Const(v, None) for v in values), term.ty)
        return folded.value
    raise MirTypeError(f"cannot evaluate {term!r}")


def term_vars(term, into=None):
    """The set of variable names occurring in ``term``."""
    names = set() if into is None else into
    if isinstance(term, SymVar):
        names.add(term.name)
    elif isinstance(term, App):
        for arg in term.args:
            term_vars(arg, names)
    return names


# ---------------------------------------------------------------------------
# Canonical fingerprints (solver-verdict memo keys)
# ---------------------------------------------------------------------------


def term_fingerprint(term) -> int:
    """A canonical blake2b-64 fingerprint of the term's structure.

    Built bottom-up from child fingerprints and cached on the term, so
    amortised cost is one digest per distinct (interned) term.  Stable
    across processes — unlike ``hash``/``id`` — which is what lets the
    solver memo live in :mod:`repro.engine.fingerprint` land.
    """
    try:
        return term._fpid
    except AttributeError:
        pass
    from repro.engine.fingerprint import content_fingerprint
    if isinstance(term, SymVar):
        fp = content_fingerprint("v", term.name, str(term.ty))
    elif isinstance(term, Const):
        fp = content_fingerprint("c", term.value.__class__.__name__,
                                 term.value, str(term.ty))
    elif isinstance(term, App):
        fp = content_fingerprint(
            "a", term.op, str(term.ty),
            tuple(term_fingerprint(a) for a in term.args))
    else:
        raise MirTypeError(f"cannot fingerprint {term!r}")
    object.__setattr__(term, "_fpid", fp)
    return fp


# ---------------------------------------------------------------------------
# Compiled evaluators
# ---------------------------------------------------------------------------
#
# ``evaluate`` walks the term tree with an isinstance dispatch per node
# for every model — the inner loop of exhaustive model enumeration.
# ``compile_evaluator`` walks the tree *once*, emitting a Python
# expression that is byte-compiled into a single ``lambda m: ...``; each
# subsequent model costs one native frame.  Semantics are pinned to
# ``evaluate`` exactly: every argument sub-expression is evaluated (no
# new short-circuiting — ``and``/``or`` go through tuple-building
# ``all``/``any``), ``ite`` short-circuits just like ``evaluate`` does,
# division raises the same ``ZeroDivisionError``, and a model miss
# raises the same ``MirTypeError``.  Terms containing operators outside
# the vocabulary compile to ``None`` and the caller falls back to
# ``evaluate``.

_PY_CMP = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
           "gt": ">", "ge": ">="}
_MAX_SOURCE = 200_000


def _implies(a, b):
    return (not a) or b


def _emit(term, env):
    if isinstance(term, Const):
        return repr(term.value)
    if isinstance(term, SymVar):
        return f"m[{term.name!r}]"
    if not isinstance(term, App):
        raise _Uncompilable
    op = term.op
    parts = [_emit(a, env) for a in term.args]
    if op in _PY_CMP:
        return f"(({parts[0]}) {_PY_CMP[op]} ({parts[1]}))"
    if op == "not":
        return f"(not ({parts[0]}))"
    if op == "and":
        return f"all(({', '.join(parts)},))"
    if op == "or":
        return f"any(({', '.join(parts)},))"
    if op == "implies":
        return f"_implies({parts[0]}, {parts[1]})"
    if op == ITE_OP:
        return f"(({parts[1]}) if ({parts[0]}) else ({parts[2]}))"
    if op in ARITH_OPS:
        return _emit_arith(term, parts, env)
    raise _Uncompilable


def _emit_arith(term, parts, env):
    ty = term.ty
    mod, width = ty.modulus, ty.width
    if ty.signed:
        # Two's-complement wrap needs the full IntTy.wrap; capture it.
        wrap_name = f"_w{width}s"
        env[wrap_name] = ty.wrap
        wrap = lambda e: f"{wrap_name}({e})"
    else:
        wrap = lambda e: f"(({e}) & {mod - 1})"
    op = term.op
    if op == "neg":
        return wrap(f"-({parts[0]})")
    if op == "bnot":
        return wrap(f"~(({parts[0]}) % {mod})")
    a, b = parts
    if op == "add":
        return wrap(f"({a}) + ({b})")
    if op == "sub":
        return wrap(f"({a}) - ({b})")
    if op == "mul":
        return wrap(f"({a}) * ({b})")
    if op == "div":
        return wrap(f"_div(({a}), ({b}))")
    if op == "rem":
        return wrap(f"_rem(({a}), ({b}))")
    ua, ub = f"(({a}) % {mod})", f"(({b}) % {mod})"
    if op == "band":
        return wrap(f"{ua} & {ub}")
    if op == "bor":
        return wrap(f"{ua} | {ub}")
    if op == "bxor":
        return wrap(f"{ua} ^ {ub}")
    if op == "shl":
        return wrap(f"{ua} << ({ub} % {width})")
    if op == "shr":
        return wrap(f"{ua} >> ({ub} % {width})")
    raise _Uncompilable


class _Uncompilable(Exception):
    """The term uses an operator outside the compiled vocabulary."""


def compile_evaluator(term) -> Optional[Callable]:
    """A compiled ``fn(model) -> value`` equivalent to
    ``evaluate(term, model)``, or None if the term is uncompilable.

    The compiled function is cached on the term, so interning makes the
    compilation cost amortise across every structurally-equal use site.
    """
    try:
        return term._ceval
    except AttributeError:
        pass
    env = {"_implies": _implies, "_div": _div_toward_zero,
           "_rem": _rem_toward_zero, "__builtins__": {
               "all": all, "any": any}}
    try:
        expression = _emit(term, env)
    except (_Uncompilable, RecursionError):
        fn = None
    else:
        source = f"lambda m: {expression}"
        if len(source) > _MAX_SOURCE:
            fn = None
        else:
            raw = eval(source, env)  # noqa: S307 — generated from our own AST

            def fn(model, _raw=raw):
                try:
                    return _raw(model)
                except KeyError as exc:
                    raise MirTypeError(
                        f"model does not bind {exc.args[0]!r}")
    object.__setattr__(term, "_ceval", fn)
    return fn


def fast_evaluate(term, model):
    """``evaluate`` through the compiled path when possible."""
    fn = compile_evaluator(term)
    if fn is None:
        return evaluate(term, model)
    return fn(model)
