"""RustMonitor — the trusted hypervisor core (layers 12-13).

Implements enclave lifecycle management as emulation of the privileged
SGX instructions (Sec. 2.1): ``hc_create`` (ECREATE), ``hc_add_page``
(EADD), ``hc_init`` (EINIT), plus ``hc_enter``/``hc_exit`` world
switches.  All EPTs and all *enclave* GPTs are built here, from scratch,
in secure memory; the primary OS keeps managing its own and its apps'
GPTs as ordinary guest data (Sec. 2.1, "to prevent possible page table
attacks").

Every validation rule in the hypercalls exists to uphold a Sec. 5.2
invariant; the buggy variants in :mod:`repro.hyperenclave.buggy` each
delete exactly one rule, and the benches watch the corresponding
invariant checker catch it.

Every hypercall is **transactional** (see :mod:`repro.hyperenclave.txn`):
a failure at any step — validation, resource exhaustion, or an injected
fault — rolls the monitor back to its pre-hypercall state before
re-raising, so the Sec. 5.2 invariants are preserved by *failed*
hypercalls too, not just successful ones.  The ``faults.crash_point``
calls between mutations are the named abort-at-step-k injection sites
the crash-step campaign sweeps.
"""

from contextlib import contextmanager
from typing import Dict, Optional, Tuple

from repro.concurrency import scheduler as conc
from repro.concurrency.locks import (
    LOCK_ENCLAVES,
    LOCK_EPCM,
    LOCK_FRAMES,
    enclave_lock,
)
from repro.concurrency.shootdown import tlb_shootdown
from repro.errors import HypercallError, TranslationFault
from repro.faults import plane as faults
from repro.hyperenclave import pte
from repro.hyperenclave.txn import transactional
from repro.hyperenclave.constants import MemoryLayout, WORD_BYTES
from repro.hyperenclave.enclave import Enclave, EnclaveState
from repro.hyperenclave.epcm import Epcm, PageState
from repro.hyperenclave.frames import BitmapFrameAllocator
from repro.hyperenclave.guest import PrimaryOS
from repro.hyperenclave.hardware import CpuLocal, PhysMemory, Tlb, VCpu
from repro.hyperenclave.mbuf import MarshallingBuffer
from repro.hyperenclave.paging import PageTable, two_stage_translate

HOST_ID = 0  # principal id of the primary OS / normal VM


class RustMonitor:
    """The trusted monitor: owns secure memory and all EPTs.

    The monitor serves ``num_vcpus`` virtual CPUs.  Register file, TLB,
    active principal, and the parked host context are all per-vCPU
    (:class:`~repro.hyperenclave.hardware.CpuLocal`); the scalar views
    ``monitor.vcpu`` / ``monitor.tlb`` / ``monitor.active`` /
    ``monitor.saved_host_context`` dispatch on the *executing* vCPU —
    the scheduled task's vid under the concurrency plane, else the
    monitor's own ``_vid`` cursor (settable via :meth:`on_cpu`).  With
    the default single vCPU everything behaves exactly as before.
    """

    def __init__(self, config, layout: Optional[MemoryLayout] = None,
                 os_huge_pages=True, num_vcpus=1):
        self.config = config
        self.layout = layout or MemoryLayout.default_for(config)
        self.phys = PhysMemory(config)
        self.pt_allocator = BitmapFrameAllocator(self.layout.pt_pool_frames)
        self.epcm = Epcm(self.layout)
        self.enclaves: Dict[int, Enclave] = {}
        self._next_eid = 1
        if num_vcpus < 1:
            raise HypercallError("a monitor needs at least one vCPU")
        self.cpus = [CpuLocal(vcpu=VCpu(), tlb=Tlb())
                     for _ in range(num_vcpus)]
        self._vid = 0
        # Structure-fingerprint cache: name -> (version, fingerprint)
        # for the version-counted structures (phys, frames, epcm).
        # Maintained by repro.engine.fingerprint; carried across clones
        # so clean structures are never re-hashed.
        self._fp_cache: Dict[str, Tuple[int, int]] = {}
        # Boot: build the normal VM's EPT — identity over untrusted
        # memory only.  Nothing in the secure range is ever entered here;
        # that absence *is* spatial isolation (Sec. 2.1).
        self.os_ept = PageTable(config, self.phys, self.pt_allocator,
                                allow_huge=os_huge_pages, name="os-ept")
        self._boot_map_untrusted()
        self.primary_os = PrimaryOS(config, self.phys, self.os_ept,
                                    self.layout)
        for cpu in self.cpus:
            cpu.vcpu.ept_root = self.os_ept.root_frame

    # -- per-vCPU views ---------------------------------------------------------------

    @property
    def num_vcpus(self):
        return len(self.cpus)

    @property
    def current_vid(self) -> int:
        """The executing vCPU: the scheduled task's, else the cursor."""
        vid = conc.current_vid()
        return self._vid if vid is None else vid

    @property
    def _cpu(self) -> CpuLocal:
        return self.cpus[self.current_vid]

    @property
    def vcpu(self) -> VCpu:
        return self._cpu.vcpu

    @property
    def tlb(self) -> Tlb:
        return self._cpu.tlb

    @property
    def active(self) -> int:
        return self._cpu.active

    @active.setter
    def active(self, value):
        self._cpu.active = value

    @property
    def saved_host_context(self):
        return self._cpu.saved_host_context

    @saved_host_context.setter
    def saved_host_context(self, value):
        self._cpu.saved_host_context = value

    @contextmanager
    def on_cpu(self, vid):
        """Point the scalar views at vCPU ``vid`` (observation helper)."""
        if not 0 <= vid < len(self.cpus):
            raise HypercallError(f"no vCPU {vid}")
        old = self._vid
        self._vid = vid
        try:
            yield self
        finally:
            self._vid = old

    # Instance fields :meth:`clone` copies structurally; anything a
    # subclass adds on top falls back to ``copy.deepcopy``.
    _CLONE_FIELDS = frozenset((
        "config", "layout", "phys", "pt_allocator", "epcm", "enclaves",
        "_next_eid", "cpus", "_vid", "os_ept", "primary_os", "_fp_cache"))

    def clone(self, *, reuse=None):
        """An independent structural copy of the whole monitor.

        Field-wise instead of ``copy.deepcopy``: the immutable geometry
        (``config``, ``layout``) is shared, every mutable structure —
        physical memory, allocator bitmap, EPCM, per-core state, enclave
        metadata — is copied, and the page tables / primary OS are
        rebound onto the cloned backing stores.  This sits on the
        two-world noninterference hot path and under every parallel
        campaign's prototype-clone world builder.

        ``reuse`` (copy-on-write support for the snapshot tree) maps a
        structure attribute name — ``phys``, ``pt_allocator``, ``epcm``
        — to an already-cloned object with contents identical to this
        monitor's; the clone adopts it by reference instead of copying.
        Only safe when both the donor and the resulting clone are
        frozen (used purely as future clone sources), which is exactly
        how snapshot-tree nodes behave.
        """
        import copy

        reuse = reuse or {}
        new = object.__new__(type(self))
        new.config = self.config
        new.layout = self.layout
        new.phys = reuse.get("phys") or self.phys.clone()
        new.pt_allocator = (reuse.get("pt_allocator")
                            or self.pt_allocator.clone())
        new.epcm = reuse.get("epcm") or self.epcm.clone()
        new._next_eid = self._next_eid
        new._vid = self._vid
        new.cpus = [cpu.clone() for cpu in self.cpus]
        new.os_ept = self.os_ept.clone(new.phys, new.pt_allocator)
        new.primary_os = self.primary_os.clone(new.phys, new.os_ept)
        new.enclaves = {
            eid: enclave.clone(
                enclave.gpt.clone(new.phys, new.pt_allocator),
                enclave.ept.clone(new.phys, new.pt_allocator))
            for eid, enclave in self.enclaves.items()}
        new._fp_cache = dict(getattr(self, "_fp_cache", ()) or {})
        for key, value in self.__dict__.items():
            if key not in self._CLONE_FIELDS:
                new.__dict__[key] = copy.deepcopy(value)
        return new

    def _plan_locks(self, *names):
        """Declare and pre-acquire this hypercall's whole lock set.

        Strict two-phase locking with rank-ordered acquisition (see
        :mod:`repro.concurrency.locks`); the transactional wrapper
        releases everything at hypercall return.  A no-op without an
        installed scheduler — and in the ``MissingLockMonitor`` bug
        variant, which overrides this with ``pass``.
        """
        conc.acquire_locks(self, names)

    def _tlb_shootdown(self):
        """Run the TLB shootdown protocol (method indirection so the
        ``NoShootdownMonitor`` bug variant can drop the remote IPIs)."""
        tlb_shootdown(self)

    def _boot_map_untrusted(self):
        """Identity-map normal memory into the normal VM's EPT, using the
        largest aligned spans available (huge pages keep the boot cost at
        a handful of page-table frames; the enclave EPTs stay strictly
        4K-grained per the enclave invariants)."""
        config = self.config
        addr = 0
        end = config.frame_base(self.layout.secure_base)
        while addr < end:
            placed = False
            if self.os_ept.allow_huge:
                for level in sorted(config.arch.block_levels,
                                    reverse=True):
                    span = config.level_span(level)
                    if addr % span == 0 and addr + span <= end:
                        self.os_ept.map_huge(addr, addr, level,
                                             self.config.arch.leaf_flags())
                        addr += span
                        placed = True
                        break
            if not placed:
                self.os_ept.map_page(addr, addr, self.config.arch.leaf_flags())
                addr += config.page_size

    # -- hypercalls ------------------------------------------------------------------

    @transactional
    def hc_create(self, elrange_base, elrange_size, mbuf_va, mbuf_pa,
                  mbuf_size) -> int:
        """ECREATE: establish a new enclave with empty page tables.

        The page tables are constructed *from scratch* — never copied
        from the primary OS's tables.  (The shallow-copy shortcut is the
        real-world bug of Sec. 4.1; see
        :class:`repro.hyperenclave.buggy.ShallowCopyMonitor`.)
        """
        self._plan_locks(LOCK_ENCLAVES, LOCK_EPCM, LOCK_FRAMES)
        config = self.config
        self._require_page_aligned(elrange_base, "elrange_base")
        self._require_page_aligned(mbuf_va, "mbuf_va")
        self._require_page_aligned(mbuf_pa, "mbuf_pa")
        if elrange_size <= 0 or elrange_size % config.page_size:
            raise HypercallError("ELRANGE size must be whole pages")
        if mbuf_size <= 0 or mbuf_size % config.page_size:
            raise HypercallError("marshalling buffer must be whole pages")
        if elrange_base + elrange_size > config.va_space:
            raise HypercallError("ELRANGE exceeds the virtual address space")
        mbuf = MarshallingBuffer(va_base=mbuf_va, pa_base=mbuf_pa,
                                 size=mbuf_size)
        # The buffer must be normal memory: backing an mbuf with EPC
        # pages would alias secure memory into the untrusted world.
        for va_page, pa_page in mbuf.pages(config):
            if not self.layout.is_untrusted(config.frame_of(pa_page)):
                raise HypercallError(
                    f"marshalling buffer page {pa_page:#x} is not in "
                    f"untrusted memory")
        conc.guard_mutation(LOCK_ENCLAVES)
        eid = self._next_eid
        self._next_eid += 1
        faults.crash_point("hc.create", "validated")
        gpt = PageTable(config, self.phys, self.pt_allocator,
                        allow_huge=False, name=f"enc{eid}-gpt")
        ept = PageTable(config, self.phys, self.pt_allocator,
                        allow_huge=False, name=f"enc{eid}-ept")
        enclave = Enclave(eid=eid, elrange_base=elrange_base,
                          elrange_size=elrange_size, mbuf=mbuf,
                          gpt=gpt, ept=ept, gpa_base=elrange_base)
        faults.crash_point("hc.create", "tables-built")
        # SECS bookkeeping page.
        self.epcm.allocate(eid, PageState.SECS)
        faults.crash_point("hc.create", "secs-allocated")
        # Fix the marshalling-buffer mappings for the enclave's lifetime:
        # GVA -> GPA (identity into untrusted space) -> HPA (identity).
        for va_page, pa_page in mbuf.pages(config):
            gpt.map_page(va_page, pa_page, self.config.arch.leaf_flags())
            if ept.query(pa_page) is None:
                ept.map_page(pa_page, pa_page, self.config.arch.leaf_flags())
        faults.crash_point("hc.create", "mbuf-mapped")
        # Publish: from here the tables are shared state guarded by the
        # enclave's own lock (their mutations during construction above
        # were private — nobody else could name them yet).
        gpt.owner_lock = ept.owner_lock = enclave_lock(eid)
        conc.guard_mutation(LOCK_ENCLAVES)
        self.enclaves[eid] = enclave
        return eid

    @transactional
    def hc_add_page(self, eid, va, src_gpa) -> int:
        """EADD: copy one source page from untrusted memory into a fresh
        EPC page and map it at ``va`` in the enclave.  Returns the EPC
        frame chosen."""
        self._plan_locks(LOCK_ENCLAVES, enclave_lock(eid), LOCK_EPCM,
                         LOCK_FRAMES)
        enclave = self._enclave(eid)
        enclave.require_state(EnclaveState.CREATED)
        config = self.config
        self._require_page_aligned(va, "va")
        self._require_page_aligned(src_gpa, "src_gpa")
        if not enclave.in_elrange(va):
            raise HypercallError(
                f"va {va:#x} outside ELRANGE "
                f"[{enclave.elrange_base:#x}, {enclave.elrange_end:#x})")
        if enclave.gpt.query(va) is not None:
            raise HypercallError(f"va {va:#x} already added")
        # Source must be normal memory reachable through the OS EPT.
        try:
            src_hpa = self.os_ept.translate(src_gpa, write=False)
        except TranslationFault:
            raise HypercallError(
                f"source page {src_gpa:#x} is not mapped for the OS")
        faults.crash_point("hc.add_page", "validated")
        frame = self.epcm.allocate(eid, PageState.REG, va=va)
        faults.crash_point("hc.add_page", "epcm-allocated")
        dst_frame = frame
        self.phys.copy_frame(dst_frame, config.frame_of(src_hpa))
        faults.crash_point("hc.add_page", "frame-copied")
        gpa = enclave.elrange_gpa(va)
        enclave.gpt.map_page(va, gpa, self.config.arch.leaf_flags())
        faults.crash_point("hc.add_page", "gpt-mapped")
        enclave.ept.map_page(gpa, config.frame_base(dst_frame),
                             self.config.arch.leaf_flags())
        faults.crash_point("hc.add_page", "ept-mapped")
        enclave.absorb_measurement(va, self.phys.frame_words(dst_frame))
        return frame

    @transactional
    def hc_aug_page(self, eid, va) -> int:
        """EAUG: add a fresh EPC page to an *initialized* enclave.

        Unlike EADD there is no source to copy, so the page arrives with
        whatever the frame holds — which is all-zeros precisely because
        ``hc_destroy`` scrubs frames before releasing them.  That makes
        destroy-time scrubbing load-bearing: the NoScrub buggy variant
        turns this hypercall into a cross-enclave leak.
        """
        self._plan_locks(LOCK_ENCLAVES, enclave_lock(eid), LOCK_EPCM,
                         LOCK_FRAMES)
        enclave = self._enclave(eid)
        enclave.require_state(EnclaveState.INITIALIZED)
        self._require_page_aligned(va, "va")
        if not enclave.in_elrange(va):
            raise HypercallError(
                f"va {va:#x} outside ELRANGE "
                f"[{enclave.elrange_base:#x}, {enclave.elrange_end:#x})")
        if enclave.gpt.query(va) is not None:
            raise HypercallError(f"va {va:#x} already mapped")
        frame = self.epcm.allocate(eid, PageState.REG, va=va)
        faults.crash_point("hc.aug_page", "epcm-allocated")
        gpa = enclave.elrange_gpa(va)
        enclave.gpt.map_page(va, gpa, self.config.arch.leaf_flags())
        faults.crash_point("hc.aug_page", "gpt-mapped")
        enclave.ept.map_page(gpa, self.config.frame_base(frame),
                             self.config.arch.leaf_flags())
        return frame

    @transactional
    def hc_remove_page(self, eid, va):
        """EREMOVE: take one REG page back out of a *pre-init* enclave.

        The kernel module uses this to recover from partially-built
        enclaves.  The page is unmapped from both tables, scrubbed, and
        its EPCM entry freed — in that order, so no window exists where
        a mapping points at a free frame.
        """
        self._plan_locks(LOCK_ENCLAVES, enclave_lock(eid), LOCK_EPCM)
        enclave = self._enclave(eid)
        enclave.require_state(EnclaveState.CREATED)
        self._require_page_aligned(va, "va")
        frame = self.epcm.lookup_mapping(eid, va)
        if frame is None:
            raise HypercallError(
                f"no EPC page recorded at va {va:#x} for enclave {eid}")
        gpa = enclave.elrange_gpa(va)
        enclave.gpt.unmap(va)
        faults.crash_point("hc.remove_page", "gpt-unmapped")
        enclave.ept.unmap(gpa)
        faults.crash_point("hc.remove_page", "ept-unmapped")
        self.phys.zero_frame(frame)
        faults.crash_point("hc.remove_page", "frame-scrubbed")
        self.epcm.release(frame, eid)
        self._tlb_shootdown()
        return frame

    @transactional
    def hc_trim_page(self, eid, va):
        """EMODT/TRIM + ETRACK: take one REG page out of a *live* enclave.

        The SGX2 memory-shrinking path: unlike ``hc_remove_page`` (a
        pre-init recovery tool), trimming is legal on an initialized —
        even currently entered — enclave, which is exactly what makes
        the TLB shootdown load-bearing: another vCPU may be running
        inside the enclave with the dying translation cached.  The
        order is unmap GPT → unmap EPT → shootdown (ETRACK: no vCPU
        still caches the translation) → scrub → release, so at no point
        does any core reach a frame the EPCM no longer accounts to the
        enclave.  The ``NoShootdownMonitor`` variant drops the remote
        flushes and the interleaving campaign's stale-translation
        detector convicts it.
        """
        self._plan_locks(LOCK_ENCLAVES, enclave_lock(eid), LOCK_EPCM)
        enclave = self._enclave(eid)
        enclave.require_state(EnclaveState.INITIALIZED,
                              EnclaveState.RUNNING)
        self._require_page_aligned(va, "va")
        frame = self.epcm.lookup_mapping(eid, va)
        if frame is None:
            raise HypercallError(
                f"no EPC page recorded at va {va:#x} for enclave {eid}")
        gpa = enclave.elrange_gpa(va)
        enclave.gpt.unmap(va)
        faults.crash_point("hc.trim_page", "gpt-unmapped")
        enclave.ept.unmap(gpa)
        faults.crash_point("hc.trim_page", "ept-unmapped")
        self._tlb_shootdown()
        faults.crash_point("hc.trim_page", "shootdown-done")
        self.phys.zero_frame(frame)
        faults.crash_point("hc.trim_page", "frame-scrubbed")
        self.epcm.release(frame, eid)
        return frame

    @transactional
    def hc_init(self, eid):
        """EINIT: freeze the memory layout; the enclave becomes enterable."""
        self._plan_locks(LOCK_ENCLAVES, enclave_lock(eid))
        enclave = self._enclave(eid)
        enclave.require_state(EnclaveState.CREATED)
        faults.crash_point("hc.init", "pre-commit")
        enclave.state = EnclaveState.INITIALIZED

    @transactional
    def hc_enter(self, eid):
        """Synchronous enclave entry: save host context, install the
        enclave's GPT/EPT roots, flush the TLB (Sec. 2.1)."""
        self._plan_locks(LOCK_ENCLAVES, enclave_lock(eid))
        enclave = self._enclave(eid)
        enclave.require_state(EnclaveState.INITIALIZED)
        if self.active != HOST_ID:
            raise HypercallError("enter requires the host to be active")
        self.saved_host_context = self.vcpu.context()
        if enclave.saved_context is not None:
            self.vcpu.restore(enclave.saved_context)
        else:
            self.vcpu.restore(tuple((name, 0) for name, _ in
                                    self.vcpu.context()))
        faults.crash_point("hc.enter", "context-saved")
        self.vcpu.gpt_root = enclave.gpt.root_frame
        self.vcpu.ept_root = enclave.ept.root_frame
        self.tlb.flush_all()
        faults.crash_point("hc.enter", "roots-installed")
        enclave.state = EnclaveState.RUNNING
        self.active = eid

    @transactional
    def hc_exit(self, eid):
        """Enclave exit: save enclave context, restore the host world."""
        self._plan_locks(LOCK_ENCLAVES, enclave_lock(eid))
        enclave = self._enclave(eid)
        enclave.require_state(EnclaveState.RUNNING)
        if self.active != eid:
            raise HypercallError("exit from a non-active enclave")
        enclave.saved_context = self.vcpu.context()
        faults.crash_point("hc.exit", "context-saved")
        self.vcpu.restore(self.saved_host_context)
        self.saved_host_context = None  # consumed; nothing stays parked
        self.vcpu.gpt_root = None
        self.vcpu.ept_root = self.os_ept.root_frame
        self.tlb.flush_all()
        faults.crash_point("hc.exit", "host-restored")
        enclave.state = EnclaveState.INITIALIZED
        self.active = HOST_ID

    @transactional
    def hc_destroy(self, eid):
        """Tear down an enclave: scrub and release its EPC pages and
        page-table frames."""
        self._plan_locks(LOCK_ENCLAVES, enclave_lock(eid), LOCK_EPCM,
                         LOCK_FRAMES)
        enclave = self._enclave(eid)
        enclave.require_state(EnclaveState.CREATED,
                              EnclaveState.INITIALIZED)
        for frame, entry in self.epcm.owned_by(eid):
            self.phys.zero_frame(frame)
        faults.crash_point("hc.destroy", "pages-scrubbed")
        self.epcm.release_all(eid)
        faults.crash_point("hc.destroy", "epcm-released")
        for frame in enclave.gpt.table_frames():
            self.phys.zero_frame(frame)
            self.pt_allocator.dealloc(frame)
        faults.crash_point("hc.destroy", "gpt-freed")
        for frame in enclave.ept.table_frames():
            self.phys.zero_frame(frame)
            self.pt_allocator.dealloc(frame)
        faults.crash_point("hc.destroy", "ept-freed")
        self._tlb_shootdown()  # its translations die with it, on every core
        enclave.state = EnclaveState.DESTROYED
        conc.guard_mutation(LOCK_ENCLAVES)
        del self.enclaves[eid]

    # -- memory access on behalf of principals (used by the security model) ----------

    def enclave_translate(self, eid, va, write=False) -> int:
        """Resolve an enclave VA through its GPT∘EPT composition."""
        enclave = self._enclave(eid)
        return two_stage_translate(self.config, self.phys, enclave.ept,
                                   enclave.gpt, va, write=write)

    def enclave_load(self, eid, va) -> int:
        return self.phys.read_word(self.enclave_translate(eid, va))

    def enclave_store(self, eid, va, value):
        self.phys.write_word(self.enclave_translate(eid, va, write=True),
                             value)

    # -- helpers ------------------------------------------------------------------------

    def _enclave(self, eid) -> Enclave:
        try:
            return self.enclaves[eid]
        except KeyError:
            raise HypercallError(f"no enclave with id {eid}")

    def _require_page_aligned(self, addr, what):
        if addr % self.config.page_size:
            raise HypercallError(f"{what} ({addr:#x}) is not page-aligned")

    def principals(self):
        """All live principal ids: the host plus every enclave."""
        return [HOST_ID] + sorted(self.enclaves)
