"""The 13-planted-bug conviction matrix, as a library.

Every buggy monitor variant in :mod:`repro.hyperenclave.buggy` paired
with the checker the paper assigns to its bug class — structural bugs
with the Sec. 5.2 invariant families or the Sec. 4.1 refinement,
behavioural leaks with the Sec. 5 noninterference theorem, the
crash-consistency bug with the fault-injection campaign, and the two
concurrency bugs with the bounded-preemption interleaving explorer.

This lives in the library (rather than only in
``benchmarks/test_bench_bug_matrix.py``, which now imports it) so the
matrix can be re-run *through the parallel fabric*: the sensitivity
guard for the fingerprint memoisation and the sharded merge.  A cache
or merge bug that masked a real violation would flip a conviction here;
:func:`run_matrix_parallel` must convict all 13 with verdict strings
identical to :func:`run_matrix`'s.
"""

from typing import List, Tuple

from repro.hyperenclave import buggy
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import HOST_ID

PAGE = TINY.page_size


def build_world(monitor_cls=None, secret=0x41, pages=1, config=None):
    """A booted monitor with one app + initialized enclave holding
    ``secret`` (the standard single-enclave fixture).  All addresses
    scale with ``config`` so the same scenario runs on every
    architecture (x86 EPT and VMSAv8-64 alike)."""
    from repro.hyperenclave.monitor import RustMonitor
    config = config or TINY
    cls = monitor_cls or RustMonitor
    monitor = cls(config)
    primary_os = monitor.primary_os
    app = primary_os.spawn_app(1)
    page = config.page_size
    mbuf_pa = config.frame_base(primary_os.reserve_data_frame())
    src_pa = config.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src_pa, secret)
    eid = monitor.hc_create(16 * page, pages * page, 12 * page, mbuf_pa,
                            page)
    for index in range(pages):
        monitor.hc_add_page(eid, (16 + index) * page, src_pa)
    primary_os.gpa_write_word(src_pa, 0)
    monitor.hc_init(eid)
    primary_os.gpt_map(app.gpt_root_gpa, 12 * page, mbuf_pa)
    return monitor, app, eid


# ---------------------------------------------------------------------------
# World setups for the invariant-family convictions
# ---------------------------------------------------------------------------


def setup_single(monitor_cls, config=None):
    """The standard single-enclave world, monitor only."""
    return build_world(monitor_cls, config=config)[0]


def setup_two_enclaves(monitor_cls, config=None):
    """Two enclaves fed from one source frame (aliasing bait)."""
    config = config or TINY
    page = config.page_size
    monitor = monitor_cls(config)
    primary_os = monitor.primary_os
    src = config.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src, 0x9)
    mbuf_a = config.frame_base(primary_os.reserve_data_frame())
    mbuf_b = config.frame_base(primary_os.reserve_data_frame())
    eid_a = monitor.hc_create(16 * page, page, 4 * page, mbuf_a, page)
    eid_b = monitor.hc_create(32 * page, page, 5 * page, mbuf_b, page)
    monitor.hc_add_page(eid_a, 16 * page, src)
    monitor.hc_add_page(eid_b, 32 * page, src)
    return monitor


def setup_outside(monitor_cls, config=None):
    """An added page whose VA lies outside the ELRANGE."""
    config = config or TINY
    page = config.page_size
    monitor = monitor_cls(config)
    mbuf = config.frame_base(monitor.primary_os.reserve_data_frame())
    eid = monitor.hc_create(16 * page, page, 4 * page, mbuf, page)
    monitor.hc_add_page(eid, 40 * page, 0)
    return monitor


def setup_mbuf_overlap(monitor_cls, config=None):
    """A marshalling buffer overlapping the enclave ELRANGE."""
    config = config or TINY
    page = config.page_size
    monitor = monitor_cls(config)
    mbuf = config.frame_base(monitor.primary_os.reserve_data_frame())
    monitor.hc_create(16 * page, 2 * page, 17 * page, mbuf, page)
    return monitor


def setup_secure_mbuf(monitor_cls, config=None):
    """A marshalling buffer placed inside secure (EPC) memory."""
    config = config or TINY
    page = config.page_size
    monitor = monitor_cls(config)
    epc_pa = config.frame_base(monitor.layout.epc_base + 3)
    monitor.hc_create(16 * page, page, 4 * page, epc_pa, page)
    return monitor


# ---------------------------------------------------------------------------
# Detectors
# ---------------------------------------------------------------------------


def _invariant_report(monitor, memo):
    from repro.security.invariants import check_all_invariants
    if memo is not None:
        return memo.check_invariants(monitor)
    return check_all_invariants(monitor)


def detect_invariant_bug(monitor_cls, setup, *, memo=None, config=None):
    """Convict via the Sec. 5.2 invariant families on ``setup``\'s world."""
    report = _invariant_report(setup(monitor_cls, config=config), memo)
    return (not report.ok,
            "invariants: " + "/".join(report.violated_families()))


def detect_shallow_copy(monitor_cls, _arg=None, *, memo=None, config=None):
    """Convict via refinement: abstraction refuses the aliased table."""
    from repro.spec import AbstractionFailure, abstract_table
    from repro.spec.relation import flat_state_of_page_table

    config = config or TINY
    page = config.page_size
    monitor = monitor_cls(config)
    primary_os = monitor.primary_os
    app = primary_os.spawn_app(1)
    primary_os.app_map_data(app, 16 * page)
    mbuf = config.frame_base(primary_os.reserve_data_frame())
    eid = monitor.hc_create_from_app(app, 16 * page, 2 * page, 4 * page,
                                     mbuf, page)
    enclave = monitor.enclaves[eid]
    flat = flat_state_of_page_table(
        enclave.gpt, monitor.layout.pt_pool_base,
        monitor.layout.epc_base - monitor.layout.pt_pool_base)
    try:
        abstract_table(flat, enclave.gpt.root_frame)
        refused = False
    except AbstractionFailure:
        refused = True
    residency = not _invariant_report(monitor, memo).ok
    return refused and residency, "refinement: α refuses + pt-residency"


def detect_ni_bug(monitor_cls, trace_builder, *, memo=None, config=None):
    """Convict via the Sec. 5 two-world noninterference theorem."""
    from repro.security import DataOracle, SystemState
    from repro.security.noninterference import (
        TwoWorlds,
        check_theorem_noninterference,
    )

    config = config or TINY

    def world(secret):
        monitor, app, eid = build_world(monitor_cls, secret=secret,
                                        pages=2, config=config)
        return SystemState(monitor, DataOracle.seeded(5)), app, eid
    state_a, app, eid = world(41)
    state_b, _, _ = world(42)
    worlds = TwoWorlds(state_a, state_b)
    violations = check_theorem_noninterference(
        worlds, trace_builder(app, eid, config),
        observers=[HOST_ID, eid + 1] if monitor_cls is buggy.NoScrubMonitor
        else [HOST_ID])
    component = violations[-1].components if violations else ()
    return bool(violations), f"noninterference: {component}"


def leak_trace(app, eid, config=None):
    """An enclave session whose exit path can leak register state."""
    from repro.security import Hypercall, MemLoad
    page = (config or TINY).page_size
    return [
        Hypercall(HOST_ID, "enter", (eid,)),
        (MemLoad(eid, 16 * page, "rax"), MemLoad(eid, 16 * page, "rax")),
        (Hypercall(eid, "exit", (eid,)), Hypercall(eid, "exit", (eid,))),
        MemLoad(HOST_ID, 16 * page, "rbx", via_app=app.app_id),
    ]


def scrub_trace(app, eid, config=None):
    """Destroy-then-reuse: freed frames must come back scrubbed."""
    from repro.security import Hypercall
    page = (config or TINY).page_size
    return [
        Hypercall(HOST_ID, "destroy", (eid,)),
        Hypercall(HOST_ID, "create",
                  (48 * page, 2 * page, 8 * page, 2 * page, page)),
        Hypercall(HOST_ID, "add_page", (eid + 1, 48 * page, 0)),
        Hypercall(HOST_ID, "init", (eid + 1,)),
        Hypercall(HOST_ID, "aug_page", (eid + 1, 49 * page)),
    ]


def nontransactional_world_factory(monitor_path=None, config_name=None):
    """World-factory maker for the no-rollback conviction (addressable
    by dotted path so the parallel campaign can rebuild it in
    workers; ``config_name`` keys :data:`ARCH_CONFIGS` for the same
    reason)."""
    from repro.engine.executor import resolve_callable
    from repro.hyperenclave.constants import ARCH_CONFIGS

    monitor_cls = (resolve_callable(monitor_path) if monitor_path
                   else buggy.NonTransactionalMonitor)
    config = ARCH_CONFIGS[config_name] if config_name else TINY
    page = config.page_size

    def factory():
        monitor = monitor_cls(config)
        primary_os = monitor.primary_os
        ctx = {
            "page": page,
            "mbuf_pa": config.frame_base(primary_os.reserve_data_frame()),
            "src_pa": config.frame_base(primary_os.reserve_data_frame()),
            "elrange_base": 16 * page,
        }
        primary_os.gpa_write_word(ctx["src_pa"], 0xDEAD)
        return monitor, ctx

    return factory


def nontransactional_workload():
    """create + add_page is enough to expose a missing rollback."""
    from repro.faults import default_workload
    return default_workload()[:2]


def detect_no_rollback(monitor_cls, _arg=None, *, parallel=False,
                       executor=None, config=None):
    """A tiny crash-step sweep: partial mutations survive the abort."""
    from repro.engine.campaigns import (
        callable_path,
        parallel_crash_step_campaign,
    )
    from repro.faults import crash_step_campaign

    path = callable_path(monitor_cls)
    config_name = _config_name(config)
    if parallel:
        report = parallel_crash_step_campaign(
            "repro.engine.bug_matrix:nontransactional_world_factory",
            "repro.engine.bug_matrix:nontransactional_workload",
            factory_args=(path, config_name), sites=(), seed=0,
            executor=executor)
    else:
        report = crash_step_campaign(
            nontransactional_world_factory(path, config_name),
            nontransactional_workload(), sites=(), seed=0)
    return (not report.ok,
            f"fault campaign: {len(report.failures())} un-rolled-back "
            f"aborts")


def detect_concurrency_bug(monitor_cls, _arg=None, *, parallel=False,
                           executor=None, config=None):
    """Bounded-preemption exploration flags the planted race."""
    from repro.engine.campaigns import parallel_interleaving_campaign
    from repro.faults import interleaving_campaign

    if parallel:
        result = parallel_interleaving_campaign(monitor_cls,
                                                check_ni=False,
                                                config=config,
                                                executor=executor)
    else:
        result = interleaving_campaign(monitor_cls, check_ni=False,
                                       config=config)
    kinds = "/".join(sorted(result.by_kind()))
    return not result.ok, f"interleaving explorer: {kinds}"


def _config_name(config):
    """The :data:`ARCH_CONFIGS`-style name for a config, or None for
    the default world (dotted-path-friendly for worker units)."""
    from repro.hyperenclave.constants import ARCH_CONFIGS
    if config is None:
        return None
    for name, candidate in ARCH_CONFIGS.items():
        if candidate is config or candidate == config:
            return name
    raise ValueError(f"config {config.name!r} is not in ARCH_CONFIGS; "
                     f"the parallel matrix addresses configs by name")


MATRIX = [
    (buggy.ShallowCopyMonitor, detect_shallow_copy, None),
    (buggy.AliasingMonitor, detect_invariant_bug, setup_two_enclaves),
    (buggy.OutsideElrangeMonitor, detect_invariant_bug, setup_outside),
    (buggy.NoEpcmRecordMonitor, detect_invariant_bug, setup_single),
    (buggy.HugePageMonitor, detect_invariant_bug, setup_single),
    (buggy.MbufOverlapMonitor, detect_invariant_bug,
     setup_mbuf_overlap),
    (buggy.SecureMbufMonitor, detect_invariant_bug, setup_secure_mbuf),
    (buggy.LeakyExitMonitor, detect_ni_bug, leak_trace),
    (buggy.NoTlbFlushMonitor, detect_ni_bug, leak_trace),
    (buggy.NoScrubMonitor, detect_ni_bug, scrub_trace),
    (buggy.NonTransactionalMonitor, detect_no_rollback, None),
    (buggy.MissingLockMonitor, detect_concurrency_bug, None),
    (buggy.NoShootdownMonitor, detect_concurrency_bug, None),
]

# Matrix rows whose detector runs a whole campaign: in the parallel
# matrix these stay in the parent and fan their *campaign* out.
_CAMPAIGN_DETECTORS = (detect_no_rollback, detect_concurrency_bug)


def run_case(index, *, parallel=False, executor=None,
             memo=None, config=None) -> Tuple[str, bool, str]:
    """Run one matrix row: ``(bug name, detected, how)``."""
    monitor_cls, detector, arg = MATRIX[index]
    if detector in _CAMPAIGN_DETECTORS:
        detected, how = detector(monitor_cls, arg, parallel=parallel,
                                 executor=executor, config=config)
    elif detector is detect_ni_bug:
        detected, how = detector(monitor_cls, arg, config=config)
    else:
        detected, how = detector(monitor_cls, arg, memo=memo,
                                 config=config)
    return (monitor_cls.BUG, detected, how)


def run_matrix(memo=None, config=None) -> List[Tuple[str, bool, str]]:
    """The whole matrix, sequentially, in matrix order."""
    return [run_case(index, memo=memo, config=config)
            for index in range(len(MATRIX))]


def run_matrix_parallel(workers=None, executor=None, stats_out=None,
                        config=None) -> List[Tuple[str, bool, str]]:
    """The whole matrix through the parallel fabric.

    Single-state convictions fan out as units (their invariant sweeps
    memoised in the workers); campaign-backed convictions run their
    campaigns through the shared executor.  Results are in matrix order
    with verdict strings identical to :func:`run_matrix`'s.
    """
    from repro.engine.campaigns import _executor, _publish_stats

    results: List = [None] * len(MATRIX)
    light = [index for index, (_cls, detector, _arg) in enumerate(MATRIX)
             if detector not in _CAMPAIGN_DETECTORS]
    config_name = _config_name(config)
    with _executor(executor, workers) as pool:
        units = [{"case": index, "memo": True, "config": config_name}
                 for index in light]
        for index, outcome in zip(light, pool.map(
                "repro.engine.workers:run_bug_matrix_unit", units,
                keys=[f"{config_name}:{index}" for index in light])):
            results[index] = outcome
        for index in range(len(MATRIX)):
            if results[index] is None:
                results[index] = run_case(index, parallel=True,
                                          executor=pool, config=config)
        _publish_stats(stats_out, pool)
    return results
