"""Specs and layer stacks: preconditions, purity, interface export,
ownership disjointness, and the caller-callee order."""

import pytest

from repro.ccal.absstate import AbsState
from repro.ccal.layer import LayerStack
from repro.ccal.spec import Spec, pure_spec, state_spec
from repro.errors import LayerError, SpecPreconditionError
from repro.mir.builder import ProgramBuilder
from repro.mir.types import U64, UNIT
from repro.mir.value import mk_u64


def counter_state():
    return AbsState().with_field("n", 0)


class TestSpec:
    def test_state_spec_threads_state(self):
        spec = state_spec("inc", lambda args, s: (mk_u64(s.get("n")),
                                                  s.set("n", s.get("n") + 1)))
        ret, state = spec((), counter_state())
        assert ret.value == 0
        assert state.get("n") == 1

    def test_precondition_enforced(self):
        spec = state_spec("f", lambda args, s: (None, s),
                          pre=lambda args, s: args[0].value > 0)
        with pytest.raises(SpecPreconditionError):
            spec((mk_u64(0),), counter_state())
        spec((mk_u64(1),), counter_state())

    def test_pure_spec_state_unchanged(self):
        spec = pure_spec("sq", lambda args: mk_u64(args[0].value ** 2))
        ret, state = spec((mk_u64(3),), counter_state())
        assert ret.value == 9
        assert state == counter_state()

    def test_pure_claim_checked(self):
        lying = Spec("f", lambda args, s: (None, s.set("n", 9)), pure=True)
        with pytest.raises(SpecPreconditionError, match="pure"):
            lying((), counter_state())

    def test_as_trusted_function(self):
        spec = pure_spec("one", lambda args: mk_u64(1), layer="L")
        tf = spec.as_trusted_function()
        assert tf.name == "one"
        assert tf.layer == "L"


def two_layer_stack():
    stack = LayerStack()
    stack.push("Bottom",
               primitives=[pure_spec("prim_a", lambda args: mk_u64(1))],
               owned_fields=("mem",))
    stack.push("Top",
               primitives=[pure_spec("prim_b", lambda args: mk_u64(2))],
               owned_fields=("meta",))
    return stack


class TestLayerStack:
    def test_interface_is_cumulative(self):
        stack = two_layer_stack()
        assert set(stack.interface_at("Bottom")) == {"prim_a"}
        assert set(stack.interface_at("Top")) == {"prim_a", "prim_b"}

    def test_ownership_disjointness(self):
        stack = two_layer_stack()
        with pytest.raises(LayerError, match="claimed by both"):
            stack.push("Evil", owned_fields=("mem",))

    def test_duplicate_layer_rejected(self):
        stack = two_layer_stack()
        with pytest.raises(LayerError, match="duplicate"):
            stack.push("Top")

    def test_owner_lookups(self):
        stack = two_layer_stack()
        assert stack.owner_of_field("mem").name == "Bottom"
        assert stack.owner_of_primitive("prim_b").name == "Top"
        assert stack.owner_of_field("ghost") is None

    def test_initial_state_carries_ownership(self):
        stack = two_layer_stack()
        state = stack.initial_state({"mem": (0,), "meta": {}})
        assert state.owner_of("mem") == "Bottom"
        with pytest.raises(LayerError):
            stack.initial_state({"mem": (0,)})  # missing meta

    def test_duplicate_primitive_rejected(self):
        stack = LayerStack()
        layer = stack.push("L")
        layer.add_primitive(pure_spec("p", lambda args: None))
        with pytest.raises(LayerError):
            layer.add_primitive(pure_spec("p", lambda args: None))


class TestCallOrder:
    def build_program(self, upward=False):
        pb = ProgramBuilder()
        fb = pb.function("low_fn", [], U64, layer="Bottom")
        if upward:
            fb.call("_1", "high_fn", [])
        fb.ret(1)
        fb.finish()
        fb = pb.function("high_fn", [], U64, layer="Top")
        fb.call("_1", "low_fn", [])
        fb.call("_2", "prim_a", [])
        fb.ret("_1")
        fb.finish()
        return pb.build()

    def test_downward_calls_allowed(self):
        stack = two_layer_stack()
        program = self.build_program(upward=False)
        mapping = {"low_fn": "Bottom", "high_fn": "Top"}
        assert stack.check_call_order(program, mapping) == []

    def test_upward_call_flagged(self):
        stack = two_layer_stack()
        program = self.build_program(upward=True)
        mapping = {"low_fn": "Bottom", "high_fn": "Top"}
        violations = stack.check_call_order(program, mapping)
        assert violations and "calls upward" in violations[0]

    def test_unexported_callee_flagged(self):
        stack = two_layer_stack()
        pb = ProgramBuilder()
        fb = pb.function("f", [], U64, layer="Top")
        fb.call("_1", "mystery", [])
        fb.ret(1)
        fb.finish()
        violations = stack.check_call_order(pb.build(), {"f": "Top"})
        assert violations and "no layer exports" in violations[0]

    def test_corpus_call_order_holds(self, model):
        assert model.check_call_order() == []
