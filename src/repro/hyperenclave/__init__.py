"""Executable model of HyperEnclave's memory subsystem (Sec. 2, Fig. 1).

This is the *system under verification*: RustMonitor's frame allocator,
64-bit page-table entries, multi-level extended page tables, the Enclave
Page Cache Map, enclave objects with their ELRANGEs and marshalling
buffers, the untrusted primary OS, and the hypercall surface
(``create`` / ``add_page`` / ``init`` / ``enter`` / ``exit`` — the
ECREATE/EADD/EINIT emulation of Sec. 2.1).

Two machine geometries are provided: the real x86-64 shape (4-level,
512-entry tables, 4 KiB pages) and a tiny shape whose bounded state
space the checking engines can enumerate exhaustively.

:mod:`repro.hyperenclave.buggy` hosts the deliberately broken monitor
variants used by the Figure 5 and Sec. 4.1 bug-study benches.
"""

from repro.hyperenclave.constants import (
    MachineConfig,
    MemoryLayout,
    X86_64,
    TINY,
    PteFlagBits,
)
from repro.hyperenclave.hardware import PhysMemory, Tlb, VCpu
from repro.hyperenclave.frames import BitmapFrameAllocator
from repro.hyperenclave import pte
from repro.hyperenclave.paging import PageTable, two_stage_translate
from repro.hyperenclave.epcm import Epcm, EpcmEntry, PageState
from repro.hyperenclave.enclave import Enclave, EnclaveState
from repro.hyperenclave.mbuf import MarshallingBuffer
from repro.hyperenclave.guest import PrimaryOS, App
from repro.hyperenclave.monitor import RustMonitor, HOST_ID

__all__ = [
    "MachineConfig", "MemoryLayout", "X86_64", "TINY", "PteFlagBits",
    "PhysMemory", "Tlb", "VCpu",
    "BitmapFrameAllocator",
    "pte",
    "PageTable", "two_stage_translate",
    "Epcm", "EpcmEntry", "PageState",
    "Enclave", "EnclaveState",
    "MarshallingBuffer",
    "PrimaryOS", "App",
    "RustMonitor", "HOST_ID",
]
