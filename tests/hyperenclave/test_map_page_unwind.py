"""map_page atomicity: a failed mapping never leaks pool frames.

The ISSUE-1 satellite: ``map_page`` walks up to ``levels - 1``
intermediate tables into existence before touching the terminal entry;
if the walk dies partway (pool exhaustion deeper down, an injected
write fault), the tables it already allocated must go back to the pool
and their parent entries must be cleared — otherwise every failed
hypercall permanently shrinks the frame pool.
"""

import pytest

from repro.errors import FaultInjected, OutOfMemoryError
from repro.faults.plane import SITE_PHYS_WRITE, FaultPlane, installed
from repro.hyperenclave import pte
from repro.hyperenclave.constants import TINY, MemoryLayout
from repro.hyperenclave.frames import BitmapFrameAllocator
from repro.hyperenclave.hardware import PhysMemory
from repro.hyperenclave.paging import PageTable

PAGE = TINY.page_size


def make_table(pool_frames, allow_huge=False):
    layout = MemoryLayout.default_for(TINY)
    phys = PhysMemory(TINY)
    base = layout.pt_pool_frames.start
    allocator = BitmapFrameAllocator(range(base, base + pool_frames))
    table = PageTable(TINY, phys, allocator, allow_huge=allow_huge,
                      name="unwind-test")
    return phys, allocator, table


class TestExhaustionUnwind:
    def test_mid_walk_exhaustion_frees_created_tables(self):
        # Root + one spare: the second intermediate allocation of a
        # 4-level walk must fail, and the first must be given back.
        phys, allocator, table = make_table(2)
        assert allocator.used_count == 1  # the root
        before = allocator.snapshot()
        with pytest.raises(OutOfMemoryError):
            table.map_page(3 * PAGE, 9 * PAGE, pte.leaf_flags())
        assert allocator.snapshot() == before
        assert allocator.used_count == 1

    def test_unwound_parent_entries_are_cleared(self):
        phys, allocator, table = make_table(2)
        with pytest.raises(OutOfMemoryError):
            table.map_page(3 * PAGE, 9 * PAGE, pte.leaf_flags())
        # The root must hold no present entries afterwards.
        for index in range(TINY.entries_per_table):
            assert not pte.pte_is_present(
                table.read_entry(table.root_frame, index))

    def test_unwound_frames_are_scrubbed(self):
        phys, allocator, table = make_table(2)
        with pytest.raises(OutOfMemoryError):
            table.map_page(3 * PAGE, 9 * PAGE, pte.leaf_flags())
        spare = allocator.base + 1
        base = TINY.frame_base(spare)
        for offset in range(TINY.words_per_page):
            assert phys.read_word(base + offset * 8) == 0

    def test_success_after_recovered_failure(self):
        # After the unwind, a shallower mapping (one intermediate) must
        # still succeed with the recovered frame.
        phys, allocator, table = make_table(2, allow_huge=True)
        with pytest.raises(OutOfMemoryError):
            table.map_page(3 * PAGE, 9 * PAGE, pte.leaf_flags())
        table.map_huge(0, 0, 3, pte.leaf_flags())
        assert table.query(0) is not None

    def test_map_huge_unwinds_too(self):
        # Two intermediates needed (levels 4 -> 3 -> 2), one spare: the
        # first allocation succeeds, the second dies, both come back.
        phys, allocator, table = make_table(2, allow_huge=True)
        before = allocator.snapshot()
        with pytest.raises(OutOfMemoryError):
            table.map_huge(0, 0, 2, pte.leaf_flags())
        assert allocator.snapshot() == before


class TestInjectedWriteFaultUnwind:
    def _fail_nth_write(self, index):
        phys, allocator, table = make_table(8)
        before = allocator.snapshot()
        plane = FaultPlane().arm(SITE_PHYS_WRITE, index=index)
        with installed(plane):
            with pytest.raises(FaultInjected):
                table.map_page(3 * PAGE, 9 * PAGE, pte.leaf_flags())
        assert allocator.snapshot() == before
        return table

    def test_write_fault_at_every_step_leaks_nothing(self):
        # A fresh 4-level mapping performs one entry write per created
        # intermediate plus the terminal: sweep them all.
        phys, allocator, table = make_table(8)
        plane = FaultPlane(record_only=True)
        with installed(plane):
            table.map_page(3 * PAGE, 9 * PAGE, pte.leaf_flags())
        writes = plane.counts[SITE_PHYS_WRITE]
        assert writes >= TINY.levels  # 3 intermediates + 1 terminal
        for index in range(writes):
            self._fail_nth_write(index)

    def test_table_still_usable_after_unwind(self):
        table = self._fail_nth_write(1)
        table.map_page(3 * PAGE, 9 * PAGE, pte.leaf_flags())
        assert table.translate(3 * PAGE) == 9 * PAGE
