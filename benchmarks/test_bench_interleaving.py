"""The multi-vCPU interleaving campaign, rendered as an artifact.

Four sweeps make up the concurrency table:

1. the full bounded-preemption exploration of :class:`RustMonitor` —
   every explored schedule checked against all invariant families, the
   per-vCPU consistency check, and the two-world noninterference
   re-run (expected all-green),
2. the same sweep over :class:`MissingLockMonitor` (expected: the
   lock-discipline checker convicts it),
3. the same sweep over :class:`NoShootdownMonitor` (expected: the
   stale-translation detector convicts it — and only off the root
   schedule, because the race needs a preemption),
4. the crash-in-critical-section campaign — a vCPU killed at every
   yield point taken while holding locks, with rollback, lock release,
   and invariants verified each time (expected all-green).
"""

import time

from repro.faults import (
    crash_in_critical_section_campaign,
    interleaving_campaign,
)
from repro.hyperenclave.buggy import MissingLockMonitor, NoShootdownMonitor


def timed(fn, *args, **kwargs):
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def test_bench_interleaving_campaign(emit):
    rust, rust_secs = timed(interleaving_campaign, check_ni=True)
    missing, missing_secs = timed(
        interleaving_campaign, MissingLockMonitor, check_ni=False)
    noshoot, noshoot_secs = timed(
        interleaving_campaign, NoShootdownMonitor, check_ni=False)
    crash, crash_secs = timed(crash_in_critical_section_campaign)

    def convicted(result):
        return ", ".join(f"{len(items)} {kind}"
                         for kind, items in sorted(result.by_kind().items()))

    first_stale = noshoot.by_kind()["stale-translation"][0]
    sections = [
        "Bounded-preemption interleaving campaign "
        "(2 vCPUs, management core vs application core)",
        "",
        f"RustMonitor: {rust.summary()}",
        "  checks per schedule: lock discipline, stale-translation "
        "probe at every decision,",
        "  all invariant families, per-vCPU consistency, two-world "
        "noninterference (41 vs 42)",
        f"  elapsed: {rust_secs:.2f}s",
        "",
        f"MissingLockMonitor: {missing.summary()}",
        f"  convicted by: {convicted(missing)}",
        f"  elapsed: {missing_secs:.2f}s",
        "",
        f"NoShootdownMonitor: {noshoot.summary()}",
        f"  convicted by: {convicted(noshoot)}",
        f"  first witness: {first_stale}",
        f"  elapsed: {noshoot_secs:.2f}s",
        "",
        crash.render(),
        f"elapsed: {crash_secs:.2f}s",
    ]
    emit("interleaving_campaign", "\n".join(sections))

    assert rust.ok, rust.summary()
    assert rust.preemption_bound >= 2 and not rust.truncated
    assert "lock-protocol" in missing.by_kind()
    assert "stale-translation" in noshoot.by_kind()
    assert all(v.schedule.preemptions
               for v in noshoot.by_kind()["stale-translation"])
    assert crash.ok, crash.render()
