"""Path-forking symbolic execution of mirlight's pure fragment.

Scope: functions whose variables are all *temporaries* (no address-taken
locals, no global state) — per Sec. 3.2 this covers 65 of the 77
functions of the paper's memory module, including the bit-twiddling
page-table-entry layer where symbolic checking earns its keep.  Anything
outside the fragment raises :class:`SymbolicUnsupported` and the caller
falls back to co-simulation over enumerated inputs.

The executor forks at every ``switchInt``, carries a path condition of
boolean terms, and emits an :class:`Obligation` for every ``assert`` and
every symbolic divisor.  Drivers:

* :func:`verify_assertions` — bounded proof that no path can panic,
* :func:`check_equivalence` — exhaustive bounded equivalence of a MIR
  function against a Python reference (organised path-by-path),
* :func:`path_coverage_inputs` — one concrete witness per feasible path
  (a path-complete test vector generator).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import fastpath
from repro.errors import MirError, MirRuntimeError
from repro.mir import ast
from repro.mir.compile import block_plan
from repro.mir.ast import BinOp, CastKind, UnOp
from repro.mir.value import (
    Aggregate,
    BoolValue,
    FnValue,
    IntValue,
    StrValue,
    UnitValue,
    Value,
    mk_bool,
    mk_int,
)
from repro.symbolic.solver import (
    Domains, check_sat, enumerate_models, must_hold, prune_domains)
from repro.symbolic.terms import (
    App,
    Const,
    SymVar,
    Term,
    boolean,
    bv,
    compile_evaluator,
    evaluate,
    simplify,
)


class SymbolicUnsupported(MirError):
    """The function leaves the pure fragment (memory, pointers, globals)."""


@dataclass(frozen=True)
class SymAggregate:
    """A struct/enum value whose leaves may be symbolic terms.

    The discriminant is always concrete: the corpus never computes a
    discriminant symbolically (matches fork on switchInt instead).
    """

    discriminant: int
    fields: Tuple[object, ...]

    def field(self, index):
        return self.fields[index]

    def with_field(self, index, value):
        return SymAggregate(
            self.discriminant,
            self.fields[:index] + (value,) + self.fields[index + 1:])


@dataclass(frozen=True)
class Obligation:
    """One proof obligation: under ``pathcond``, ``prop`` must hold."""

    kind: str           # "assert" | "div-by-zero" | "bounds"
    message: str
    function: str
    block: str
    pathcond: Tuple[Term, ...]
    prop: Term


@dataclass
class PathResult:
    """One fully-explored execution path."""

    pathcond: Tuple[Term, ...]
    ret: object
    steps: int


_BINOP_NAME = {
    BinOp.ADD: "add", BinOp.SUB: "sub", BinOp.MUL: "mul",
    BinOp.DIV: "div", BinOp.REM: "rem",
    BinOp.BITAND: "band", BinOp.BITOR: "bor", BinOp.BITXOR: "bxor",
    BinOp.SHL: "shl", BinOp.SHR: "shr",
    BinOp.EQ: "eq", BinOp.NE: "ne", BinOp.LT: "lt",
    BinOp.LE: "le", BinOp.GT: "gt", BinOp.GE: "ge",
}

_CMP_OPS = frozenset({BinOp.EQ, BinOp.NE, BinOp.LT,
                      BinOp.LE, BinOp.GT, BinOp.GE})


@dataclass
class _PathState:
    env: Dict[str, object]
    block: str
    stmt_index: int
    pathcond: Tuple[Term, ...]
    steps: int
    # Incremental solving (fast path only): the executor's domains
    # pre-pruned by this path's condition.  Pruning is intersective,
    # idempotent and order-independent, so narrowing the parent's
    # already-pruned domains with just the branch constraint added at a
    # fork equals re-pruning the full pathcond from scratch — each fork
    # pays O(1) constraints instead of O(len(pathcond)).
    domains: Optional[Domains] = None


class SymExecutor:
    """Symbolically executes one function of a program."""

    def __init__(self, program, max_steps_per_path=20_000, max_paths=4096,
                 domains: Optional[Domains] = None, max_inline_depth=32,
                 budget=None):
        self.program = program
        self.max_steps_per_path = max_steps_per_path
        self.max_paths = max_paths
        self.domains = domains  # enables feasibility pruning at forks
        self.max_inline_depth = max_inline_depth
        self.budget = budget  # raises CheckBudgetExceeded when exhausted
        self.obligations: List[Obligation] = []
        # Snapshot the fast-path switch: incremental domain threading is
        # decided once per executor, not mid-run.
        self._fast = fastpath.enabled()

    # -- public API --------------------------------------------------------------

    def run(self, fn_name, args) -> List[PathResult]:
        """Explore every path of ``fn_name`` applied to symbolic ``args``."""
        self.obligations = []
        return self._run_function(fn_name, tuple(args), pathcond=(),
                                  depth=0, steps=0, pruned=self.domains)

    # -- function-level recursion ----------------------------------------------------

    def _run_function(self, fn_name, args, pathcond, depth, steps,
                      pruned=None):
        if depth > self.max_inline_depth:
            raise SymbolicUnsupported(
                f"inlining depth exceeded at {fn_name} (recursion?)")
        try:
            function = self.program.functions[fn_name]
        except KeyError:
            raise SymbolicUnsupported(
                f"call to unknown/unregistered function {fn_name!r}")
        if function.locals_:
            raise SymbolicUnsupported(
                f"{fn_name} has memory-allocated locals "
                f"{sorted(function.locals_)}; outside the pure fragment")
        if len(args) != len(function.params):
            raise MirRuntimeError(
                f"{fn_name}: arity mismatch ({len(args)} args, "
                f"{len(function.params)} params)")
        env = dict(zip(function.params, args))
        initial = _PathState(env=env, block=function.entry, stmt_index=0,
                             pathcond=pathcond, steps=steps,
                             domains=pruned if pruned is not None
                             else self.domains)
        worklist = [initial]
        results = []
        while worklist:
            if len(results) + len(worklist) > self.max_paths:
                raise SymbolicUnsupported(
                    f"{fn_name}: path explosion beyond {self.max_paths}")
            state = worklist.pop()
            outcome = self._run_path(function, state, depth)
            results.extend(outcome[0])
            worklist.extend(outcome[1])
        return results

    def _run_path(self, function, state, depth):
        """Advance one path until return or fork.

        Returns ``(finished PathResults, forked _PathStates)``.
        """
        plan = block_plan(function)
        while True:
            state.steps += 1
            if self.budget is not None:
                self.budget.spend(1, what=f"symbolic step in "
                                          f"{function.name}")
            if state.steps > self.max_steps_per_path:
                raise SymbolicUnsupported(
                    f"{function.name}: exceeded {self.max_steps_per_path} "
                    f"steps on one path (unbounded loop?)")
            statements, term, count = plan[state.block]
            if state.stmt_index < count:
                self._exec_statement(function, state,
                                     statements[state.stmt_index])
                state.stmt_index += 1
                continue
            if isinstance(term, ast.Goto):
                state.block, state.stmt_index = term.target, 0
                continue
            if isinstance(term, ast.Drop):
                state.block, state.stmt_index = term.target, 0
                continue
            if isinstance(term, ast.Return):
                ret = state.env.get(function.RETURN_VAR, UnitValue())
                return [PathResult(state.pathcond, ret, state.steps)], []
            if isinstance(term, ast.Assert):
                self._exec_assert(function, state, term)
                continue
            if isinstance(term, ast.SwitchInt):
                return [], self._fork_switch(function, state, term)
            if isinstance(term, ast.Call):
                finished, forks = self._exec_call(function, state, term, depth)
                if finished is None:
                    continue  # inlined call merged back into this path
                return finished, forks
            raise SymbolicUnsupported(f"unsupported terminator {term!r}")

    # -- statements ----------------------------------------------------------------------

    def _exec_statement(self, function, state, stmt):
        if isinstance(stmt, ast.Assign):
            value = self._eval_rvalue(function, state, stmt.rvalue)
            self._write_place(state, stmt.place, value)
        elif isinstance(stmt, ast.SetDiscriminant):
            current = self._read_place(state, stmt.place)
            if not isinstance(current, SymAggregate):
                raise SymbolicUnsupported("SetDiscriminant on non-aggregate")
            self._write_place(state, stmt.place,
                              SymAggregate(stmt.variant, current.fields))
        elif isinstance(stmt, (ast.StorageLive, ast.StorageDead, ast.Nop)):
            pass
        else:
            raise SymbolicUnsupported(f"unsupported statement {stmt!r}")

    # -- terminator helpers ------------------------------------------------------------------

    def _exec_assert(self, function, state, term):
        cond = self._as_bool_term(
            self._eval_operand(function, state, term.cond))
        prop = cond if term.expected else simplify("not", (cond,), None)
        self.obligations.append(Obligation(
            kind="assert", message=term.msg, function=function.name,
            block=state.block, pathcond=state.pathcond, prop=prop))
        state.pathcond = state.pathcond + (prop,)
        state.domains = self._narrow(state.domains, (prop,))
        state.block, state.stmt_index = term.target, 0

    def _fork_switch(self, function, state, term):
        scrutinee = self._eval_operand(function, state, term.operand)
        term_value = self._as_int_or_bool_term(scrutinee)
        if isinstance(term_value, Const):
            concrete = int(term_value.value)
            for value, label in term.targets:
                if concrete == value:
                    return [self._continue_at(state, label, state.pathcond)]
            return [self._continue_at(state, term.otherwise, state.pathcond)]
        forks = []
        negations = []
        for value, label in term.targets:
            test = simplify("eq", (term_value, _const_like(term_value, value)),
                            None)
            cond = state.pathcond + (test,)
            narrowed = self._narrow(state.domains, (test,))
            if self._feasible(cond, narrowed):
                forks.append(self._continue_at(state, label, cond, narrowed))
            negations.append(simplify("not", (test,), None))
        otherwise_cond = state.pathcond + tuple(negations)
        narrowed = self._narrow(state.domains, negations)
        if self._feasible(otherwise_cond, narrowed):
            forks.append(self._continue_at(state, term.otherwise,
                                           otherwise_cond, narrowed))
        return forks

    def _continue_at(self, state, label, pathcond, domains=None):
        return _PathState(env=dict(state.env), block=label, stmt_index=0,
                          pathcond=pathcond, steps=state.steps,
                          domains=domains if domains is not None
                          else state.domains)

    def _narrow(self, domains, constraints):
        """Incrementally prune ``domains`` with freshly-added constraints
        (fast path only — the naive baseline re-prunes at solve time)."""
        if not self._fast or domains is None or not constraints:
            return domains
        return prune_domains(constraints, domains)

    def _feasible(self, pathcond, pruned=None):
        if self.domains is None:
            return True  # no pruning; infeasible paths die at solve time
        domains = pruned if (self._fast and pruned is not None) \
            else self.domains
        try:
            return check_sat(pathcond, domains) is not None
        except (KeyError, OverflowError):
            return True

    def _exec_call(self, function, state, term, depth):
        if not isinstance(term.func, ast.Constant) or not isinstance(
                term.func.value, FnValue):
            raise SymbolicUnsupported("indirect call in symbolic execution")
        callee = term.func.value.name
        args = tuple(self._eval_operand(function, state, a)
                     for a in term.args)
        base_len = len(state.pathcond)
        sub_results = self._run_function(callee, args, state.pathcond,
                                         depth + 1, state.steps,
                                         pruned=state.domains)
        if len(sub_results) == 1:
            # Common fast path: merge straight back into the current path.
            only = sub_results[0]
            state.pathcond = only.pathcond
            state.domains = self._narrow(state.domains,
                                         only.pathcond[base_len:])
            state.steps = only.steps
            self._write_place(state, term.dest, only.ret)
            state.block, state.stmt_index = term.target, 0
            return None, []
        forks = []
        for sub in sub_results:
            forked = self._continue_at(
                state, term.target, sub.pathcond,
                self._narrow(state.domains, sub.pathcond[base_len:]))
            forked.steps = sub.steps
            self._write_place(forked, term.dest, sub.ret)
            forks.append(forked)
        return [], forks

    # -- places -------------------------------------------------------------------------------

    def _read_place(self, state, place):
        try:
            value = state.env[place.var]
        except KeyError:
            raise SymbolicUnsupported(
                f"read of {place.var!r}: globals/locals are outside the "
                f"pure fragment")
        for proj in place.projections:
            value = self._project_read(value, proj, state)
        return value

    def _project_read(self, value, proj, state):
        if isinstance(proj, ast.FieldProj) or isinstance(
                proj, ast.ConstantIndex):
            if not isinstance(value, SymAggregate):
                raise SymbolicUnsupported(
                    f"projection {proj} on non-aggregate {value!r}")
            return value.field(proj.index)
        if isinstance(proj, ast.Downcast):
            if not isinstance(value, SymAggregate):
                raise SymbolicUnsupported("downcast on non-aggregate")
            if value.discriminant != proj.variant:
                raise MirRuntimeError(
                    f"downcast to variant {proj.variant}, live "
                    f"{value.discriminant}")
            return value
        if isinstance(proj, ast.IndexProj):
            index = self._as_int_or_bool_term(state.env[proj.var])
            if isinstance(index, Const):
                if not isinstance(value, SymAggregate):
                    raise SymbolicUnsupported("index on non-aggregate")
                return value.field(int(index.value))
            raise SymbolicUnsupported(
                "symbolic array index (enumerate inputs instead)")
        if isinstance(proj, ast.Deref):
            raise SymbolicUnsupported(
                "pointer dereference is outside the pure fragment")
        raise SymbolicUnsupported(f"unsupported projection {proj!r}")

    def _write_place(self, state, place, value):
        if place.is_bare:
            state.env[place.var] = value
            return
        indices = []
        for proj in place.projections:
            if isinstance(proj, (ast.FieldProj, ast.ConstantIndex)):
                indices.append(proj.index)
            elif isinstance(proj, ast.IndexProj):
                index = self._as_int_or_bool_term(state.env[proj.var])
                if not isinstance(index, Const):
                    raise SymbolicUnsupported("symbolic index write")
                indices.append(int(index.value))
            elif isinstance(proj, ast.Downcast):
                continue
            else:
                raise SymbolicUnsupported(
                    f"unsupported write projection {proj!r}")
        root = state.env.get(place.var)
        state.env[place.var] = _update_sym(root, tuple(indices), value)

    # -- rvalues --------------------------------------------------------------------------------

    def _eval_operand(self, function, state, operand):
        if isinstance(operand, (ast.Copy, ast.Move)):
            return self._read_place(state, operand.place)
        if isinstance(operand, ast.Constant):
            return _lift_value(operand.value)
        raise SymbolicUnsupported(f"unsupported operand {operand!r}")

    def _eval_rvalue(self, function, state, rvalue):
        if isinstance(rvalue, ast.Use):
            return self._eval_operand(function, state, rvalue.operand)
        if isinstance(rvalue, ast.BinaryOp):
            return self._binop(function, state, rvalue.op,
                               rvalue.left, rvalue.right)
        if isinstance(rvalue, ast.CheckedBinaryOp):
            left = self._as_int_term(
                self._eval_operand(function, state, rvalue.left))
            right = self._as_int_term(
                self._eval_operand(function, state, rvalue.right))
            wrapped = simplify(_BINOP_NAME[rvalue.op], (left, right), left.ty)
            overflow = _overflow_term(rvalue.op, left, right)
            return SymAggregate(0, (wrapped, overflow))
        if isinstance(rvalue, ast.UnaryOp):
            operand = self._eval_operand(function, state, rvalue.operand)
            if rvalue.op is UnOp.NOT:
                as_term = self._as_int_or_bool_term(operand)
                if as_term.ty is None:
                    return simplify("not", (as_term,), None)
                return simplify("bnot", (as_term,), as_term.ty)
            as_term = self._as_int_term(operand)
            return simplify("neg", (as_term,), as_term.ty)
        if isinstance(rvalue, ast.Cast):
            operand = self._eval_operand(function, state, rvalue.operand)
            if rvalue.kind is CastKind.BOOL_TO_INT:
                cond = self._as_bool_term(operand)
                return simplify("ite", (cond, bv(1, rvalue.ty),
                                        bv(0, rvalue.ty)), rvalue.ty)
            if rvalue.kind is CastKind.INT_TO_INT:
                term = self._as_int_term(operand)
                return _retype(term, rvalue.ty)
            raise SymbolicUnsupported(
                f"cast kind {rvalue.kind} outside pure fragment")
        if isinstance(rvalue, ast.AggregateRv):
            fields = tuple(self._eval_operand(function, state, o)
                           for o in rvalue.operands)
            disc = (rvalue.variant
                    if rvalue.kind is ast.AggregateKind.VARIANT else 0)
            return SymAggregate(disc, fields)
        if isinstance(rvalue, ast.Repeat):
            element = self._eval_operand(function, state, rvalue.operand)
            return SymAggregate(0, (element,) * rvalue.count)
        if isinstance(rvalue, ast.Len):
            value = self._read_place(state, rvalue.place)
            if not isinstance(value, SymAggregate):
                raise SymbolicUnsupported("Len of non-aggregate")
            return bv(len(value.fields))
        if isinstance(rvalue, ast.Discriminant):
            value = self._read_place(state, rvalue.place)
            if not isinstance(value, SymAggregate):
                raise SymbolicUnsupported("discriminant of non-aggregate")
            return bv(value.discriminant)
        if isinstance(rvalue, (ast.Ref, ast.AddressOf)):
            raise SymbolicUnsupported(
                "address-taking is outside the pure fragment")
        raise SymbolicUnsupported(f"unsupported rvalue {rvalue!r}")

    def _binop(self, function, state, op, left_op, right_op):
        left = self._eval_operand(function, state, left_op)
        right = self._eval_operand(function, state, right_op)
        if op in _CMP_OPS:
            lterm = self._as_int_or_bool_term(left)
            rterm = self._as_int_or_bool_term(right)
            if lterm.ty is None:
                # bool comparison: encode as ite over eq of 0/1
                lterm = simplify("ite", (lterm, bv(1), bv(0)), bv(0).ty)
            if rterm.ty is None:
                rterm = simplify("ite", (rterm, bv(1), bv(0)), bv(0).ty)
            return simplify(_BINOP_NAME[op], (lterm, rterm), None)
        lterm = self._as_int_term(left)
        rterm = self._as_int_term(right)
        if op in (BinOp.DIV, BinOp.REM) and not isinstance(rterm, Const):
            nonzero = simplify("ne", (rterm, bv(0, rterm.ty)), None)
            self.obligations.append(Obligation(
                kind="div-by-zero",
                message=f"divisor may be zero in {op.value}",
                function=function.name, block="?",
                pathcond=tuple(), prop=nonzero))
        return simplify(_BINOP_NAME[op], (lterm, rterm), lterm.ty)

    # -- coercions ----------------------------------------------------------------------------------

    def _as_int_term(self, value):
        term = self._as_int_or_bool_term(value)
        if term.ty is None:
            raise SymbolicUnsupported(f"expected integer term, got bool")
        return term

    def _as_bool_term(self, value):
        term = self._as_int_or_bool_term(value)
        if term.ty is None:
            return term
        return simplify("ne", (term, bv(0, term.ty)), None)

    def _as_int_or_bool_term(self, value):
        if isinstance(value, Term):
            return value
        if isinstance(value, IntValue):
            return Const(value.value, value.ty)
        if isinstance(value, BoolValue):
            return boolean(value.value)
        raise SymbolicUnsupported(
            f"value {value!r} has no term representation")


# ---------------------------------------------------------------------------
# Support
# ---------------------------------------------------------------------------


def _lift_value(value):
    """Concrete Value -> symbolic representation."""
    if isinstance(value, IntValue):
        return Const(value.value, value.ty)
    if isinstance(value, BoolValue):
        return boolean(value.value)
    if isinstance(value, Aggregate):
        return SymAggregate(value.discriminant,
                            tuple(_lift_value(f) for f in value.fields))
    if isinstance(value, (UnitValue, StrValue, FnValue)):
        return value
    raise SymbolicUnsupported(f"cannot lift {value!r} into a term")


def lower_value(sym, model):
    """Symbolic representation + model -> concrete Value."""
    if isinstance(sym, Term):
        if fastpath._ENABLED:
            fn = compile_evaluator(sym)
            result = fn(model) if fn is not None else evaluate(sym, model)
        else:
            result = evaluate(sym, model)
        if sym.ty is None:
            return mk_bool(result)
        return mk_int(result, sym.ty)
    if isinstance(sym, SymAggregate):
        return Aggregate(sym.discriminant,
                         tuple(lower_value(f, model) for f in sym.fields))
    if isinstance(sym, Value):
        return sym
    raise SymbolicUnsupported(f"cannot lower {sym!r}")


def _update_sym(root, indices, value):
    if not indices:
        return value
    if not isinstance(root, SymAggregate):
        raise SymbolicUnsupported("projected write into non-aggregate")
    head, rest = indices[0], indices[1:]
    return root.with_field(head, _update_sym(root.field(head), rest, value))


def _const_like(term, value):
    return bv(value, term.ty) if term.ty is not None else boolean(bool(value))


def _retype(term, ty):
    if isinstance(term, Const):
        return bv(term.value, ty)
    # Casting is a masking operation: band with the mask, tagged at new ty.
    mask = bv((1 << ty.width) - 1, ty)
    widened = App("band", (term, mask), ty)
    return widened


def _overflow_term(op, left, right):
    """Boolean term: does ``left op right`` overflow its type?

    Exact for the unsigned types the corpus uses (signed arithmetic in
    the corpus is confined to trusted code).
    """
    ty = left.ty
    if op is BinOp.ADD:
        wide = App("add", (left, right), ty)
        # Unsigned overflow iff wrapped sum < left.
        return simplify("lt", (wide, left), None)
    if op is BinOp.SUB:
        return simplify("lt", (left, right), None)
    if op is BinOp.MUL:
        # Fall back: wrapped != unbounded is not expressible; check via
        # division when the rhs is nonzero constant.
        if isinstance(right, Const) and right.value not in (0,):
            limit = bv(((1 << ty.width) - 1) // right.value, ty)
            return simplify("gt", (left, limit), None)
        if isinstance(right, Const):
            return boolean(False)
        return App("mul_overflows", (left, right), None)
    if op in (BinOp.SHL, BinOp.SHR):
        width = bv(ty.width, right.ty)
        return simplify("ge", (right, width), None)
    return boolean(False)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def _symbolic_args(function, domains):
    """One SymVar per parameter, typed from var_tys (default u64)."""
    from repro.mir.types import U64
    args = []
    for param in function.params:
        ty = function.var_tys.get(param, U64)
        args.append(SymVar(param, ty if hasattr(ty, "width") else U64))
    return tuple(args)


def verify_assertions(program, fn_name, domains, budget=None):
    """Bounded proof that no assertion can fail.

    Returns ``(verified: bool, failures: [(Obligation, countermodel)])``.
    ``budget`` (a :class:`repro.budget.Budget`) bounds both the symbolic
    exploration and the solver work; exhaustion raises
    :class:`~repro.errors.CheckBudgetExceeded`.
    """
    executor = SymExecutor(program, domains=domains, budget=budget)
    function = program.functions[fn_name]
    executor.run(fn_name, _symbolic_args(function, domains))
    failures = []
    for obligation in executor.obligations:
        if budget is not None:
            budget.spend(1, what=f"obligation in {fn_name}")
        try:
            holds, countermodel = must_hold(obligation.prop,
                                            obligation.pathcond, domains)
        except (KeyError, OverflowError) as exc:
            raise SymbolicUnsupported(
                f"cannot discharge obligation in {fn_name}: {exc}")
        if not holds:
            failures.append((obligation, countermodel))
    return not failures, failures


def check_equivalence(program, fn_name, reference, domains,
                      ret_relation=None, budget=None):
    """Exhaustive bounded equivalence of MIR code against a reference.

    ``reference(*concrete_args) -> Value`` is the Python model.  Every
    feasible path's input cell is enumerated; mismatches are returned as
    ``(model, mir_value, reference_value)`` triples.  The union of the
    path cells is the whole (bounded) input space, so an empty mismatch
    list is an exhaustive bounded-equivalence certificate.  ``budget``
    bounds exploration plus one unit per enumerated model cell.
    """
    executor = SymExecutor(program, domains=domains, budget=budget)
    function = program.functions[fn_name]
    sym_args = _symbolic_args(function, domains)
    paths = executor.run(fn_name, sym_args)
    compare = ret_relation or (lambda a, b: a == b)
    param_names = tuple(a.name for a in sym_args if isinstance(a, SymVar))
    mismatches = []
    cells = 0
    for path in paths:
        for model in enumerate_models(path.pathcond, domains,
                                      required_vars=param_names):
            if budget is not None:
                budget.spend(1, what=f"model cell of {fn_name}")
            full_model = _complete_model(model, sym_args, domains)
            cells += 1
            mir_value = lower_value(path.ret, full_model)
            concrete_args = [lower_value(a, full_model) for a in sym_args]
            ref_value = reference(*concrete_args)
            if not compare(mir_value, ref_value):
                mismatches.append((full_model, mir_value, ref_value))
    return mismatches, {"paths": len(paths), "cells": cells}


def path_coverage_inputs(program, fn_name, domains, budget=None):
    """One concrete input per feasible path — a path-complete test vector."""
    executor = SymExecutor(program, domains=domains, budget=budget)
    function = program.functions[fn_name]
    sym_args = _symbolic_args(function, domains)
    paths = executor.run(fn_name, sym_args)
    witnesses = []
    for path in paths:
        if budget is not None:
            budget.spend(1, what=f"path witness of {fn_name}")
        model = check_sat(path.pathcond, domains)
        if model is None:
            continue
        full_model = _complete_model(model, sym_args, domains)
        witnesses.append(
            tuple(lower_value(a, full_model) for a in sym_args))
    return witnesses


def _complete_model(model, sym_args, domains):
    """Extend a partial model to bind every parameter (unconstrained
    parameters take the first domain value)."""
    completed = dict(model)
    for arg in sym_args:
        if isinstance(arg, SymVar) and arg.name not in completed:
            domain = domains.of(arg.name)
            completed[arg.name] = domain[0]
    return completed
