"""Worker-side unit runners for the sharded executor.

Each function here takes one small picklable ``unit`` dict and returns
a picklable result; the executor addresses them by dotted path
(``repro.engine.workers:run_interleaving_unit``) because the campaign
closures themselves do not pickle.  Heavyweight context lives in
per-process module globals, built once per worker and reused across
every unit the worker's shards carry:

* :data:`MEMO` — the process's :class:`~repro.engine.memo.CheckMemo`;
  the executor returns its counter deltas with every shard.
* world prototypes — :func:`~repro.faults.campaign.build_interleaved_world`
  output cached per ``(monitor, config, secret)``; each schedule then
  starts from a :meth:`~repro.security.state.SystemState.clone` (~20x
  cheaper than a fresh boot, and byte-identical to one by the clone
  layer's contract).
* world factories / workloads / mir models — resolved and cached per
  dotted path.

The unit runners reuse the *same* per-unit helpers the sequential
campaigns run (:func:`~repro.faults.campaign.run_crash_step_unit` and
friends), so sequential/parallel equivalence is structural, not
re-implemented.
"""

from repro.engine.executor import resolve_callable
from repro.engine.memo import CheckMemo

# One memo per worker process (and one in the parent for in-process
# runs); the executor snapshots its stats around every shard.
MEMO = CheckMemo()

_PROTOTYPES = {}        # (monitor path, config repr, secret) -> (state, ctx)
_FACTORIES = {}         # (maker path, args repr) -> world factory
_WORKLOADS = {}         # workload path -> [(name, invoke)]
_MODELS = {}            # config repr -> mir corpus model


def _resolve_cls(path):
    return resolve_callable(path) if path else None


def _interleaved_prototype(monitor_path, config, secret):
    """The cached ``(state, ctx)`` prototype for one world flavour
    (built on first use per worker; never executed directly)."""
    from repro.faults.campaign import build_interleaved_world
    key = (monitor_path, repr(config), secret)
    if key not in _PROTOTYPES:
        _PROTOTYPES[key] = build_interleaved_world(
            _resolve_cls(monitor_path), config, secret=secret)
    return _PROTOTYPES[key]


def _interleaved_world(monitor_path, config, secret):
    """A fresh interleaved-campaign world, cloned from a cached
    prototype (built on first use per worker)."""
    state, ctx = _interleaved_prototype(monitor_path, config, secret)
    return state.clone(), dict(ctx)


def _interleaved_run_world(monitor_path, config):
    """A prototype-backed ``run_world(secret, schedule)`` using the
    scheduler's inline-handoff fast path."""
    from repro.faults.campaign import execute_interleaved

    def run_world(secret, schedule):
        state, ctx = _interleaved_world(monitor_path, config, secret)
        return execute_interleaved(state, ctx, schedule,
                                   fast_handoff=True)

    return run_world


def _execute_cached(monitor_path, config, secret, schedule):
    """One schedule through this process's snapshot tree.

    The tree key space is world-scoped — monitor class, config, secret,
    plus the schedule's (seed, crash) — so the secret-41 primary runs
    and the secret-42 noninterference re-runs each warm their own
    subtree on the same worker (unit-level sharding keeps both here).
    """
    from repro.concurrency.snapshot import process_tree
    from repro.faults.campaign import execute_interleaved_cached
    state, ctx = _interleaved_prototype(monitor_path, config, secret)
    world_key = (monitor_path, repr(config), secret, schedule.seed,
                 schedule.crash)
    return execute_interleaved_cached(state, dict(ctx), schedule,
                                      tree=process_tree(),
                                      world_key=world_key)


def _interleaved_run_world_cached(monitor_path, config):
    """The snapshot-tree flavour of :func:`_interleaved_run_world`."""
    def run_world(secret, schedule):
        return _execute_cached(monitor_path, config, secret, schedule)

    return run_world


def _world_factory(maker_path, args):
    key = (maker_path, repr(args))
    if key not in _FACTORIES:
        _FACTORIES[key] = resolve_callable(maker_path)(*args)
    return _FACTORIES[key]


def _workload(path):
    if path not in _WORKLOADS:
        _WORKLOADS[path] = resolve_callable(path)()
    return _WORKLOADS[path]


def zero_clock():
    """A frozen clock: hardened-check budgets measured in wall-clock
    seconds read 0.0 everywhere, making ``budget_spent`` deterministic
    across workers (the equivalence suite's requirement)."""
    return 0.0


# ---------------------------------------------------------------------------
# Interleaving exploration
# ---------------------------------------------------------------------------


def run_interleaving_unit(unit):
    """One explored schedule: execute it, then run the full battery —
    memoised invariants, memoised vCPU consistency, and (``check_ni``)
    the schedule-NI re-run reusing this very execution as world A.

    Returns ``(RunResult, findings)`` for
    :func:`~repro.concurrency.explorer.explore_batched`; the findings
    are byte-identical to the sequential campaign's ``check`` hook.
    """
    from repro.engine.fingerprint import structure_fingerprints
    from repro.faults.campaign import execute_interleaved
    from repro.security.noninterference import (
        check_schedule_noninterference_prepared)

    monitor_path = unit.get("monitor")
    config = unit.get("config")
    use_cache = bool(unit.get("prefix_cache"))
    if use_cache:
        state, result = _execute_cached(monitor_path, config, 41,
                                        unit["schedule"])
    else:
        state, ctx = _interleaved_world(monitor_path, config, 41)
        state, result = execute_interleaved(state, ctx,
                                            unit["schedule"],
                                            fast_handoff=True)
    fps = structure_fingerprints(state.monitor)
    findings = []
    report = MEMO.check_invariants(state.monitor, fps)
    for family in report.violated_families():
        for item in report.violations[family]:
            findings.append(("invariant", f"[{family}] {item}"))
    for item in MEMO.check_vcpu(state.monitor, fps):
        findings.append(("vcpu-consistency", item))
    if unit.get("check_ni"):
        run_world = (_interleaved_run_world_cached(monitor_path, config)
                     if use_cache
                     else _interleaved_run_world(monitor_path, config))
        for violation in check_schedule_noninterference_prepared(
                state, result, run_world,
                unit["schedule"], list(unit["observers"]),
                diff=MEMO.final_state_diff):
            findings.append(("noninterference", str(violation)))
    return result, findings


# ---------------------------------------------------------------------------
# Fault campaigns
# ---------------------------------------------------------------------------


def run_crash_step_unit(unit):
    """One ``(hypercall, site, step)`` crash-step execution."""
    from repro.faults.campaign import run_crash_step_unit as run_unit
    factory = _world_factory(unit["factory"],
                             unit.get("factory_args", ()))
    calls = _workload(unit["workload"])
    runner = unit.get("runner")
    return run_unit(factory, calls, unit["index"], unit["site"],
                    unit["kind"], unit["step"], seed=unit.get("seed", 0),
                    runner=resolve_callable(runner) if runner else None)


def run_bitflip_unit(unit):
    """One whole seeded bit-flip campaign (the per-seed unit keeps the
    cumulative-corruption semantics of the sequential run)."""
    from repro.faults.campaign import bitflip_campaign
    factory = _world_factory(unit["factory"],
                             unit.get("factory_args", ()))
    workload = unit.get("workload")
    calls = _workload(workload) if workload else ()
    return bitflip_campaign(factory, calls,
                            flips=unit.get("flips", 64),
                            seed=unit.get("seed", 0))


def run_crash_ni_unit(unit):
    """All crash-NI runs of one trace step (list of RunRecords)."""
    from repro.faults.campaign import (
        default_ni_trace,
        run_crash_ni_index,
    )
    factory = _world_factory(unit["factory"],
                             unit.get("factory_args", ()))
    trace = unit.get("trace")
    if trace is None:
        worlds, eid = factory()
        trace = default_ni_trace(eid, worlds.a.monitor.config.page_size)
    return run_crash_ni_index(
        factory, trace, unit["index"], sites=tuple(unit["sites"]),
        observers=list(unit["observers"]), seed=unit.get("seed", 0))


def run_crash_point_unit(unit):
    """One crash delivered at one critical-section yield point."""
    from repro.faults.campaign import crash_point_record
    run_world = _interleaved_run_world(unit.get("monitor"),
                                       unit.get("config"))
    return crash_point_record(run_world, unit["point"],
                              seed=unit.get("seed", 0))


# ---------------------------------------------------------------------------
# Hardened pure-check grid
# ---------------------------------------------------------------------------


def run_pure_check_unit(unit):
    """One hardened pure-domain check under its budget slice."""
    from repro.verification.harness import check_pure_hardened

    config_key = repr(unit.get("config"))
    if config_key not in _MODELS:
        from repro.hyperenclave.constants import TINY
        from repro.hyperenclave.mir_model import build_model
        _MODELS[config_key] = build_model(unit.get("config") or TINY)
    model = _MODELS[config_key]
    return check_pure_hardened(
        model, unit["name"],
        max_steps=unit.get("max_steps"),
        max_seconds=unit.get("max_seconds"),
        seed=unit.get("seed", 0),
        sample_count=unit.get("sample_count", 128),
        max_exhaustive=unit.get("max_exhaustive", 4096),
        clock=zero_clock if unit.get("fake_clock") else None)


# ---------------------------------------------------------------------------
# Planted-bug matrix
# ---------------------------------------------------------------------------


def run_bug_matrix_unit(unit):
    """One planted-bug conviction: ``(bug name, detected, how)``."""
    from repro.engine.bug_matrix import run_case
    from repro.hyperenclave.constants import ARCH_CONFIGS
    config_name = unit.get("config")
    config = ARCH_CONFIGS[config_name] if config_name else None
    return run_case(unit["case"],
                    memo=MEMO if unit.get("memo") else None,
                    config=config)
