"""EREMOVE (hc_remove_page): recovery from partially-built enclaves."""

import pytest

from repro.errors import HypercallError, InvariantViolation, TranslationFault
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import RustMonitor
from repro.security import assert_invariants, check_all_invariants

PAGE = TINY.page_size


@pytest.fixture
def created_enclave(monitor):
    primary_os = monitor.primary_os
    src = TINY.frame_base(primary_os.reserve_data_frame())
    primary_os.gpa_write_word(src, 0x5EC)
    mbuf = TINY.frame_base(primary_os.reserve_data_frame())
    eid = monitor.hc_create(16 * PAGE, 2 * PAGE, 4 * PAGE, mbuf, PAGE)
    monitor.hc_add_page(eid, 16 * PAGE, src)
    return monitor, eid, src


class TestRemovePage:
    def test_remove_then_translate_faults(self, created_enclave):
        monitor, eid, _src = created_enclave
        monitor.hc_remove_page(eid, 16 * PAGE)
        with pytest.raises(TranslationFault):
            monitor.enclave_translate(eid, 16 * PAGE)

    def test_remove_scrubs_and_frees(self, created_enclave):
        monitor, eid, _src = created_enclave
        free_before = monitor.epcm.free_count()
        frame = monitor.hc_remove_page(eid, 16 * PAGE)
        assert monitor.epcm.entry_for_frame(frame).is_free()
        assert monitor.epcm.free_count() == free_before + 1
        assert monitor.phys.frame_words(frame) == \
            (0,) * TINY.words_per_page

    def test_remove_then_re_add(self, created_enclave):
        monitor, eid, src = created_enclave
        monitor.hc_remove_page(eid, 16 * PAGE)
        monitor.hc_add_page(eid, 16 * PAGE, src)
        monitor.hc_init(eid)
        assert monitor.enclave_load(eid, 16 * PAGE) == 0x5EC

    def test_remove_unknown_va_rejected(self, created_enclave):
        monitor, eid, _src = created_enclave
        with pytest.raises(HypercallError, match="no EPC page"):
            monitor.hc_remove_page(eid, 17 * PAGE)

    def test_remove_after_init_rejected(self, created_enclave):
        monitor, eid, _src = created_enclave
        monitor.hc_init(eid)
        with pytest.raises(HypercallError):
            monitor.hc_remove_page(eid, 16 * PAGE)

    def test_invariants_preserved_through_remove(self, created_enclave):
        monitor, eid, _src = created_enclave
        monitor.hc_remove_page(eid, 16 * PAGE)
        assert_invariants(monitor)  # raises on violation

    def test_remove_flushes_tlb(self, created_enclave):
        monitor, eid, _src = created_enclave
        flushes = monitor.tlb.flush_count
        monitor.hc_remove_page(eid, 16 * PAGE)
        assert monitor.tlb.flush_count == flushes + 1


class TestAssertInvariants:
    def test_raises_with_family_tag(self):
        from repro.hyperenclave.buggy import OutsideElrangeMonitor
        monitor = OutsideElrangeMonitor(TINY)
        mbuf = TINY.frame_base(monitor.primary_os.reserve_data_frame())
        eid = monitor.hc_create(16 * PAGE, PAGE, 4 * PAGE, mbuf, PAGE)
        monitor.hc_add_page(eid, 40 * PAGE, 0)
        with pytest.raises(InvariantViolation) as excinfo:
            assert_invariants(monitor)
        assert excinfo.value.invariant == "enclave-invariants"

    def test_returns_report_when_clean(self, monitor):
        report = assert_invariants(monitor)
        assert report.ok
