"""Sec. 5 — the noninterference theorem as a measured property.

Paper artifact: Theorem 5.1 + Lemmas 5.2-5.4 (6,600 lines of Coq).
Reproduction: trace-pair checking over 41-vs-42 two-world executions.

Shape to hold: zero violations on the correct monitor across many random
adversarial traces; guaranteed violations on the leaky variants, with
the right observation component named.  The benchmark times the
two-world trace checking — the reproduction's cost per trace.
"""

import random

from repro.hyperenclave.buggy import LeakyExitMonitor, NoScrubMonitor
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import HOST_ID, RustMonitor
from repro.reporting import render_table
from repro.security import (
    DataOracle, Hypercall, LocalCompute, MemLoad, MemStore, SystemState,
)
from repro.security.noninterference import (
    TwoWorlds, check_theorem_noninterference,
)

from benchmarks.conftest import build_world

PAGE = TINY.page_size


def make_worlds(monitor_cls, secrets=(41, 42), pages=1):
    def one(secret):
        monitor, _app, eid = build_world(monitor_cls, secret=secret,
                                         pages=pages)
        return SystemState(monitor, DataOracle.seeded(13)), eid
    world_a, eid = one(secrets[0])
    world_b, _ = one(secrets[1])
    return TwoWorlds(world_a, world_b), eid


def random_adversarial_trace(eid, seed, length=24):
    """A host-driven trace interleaving probes, hypercalls, and enclave
    sessions that touch the differing secret."""
    rng = random.Random(seed)
    trace = []
    inside = False
    epc_base = 0x6000
    for _ in range(length):
        roll = rng.random()
        if inside:
            if roll < 0.4:
                trace.append((MemLoad(eid, 16 * PAGE, "rax"),
                              MemLoad(eid, 16 * PAGE, "rax")))
            elif roll < 0.6:
                trace.append(
                    (LocalCompute(eid, "rbx", op="xor", src1="rax",
                                  src2="rax"),
                     LocalCompute(eid, "rbx", op="xor", src1="rax",
                                  src2="rax")))
            else:
                trace.append((Hypercall(eid, "exit", (eid,)),
                              Hypercall(eid, "exit", (eid,))))
                inside = False
        else:
            if roll < 0.3:
                trace.append(MemLoad(
                    HOST_ID, rng.randrange(0, 0x4000, 8), "rcx"))
            elif roll < 0.45:
                trace.append(MemLoad(
                    HOST_ID, epc_base + rng.randrange(0, 0x800, 8),
                    "rcx"))  # hostile EPC probe (faults, no-op)
            elif roll < 0.6:
                trace.append(LocalCompute(HOST_ID, "rax",
                                          value=rng.getrandbits(16)))
            elif roll < 0.75:
                trace.append(MemStore(HOST_ID,
                                      rng.randrange(0x200, 0x3000, 8),
                                      "rax"))
            else:
                trace.append(Hypercall(HOST_ID, "enter", (eid,)))
                inside = True
    return trace


def test_bench_noninterference(benchmark, emit):
    def check_many_traces():
        total_violations = 0
        traces = 0
        for seed in range(6):
            worlds, eid = make_worlds(RustMonitor)
            trace = random_adversarial_trace(eid, seed)
            total_violations += len(check_theorem_noninterference(
                worlds, trace, observers=[HOST_ID]))
            traces += 1
        return traces, total_violations

    traces, violations = benchmark(check_many_traces)
    assert violations == 0, "Theorem 5.1 must hold on the correct monitor"

    # The leaky variants: a direct secret-extraction trace.
    rows = [["RustMonitor",
             f"{traces} random traces", "0 violations", "holds"]]

    worlds, eid = make_worlds(LeakyExitMonitor)
    leak_trace = [
        Hypercall(HOST_ID, "enter", (eid,)),
        (MemLoad(eid, 16 * PAGE, "rax"), MemLoad(eid, 16 * PAGE, "rax")),
        (Hypercall(eid, "exit", (eid,)), Hypercall(eid, "exit", (eid,))),
    ]
    leaky = check_theorem_noninterference(worlds, leak_trace,
                                          observers=[HOST_ID])
    assert leaky and "cpu_regs" in leaky[0].components
    rows.append(["LeakyExitMonitor", "exit-leak trace",
                 f"violation via {leaky[0].components}", "BROKEN"])

    worlds, eid = make_worlds(NoScrubMonitor, pages=2)
    scrub_trace = [
        Hypercall(HOST_ID, "destroy", (eid,)),
        Hypercall(HOST_ID, "create",
                  (48 * PAGE, 2 * PAGE, 8 * PAGE, 2 * PAGE, PAGE)),
        Hypercall(HOST_ID, "add_page", (eid + 1, 48 * PAGE, 0)),
        Hypercall(HOST_ID, "init", (eid + 1,)),
        Hypercall(HOST_ID, "aug_page", (eid + 1, 49 * PAGE)),
    ]
    residue = check_theorem_noninterference(worlds, scrub_trace,
                                            observers=[eid + 1])
    assert residue and "memory_pages" in residue[-1].components
    rows.append(["NoScrubMonitor", "destroy/create/EAUG trace",
                 f"violation via {residue[-1].components}", "BROKEN"])

    emit("noninterference",
         render_table(["Monitor", "Workload", "Result", "Theorem 5.1"],
                      rows, title="Sec. 5 — noninterference checking"))
