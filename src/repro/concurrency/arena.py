"""Reusable fiber arena for the continuation scheduler engine.

The continuation engine runs almost every script step as a plain
function call on the scheduling loop's own thread.  The exception is a
step that might genuinely context-switch mid-stack — a pending forced
preemption, or a lock already held somewhere — which needs a real call
stack that can block while the loop keeps scheduling.  A :class:`Fiber`
is that stack: a parked daemon thread that executes one step at a time
on request and can suspend itself cooperatively at a yield point.

Unlike the legacy threaded engine, fibers are **pooled per process**
(:class:`FiberArena`): a schedule that needs one borrows it, runs the
step, and returns it, so the thread-creation/join cost that used to be
paid twice per schedule is paid once per worker process.  Handoffs on
the fiber path are counted in the ``sched.*`` metrics family.
"""

import itertools
import os
import threading
from typing import Callable, List, Optional, Tuple

_fiber_ids = itertools.count()


class Fiber:
    """One reusable suspendable call stack (a parked daemon thread).

    Strict token passing: at any instant either the caller is running
    (fiber blocked in :meth:`park` or idle between steps) or the fiber
    is running (caller blocked in ``_wait``) — never both, which is what
    lets the scheduler treat a fiber segment exactly like the legacy
    engine treated a vCPU thread.
    """

    def __init__(self):
        self._work = threading.Event()
        self._report = threading.Event()
        self._fn: Optional[Callable[[], None]] = None
        self._status: Tuple[str, Optional[BaseException]] = ("done", None)
        self._thread = threading.Thread(
            target=self._loop, name=f"fiber-{next(_fiber_ids)}",
            daemon=True)
        self._thread.start()

    # -- fiber-thread side -------------------------------------------------------

    def _loop(self):
        while True:
            self._work.wait()
            self._work.clear()
            fn, self._fn = self._fn, None
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                self._status = ("done", exc)
            else:
                self._status = ("done", None)
            self._report.set()

    def park(self, timeout: float):
        """Suspend the running step mid-stack (called *on* the fiber
        thread from a yield hook); returns when the caller resumes it."""
        self._status = ("parked", None)
        self._report.set()
        if not self._work.wait(timeout):
            raise RuntimeError(
                f"parked fiber was never resumed within {timeout}s")
        self._work.clear()

    # -- caller side -------------------------------------------------------------

    def start(self, fn: Callable[[], None], timeout: float):
        """Run ``fn`` on the fiber; block until it parks or finishes.

        Returns ``("parked", None)`` or ``("done", exc-or-None)``.
        """
        self._fn = fn
        self._report.clear()
        self._work.set()
        return self._wait(timeout)

    def resume(self, timeout: float):
        """Resume a parked step; block until it parks again or finishes."""
        self._report.clear()
        self._work.set()
        return self._wait(timeout)

    def _wait(self, timeout: float):
        if not self._report.wait(timeout):
            raise RuntimeError(
                f"fiber did not report back within {timeout}s")
        return self._status

    @property
    def idle(self) -> bool:
        """True when no step is in flight (safe to return to the arena)."""
        return self._status[0] == "done"


class FiberArena:
    """A per-process pool of :class:`Fiber` stacks.

    ``lease``/``release`` bracket one fiber segment; a fiber abandoned
    mid-park (a run that aborted with a task still suspended) is simply
    dropped — its daemon thread either times out of :meth:`Fiber.park`
    or dies with the process, and the arena never hands it out again.
    """

    def __init__(self):
        self._free: List[Fiber] = []
        self.created = 0

    def lease(self) -> Tuple[Fiber, bool]:
        """A ready fiber plus whether it was reused from the pool."""
        if self._free:
            return self._free.pop(), True
        self.created += 1
        return Fiber(), False

    def release(self, fiber: Fiber):
        if fiber.idle:
            self._free.append(fiber)

    def __len__(self):
        return len(self._free)


_PROCESS_ARENA: Optional[FiberArena] = None


def process_arena() -> FiberArena:
    """This process's fiber arena (created on first use; pool workers
    fork before their first unit, so each warms its own)."""
    global _PROCESS_ARENA
    if _PROCESS_ARENA is None:
        _PROCESS_ARENA = FiberArena()
    return _PROCESS_ARENA


def reset_process_arena(arena: Optional[FiberArena] = None):
    """Replace (or clear) the process arena — test hook."""
    global _PROCESS_ARENA
    _PROCESS_ARENA = arena


# ``fork`` copies the arena object but not its threads: a pooled fiber
# in the child is a corpse whose ``start`` would block forever.  The
# sharded executor pins the ``fork`` start method, so drop the inherited
# pool in every forked child and let it warm its own.
os.register_at_fork(after_in_child=reset_process_arena)


__all__ = ["Fiber", "FiberArena", "process_arena", "reset_process_arena"]
