"""Randomized campaigns over the step-wise lemmas (5.2-5.4).

The paper proves each lemma once in Coq; we run each over many seeded
random traces — the bounded analogue of the universal quantification.
"""

import random

import pytest

from repro.hyperenclave.constants import TINY
from repro.hyperenclave.monitor import HOST_ID, RustMonitor
from repro.security import (
    DataOracle, Hypercall, LocalCompute, MemLoad, MemStore, SystemState,
)
from repro.security.noninterference import (
    TwoWorlds, check_lemma_activation, check_lemma_confidentiality,
    check_lemma_integrity,
)

from tests.conftest import build_enclave_world

PAGE = TINY.page_size


def make_state(secret, seed=11):
    monitor, app, eid = build_enclave_world(secret=secret)
    return SystemState(monitor, DataOracle.seeded(seed)), app, eid


def random_host_steps(app, seed, length=20):
    """Host-local moves only: loads, stores, computes, hostile probes."""
    rng = random.Random(seed)
    steps = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.3:
            steps.append(LocalCompute(HOST_ID, "rax",
                                      value=rng.getrandbits(16)))
        elif roll < 0.55:
            steps.append(MemLoad(HOST_ID, rng.randrange(0, 0x4000, 8),
                                 "rbx"))
        elif roll < 0.75:
            steps.append(MemStore(HOST_ID,
                                  rng.randrange(0x200, 0x3000, 8),
                                  "rax"))
        elif roll < 0.9:
            steps.append(MemLoad(HOST_ID, 12 * PAGE, "rcx",
                                 via_app=app.app_id))
        else:
            # hostile probe into secure memory (faults, must be no-op)
            steps.append(MemLoad(HOST_ID, 0x6000
                                 + rng.randrange(0, 0x800, 8), "rdx"))
    return steps


class TestLemma52Campaign:
    @pytest.mark.parametrize("seed", range(6))
    def test_host_moves_never_change_enclave_view(self, seed):
        state, app, eid = make_state(secret=0x41, seed=seed)
        steps = random_host_steps(app, seed)
        violations = check_lemma_integrity(state, steps, observer=eid)
        assert violations == [], violations[:2]


class TestLemma53Campaign:
    @pytest.mark.parametrize("seed", range(6))
    def test_host_cannot_distinguish_secret_worlds(self, seed):
        state_a, app, _eid = make_state(41, seed)
        state_b, _, _ = make_state(42, seed)
        worlds = TwoWorlds(state_a, state_b)
        steps = random_host_steps(app, seed + 100)
        violations = check_lemma_confidentiality(worlds, steps,
                                                 actor=HOST_ID)
        assert violations == [], violations[:2]


class TestLemma54Campaign:
    @pytest.mark.parametrize("seed", range(4))
    def test_activation_preserves_indistinguishability(self, seed):
        """Same-secret worlds (the enclave's own view must match), host
        does arbitrary local work, then activates the enclave."""
        state_a, app_a, eid = make_state(0x77, seed)
        state_b, _app_b, _ = make_state(0x77, seed)
        worlds = TwoWorlds(state_a, state_b)
        steps = random_host_steps(app_a, seed + 50, length=10)
        steps.append(Hypercall(HOST_ID, "enter", (eid,)))
        violations = check_lemma_activation(worlds, steps, observer=eid)
        assert violations == [], violations[:2]
