#!/usr/bin/env python3
"""Fault-injection tour: crash a hypercall at every step, watch it roll back.

Walks the robustness plane end to end:

1. arm a single fault by hand and observe the transactional rollback,
2. sweep every fault site × every step index of every hypercall
   (the crash-step campaign) on the real monitor — all green,
3. run the identical campaign on the deliberately non-transactional
   monitor — caught,
4. flip bits in untrusted memory — no invariant cares,
5. crash the same step in two secret-differing worlds — still
   indistinguishable (crash-step noninterference).

Run:  python examples/fault_campaign.py
"""

from repro.errors import HypercallAborted
from repro.faults import (
    EXHAUST,
    FaultPlane,
    bitflip_campaign,
    crash_ni_campaign,
    crash_step_campaign,
    default_workload,
    default_world_factory,
    installed,
)
from repro.hyperenclave.buggy import NonTransactionalMonitor
from repro.hyperenclave.constants import TINY
from repro.hyperenclave.txn import monitor_digest

PAGE = TINY.page_size


def main():
    factory = default_world_factory()
    calls = default_workload()

    # ---- 1. one fault, by hand ----------------------------------------
    monitor, ctx = factory()
    calls[0][1](monitor, ctx)            # hc_create
    digest = monitor_digest(monitor)
    plane = FaultPlane(seed=0).arm("frames.alloc", index=1, kind=EXHAUST)
    with installed(plane):
        try:
            monitor.hc_add_page(ctx["eid"], ctx["elrange_base"],
                                ctx["src_pa"])
        except HypercallAborted as exc:
            print(f"aborted: {exc}")
    assert monitor_digest(monitor) == digest
    print("state digest unchanged — the partial add_page was rolled "
          "back\n")

    # ---- 2. the full crash-step sweep ---------------------------------
    report = crash_step_campaign(factory, calls, seed=0)
    print(report.render())
    assert report.ok

    # ---- 3. the same sweep catches the non-transactional monitor -----
    def buggy_world():
        buggy = NonTransactionalMonitor(TINY)
        primary_os = buggy.primary_os
        bctx = {
            "page": PAGE,
            "mbuf_pa": TINY.frame_base(primary_os.reserve_data_frame()),
            "src_pa": TINY.frame_base(primary_os.reserve_data_frame()),
            "elrange_base": 16 * PAGE,
        }
        primary_os.gpa_write_word(bctx["src_pa"], 0xDEAD)
        return buggy, bctx

    caught = crash_step_campaign(buggy_world, calls, seed=0)
    print(f"\nNonTransactionalMonitor: {len(caught.failures())} of "
          f"{len(caught.runs)} faulted runs caught (rollback or "
          f"invariant violations)")
    assert not caught.ok

    # ---- 4. untrusted bit flips ---------------------------------------
    flips = bitflip_campaign(factory, calls[:5], flips=32, seed=0)
    print(f"\nbit flips in untrusted memory: "
          f"{flips.invariant_sweeps_passed}/{len(flips.runs)} invariant "
          f"sweeps green")
    assert flips.ok

    # ---- 5. crash-step noninterference --------------------------------
    ni = crash_ni_campaign(seed=0)
    print(f"crash-step noninterference: {len(ni.runs)} symmetric "
          f"faulted runs, {len(ni.failures())} distinguishing — "
          f"{'OK' if ni.ok else 'VIOLATION'}")
    assert ni.ok


if __name__ == "__main__":
    main()
