"""Cross-engine consistency: the concrete interpreter and the symbolic
executor must agree on every pure corpus function, for random inputs.

This is the soundness-of-the-tooling check the paper makes about its own
semantics ("our code proofs rely on the soundness ... of our lightweight
MIR semantics", Sec. 6.1): our two independent evaluators of the same
semantics cannot be allowed to drift apart.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mir.value import mk_u64
from repro.symbolic.execute import SymExecutor, lower_value
from repro.symbolic.terms import Const
from repro.verification import pure_function_names


def _functions_with_arity(model):
    table = []
    for name in pure_function_names(model.config, model.layout):
        function = model.program.functions[name]
        table.append((name, len(function.params)))
    return table


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_interpreter_and_executor_agree_on_concrete_inputs(model, data):
    name, arity = data.draw(st.sampled_from(_functions_with_arity(model)))
    if name in ("entry_index", "level_span"):
        level = data.draw(st.integers(1, model.config.levels))
        raw_args = [data.draw(st.integers(0, 2 ** 16)), level]
        if name == "level_span":
            raw_args = [level]
    else:
        raw_args = [data.draw(st.integers(0, 2 ** 64 - 1))
                    for _ in range(arity)]
    args = [mk_u64(value) for value in raw_args]

    interp_result = model.make_interpreter().call(name, args).value

    executor = SymExecutor(model.program)
    paths = executor.run(name, tuple(args))
    assert len(paths) == 1  # concrete input: exactly one path
    symbolic_result = lower_value(paths[0].ret, {})
    assert symbolic_result == interp_result, (
        f"{name}{tuple(raw_args)}: interpreter says {interp_result}, "
        f"executor says {symbolic_result}")


@settings(max_examples=20, deadline=None)
@given(e=st.integers(0, 2 ** 64 - 1), addr=st.integers(0, 2 ** 52 - 1))
def test_pte_roundtrip_property_through_mir(model, e, addr):
    """A corpus-level property via the interpreter: set_addr then
    pte_addr recovers the masked address; flags survive."""
    interp = model.make_interpreter()
    aligned = addr & model.config.addr_mask()
    updated = interp.call("pte_set_addr",
                          [mk_u64(e), mk_u64(addr)]).value
    got_addr = interp.call("pte_addr", [updated]).value
    got_flags = interp.call("pte_flags", [updated]).value
    old_flags = interp.call("pte_flags", [mk_u64(e)]).value
    assert got_addr.value == aligned
    assert got_flags == old_flags
