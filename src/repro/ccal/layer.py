"""Layers and layer stacks.

"The system will be divided into layers of functions depending on the
caller-callee order. ... The design of HyperEnclave ensures that there
are no functions from higher layers passed as callbacks to lower layers."
(Sec. 3.4)

A :class:`Layer` owns some abstract-state fields and exports primitives
(specifications).  A :class:`LayerStack` assembles layers bottom-up and
enforces the structural rules the paper relies on:

* a layer's interface is its own primitives plus everything below
  (pass-through),
* no two layers own the same abstract-state field,
* MIR code assigned to a layer may only call primitives exported at or
  below that layer — checked against each function's call list, the
  executable form of "a correctness proof of a function in a high layer
  may depend on the correctness of a function in a lower layer".
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import LayerError
from repro.ccal.spec import Spec


@dataclass
class Layer:
    """One abstraction layer."""

    name: str
    index: int
    primitives: Dict[str, Spec] = field(default_factory=dict)
    owned_fields: Tuple[str, ...] = ()
    doc: str = ""

    def add_primitive(self, spec):
        """Export a specification from this layer."""
        if spec.name in self.primitives:
            raise LayerError(
                f"layer {self.name} already exports {spec.name!r}")
        spec.layer = self.name
        self.primitives[spec.name] = spec
        return spec

    def primitive(self, name):
        return self.primitives[name]

    def __contains__(self, name):
        return name in self.primitives


class LayerStack:
    """An ordered collection of layers, bottom (index 0) to top."""

    def __init__(self):
        self._layers: List[Layer] = []
        self._by_name: Dict[str, Layer] = {}

    # -- assembly ---------------------------------------------------------------

    def push(self, name, primitives=(), owned_fields=(), doc=""):
        """Add a layer on top of the current stack."""
        if name in self._by_name:
            raise LayerError(f"duplicate layer {name!r}")
        for owned in owned_fields:
            owner = self.owner_of_field(owned)
            if owner is not None:
                raise LayerError(
                    f"field {owned!r} claimed by both {owner.name!r} "
                    f"and {name!r}"
                )
        layer = Layer(name=name, index=len(self._layers),
                      owned_fields=tuple(owned_fields), doc=doc)
        for spec in primitives:
            layer.add_primitive(spec)
        self._layers.append(layer)
        self._by_name[name] = layer
        return layer

    # -- queries -----------------------------------------------------------------

    def layer(self, name):
        try:
            return self._by_name[name]
        except KeyError:
            raise LayerError(f"no layer named {name!r}")

    def layers(self):
        return tuple(self._layers)

    def __len__(self):
        return len(self._layers)

    def owner_of_field(self, field_name) -> Optional[Layer]:
        """The layer owning an abstract-state field, or None."""
        for layer in self._layers:
            if field_name in layer.owned_fields:
                return layer
        return None

    def owner_of_primitive(self, primitive_name) -> Optional[Layer]:
        """The layer exporting a primitive, or None."""
        for layer in self._layers:
            if primitive_name in layer.primitives:
                return layer
        return None

    def interface_at(self, name):
        """All primitives visible to code in layer ``name``: its own plus
        every lower layer's (pass-through)."""
        top = self.layer(name)
        visible = {}
        for layer in self._layers[: top.index + 1]:
            visible.update(layer.primitives)
        return visible

    # -- structural checks -----------------------------------------------------------

    def check_call_order(self, program, layer_of_function):
        """Verify no function calls upward.

        ``layer_of_function`` maps MIR function names to layer names; a
        function may call (a) other functions mapped at or below its own
        layer, or (b) primitives exported at or below it.  Violations are
        returned, empty means the caller-callee order holds.
        """
        violations = []
        for fn_name, layer_name in sorted(layer_of_function.items()):
            if fn_name not in program.functions:
                continue
            caller = self.layer(layer_name)
            for callee in program.functions[fn_name].called_functions():
                callee_layer = None
                if callee in layer_of_function:
                    callee_layer = self.layer(layer_of_function[callee])
                else:
                    callee_layer = self.owner_of_primitive(callee)
                if callee_layer is None:
                    violations.append(
                        f"{fn_name} (layer {layer_name}) calls {callee}, "
                        f"which no layer exports")
                elif callee_layer.index > caller.index:
                    violations.append(
                        f"{fn_name} (layer {layer_name}, index "
                        f"{caller.index}) calls upward into {callee} "
                        f"(layer {callee_layer.name}, index "
                        f"{callee_layer.index})")
        return violations

    def initial_state(self, field_values):
        """Build an AbsState whose fields carry this stack's ownership."""
        from repro.ccal.absstate import AbsState
        state = AbsState()
        for layer in self._layers:
            for owned in layer.owned_fields:
                if owned not in field_values:
                    raise LayerError(
                        f"no initial value supplied for field {owned!r} "
                        f"(owned by layer {layer.name!r})")
                state = state.with_field(owned, field_values[owned],
                                         owner=layer.name)
        return state
