"""Layer 9 — AddrSpace: the object-oriented corpus slice.

HyperEnclave is "idiomatic Rust with a lot of object-oriented code ...
Nearly every trait method comes with a self reference (compiled into a
self pointer at MIR level)" (Sec. 3.4).  This module transcribes that
style: an ``AddrSpace`` struct owning a page-table root, constructed by
``as_new`` (which returns a pointer to a locally-allocated struct —
legal under the never-free semantics of Sec. 3.2) and manipulated
through ``&self`` methods.

``as_new`` is tagged ``returns_rdata``: at spec level its result is an
opaque handle (Sec. 3.4 case 3) that only AddrSpace-layer code may
dereference — the encapsulation tests drive both the legal path (methods
of this layer) and the illegal one (a higher layer dereferencing the
handle, which must raise).
"""

from repro.mir.ast import place
from repro.mir.types import U64, UNIT, RefTy, StructTy, TupleTy

ADDR_SPACE_TY = StructTy("AddrSpace", (U64,))


def add_addrspace_functions(pb, config):
    """Register the 6 AddrSpace corpus functions."""

    # as_new() -> &AddrSpace — allocate a root table and wrap it.
    fb = pb.function("as_new", [], RefTy(ADDR_SPACE_TY, mutable=True),
                     layer="AddrSpace", attrs=("returns_rdata",))
    fb.call("root", "alloc_frame", [])
    fb.struct("s", "root")
    fb.ref("_0", "s")           # address of a local: the self pointer
    fb.ret()
    fb.finish()

    # as_root(&self) -> u64
    fb = pb.function("as_root", ["self_"], U64, layer="AddrSpace")
    fb.assign("_0", place("self_").deref().field(0))
    fb.ret()
    fb.finish()

    # as_map(&self, va, pa, flags)
    fb = pb.function("as_map", ["self_", "va", "pa", "flags"], UNIT,
                     layer="AddrSpace")
    fb.assign("root", place("self_").deref().field(0))
    fb.call("_0", "map_page", ["root", "va", "pa", "flags"])
    fb.ret()
    fb.finish()

    # as_unmap(&self, va)
    fb = pb.function("as_unmap", ["self_", "va"], UNIT, layer="AddrSpace")
    fb.assign("root", place("self_").deref().field(0))
    fb.call("_0", "unmap_page", ["root", "va"])
    fb.ret()
    fb.finish()

    # as_query(&self, va) -> (found, addr, flags)
    fb = pb.function("as_query", ["self_", "va"], TupleTy((U64, U64, U64)),
                     layer="AddrSpace")
    fb.assign("root", place("self_").deref().field(0))
    fb.call("_0", "query", ["root", "va"])
    fb.ret()
    fb.finish()

    # as_translate(&self, va) -> (ok, pa)
    fb = pb.function("as_translate", ["self_", "va"], TupleTy((U64, U64)),
                     layer="AddrSpace")
    fb.assign("root", place("self_").deref().field(0))
    fb.call("_0", "translate_page", ["root", "va"])
    fb.ret()
    fb.finish()
