"""Page-table-entry manipulation — layer 2 (pure functions).

"Entries are represented by plain 64-bit integers in the implementation,
and each consists of two parts: a physical address and its associated
flags."  (Sec. 4.1)

Every function here is pure integer manipulation; the mirlight corpus
transcribes them one-for-one and the symbolic engine checks the
transcription exhaustively over bounded domains (these are the functions
where bit-twiddling bugs live, so they get the strongest checking).

Functions that take a ``config`` are arch-aware through
``config.addr_mask()`` / ``config.arch``.  The config-free flag
predicates and constructors (``pte_is_present`` .. ``leaf_flags``) are
the historical x86 shape, kept for the x86 geometries and the existing
bit-level tests; arch-parametrized callers go through
``config.arch.is_present(...)`` etc. (see
:mod:`repro.hyperenclave.archspec`).
"""

from repro.hyperenclave.constants import PteFlagBits

_WORD_MASK = (1 << 64) - 1


def pte_new(paddr, flags, config):
    """Build an entry from a frame-aligned physical address and a flag
    bitmask (the flag bits of :class:`PteFlagBits`)."""
    return ((paddr & config.addr_mask()) | (flags & ~config.addr_mask())) \
        & _WORD_MASK


def pte_empty():
    """The all-zero (non-present) entry."""
    return 0


def pte_addr(entry, config):
    """The physical address packed in ``entry``."""
    return entry & config.addr_mask()


def pte_frame(entry, config):
    return pte_addr(entry, config) >> config.page_bits


def pte_flags(entry, config):
    """The flag bits (everything outside the address field)."""
    return entry & ~config.addr_mask() & _WORD_MASK


def pte_flag_set(entry, bit):
    return bool((entry >> bit) & 1)


def pte_is_present(entry):
    return pte_flag_set(entry, PteFlagBits.PRESENT)


def pte_is_writable(entry):
    return pte_flag_set(entry, PteFlagBits.WRITE)


def pte_is_user(entry):
    return pte_flag_set(entry, PteFlagBits.USER)


def pte_is_huge(entry):
    return pte_flag_set(entry, PteFlagBits.HUGE)


def pte_is_unused(entry):
    """An entry with no address and no flags — the paper's
    ``unused_inv`` ties this to absent ``addr_content``."""
    return entry == 0


def pte_with_flag(entry, bit, value=True):
    """Set or clear one flag bit of an entry."""
    if value:
        return (entry | (1 << bit)) & _WORD_MASK
    return entry & ~(1 << bit) & _WORD_MASK


def pte_set_addr(entry, paddr, config):
    """Replace the address field, preserving flags."""
    return (pte_flags(entry, config) | (paddr & config.addr_mask())) \
        & _WORD_MASK


def pte_set_flags(entry, flags, config):
    """Replace the flag field, preserving the address."""
    return (pte_addr(entry, config) | (flags & ~config.addr_mask())) \
        & _WORD_MASK


def table_flags():
    """Flags for an intermediate (next-table) entry."""
    return ((1 << PteFlagBits.PRESENT) | (1 << PteFlagBits.WRITE)
            | (1 << PteFlagBits.USER))


def leaf_flags(writable=True, user=True, huge=False, nx=False):
    """Flags for a terminal (frame-mapping) entry."""
    flags = 1 << PteFlagBits.PRESENT
    if writable:
        flags |= 1 << PteFlagBits.WRITE
    if user:
        flags |= 1 << PteFlagBits.USER
    if huge:
        flags |= 1 << PteFlagBits.HUGE
    if nx:
        flags |= 1 << PteFlagBits.NX
    return flags


def describe(entry, config):
    """Human-readable entry rendering for figures and debugging."""
    if pte_is_unused(entry):
        return "<unused>"
    flag_names = [name for bit, name in config.arch.flag_names
                  if pte_flag_set(entry, bit)]
    return f"{pte_addr(entry, config):#x} [{'|'.join(flag_names)}]"
