"""The fault plane: arming, hit counting, determinism, suspension."""

import pytest

from repro.errors import FaultInjected, OutOfMemoryError
from repro.faults import plane as faults
from repro.faults.plane import (
    EXHAUST,
    FLIP,
    RAISE,
    FaultPlane,
    active_plane,
    installed,
)


class TestHooksWithoutPlane:
    def test_crash_point_is_noop(self):
        assert active_plane() is None
        faults.crash_point("hc.nowhere")  # must not raise

    def test_allocation_gate_is_noop(self):
        faults.allocation_gate("frames.alloc")

    def test_filter_write_passes_value_through(self):
        assert faults.filter_write(0x1000, 0xABCD) == 0xABCD


class TestArming:
    def test_raise_fires_on_exact_hit_index(self):
        plane = FaultPlane().arm("site", index=2, kind=RAISE)
        plane.hit("site")
        plane.hit("site")
        with pytest.raises(FaultInjected) as excinfo:
            plane.hit("site")
        assert excinfo.value.site == "site"
        assert excinfo.value.hit == 2

    def test_unarmed_site_never_fires(self):
        plane = FaultPlane().arm("site", index=0)
        for _ in range(5):
            plane.hit("other")
        assert plane.counts["other"] == 5
        assert not plane.fired

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlane().arm("site", kind="meteor")

    def test_record_only_counts_but_does_not_raise(self):
        plane = FaultPlane(record_only=True).arm("site", index=0)
        plane.hit("site", label="step-a")
        plane.hit("site", label="step-b")
        assert plane.counts["site"] == 2
        assert plane.hit_labels["site"] == ["step-a", "step-b"]
        assert len(plane.fired) == 1  # the arm matched, just did not raise

    def test_reset_counts_keeps_arms(self):
        plane = FaultPlane().arm("site", index=0)
        with pytest.raises(FaultInjected):
            plane.hit("site")
        plane.reset_counts()
        with pytest.raises(FaultInjected):
            plane.hit("site")


class TestExhaustAndFlip:
    def test_exhaust_raises_the_sites_own_error(self):
        plane = FaultPlane().arm("frames.alloc", index=0, kind=EXHAUST)
        with installed(plane):
            with pytest.raises(OutOfMemoryError):
                faults.allocation_gate(
                    "frames.alloc",
                    exhaust=lambda: OutOfMemoryError("injected"))

    def test_flip_corrupts_exactly_one_bit(self):
        plane = FaultPlane(seed=7).arm("phys.flip", index=0, kind=FLIP)
        corrupted = plane.filter_value("phys.flip", 0)
        assert corrupted != 0
        assert bin(corrupted).count("1") == 1

    def test_flip_bit_is_seed_deterministic(self):
        first = FaultPlane(seed=7).arm("phys.flip", kind=FLIP)
        second = FaultPlane(seed=7).arm("phys.flip", kind=FLIP)
        assert first.filter_value("phys.flip", 0) == \
            second.filter_value("phys.flip", 0)

    def test_different_seeds_usually_flip_different_bits(self):
        flips = {FaultPlane(seed=s).arm("phys.flip", kind=FLIP)
                 .filter_value("phys.flip", 0) for s in range(16)}
        assert len(flips) > 1


class TestInstallAndSuspend:
    def test_installed_sets_and_restores(self):
        plane = FaultPlane()
        assert active_plane() is None
        with installed(plane):
            assert active_plane() is plane
        assert active_plane() is None

    def test_installed_restores_on_exception(self):
        plane = FaultPlane().arm("site", index=0)
        with pytest.raises(FaultInjected):
            with installed(plane):
                faults.crash_point("site")
        assert active_plane() is None

    def test_suspend_suppresses_hits_entirely(self):
        plane = FaultPlane().arm("site", index=0)
        with plane.suspend():
            assert plane.hit("site") is None
        assert plane.counts.get("site", 0) == 0
        with pytest.raises(FaultInjected):
            plane.hit("site")

    def test_module_suspended_helper(self):
        plane = FaultPlane().arm("site", index=0)
        with installed(plane):
            with faults.suspended():
                faults.crash_point("site")  # must not fire
            with pytest.raises(FaultInjected):
                faults.crash_point("site")

    def test_suspended_without_plane_is_noop(self):
        with faults.suspended():
            pass
