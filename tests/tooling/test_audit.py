"""Line counting and the unsafe-block audit (Sec. 6.1)."""

import os

import pytest

from repro.audit import (
    CORPUS_DISTRIBUTION, UnsafeCategory, blocks_touching_page_tables,
    classify_summary, count_package, count_text, generate_rust_corpus,
    scan_source, scan_tree,
)


class TestLocCounter:
    def test_python_classification(self):
        text = '"""Module docstring\nspanning lines."""\n\n' \
               '# a comment\nx = 1  # trailing comment is code\n'
        count = count_text(text)
        assert count.docstring == 2
        assert count.blank == 1
        assert count.comment == 1
        assert count.code == 1
        assert count.total == 5

    def test_function_docstrings_counted(self):
        text = 'def f():\n    """Doc."""\n    return 1\n'
        count = count_text(text)
        assert count.docstring == 1
        assert count.code == 2

    def test_string_expression_not_docstring_heuristic(self):
        text = 'x = "just a string"\n'
        assert count_text(text).code == 1

    def test_mirlight_language(self):
        text = "// comment\nfn f() -> u64 {\n\n}\n"
        count = count_text(text, language="mirlight")
        assert count.comment == 1
        assert count.code == 2
        assert count.blank == 1

    def test_addition(self):
        a = count_text("x = 1\n")
        b = count_text("# hi\n")
        total = a + b
        assert total.code == 1 and total.comment == 1

    def test_count_package_over_repro(self):
        import repro
        count = count_package(os.path.dirname(repro.__file__))
        assert count.code > 4000  # the library is not a stub
        assert count.docstring > 500


class TestUnsafeScanner:
    def test_raw_deref_detected(self):
        blocks = scan_source("fn f() { unsafe { let v = *(ssa_ptr.add(1)); } }")
        assert blocks[0].category is UnsafeCategory.RAW_DEREF

    def test_asm_detected(self):
        blocks = scan_source('fn f() { unsafe { asm!("vmcall") } }')
        assert blocks[0].category is UnsafeCategory.ASM

    def test_slice_detected(self):
        blocks = scan_source(
            "fn f() { unsafe { core::slice::from_raw_parts(p, n) } }")
        assert blocks[0].category is UnsafeCategory.SLICE

    def test_indirect_call_detected(self):
        blocks = scan_source("fn f() { unsafe { vmcs_write(field, v) } }")
        assert blocks[0].category is UnsafeCategory.INDIRECT_CALL

    def test_transmute_detected(self):
        blocks = scan_source(
            "fn f() { unsafe { core::mem::transmute::<_, H>(w) } }")
        assert blocks[0].category is UnsafeCategory.TRANSMUTE

    def test_unsafe_fn_signature_not_a_block(self):
        blocks = scan_source("unsafe fn f() { regular_call(); }")
        assert blocks == []

    def test_unsafe_in_string_or_comment_ignored(self):
        source = ('fn f() { let s = "unsafe { *ptr }"; }\n'
                  "// unsafe { asm!() }\n"
                  "/* unsafe { foo() } */\n")
        assert scan_source(source) == []

    def test_nested_braces_matched(self):
        source = "fn f() { unsafe { if x { *ptr } else { g() } } }"
        blocks = scan_source(source)
        assert len(blocks) == 1
        assert blocks[0].category is UnsafeCategory.RAW_DEREF

    def test_line_numbers(self):
        source = "fn a() {}\n\nfn b() { unsafe { g() } }\n"
        assert scan_source(source)[0].line == 3

    def test_page_table_tokens_flagged(self):
        blocks = scan_source(
            "fn f() { unsafe { *pte_ptr = ept_entry } }")
        assert blocks[0].touches_page_tables


class TestScannerProperties:
    """Property tests: the scanner's count is exact on generated trees."""

    from hypothesis import given, strategies as st

    TEMPLATES = [
        ("fn s{i}() {{ unsafe {{ call_{i}(x) }} }}\n",
         UnsafeCategory.INDIRECT_CALL),
        ("fn s{i}() {{ let v = unsafe {{ *data_ptr }}; }}\n",
         UnsafeCategory.RAW_DEREF),
        ('fn s{i}() {{ unsafe {{ asm!("nop") }} }}\n',
         UnsafeCategory.ASM),
        ("fn s{i}() {{ safe_call_{i}(); }}\n", None),
        ('fn s{i}() {{ let t = "unsafe {{ fake() }}"; }}\n', None),
    ]

    @given(st.lists(st.integers(0, len(TEMPLATES) - 1), max_size=30))
    def test_count_matches_construction(self, picks):
        source = "".join(
            self.TEMPLATES[p][0].format(i=i)
            for i, p in enumerate(picks))
        expected = [self.TEMPLATES[p][1] for p in picks
                    if self.TEMPLATES[p][1] is not None]
        blocks = scan_source(source)
        assert len(blocks) == len(expected)
        assert [b.category for b in blocks] == expected

    @given(st.lists(st.integers(0, len(TEMPLATES) - 1), max_size=20))
    def test_line_numbers_monotonic(self, picks):
        source = "".join(
            self.TEMPLATES[p][0].format(i=i)
            for i, p in enumerate(picks))
        lines = [b.line for b in scan_source(source)]
        assert lines == sorted(lines)


class TestAuditReproduction:
    def test_distribution_matches_paper_exactly(self):
        """105 blocks: 74 indirect calls, 13 raw derefs (Sec. 6.1)."""
        blocks = scan_tree(generate_rust_corpus())
        assert len(blocks) == 105
        summary = classify_summary(blocks)
        assert summary[UnsafeCategory.INDIRECT_CALL] == 74
        assert summary[UnsafeCategory.RAW_DEREF] == 13

    def test_no_block_touches_page_tables(self):
        """'None of the blocks with raw pointer dereferences involve
        page table memory.'"""
        blocks = scan_tree(generate_rust_corpus())
        assert blocks_touching_page_tables(blocks) == []

    def test_distribution_constant_sums_to_105(self):
        assert sum(CORPUS_DISTRIBUTION.values()) == 105

    def test_corpus_generation_deterministic(self):
        assert generate_rust_corpus() == generate_rust_corpus()
