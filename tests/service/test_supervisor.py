"""The resilient executor: respawn, retry, quarantine, determinism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import ShardedExecutor
from repro.errors import ShardQuarantined
from repro.obs.metrics import REGISTRY
from repro.service.supervisor import ResilientExecutor, backoff_delay

FAULTY = "tests.service.faulty"


def units_for(tmp_path, victim, *, deaths=0, count=8, marker="deaths"):
    return [{"value": index, "victim": index == victim,
             "marker": str(tmp_path / marker), "deaths": deaths}
            for index in range(count)]


def expected(count=8):
    return [index * 2 for index in range(count)]


class TestHappyPath:
    def test_matches_base_executor(self, tmp_path):
        units = units_for(tmp_path, victim=None)
        with ResilientExecutor(4, backoff=0.001) as resilient, \
                ShardedExecutor(4) as plain:
            assert resilient.map(f"{FAULTY}:flaky_unit", units) \
                == plain.map(f"{FAULTY}:flaky_unit", units) \
                == expected()

    def test_single_worker_runs_in_process(self, tmp_path):
        units = units_for(tmp_path, victim=None, count=3)
        with ResilientExecutor(1) as pool:
            assert pool.map(f"{FAULTY}:flaky_unit", units) == expected(3)

    def test_rejects_bad_attempt_cap(self):
        with pytest.raises(ValueError):
            ResilientExecutor(2, max_attempts=0)


class TestDeadWorkers:
    def test_killed_worker_is_respawned_and_shard_rerun(self, tmp_path):
        # The victim SIGKILLs its worker twice, then succeeds: the map
        # must survive two pool deaths and still merge every slot.
        before = REGISTRY.counters.get("service.worker_respawns", 0)
        units = units_for(tmp_path, victim=3, deaths=2)
        with ResilientExecutor(4, backoff=0.001) as pool:
            assert pool.map(f"{FAULTY}:flaky_unit", units) == expected()
        assert REGISTRY.counters["service.worker_respawns"] > before

    def test_permanent_killer_is_quarantined_not_looped(self, tmp_path):
        units = units_for(tmp_path, victim=5, deaths=10 ** 6)
        with ResilientExecutor(4, max_attempts=2, backoff=0.001) as pool:
            merged = pool.map(f"{FAULTY}:flaky_unit", units)
        quarantined = {index for index, value in enumerate(merged)
                       if isinstance(value, ShardQuarantined)}
        assert 5 in quarantined
        for index, value in enumerate(merged):
            if index not in quarantined:
                assert value == index * 2
        for index in quarantined:
            assert merged[index].attempts == 2
            assert "worker died" in merged[index].cause

    def test_hung_shard_times_out_and_quarantines(self, tmp_path):
        units = units_for(tmp_path, victim=2, deaths=10 ** 6, count=4)
        with ResilientExecutor(2, shard_timeout=0.5, max_attempts=1,
                               backoff=0.001) as pool:
            merged = pool.map(f"{FAULTY}:slow_unit", units)
        assert any(isinstance(value, ShardQuarantined)
                   and "wait budget" in value.cause
                   for value in merged)


class TestTaskFailures:
    def test_raising_unit_quarantines_only_its_shard(self, tmp_path):
        before = REGISTRY.counters.get("service.shards_quarantined", 0)
        units = units_for(tmp_path, victim=3)
        with ResilientExecutor(4, max_attempts=2, backoff=0.001) as pool:
            merged = pool.map(f"{FAULTY}:raising_unit", units)
        quarantined = [value for value in merged
                       if isinstance(value, ShardQuarantined)]
        assert quarantined
        assert all("RuntimeError: task boom" in value.cause
                   for value in quarantined)
        assert any(value.shard == quarantined[0].shard
                   for value in quarantined)
        assert REGISTRY.counters["service.shards_quarantined"] > before

    def test_retry_uses_injected_sleep_with_backoff(self, tmp_path):
        from repro.engine.executor import stable_shard
        fn = f"{FAULTY}:raising_unit"
        slept = []
        units = units_for(tmp_path, victim=1, count=4)
        with ResilientExecutor(2, max_attempts=3, backoff=0.25,
                               backoff_cap=1.0,
                               sleep=slept.append) as pool:
            pool.map(fn, units)
        # max_attempts=3 means 2 retries (the 3rd failure quarantines),
        # each sleeping the deterministic backoff of the blamed shard.
        shard = stable_shard(f"{fn}\x1f1", 2)
        assert slept == [backoff_delay(fn, shard, attempt,
                                       base=0.25, cap=1.0)
                         for attempt in (1, 2)]


class TestBackoffDelay:
    def test_deterministic(self):
        assert backoff_delay("f", 3, 2, base=0.1, cap=2.0) \
            == backoff_delay("f", 3, 2, base=0.1, cap=2.0)

    def test_desynchronises_shards(self):
        delays = {backoff_delay("f", shard, 1, base=0.1, cap=2.0)
                  for shard in range(16)}
        assert len(delays) > 8

    def test_bounded_by_cap_and_grows(self):
        base, cap = 0.05, 0.4
        for attempt in range(1, 10):
            delay = backoff_delay("f", 0, attempt, base=base, cap=cap)
            assert 0.5 * base <= delay <= 1.5 * cap

    def test_exponential_until_cap(self):
        small = backoff_delay("f", 0, 1, base=0.1, cap=100.0)
        large = backoff_delay("f", 0, 6, base=0.1, cap=100.0)
        assert large > small

    # -- property tests: the delay law over its whole input space ----------

    _keys = st.tuples(st.text(min_size=0, max_size=40),
                      st.integers(min_value=0, max_value=10_000),
                      st.integers(min_value=1, max_value=60))
    _params = st.tuples(
        st.floats(min_value=1e-4, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=1e-4, max_value=100.0,
                  allow_nan=False, allow_infinity=False))

    @settings(max_examples=200, deadline=None)
    @given(key=_keys, params=_params)
    def test_deterministic_for_fixed_inputs(self, key, params):
        fn_path, shard, attempt = key
        base, cap = params
        first = backoff_delay(fn_path, shard, attempt,
                              base=base, cap=cap)
        again = backoff_delay(fn_path, shard, attempt,
                              base=base, cap=cap)
        assert first == again

    @settings(max_examples=200, deadline=None)
    @given(key=_keys, params=_params)
    def test_jitter_stays_within_the_half_to_threehalves_band(
            self, key, params):
        fn_path, shard, attempt = key
        base, cap = params
        delay = backoff_delay(fn_path, shard, attempt,
                              base=base, cap=cap)
        raw = min(base * 2 ** (attempt - 1), cap)
        assert 0.5 * raw <= delay <= 1.5 * raw
        # In particular the cap bounds every delay, jitter included.
        assert delay <= 1.5 * cap

    @settings(max_examples=100, deadline=None)
    @given(key=_keys,
           cap=st.floats(min_value=1e-4, max_value=100.0,
                         allow_nan=False, allow_infinity=False))
    def test_monotone_in_the_cap(self, key, cap):
        """Raising the cap never shrinks a delay (the un-jittered
        exponential saturates at the cap, and the jitter factor is a
        pure function of (fn_path, shard, attempt))."""
        fn_path, shard, attempt = key
        low = backoff_delay(fn_path, shard, attempt,
                            base=0.1, cap=cap)
        high = backoff_delay(fn_path, shard, attempt,
                             base=0.1, cap=cap * 2)
        assert high >= low


class TestReuseAfterTermination:
    def test_terminate_then_map_again(self, tmp_path):
        units = units_for(tmp_path, victim=None, count=6)
        with ResilientExecutor(3, backoff=0.001) as pool:
            assert pool.map(f"{FAULTY}:flaky_unit", units) == expected(6)
            pool.terminate()
            assert pool.map(f"{FAULTY}:flaky_unit", units) == expected(6)
