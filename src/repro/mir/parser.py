"""Parser for the textual mirlight format.

This is the front half of our ``mirlightgen`` substitute: it turns the
textual MIR-like dumps (see :mod:`repro.mir.printer` for the grammar by
example) into :mod:`repro.mir.ast` programs.  The parser re-runs the
lifting pass (Sec. 3.2) rather than trusting serialized local lists, so
printed and parsed functions classify variables identically — tests pin
the print→parse→print fixpoint.

Grammar sketch::

    program    := (static | function)*
    static     := "static" IDENT "=" const ";"
    function   := "fn" IDENT "(" params ")" "->" type attrs? "{" lets blocks "}"
    block      := LABEL ":" "{" statement* terminator "}"
    place      := atom ("." INT | "[" IDENT "]" | "[" INT "c" "]")*
    atom       := IDENT | "(" "*" place ")" | "(" place "as" "v" INT ")"
    operand    := ("copy" | "move") place | "const" const
"""

import re

from repro.errors import MirParseError
from repro.mir import ast
from repro.mir.ast import BinOp, CastKind, UnOp
from repro.mir.builder import _address_taken
from repro.mir.types import (
    ArrayTy,
    RawPtrTy,
    RefTy,
    TupleTy,
    UNIT,
    type_from_name,
)
from repro.mir.value import (
    Aggregate,
    CharValue,
    FnValue,
    StrValue,
    mk_bool,
    mk_int,
    unit,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>//[^\n]*)
  | (?P<STRING>"(?:\\.|[^"\\])*")
  | (?P<CHAR>'(?:\\.|[^'\\])')
  | (?P<INT>-?\d+(?:_[iu](?:8|16|32|64|128|size))?)
  | (?P<ARROW>->)
  | (?P<OP>==|!=|<=|>=|<<|>>|[+\-*/%&|^<>=!.,;:#@\[\](){}])
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_BINOPS = {op.value: op for op in BinOp}


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.kind}({self.text!r})"


def _tokenize(source):
    tokens = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise MirParseError(
                f"unexpected character {source[pos]!r}", line=line
            )
        kind = match.lastgroup
        text = match.group()
        line += text.count("\n")
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, text, line))
        pos = match.end()
    tokens.append(_Token("EOF", "", line))
    return tokens


class _Parser:
    def __init__(self, source):
        self._tokens = _tokenize(source)
        self._pos = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self, ahead=0):
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _next(self):
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _expect(self, text):
        token = self._next()
        if token.text != text:
            raise MirParseError(
                f"expected {text!r}, found {token.text!r}", line=token.line
            )
        return token

    def _expect_kind(self, kind):
        token = self._next()
        if token.kind != kind:
            raise MirParseError(
                f"expected {kind}, found {token.text!r}", line=token.line
            )
        return token

    def _at(self, text, ahead=0):
        return self._peek(ahead).text == text

    def _accept(self, text):
        if self._at(text):
            self._next()
            return True
        return False

    # -- program / function --------------------------------------------------

    def parse_program(self):
        """Parse statics and functions until EOF."""
        program = ast.Program()
        while self._peek().kind != "EOF":
            if self._at("static"):
                name, value = self._parse_static()
                program.globals_[name] = value
            elif self._at("fn"):
                program.add_function(self.parse_function())
            else:
                token = self._peek()
                raise MirParseError(
                    f"expected 'static' or 'fn', found {token.text!r}",
                    line=token.line,
                )
        return program

    def _parse_static(self):
        self._expect("static")
        name = self._expect_kind("IDENT").text
        self._expect("=")
        value = self._parse_const()
        self._expect(";")
        return name, value

    def parse_function(self):
        """Parse one ``fn`` definition."""
        self._expect("fn")
        name = self._expect_kind("IDENT").text
        self._expect("(")
        params = []
        while not self._at(")"):
            params.append(self._expect_kind("IDENT").text)
            if not self._at(")"):
                self._expect(",")
        self._expect(")")
        self._expect("->")
        ret_ty = self._parse_type()
        layer = None
        attrs = ()
        while self._at("@"):
            self._next()
            marker = self._expect_kind("IDENT").text
            self._expect("(")
            if marker == "layer":
                layer = self._expect_kind("IDENT").text
            elif marker == "attrs":
                collected = [self._expect_kind("IDENT").text]
                while self._accept(","):
                    collected.append(self._expect_kind("IDENT").text)
                attrs = tuple(collected)
            else:
                raise MirParseError(f"unknown marker @{marker}",
                                    line=self._peek().line)
            self._expect(")")
        self._expect("{")
        var_tys = {}
        while self._at("let"):
            self._next()
            var = self._expect_kind("IDENT").text
            self._expect(":")
            var_tys[var] = self._parse_type()
            self._expect(";")
        blocks = {}
        while not self._at("}"):
            block = self._parse_block()
            if block.label in blocks:
                raise MirParseError(f"duplicate block {block.label}",
                                    line=self._peek().line)
            blocks[block.label] = block
        self._expect("}")
        if "bb0" not in blocks:
            raise MirParseError(f"function {name} has no entry block bb0")
        return ast.Function(
            name=name,
            params=tuple(params),
            blocks=blocks,
            entry="bb0",
            locals_=frozenset(_address_taken(blocks)),
            var_tys=var_tys,
            ret_ty=ret_ty,
            layer=layer,
            attrs=attrs,
        )

    def _parse_block(self):
        label = self._expect_kind("IDENT").text
        self._expect(":")
        self._expect("{")
        statements = []
        terminator = None
        while not self._at("}"):
            item = self._parse_statement_or_terminator()
            if isinstance(item, ast.Terminator):
                terminator = item
                break
            statements.append(item)
        self._expect("}")
        if terminator is None:
            raise MirParseError(f"block {label} has no terminator")
        return ast.BasicBlock(label, tuple(statements), terminator)

    # -- statements / terminators ------------------------------------------------

    def _parse_statement_or_terminator(self):
        token = self._peek()
        if token.text == "StorageLive":
            self._next(); self._expect("(")
            var = self._expect_kind("IDENT").text
            self._expect(")"); self._expect(";")
            return ast.StorageLive(var)
        if token.text == "StorageDead":
            self._next(); self._expect("(")
            var = self._expect_kind("IDENT").text
            self._expect(")"); self._expect(";")
            return ast.StorageDead(var)
        if token.text == "nop":
            self._next(); self._expect(";")
            return ast.Nop()
        if token.text == "goto":
            self._next(); self._expect("->")
            target = self._expect_kind("IDENT").text
            self._expect(";")
            return ast.Goto(target)
        if token.text == "return":
            self._next(); self._expect(";")
            return ast.Return()
        if token.text == "switchInt":
            return self._parse_switch()
        if token.text == "drop":
            self._next(); self._expect("(")
            target_place = self._parse_place()
            self._expect(")"); self._expect("->")
            target = self._expect_kind("IDENT").text
            self._expect(";")
            return ast.Drop(target_place, target)
        if token.text == "assert":
            return self._parse_assert()
        if token.text == "discriminant" and self._maybe_set_discriminant():
            return self._parse_set_discriminant()
        return self._parse_assign_or_call()

    def _maybe_set_discriminant(self):
        """Disambiguate ``discriminant(p) = N;`` (statement) from an
        assignment whose LHS merely starts with that identifier."""
        depth = 0
        ahead = 1  # skip 'discriminant'
        if not self._at("(", 1):
            return False
        while True:
            token = self._peek(ahead)
            if token.kind == "EOF":
                return False
            if token.text == "(":
                depth += 1
            elif token.text == ")":
                depth -= 1
                if depth == 0:
                    return self._peek(ahead + 1).text == "="
            ahead += 1

    def _parse_set_discriminant(self):
        self._expect("discriminant"); self._expect("(")
        target_place = self._parse_place()
        self._expect(")"); self._expect("=")
        variant = int(self._expect_kind("INT").text)
        self._expect(";")
        return ast.SetDiscriminant(target_place, variant)

    def _parse_switch(self):
        self._expect("switchInt"); self._expect("(")
        operand = self._parse_operand()
        self._expect(")"); self._expect("[")
        targets = []
        otherwise = None
        while True:
            if self._at("otherwise"):
                self._next(); self._expect("->")
                otherwise = self._expect_kind("IDENT").text
                break
            value = self._parse_raw_int()
            self._expect("->")
            label = self._expect_kind("IDENT").text
            targets.append((value, label))
            self._expect(",")
        self._expect("]"); self._expect(";")
        return ast.SwitchInt(operand, tuple(targets), otherwise)

    def _parse_assert(self):
        self._expect("assert"); self._expect("(")
        cond = self._parse_operand()
        self._expect("==")
        expected_tok = self._next()
        if expected_tok.text not in ("true", "false"):
            raise MirParseError("assert expects 'true' or 'false'",
                                line=expected_tok.line)
        self._expect(",")
        msg_tok = self._expect_kind("STRING")
        self._expect(")"); self._expect("->")
        target = self._expect_kind("IDENT").text
        self._expect(";")
        return ast.Assert(cond, expected_tok.text == "true",
                          _unescape(msg_tok.text), target)

    def _parse_assign_or_call(self):
        dest = self._parse_place()
        self._expect("=")
        if self._peek().text in ("copy", "move", "const"):
            operand = self._parse_operand()
            if self._at("("):
                return self._finish_call(dest, operand)
            rvalue = self._finish_operand_rvalue(operand)
        else:
            rvalue = self._parse_prefix_rvalue()
        self._expect(";")
        return ast.Assign(dest, rvalue)

    def _finish_call(self, dest, func_operand):
        self._expect("(")
        args = []
        while not self._at(")"):
            args.append(self._parse_operand())
            if not self._at(")"):
                self._expect(",")
        self._expect(")"); self._expect("->")
        target = self._expect_kind("IDENT").text
        self._expect(";")
        return ast.Call(func_operand, tuple(args), dest, target)

    # -- rvalues ---------------------------------------------------------------------

    def _finish_operand_rvalue(self, operand):
        """After a leading operand: binop, cast, or plain Use."""
        text = self._peek().text
        if text in _BINOPS and text != "as":
            self._next()
            rhs = self._parse_operand()
            return ast.BinaryOp(_BINOPS[text], operand, rhs)
        if text == "as":
            self._next()
            ty = self._parse_type()
            self._expect("(")
            kind_name = self._expect_kind("IDENT").text
            self._expect(")")
            try:
                kind = CastKind(kind_name)
            except ValueError:
                raise MirParseError(f"unknown cast kind {kind_name!r}")
            return ast.Cast(kind, operand, ty)
        return ast.Use(operand)

    def _parse_prefix_rvalue(self):
        token = self._peek()
        text = token.text
        if text == "&":
            return self._parse_ref()
        if text == "Checked":
            self._next(); self._expect("(")
            left = self._parse_operand()
            op = _BINOPS.get(self._next().text)
            if op is None:
                raise MirParseError("bad Checked operator", line=token.line)
            right = self._parse_operand()
            self._expect(")")
            return ast.CheckedBinaryOp(op, left, right)
        if text in ("!", "-"):
            self._next()
            operand = self._parse_operand()
            return ast.UnaryOp(UnOp.NOT if text == "!" else UnOp.NEG, operand)
        if text in ("tuple", "struct", "array"):
            self._next()
            kind = ast.AggregateKind(text)
            return ast.AggregateRv(kind, self._parse_operand_list())
        if text == "variant":
            self._next(); self._expect("#")
            variant = self._parse_raw_int()
            return ast.AggregateRv(ast.AggregateKind.VARIANT,
                                   self._parse_operand_list(), variant=variant)
        if text == "[":
            self._next()
            operand = self._parse_operand()
            self._expect(";")
            count = self._parse_raw_int()
            self._expect("]")
            return ast.Repeat(operand, count)
        if text == "Len":
            self._next(); self._expect("(")
            target = self._parse_place()
            self._expect(")")
            return ast.Len(target)
        if text == "discriminant":
            self._next(); self._expect("(")
            target = self._parse_place()
            self._expect(")")
            return ast.Discriminant(target)
        if text == "deref_copy":
            self._next()
            return ast.CopyForDeref(self._parse_place())
        if text in ("SizeOf", "AlignOf"):
            self._next(); self._expect("(")
            ty = self._parse_type()
            self._expect(")")
            op = ast.NullOp.SIZE_OF if text == "SizeOf" else ast.NullOp.ALIGN_OF
            return ast.NullaryOp(op, ty)
        raise MirParseError(f"cannot parse rvalue at {text!r}",
                            line=token.line)

    def _parse_ref(self):
        self._expect("&")
        if self._at("raw"):
            self._next()
            mut_tok = self._next()
            if mut_tok.text not in ("mut", "const"):
                raise MirParseError("&raw needs mut/const", line=mut_tok.line)
            return ast.AddressOf(self._parse_place(), mut_tok.text == "mut")
        mutable = self._accept("mut")
        return ast.Ref(self._parse_place(), mutable)

    def _parse_operand_list(self):
        self._expect("(")
        operands = []
        while not self._at(")"):
            operands.append(self._parse_operand())
            if not self._at(")"):
                self._expect(",")
        self._expect(")")
        return tuple(operands)

    # -- operands / places / constants -------------------------------------------------

    def _parse_operand(self):
        token = self._peek()
        if token.text == "copy":
            self._next()
            return ast.Copy(self._parse_place())
        if token.text == "move":
            self._next()
            return ast.Move(self._parse_place())
        if token.text == "const":
            self._next()
            return ast.Constant(self._parse_const())
        raise MirParseError(
            f"expected operand (copy/move/const), found {token.text!r}",
            line=token.line,
        )

    def _parse_place(self):
        token = self._peek()
        if token.text == "(":
            self._next()
            if self._accept("*"):
                inner = self._parse_place()
                self._expect(")")
                base = ast.Place(inner.var,
                                 inner.projections + (ast.Deref(),))
            else:
                inner = self._parse_place()
                self._expect("as")
                variant_tok = self._expect_kind("IDENT")
                if not variant_tok.text.startswith("v"):
                    raise MirParseError("downcast expects vN",
                                        line=variant_tok.line)
                variant = int(variant_tok.text[1:])
                self._expect(")")
                base = ast.Place(inner.var,
                                 inner.projections + (ast.Downcast(variant),))
        else:
            base = ast.Place(self._expect_kind("IDENT").text)
        return self._parse_place_postfix(base)

    def _parse_place_postfix(self, base):
        while True:
            if self._at(".") and self._peek(1).kind == "INT":
                self._next()
                index = int(self._next().text)
                base = ast.Place(base.var,
                                 base.projections + (ast.FieldProj(index),))
            elif self._at("["):
                self._next()
                token = self._next()
                if token.kind == "INT":
                    index = int(token.text)
                    self._expect("c")
                    proj = ast.ConstantIndex(index)
                elif token.kind == "IDENT":
                    proj = ast.IndexProj(token.text)
                else:
                    raise MirParseError("bad index projection",
                                        line=token.line)
                self._expect("]")
                base = ast.Place(base.var, base.projections + (proj,))
            else:
                return base

    def _parse_raw_int(self):
        token = self._expect_kind("INT")
        return int(token.text.split("_")[0])

    def _parse_const(self):
        token = self._next()
        if token.kind == "INT":
            if "_" in token.text:
                digits, suffix = token.text.split("_")
                return mk_int(int(digits), type_from_name(suffix))
            return mk_int(int(token.text))
        if token.text == "true":
            return mk_bool(True)
        if token.text == "false":
            return mk_bool(False)
        if token.text == "(":
            self._expect(")")
            return unit()
        if token.kind == "STRING":
            return StrValue(_unescape(token.text))
        if token.kind == "CHAR":
            return CharValue(token.text[1:-1])
        if token.text == "fn":
            return FnValue(self._expect_kind("IDENT").text)
        if token.text == "#":
            discriminant = self._parse_raw_int()
            self._expect("(")
            fields = []
            while not self._at(")"):
                fields.append(self._parse_const())
                if not self._at(")"):
                    self._expect(",")
            self._expect(")")
            return Aggregate(discriminant, tuple(fields))
        raise MirParseError(f"cannot parse constant at {token.text!r}",
                            line=token.line)

    # -- types -------------------------------------------------------------------------

    def _parse_type(self):
        token = self._peek()
        if token.text == "(":
            self._next()
            if self._accept(")"):
                return UNIT
            elems = [self._parse_type()]
            while self._accept(","):
                elems.append(self._parse_type())
            self._expect(")")
            return TupleTy(tuple(elems))
        if token.text == "&":
            self._next()
            mutable = self._accept("mut")
            return RefTy(self._parse_type(), mutable)
        if token.text == "*":
            self._next()
            mut_tok = self._next()
            if mut_tok.text not in ("mut", "const"):
                raise MirParseError("raw pointer type needs mut/const",
                                    line=mut_tok.line)
            return RawPtrTy(self._parse_type(), mut_tok.text == "mut")
        if token.text == "[":
            self._next()
            elem = self._parse_type()
            self._expect(";")
            length = self._parse_raw_int()
            self._expect("]")
            return ArrayTy(elem, length)
        name = self._expect_kind("IDENT").text
        return type_from_name(name)


def _unescape(quoted):
    body = quoted[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def parse_program(source):
    """Parse a whole mirlight source file into a Program."""
    return _Parser(source).parse_program()


def parse_function(source):
    """Parse a single ``fn`` definition into a Function."""
    return _Parser(source).parse_function()
